//! Machine-readable benchmark output: `BENCH_synthesis.json` and
//! `BENCH_serve.json`.
//!
//! The JSON is hand-rolled (the workspace is registry-free, so no serde):
//! a flat schema of per-pair stage timings plus the process-wide
//! [`TranslatorCache`] hit/miss counters, written to
//! `BENCH_synthesis.json` in the working directory or wherever
//! `SIRO_BENCH_JSON` points. The `serve_loopback` bench writes a
//! [`ServeRecord`] to `BENCH_serve.json` (overridable via
//! `SIRO_BENCH_SERVE_JSON`); the `warmstart` bench writes a
//! [`WarmstartRecord`] to `BENCH_warmstart.json` (overridable via
//! `SIRO_BENCH_WARMSTART_JSON`); the `router_matrix` bench writes a
//! [`RouterRecord`] to `BENCH_router.json` (overridable via
//! `SIRO_BENCH_ROUTER_JSON`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use siro_ir::IrVersion;
use siro_synth::{StageTimings, SynthesisOutcome, TranslatorCache};

/// One pair's worth of benchmark data for the JSON dump.
#[derive(Debug, Clone)]
pub struct SynthRecord {
    /// Source version.
    pub source: IrVersion,
    /// Target version.
    pub target: IrVersion,
    /// Wall clock of the `TranslatorCache` lookup (≈ synthesis time on a
    /// miss, ≈ zero on a hit).
    pub wall: Duration,
    /// Whether the outcome came from the cache.
    pub from_cache: bool,
    /// Test cases consumed.
    pub tests_used: usize,
    /// Per-test translators validated.
    pub assignments_validated: u64,
    /// Rendered LOC of the final translator.
    pub translator_loc: usize,
    /// Per-stage breakdown (from the memoized report — identical on hit
    /// and miss).
    pub timings: StageTimings,
}

impl SynthRecord {
    /// Builds a record from a finished outcome.
    pub fn new(
        source: IrVersion,
        target: IrVersion,
        outcome: &SynthesisOutcome,
        wall: Duration,
        from_cache: bool,
    ) -> Self {
        SynthRecord {
            source,
            target,
            wall,
            from_cache,
            tests_used: outcome.report.tests_used,
            assignments_validated: outcome.report.assignments_validated,
            translator_loc: outcome.report.translator_loc,
            timings: outcome.report.timings,
        }
    }
}

/// Where the JSON goes: `SIRO_BENCH_JSON` if set, else
/// `BENCH_synthesis.json` in the current directory.
pub fn json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_synthesis.json"))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn secs(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

/// Renders the records plus current cache counters as a JSON document.
pub fn render_synthesis_json(records: &[SynthRecord]) -> String {
    let stats = TranslatorCache::stats();
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/synthesis-v1\",");
    let _ = writeln!(out, "  \"threads\": {},", siro_synth::resolve_threads());
    let _ = writeln!(
        out,
        "  \"cache\": {{ \"hits\": {}, \"misses\": {} }},",
        stats.hits, stats.misses
    );
    out.push_str("  \"pairs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let t = &r.timings;
        out.push_str("    {\n");
        let _ = writeln!(
            out,
            "      \"source\": {},",
            json_string(&r.source.to_string())
        );
        let _ = writeln!(
            out,
            "      \"target\": {},",
            json_string(&r.target.to_string())
        );
        let _ = writeln!(out, "      \"from_cache\": {},", r.from_cache);
        let _ = writeln!(out, "      \"wall_secs\": {},", secs(r.wall));
        let _ = writeln!(out, "      \"tests_used\": {},", r.tests_used);
        let _ = writeln!(
            out,
            "      \"assignments_validated\": {},",
            r.assignments_validated
        );
        let _ = writeln!(out, "      \"translator_loc\": {},", r.translator_loc);
        out.push_str("      \"timings_secs\": {\n");
        let _ = writeln!(out, "        \"generation\": {},", secs(t.generation));
        let _ = writeln!(out, "        \"profiling\": {},", secs(t.profiling));
        let _ = writeln!(out, "        \"enumeration\": {},", secs(t.enumeration));
        let _ = writeln!(out, "        \"validation\": {},", secs(t.validation));
        let _ = writeln!(
            out,
            "        \"validation_execute_cpu\": {},",
            secs(t.validation_execute_cpu)
        );
        let _ = writeln!(
            out,
            "        \"validation_translate_cpu\": {},",
            secs(t.validation_translate_cpu)
        );
        let _ = writeln!(out, "        \"refinement\": {},", secs(t.refinement));
        let _ = writeln!(out, "        \"completion\": {}", secs(t.completion));
        out.push_str("      }\n");
        out.push_str(if i + 1 == records.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_synthesis.json` and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_synthesis_json(records: &[SynthRecord]) -> std::io::Result<PathBuf> {
    let path = json_path();
    std::fs::write(&path, render_synthesis_json(records))?;
    Ok(path)
}

/// Whole-run summary of the loopback serving benchmark, dumped to
/// `BENCH_serve.json` (schema `siro-bench/serve-v1`).
#[derive(Debug, Clone)]
pub struct ServeRecord {
    /// Worker threads the daemon ran with.
    pub threads: usize,
    /// Concurrent client connections the bench drove.
    pub connections: usize,
    /// Requests sent (== `requests_total` on the server's STATS page).
    pub requests_total: u64,
    /// Requests answered successfully.
    pub requests_ok: u64,
    /// Requests rejected with `Busy` by the bounded queue.
    pub requests_busy: u64,
    /// Requests answered with any other structured error.
    pub requests_error: u64,
    /// Successful translations among the ok requests.
    pub translations: u64,
    /// Wall clock of the whole driving loop.
    pub wall: Duration,
    /// Median server-side request latency, microseconds.
    pub latency_p50_us: Option<u64>,
    /// 99th-percentile server-side request latency, microseconds.
    pub latency_p99_us: Option<u64>,
    /// Process-wide translator-cache hits at the end of the run.
    pub cache_hits: u64,
    /// Process-wide translator-cache misses at the end of the run.
    pub cache_misses: u64,
    /// Distinct version pairs the daemon synthesized.
    pub pairs_synthesized: u64,
    /// Requests that coalesced onto another request's synthesis.
    pub coalesced_waiters: u64,
}

impl ServeRecord {
    /// Completed requests per second over the driving loop.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.requests_ok as f64 / secs
        }
    }
}

/// Where the serving JSON goes: `SIRO_BENCH_SERVE_JSON` if set, else
/// `BENCH_serve.json` in the current directory.
pub fn serve_json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_SERVE_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_serve.json"))
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// Renders the serving record as a JSON document.
pub fn render_serve_json(record: &ServeRecord) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/serve-v1\",");
    let _ = writeln!(out, "  \"threads\": {},", record.threads);
    let _ = writeln!(out, "  \"connections\": {},", record.connections);
    let _ = writeln!(
        out,
        "  \"requests\": {{ \"total\": {}, \"ok\": {}, \"busy\": {}, \"error\": {}, \"translations\": {} }},",
        record.requests_total,
        record.requests_ok,
        record.requests_busy,
        record.requests_error,
        record.translations
    );
    let _ = writeln!(out, "  \"duration_secs\": {},", secs(record.wall));
    let _ = writeln!(out, "  \"throughput_rps\": {:.3},", record.throughput_rps());
    let _ = writeln!(
        out,
        "  \"latency_us\": {{ \"p50\": {}, \"p99\": {} }},",
        json_opt_u64(record.latency_p50_us),
        json_opt_u64(record.latency_p99_us)
    );
    let _ = writeln!(
        out,
        "  \"cache\": {{ \"hits\": {}, \"misses\": {} }},",
        record.cache_hits, record.cache_misses
    );
    let _ = writeln!(
        out,
        "  \"coalescing\": {{ \"pairs_synthesized\": {}, \"coalesced_waiters\": {} }}",
        record.pairs_synthesized, record.coalesced_waiters
    );
    out.push_str("}\n");
    out
}

/// Writes `BENCH_serve.json` and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_serve_json(record: &ServeRecord) -> std::io::Result<PathBuf> {
    let path = serve_json_path();
    std::fs::write(&path, render_serve_json(record))?;
    Ok(path)
}

/// Result of the `trace_overhead` bench: the cost of the `siro-trace`
/// instrumentation relative to an uninstrumented workload, dumped to
/// `BENCH_trace.json` (schema `siro-bench/trace-v1`).
#[derive(Debug, Clone)]
pub struct TraceOverheadRecord {
    /// Operations per measurement repetition.
    pub iters: u64,
    /// Repetitions per configuration (the record keeps the medians).
    pub reps: u64,
    /// ns/op with no tracing calls in the loop at all.
    pub baseline_ns_per_op: f64,
    /// ns/op with `span!` + `counter` calls present but tracing off.
    pub disabled_ns_per_op: f64,
    /// ns/op with tracing on (spans recorded and flushed).
    pub enabled_ns_per_op: f64,
    /// `(disabled - baseline) / baseline`, percent.
    pub overhead_disabled_pct: f64,
    /// `(enabled - baseline) / baseline`, percent.
    pub overhead_enabled_pct: f64,
    /// The threshold the disabled overhead was checked against, percent.
    pub threshold_pct: f64,
    /// Whether the disabled overhead stayed under the threshold.
    pub pass: bool,
}

/// Where the trace-overhead JSON goes: `SIRO_BENCH_TRACE_JSON` if set,
/// else `BENCH_trace.json` in the current directory.
pub fn trace_json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_TRACE_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_trace.json"))
}

/// Renders the trace-overhead record as a JSON document.
pub fn render_trace_json(record: &TraceOverheadRecord) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/trace-v1\",");
    let _ = writeln!(out, "  \"iters\": {},", record.iters);
    let _ = writeln!(out, "  \"reps\": {},", record.reps);
    let _ = writeln!(
        out,
        "  \"ns_per_op\": {{ \"baseline\": {:.3}, \"disabled\": {:.3}, \"enabled\": {:.3} }},",
        record.baseline_ns_per_op, record.disabled_ns_per_op, record.enabled_ns_per_op
    );
    let _ = writeln!(
        out,
        "  \"overhead_pct\": {{ \"disabled\": {:.3}, \"enabled\": {:.3} }},",
        record.overhead_disabled_pct, record.overhead_enabled_pct
    );
    let _ = writeln!(out, "  \"threshold_pct\": {:.3},", record.threshold_pct);
    let _ = writeln!(out, "  \"pass\": {}", record.pass);
    out.push_str("}\n");
    out
}

/// Writes `BENCH_trace.json` and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_trace_json(record: &TraceOverheadRecord) -> std::io::Result<PathBuf> {
    let path = trace_json_path();
    std::fs::write(&path, render_trace_json(record))?;
    Ok(path)
}

/// Result of the `warmstart` bench: first-request latency of a server
/// booted from a populated translator store versus cold synthesis and
/// versus the steady-state cache hit, dumped to `BENCH_warmstart.json`
/// (schema `siro-bench/warmstart-v1`).
#[derive(Debug, Clone)]
pub struct WarmstartRecord {
    /// Source version of the measured pair.
    pub source: IrVersion,
    /// Target version of the measured pair.
    pub target: IrVersion,
    /// First-request latency on a cold server (includes synthesis), µs.
    pub cold_first_us: u64,
    /// Median cache-hit latency on the cold server after warm-up, µs.
    pub cold_hit_p50_us: u64,
    /// Wall clock of booting the warm server (store open + warm start), µs.
    pub warm_boot_us: u64,
    /// First-request latency on the warm-started server, µs.
    pub warm_first_us: u64,
    /// Median cache-hit latency on the warm server, µs.
    pub warm_hit_p50_us: u64,
    /// Entries pre-loaded from the store at warm boot.
    pub warm_loaded: u64,
    /// Total bytes of the store directory's entries.
    pub store_bytes: u64,
    /// `synth.*` spans recorded during the whole warm phase (must be 0:
    /// warm start never synthesizes).
    pub synth_spans: usize,
    /// The gate: `warm_first_us` must stay within this multiple of the
    /// warm hit median (the median is floored at 200 µs so scheduler
    /// noise on very fast requests cannot flake the gate).
    pub max_ratio: f64,
    /// `warm_first_us / max(warm_hit_p50_us, 200)`.
    pub ratio: f64,
    /// Whether the gate held and no synthesis span was recorded.
    pub pass: bool,
}

/// Where the warm-start JSON goes: `SIRO_BENCH_WARMSTART_JSON` if set,
/// else `BENCH_warmstart.json` in the current directory.
pub fn warmstart_json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_WARMSTART_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_warmstart.json"))
}

/// Renders the warm-start record as a JSON document.
pub fn render_warmstart_json(record: &WarmstartRecord) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/warmstart-v1\",");
    let _ = writeln!(
        out,
        "  \"pair\": {{ \"source\": {}, \"target\": {} }},",
        json_string(&record.source.to_string()),
        json_string(&record.target.to_string())
    );
    let _ = writeln!(
        out,
        "  \"cold_us\": {{ \"first_request\": {}, \"hit_p50\": {} }},",
        record.cold_first_us, record.cold_hit_p50_us
    );
    let _ = writeln!(
        out,
        "  \"warm_us\": {{ \"boot\": {}, \"first_request\": {}, \"hit_p50\": {} }},",
        record.warm_boot_us, record.warm_first_us, record.warm_hit_p50_us
    );
    let _ = writeln!(out, "  \"warm_loaded\": {},", record.warm_loaded);
    let _ = writeln!(out, "  \"store_bytes\": {},", record.store_bytes);
    let _ = writeln!(out, "  \"synth_spans\": {},", record.synth_spans);
    let _ = writeln!(out, "  \"max_ratio\": {:.3},", record.max_ratio);
    let _ = writeln!(out, "  \"ratio\": {:.3},", record.ratio);
    let _ = writeln!(out, "  \"pass\": {}", record.pass);
    out.push_str("}\n");
    out
}

/// Writes `BENCH_warmstart.json` and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_warmstart_json(record: &WarmstartRecord) -> std::io::Result<PathBuf> {
    let path = warmstart_json_path();
    std::fs::write(&path, render_warmstart_json(record))?;
    Ok(path)
}

/// Serving latency for one hop-count bucket of the routed matrix.
#[derive(Debug, Clone, Copy)]
pub struct HopBucket {
    /// Hops of the plans in this bucket (1 = direct).
    pub hops: usize,
    /// Pairs served through plans of this length.
    pub count: usize,
    /// Median per-pair serve latency, µs.
    pub p50_us: u64,
    /// 99th-percentile per-pair serve latency, µs.
    pub p99_us: u64,
}

/// Result of the `router_matrix` bench: every ordered catalog pair
/// planned and served through the version-graph router, with composed
/// outputs checked byte-identical to direct synthesis. Dumped to
/// `BENCH_router.json` (schema `siro-bench/router-v1`).
#[derive(Debug, Clone)]
pub struct RouterRecord {
    /// Catalog size (nodes of the graph).
    pub nodes: usize,
    /// Ordered non-identity pairs planned.
    pub pairs: usize,
    /// Pairs whose cheapest plan was a single hop.
    pub direct: usize,
    /// Pairs whose cheapest plan composed two or more hops.
    pub composed: usize,
    /// Pairs with no plan at all — the CI gate requires zero.
    pub unreachable: usize,
    /// Longest planned path, in hops.
    pub max_hops: usize,
    /// Pairs checked composed-vs-direct over the pair's full oracle
    /// corpus.
    pub byte_checked: usize,
    /// Corpus cases compared byte-for-byte (every route version supports
    /// every placed opcode).
    pub byte_cases: usize,
    /// Corpus cases compared by interpreter verdict instead (an
    /// intermediate lowered a feature it cannot represent).
    pub behavioral_cases: usize,
    /// Cases where the routes disagreed (bytes where required, behaviour
    /// otherwise) — the gate requires zero.
    pub byte_mismatches: usize,
    /// Per-hop-count serve latency, ascending by hop count.
    pub hop_latency: Vec<HopBucket>,
    /// Whether both gates held.
    pub pass: bool,
}

/// Where the router JSON goes: `SIRO_BENCH_ROUTER_JSON` if set, else
/// `BENCH_router.json` in the current directory.
pub fn router_json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_ROUTER_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_router.json"))
}

/// Renders the router record as a JSON document.
pub fn render_router_json(record: &RouterRecord) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/router-v1\",");
    let _ = writeln!(out, "  \"nodes\": {},", record.nodes);
    let _ = writeln!(out, "  \"pairs\": {},", record.pairs);
    let _ = writeln!(out, "  \"direct\": {},", record.direct);
    let _ = writeln!(out, "  \"composed\": {},", record.composed);
    let _ = writeln!(out, "  \"unreachable\": {},", record.unreachable);
    let _ = writeln!(out, "  \"max_hops\": {},", record.max_hops);
    let _ = writeln!(
        out,
        "  \"byte_identity\": {{ \"pairs_checked\": {}, \"byte_cases\": {}, \
         \"behavioral_cases\": {}, \"mismatches\": {} }},",
        record.byte_checked, record.byte_cases, record.behavioral_cases, record.byte_mismatches
    );
    out.push_str("  \"hop_latency_us\": [\n");
    for (i, b) in record.hop_latency.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"hops\": {}, \"count\": {}, \"p50\": {}, \"p99\": {} }}",
            b.hops, b.count, b.p50_us, b.p99_us
        );
        out.push_str(if i + 1 == record.hop_latency.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"pass\": {}", record.pass);
    out.push_str("}\n");
    out
}

/// Writes `BENCH_router.json` and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_router_json(record: &RouterRecord) -> std::io::Result<PathBuf> {
    let path = router_json_path();
    std::fs::write(&path, render_router_json(record))?;
    Ok(path)
}

// -------------------------------------------------------------------------

/// Result of the `translate_hot` bench: the steady-state translate span of
/// the compiled tier versus the interpreter on identical modules, with the
/// outputs checked byte-identical. Dumped to `BENCH_translate_hot.json`
/// (schema `siro-bench/translate-hot-v1`).
#[derive(Debug, Clone)]
pub struct TranslateHotRecord {
    /// Source version of the measured pair.
    pub source: IrVersion,
    /// Target version of the measured pair.
    pub target: IrVersion,
    /// Name of the measured workload module.
    pub module: String,
    /// Instructions in the workload module.
    pub insts: usize,
    /// Timed iterations per tier.
    pub iters: u64,
    /// Median interpreted `translate_module` wall clock, µs.
    pub interpreted_p50_us: u64,
    /// Median compiled `translate_module` wall clock, µs.
    pub compiled_p50_us: u64,
    /// Interpreted per-instruction dispatch cost, ns.
    pub interpreted_ns_per_inst: f64,
    /// Compiled per-instruction dispatch cost, ns.
    pub compiled_ns_per_inst: f64,
    /// One-time lowering cost (`compile.lower`), µs.
    pub lower_us: u64,
    /// `interpreted_p50_us / compiled_p50_us`.
    pub speedup: f64,
    /// The gate: the speedup must be at least this.
    pub min_speedup: f64,
    /// Whether every workload module translated byte-identically across
    /// the tiers.
    pub byte_identical: bool,
    /// Whether the gate held (speedup and byte identity).
    pub pass: bool,
}

/// Where the translate-hot JSON goes: `SIRO_BENCH_TRANSLATE_HOT_JSON` if
/// set, else `BENCH_translate_hot.json` in the current directory.
pub fn translate_hot_json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_TRANSLATE_HOT_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_translate_hot.json"))
}

/// Renders the translate-hot record as a JSON document.
pub fn render_translate_hot_json(record: &TranslateHotRecord) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/translate-hot-v1\",");
    let _ = writeln!(
        out,
        "  \"pair\": {{ \"source\": {}, \"target\": {} }},",
        json_string(&record.source.to_string()),
        json_string(&record.target.to_string())
    );
    let _ = writeln!(
        out,
        "  \"module\": {{ \"name\": {}, \"insts\": {} }},",
        json_string(&record.module),
        record.insts
    );
    let _ = writeln!(out, "  \"iters\": {},", record.iters);
    let _ = writeln!(
        out,
        "  \"translate_p50_us\": {{ \"interpreted\": {}, \"compiled\": {} }},",
        record.interpreted_p50_us, record.compiled_p50_us
    );
    let _ = writeln!(
        out,
        "  \"dispatch_ns_per_inst\": {{ \"interpreted\": {:.3}, \"compiled\": {:.3} }},",
        record.interpreted_ns_per_inst, record.compiled_ns_per_inst
    );
    let _ = writeln!(out, "  \"lower_us\": {},", record.lower_us);
    let _ = writeln!(out, "  \"speedup\": {:.3},", record.speedup);
    let _ = writeln!(out, "  \"min_speedup\": {:.3},", record.min_speedup);
    let _ = writeln!(out, "  \"byte_identical\": {},", record.byte_identical);
    let _ = writeln!(out, "  \"pass\": {}", record.pass);
    out.push_str("}\n");
    out
}

/// Writes `BENCH_translate_hot.json` and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_translate_hot_json(record: &TranslateHotRecord) -> std::io::Result<PathBuf> {
    let path = translate_hot_json_path();
    std::fs::write(&path, render_translate_hot_json(record))?;
    Ok(path)
}

/// One row of the `ir_alloc` bench: allocator traffic on the
/// parse→translate→serialize request path (`siro-bench/ir-alloc-v1`).
#[derive(Debug, Clone)]
pub struct IrAllocRecord {
    /// Source version of the measured pair.
    pub source: IrVersion,
    /// Target version of the measured pair.
    pub target: IrVersion,
    /// Workload module name.
    pub module: String,
    /// Instruction count of the workload module.
    pub insts: usize,
    /// Timed/counted repetitions.
    pub iters: u64,
    /// Allocator calls per request in the parse leg.
    pub parse_allocs: u64,
    /// Allocator calls per request in the translate leg (compiled tier).
    pub translate_allocs: u64,
    /// Allocator calls per request in the serialize leg.
    pub serialize_allocs: u64,
    /// Allocator calls per request over the whole composition.
    pub total_allocs: u64,
    /// The pre-arena baseline the gate compares against.
    pub baseline_allocs: u64,
    /// `baseline_allocs / total_allocs`.
    pub reduction: f64,
    /// The gate: the reduction must be at least this.
    pub min_reduction: f64,
    /// p50 wall time of the whole composition, µs.
    pub request_p50_us: u64,
    /// p50 wall time of the translate leg alone, µs.
    pub translate_p50_us: u64,
    /// Whether the gate held.
    pub pass: bool,
}

/// Where the ir-alloc JSON goes: `SIRO_BENCH_IR_ALLOC_JSON` if set, else
/// `BENCH_ir_alloc.json` in the current directory.
pub fn ir_alloc_json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_IR_ALLOC_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_ir_alloc.json"))
}

/// Renders the ir-alloc record as a JSON document.
pub fn render_ir_alloc_json(record: &IrAllocRecord) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/ir-alloc-v1\",");
    let _ = writeln!(
        out,
        "  \"pair\": {{ \"source\": {}, \"target\": {} }},",
        json_string(&record.source.to_string()),
        json_string(&record.target.to_string())
    );
    let _ = writeln!(
        out,
        "  \"module\": {{ \"name\": {}, \"insts\": {} }},",
        json_string(&record.module),
        record.insts
    );
    let _ = writeln!(out, "  \"iters\": {},", record.iters);
    let _ = writeln!(
        out,
        "  \"allocs_per_request\": {{ \"parse\": {}, \"translate\": {}, \"serialize\": {}, \"total\": {} }},",
        record.parse_allocs, record.translate_allocs, record.serialize_allocs, record.total_allocs
    );
    let _ = writeln!(out, "  \"baseline_allocs\": {},", record.baseline_allocs);
    let _ = writeln!(out, "  \"reduction\": {:.3},", record.reduction);
    let _ = writeln!(out, "  \"min_reduction\": {:.3},", record.min_reduction);
    let _ = writeln!(out, "  \"request_p50_us\": {},", record.request_p50_us);
    let _ = writeln!(out, "  \"translate_p50_us\": {},", record.translate_p50_us);
    let _ = writeln!(out, "  \"pass\": {}", record.pass);
    out.push_str("}\n");
    out
}

/// Writes `BENCH_ir_alloc.json` and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_ir_alloc_json(record: &IrAllocRecord) -> std::io::Result<PathBuf> {
    let path = ir_alloc_json_path();
    std::fs::write(&path, render_ir_alloc_json(record))?;
    Ok(path)
}

/// Where the sustained-load JSON goes: `SIRO_BENCH_LOADTEST_JSON` if set,
/// else `BENCH_loadtest.json` in the current directory.
pub fn loadtest_json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_LOADTEST_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_loadtest.json"))
}

/// Writes the pre-rendered `siro-bench/loadtest-v1` document (see
/// `siro_loadgen::render_loadtest_json`) and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_loadtest_json(json: &str) -> std::io::Result<PathBuf> {
    let path = loadtest_json_path();
    std::fs::write(&path, json)?;
    Ok(path)
}

// -------------------------------------------------------------------------

/// One in-catalog WIR pair measured by the `cross_dialect` bench.
#[derive(Debug, Clone)]
pub struct WirPairRecord {
    /// Source WIR version, rendered (`"1.0"`).
    pub from: String,
    /// Target WIR version, rendered.
    pub to: String,
    /// Cold synthesis latency, µs (0 when the pair was already hot).
    pub synth_cold_us: u64,
    /// Warm (memoized) acquisition + translate latency, µs.
    pub warm_us: u64,
    /// Corpus modules round-tripped `from → to → from`.
    pub corpus: usize,
    /// Modules whose round trip reproduced the source byte-for-byte —
    /// the gate requires `corpus` (all of them).
    pub roundtrip_identical: usize,
    /// Whether the warm re-translation matched the cold bytes.
    pub warm_identical: bool,
}

/// One SIRO↔WIR anchor measured by the `cross_dialect` bench.
#[derive(Debug, Clone)]
pub struct CrossPairRecord {
    /// Siro side, rendered (`"13.0"`).
    pub siro: String,
    /// WIR side, rendered (`"2.0"`).
    pub wir: String,
    /// Bridge certificate validation latency, µs (cold).
    pub bridge_cold_us: u64,
    /// Warm certificate + raise/lower latency, µs.
    pub warm_us: u64,
    /// Corpus modules pushed through raise → lower.
    pub corpus: usize,
    /// Modules whose [`XBehaviour`](siro_synth::XBehaviour) bucket
    /// survived both legs — the gate requires `corpus`.
    pub buckets_preserved: usize,
    /// Whether repeating the round trip warm reproduced identical bytes.
    pub warm_identical: bool,
}

/// Result of the `cross_dialect` bench: every in-catalog WIR pair plus
/// the bridge anchors, each synthesized and round-tripped with warm
/// byte-identity. Dumped to `BENCH_cross_dialect.json`
/// (schema `siro-bench/cross-dialect-v1`).
#[derive(Debug, Clone)]
pub struct CrossDialectRecord {
    /// Every ordered in-catalog WIR pair.
    pub wir_pairs: Vec<WirPairRecord>,
    /// Every bridge anchor (≥1 SIRO↔WIR pair).
    pub cross_pairs: Vec<CrossPairRecord>,
    /// Whether every gate held.
    pub pass: bool,
}

/// Where the cross-dialect JSON goes: `SIRO_BENCH_CROSS_JSON` if set,
/// else `BENCH_cross_dialect.json` in the current directory.
pub fn cross_dialect_json_path() -> PathBuf {
    std::env::var_os("SIRO_BENCH_CROSS_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_cross_dialect.json"))
}

/// Renders the cross-dialect record as a JSON document.
pub fn render_cross_dialect_json(record: &CrossDialectRecord) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/cross-dialect-v1\",");
    out.push_str("  \"wir_pairs\": [\n");
    for (i, p) in record.wir_pairs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"from\": \"{}\", \"to\": \"{}\", \"synth_cold_us\": {}, \
             \"warm_us\": {}, \"corpus\": {}, \"roundtrip_identical\": {}, \
             \"warm_identical\": {} }}",
            p.from,
            p.to,
            p.synth_cold_us,
            p.warm_us,
            p.corpus,
            p.roundtrip_identical,
            p.warm_identical
        );
        out.push_str(if i + 1 == record.wir_pairs.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"cross_pairs\": [\n");
    for (i, p) in record.cross_pairs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"siro\": \"{}\", \"wir\": \"{}\", \"bridge_cold_us\": {}, \
             \"warm_us\": {}, \"corpus\": {}, \"buckets_preserved\": {}, \
             \"warm_identical\": {} }}",
            p.siro,
            p.wir,
            p.bridge_cold_us,
            p.warm_us,
            p.corpus,
            p.buckets_preserved,
            p.warm_identical
        );
        out.push_str(if i + 1 == record.cross_pairs.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"pass\": {}", record.pass);
    out.push_str("}\n");
    out
}

/// Writes `BENCH_cross_dialect.json` and returns the path written.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_cross_dialect_json(record: &CrossDialectRecord) -> std::io::Result<PathBuf> {
    let path = cross_dialect_json_path();
    std::fs::write(&path, render_cross_dialect_json(record))?;
    Ok(path)
}
