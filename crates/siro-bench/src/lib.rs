//! # siro-bench — shared helpers for the experiment harness
//!
//! Every table and figure of the paper's evaluation has a bench target in
//! `benches/` (run with `cargo bench -p siro-bench --bench <name>`):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig8_upgrade_trend` | Fig. 8 (LLVM IR upgrading trend) |
//! | `tab3_translators` | Tab. 3 (ten synthesized version pairs) |
//! | `fig12_distributions` | Fig. 12 (candidate / refined distributions) |
//! | `tab4_static_bugs` | Tab. 4 (Pinpoint reports under two settings) |
//! | `tab5_fuzzing` | Tab. 5 (Magma PoC reproduction) |
//! | `rq2_kernel` | the Linux-kernel deployment (80 bugs) |
//! | `rq3_breakdown` | RQ3 time breakdown |
//! | `rq3_ablation` | RQ3 ablation study |
//! | `full_eval` | the whole pipeline sharing one translator cache |
//! | `micro` | micro-benchmarks |
//! | `serve_loopback` | the `siro-serve` daemon over a loopback socket |
//!
//! All synthesis goes through [`siro_synth::TranslatorCache`], so targets
//! that need the same version pair (and the `full_eval` composite run)
//! synthesize it once per process. [`perf::write_synthesis_json`] dumps
//! per-pair stage timings and the cache hit/miss counters to
//! `BENCH_synthesis.json` (path overridable via `SIRO_BENCH_JSON`);
//! `serve_loopback` dumps a [`perf::ServeRecord`] to `BENCH_serve.json`
//! (overridable via `SIRO_BENCH_SERVE_JSON`).

use std::sync::Arc;
use std::time::Instant;

use siro_ir::IrVersion;
use siro_synth::{OracleTest, SynthError, SynthesisConfig, SynthesisOutcome, TranslatorCache};

pub mod perf;

/// Converts the corpus cases usable for a pair into synthesizer inputs.
pub fn oracle_tests(src: IrVersion, tgt: IrVersion) -> Vec<OracleTest> {
    siro_testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .map(|c| OracleTest {
            name: c.name.to_string(),
            module: c.build(src),
            oracle: c.oracle,
        })
        .collect()
}

/// A synthesis failure tagged with the version pair it belongs to, so a
/// failing multi-pair run names the culprit.
#[derive(Debug, Clone, PartialEq)]
pub struct PairError {
    /// Source version of the failing pair.
    pub source: IrVersion,
    /// Target version of the failing pair.
    pub target: IrVersion,
    /// The underlying synthesis error.
    pub error: SynthError,
}

impl std::fmt::Display for PairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "synthesis {} -> {} failed: {}",
            self.source, self.target, self.error
        )
    }
}

impl std::error::Error for PairError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Synthesizes (or fetches from the process-wide cache) the instruction
/// translators for one pair from the corpus.
///
/// # Errors
///
/// Returns a [`PairError`] naming the pair when synthesis fails.
pub fn synthesize_pair(src: IrVersion, tgt: IrVersion) -> Result<Arc<SynthesisOutcome>, PairError> {
    let tests = oracle_tests(src, tgt);
    TranslatorCache::get_or_synthesize(SynthesisConfig::new(src, tgt), &tests).map_err(|error| {
        PairError {
            source: src,
            target: tgt,
            error,
        }
    })
}

/// Synthesizes with an explicit configuration, through the cache (each
/// distinct knob setting is its own cache key).
///
/// # Errors
///
/// Propagates [`SynthError`].
pub fn synthesize_with(config: SynthesisConfig) -> Result<Arc<SynthesisOutcome>, SynthError> {
    let tests = oracle_tests(config.source, config.target);
    TranslatorCache::get_or_synthesize(config, &tests)
}

/// Synthesizes many pairs concurrently (one worker per pair, each worker
/// parallelizing internally on `config.threads`), returning the outcomes
/// in input order together with a [`perf::SynthRecord`] per pair for the
/// JSON dump.
///
/// # Errors
///
/// The first failing pair's [`PairError`] (all pairs still run to
/// completion first).
pub fn synthesize_pairs(
    pairs: &[(IrVersion, IrVersion)],
) -> Result<Vec<(Arc<SynthesisOutcome>, perf::SynthRecord)>, PairError> {
    let results: Vec<Result<(Arc<SynthesisOutcome>, perf::SynthRecord), PairError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .iter()
                .map(|&(src, tgt)| {
                    scope.spawn(move || {
                        let tests = oracle_tests(src, tgt);
                        let t0 = Instant::now();
                        let lookup = TranslatorCache::lookup_or_synthesize(
                            SynthesisConfig::new(src, tgt),
                            &tests,
                        )
                        .map_err(|error| PairError {
                            source: src,
                            target: tgt,
                            error,
                        })?;
                        let record = perf::SynthRecord::new(
                            src,
                            tgt,
                            &lookup.outcome,
                            t0.elapsed(),
                            !lookup.fresh,
                        );
                        Ok((lookup.outcome, record))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pair synthesis worker panicked"))
                .collect()
        });
    results.into_iter().collect()
}

/// Prints a titled separator for experiment output.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}
