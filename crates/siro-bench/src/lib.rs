//! # siro-bench — shared helpers for the experiment harness
//!
//! Every table and figure of the paper's evaluation has a bench target in
//! `benches/` (run with `cargo bench -p siro-bench --bench <name>`):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig8_upgrade_trend` | Fig. 8 (LLVM IR upgrading trend) |
//! | `tab3_translators` | Tab. 3 (ten synthesized version pairs) |
//! | `fig12_distributions` | Fig. 12 (candidate / refined distributions) |
//! | `tab4_static_bugs` | Tab. 4 (Pinpoint reports under two settings) |
//! | `tab5_fuzzing` | Tab. 5 (Magma PoC reproduction) |
//! | `rq2_kernel` | the Linux-kernel deployment (80 bugs) |
//! | `rq3_breakdown` | RQ3 time breakdown |
//! | `rq3_ablation` | RQ3 ablation study |
//! | `micro` | Criterion micro-benchmarks |

use siro_ir::IrVersion;
use siro_synth::{OracleTest, SynthesisConfig, SynthesisOutcome, Synthesizer};

/// Converts the corpus cases usable for a pair into synthesizer inputs.
pub fn oracle_tests(src: IrVersion, tgt: IrVersion) -> Vec<OracleTest> {
    siro_testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .map(|c| OracleTest {
            name: c.name.to_string(),
            module: c.build(src),
            oracle: c.oracle,
        })
        .collect()
}

/// Synthesizes the instruction translators for one pair from the corpus.
///
/// # Panics
///
/// Panics if synthesis fails — the corpus is expected to be sufficient.
pub fn synthesize_pair(src: IrVersion, tgt: IrVersion) -> SynthesisOutcome {
    let tests = oracle_tests(src, tgt);
    Synthesizer::for_pair(src, tgt)
        .synthesize(&tests)
        .unwrap_or_else(|e| panic!("synthesis {src} -> {tgt} failed: {e}"))
}

/// Synthesizes with an explicit configuration.
///
/// # Errors
///
/// Propagates [`siro_synth::SynthError`].
pub fn synthesize_with(
    config: SynthesisConfig,
) -> Result<SynthesisOutcome, siro_synth::SynthError> {
    let tests = oracle_tests(config.source, config.target);
    Synthesizer::new(config).synthesize(&tests)
}

/// Prints a titled separator for experiment output.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}
