//! Measures what the `siro-trace` instrumentation costs — and enforces
//! that the *disabled* cost stays negligible.
//!
//! Three configurations run the same ~1 µs workload:
//!
//! 1. **baseline** — no tracing calls in the loop at all;
//! 2. **disabled** — every op wrapped in a `span!` and a `counter`, with
//!    tracing off (the production default: each call is one relaxed
//!    atomic load);
//! 3. **enabled** — the same instrumentation with tracing on, spans
//!    recorded and flushed (the price an operator pays for a trace).
//!
//! The bench fails (exit 1) if the disabled overhead exceeds
//! `SIRO_TRACE_OVERHEAD_MAX_PCT` percent (default 2.0) of baseline —
//! unless the absolute delta is under a few ns/op, which is below what
//! this harness can resolve from noise. Results go to `BENCH_trace.json`
//! (`siro-bench/trace-v1`, path overridable via `SIRO_BENCH_TRACE_JSON`).

use std::hint::black_box;
use std::time::Instant;

use siro_bench::perf;

const ITERS: u64 = 20_000;
const REPS: usize = 7;

/// Differences smaller than this are measurement noise on a ~1 µs op, not
/// signal; the percentage gate only applies above it.
const NOISE_FLOOR_NS: f64 = 5.0;

/// ~1 µs of deterministic register work (an LCG scramble), opaque to the
/// optimizer via `black_box` so the three loops compile identically.
fn workload(seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..400 {
        x = black_box(
            x.wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407),
        );
        x ^= x >> 29;
    }
    x
}

fn ns_per_op(total_ns: u128) -> f64 {
    total_ns as f64 / ITERS as f64
}

fn run_baseline() -> f64 {
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..ITERS {
        acc ^= workload(i);
    }
    black_box(acc);
    ns_per_op(t0.elapsed().as_nanos())
}

fn run_instrumented() -> f64 {
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..ITERS {
        let _s = siro_trace::span!("bench.op", "iteration {}", i);
        acc ^= workload(i);
        siro_trace::counter("bench.ops", 1);
    }
    black_box(acc);
    ns_per_op(t0.elapsed().as_nanos())
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let threshold_pct: f64 = std::env::var("SIRO_TRACE_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    siro_bench::banner(&format!(
        "trace_overhead: {ITERS} ops x {REPS} reps, gate {threshold_pct}% on the disabled path"
    ));

    // Interleave the configurations so clock drift and thermal effects
    // hit all three equally; keep the median per configuration.
    let (mut base, mut off, mut on) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..REPS {
        siro_trace::set_enabled(false);
        base.push(run_baseline());
        off.push(run_instrumented());
        siro_trace::set_enabled(true);
        siro_trace::reset(); // bound memory: drop the previous rep's spans
        on.push(run_instrumented());
    }
    siro_trace::set_enabled(false);
    siro_trace::reset();

    let baseline = median(base);
    let disabled = median(off);
    let enabled = median(on);
    let pct = |x: f64| (x - baseline) / baseline * 100.0;
    let disabled_pct = pct(disabled);
    let enabled_pct = pct(enabled);
    let within_noise = (disabled - baseline).abs() < NOISE_FLOOR_NS;
    let pass = within_noise || disabled_pct <= threshold_pct;

    println!("baseline  {baseline:>9.1} ns/op");
    println!("disabled  {disabled:>9.1} ns/op  ({disabled_pct:+.2}%)");
    println!("enabled   {enabled:>9.1} ns/op  ({enabled_pct:+.2}%)");

    let record = perf::TraceOverheadRecord {
        iters: ITERS,
        reps: REPS as u64,
        baseline_ns_per_op: baseline,
        disabled_ns_per_op: disabled,
        enabled_ns_per_op: enabled,
        overhead_disabled_pct: disabled_pct,
        overhead_enabled_pct: enabled_pct,
        threshold_pct,
        pass,
    };
    match perf::write_trace_json(&record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_trace.json: {e}"),
    }

    if !pass {
        eprintln!(
            "FAIL: disabled-path overhead {disabled_pct:.2}% exceeds the {threshold_pct}% gate"
        );
        std::process::exit(1);
    }
    println!("PASS: disabled-path overhead within the {threshold_pct}% gate");
}
