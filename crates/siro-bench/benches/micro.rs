//! Criterion micro-benchmarks: throughput of the core pipeline stages.

use criterion::{criterion_group, criterion_main, Criterion};
use siro_core::{ReferenceTranslator, Skeleton};
use siro_ir::{interp::Machine, IrVersion};
use siro_synth::{GenLimits, TypeGraph};

fn bench_translation(c: &mut Criterion) {
    let spec = &siro_workloads::table4_projects()[1]; // tmux, the largest
    let module = siro_workloads::compile_project(spec, siro_workloads::Frontend::High, IrVersion::V12_0);
    let skel = Skeleton::new(IrVersion::V3_6);
    let insts = module.inst_count();
    c.bench_function(&format!("translate_module_{insts}_insts"), |b| {
        b.iter(|| skel.translate_module(&module, &ReferenceTranslator).unwrap())
    });
}

fn bench_interpretation(c: &mut Criterion) {
    let case = siro_testcases::full_corpus()
        .into_iter()
        .find(|t| t.name == "phi_loop")
        .unwrap();
    let m = case.build(IrVersion::V13_0);
    c.bench_function("interpret_phi_loop", |b| {
        b.iter(|| Machine::new(&m).run_main().unwrap())
    });
}

fn bench_candidate_generation(c: &mut Criterion) {
    let reg = siro_api::ApiRegistry::for_pair(IrVersion::V12_0, IrVersion::V3_6);
    c.bench_function("generate_candidates_all_kinds", |b| {
        b.iter(|| {
            let graph = TypeGraph::new(&reg);
            siro_synth::generate_all(&graph, GenLimits::default())
        })
    });
}

fn bench_verify(c: &mut Criterion) {
    let spec = &siro_workloads::table4_projects()[1];
    let module = siro_workloads::compile_project(spec, siro_workloads::Frontend::Low, IrVersion::V3_6);
    c.bench_function("verify_tmux_module", |b| {
        b.iter(|| siro_ir::verify::verify_module(&module).unwrap())
    });
}

fn bench_write_parse(c: &mut Criterion) {
    let spec = &siro_workloads::table4_projects()[0];
    let module = siro_workloads::compile_project(spec, siro_workloads::Frontend::Low, IrVersion::V3_6);
    let text = siro_ir::write::write_module(&module);
    c.bench_function("write_module_libcapstone", |b| {
        b.iter(|| siro_ir::write::write_module(&module))
    });
    c.bench_function("parse_module_libcapstone", |b| {
        b.iter(|| siro_ir::parse::parse_module(&text).unwrap())
    });
}

criterion_group!(
    benches,
    bench_translation,
    bench_interpretation,
    bench_candidate_generation,
    bench_verify,
    bench_write_parse
);
criterion_main!(benches);
