//! Micro-benchmarks: throughput of the core pipeline stages, measured with
//! a self-contained warmup + timed-iterations harness (no external bench
//! framework, so the workspace stays registry-free).

use std::time::{Duration, Instant};

use siro_core::{ReferenceTranslator, Skeleton};
use siro_ir::{interp::Machine, IrVersion};
use siro_synth::{GenLimits, TypeGraph};

/// Runs `body` repeatedly for ~`budget` after a short warmup and reports
/// mean wall-clock per iteration.
fn bench_function<R>(name: &str, budget: Duration, mut body: impl FnMut() -> R) {
    // Warmup: let caches and allocator reach steady state.
    let warm_until = Instant::now() + budget / 10;
    while Instant::now() < warm_until {
        std::hint::black_box(body());
    }
    let started = Instant::now();
    let mut iters = 0u64;
    while started.elapsed() < budget {
        std::hint::black_box(body());
        iters += 1;
    }
    let per_iter = started.elapsed().as_secs_f64() / iters as f64;
    let (scaled, unit) = if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "us")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("{name:<40} {scaled:>10.3} {unit}/iter  ({iters} iters)");
}

fn main() {
    let budget = Duration::from_millis(500);
    println!(
        "micro-benchmarks ({}ms budget per case)\n",
        budget.as_millis()
    );

    // Translation throughput on the largest Tab. 4 project.
    let spec = &siro_workloads::table4_projects()[1]; // tmux, the largest
    let module =
        siro_workloads::compile_project(spec, siro_workloads::Frontend::High, IrVersion::V12_0);
    let skel = Skeleton::new(IrVersion::V3_6);
    let insts = module.inst_count();
    bench_function(&format!("translate_module_{insts}_insts"), budget, || {
        skel.translate_module(&module, &ReferenceTranslator)
            .unwrap()
    });

    // Interpretation.
    let case = siro_testcases::full_corpus()
        .into_iter()
        .find(|t| t.name == "phi_loop")
        .unwrap();
    let m = case.build(IrVersion::V13_0);
    bench_function("interpret_phi_loop", budget, || {
        Machine::new(&m).run_main().unwrap()
    });

    // Candidate generation.
    let reg = siro_api::ApiRegistry::for_pair(IrVersion::V12_0, IrVersion::V3_6);
    bench_function("generate_candidates_all_kinds", budget, || {
        let graph = TypeGraph::new(&reg);
        siro_synth::generate_all(&graph, GenLimits::default())
    });

    // Verification.
    let spec = &siro_workloads::table4_projects()[1];
    let vmodule =
        siro_workloads::compile_project(spec, siro_workloads::Frontend::Low, IrVersion::V3_6);
    bench_function("verify_tmux_module", budget, || {
        siro_ir::verify::verify_module(&vmodule).unwrap()
    });

    // Writer / parser.
    let spec = &siro_workloads::table4_projects()[0];
    let wmodule =
        siro_workloads::compile_project(spec, siro_workloads::Frontend::Low, IrVersion::V3_6);
    let text = siro_ir::write::write_module(&wmodule);
    bench_function("write_module_libcapstone", budget, || {
        siro_ir::write::write_module(&wmodule)
    });
    bench_function("parse_module_libcapstone", budget, || {
        siro_ir::parse::parse_module(&text).unwrap()
    });
}
