//! Beyond the paper: the §7 future-work direction of replacing the user's
//! hand-written test cases with automatically generated ones — and a
//! measurement of the diversity limitation the paper predicts for it.

use siro_bench::banner;
use siro_ir::IrVersion;
use siro_synth::{OracleTest, Synthesizer};
use siro_testcases::gen::{generate_cases, kind_coverage};

fn main() {
    banner("Future work (paper §7) - synthesis from auto-generated test cases");
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let generated = generate_cases(0xC0FFEE, 120, src);
    let kinds = kind_coverage(&generated);
    let common = src.common_instructions(tgt);
    println!(
        "generated {} oracle cases covering {} of the {} common instruction kinds",
        generated.len(),
        kinds.iter().filter(|k| common.contains(k)).count(),
        common.len()
    );
    let missing: Vec<String> = common
        .iter()
        .filter(|k| !kinds.contains(k))
        .map(|k| k.name().to_string())
        .collect();
    println!(
        "never generated ({}): {}",
        missing.len(),
        missing.join(", ")
    );

    let tests: Vec<OracleTest> = generated
        .into_iter()
        .map(|c| OracleTest {
            name: c.name,
            module: c.module,
            oracle: c.oracle,
        })
        .collect();
    let outcome = Synthesizer::for_pair(src, tgt)
        .synthesize(&tests)
        .expect("synthesis from generated cases");
    println!(
        "\nsynthesis over the generated corpus: {:.2}s, {} validations",
        outcome.report.timings.total().as_secs_f64(),
        outcome.report.assignments_validated
    );
    let singles = outcome
        .report
        .refined_counts
        .iter()
        .filter(|(_, &n)| n == 1)
        .count();
    println!(
        "kinds refined to a unique translator: {} of {} covered kinds",
        singles,
        outcome.report.refined_counts.len()
    );
    // The synthesized (partial) translator handles what the generator covered ...
    let skel = siro_core::Skeleton::new(tgt);
    let case = siro_testcases::full_corpus()
        .into_iter()
        .find(|c| c.name == "sub_asym")
        .unwrap();
    let t = skel
        .translate_module(&case.build(src), &outcome.translator)
        .expect("translate covered kinds");
    let got = siro_ir::interp::Machine::new(&t)
        .run_main()
        .unwrap()
        .return_int();
    println!(
        "covered-kind check (sub_asym): {got:?} (want Some({}))",
        case.oracle
    );
    // ... and warns on what it never saw.
    let invoke_case = siro_testcases::full_corpus()
        .into_iter()
        .find(|c| c.name == "invoke_landingpad")
        .unwrap();
    match skel.translate_module(&invoke_case.build(src), &outcome.translator) {
        Err(e) => println!("uncovered-kind check (invoke): correctly refused - {e}"),
        Ok(_) => println!("uncovered-kind check (invoke): unexpectedly translated"),
    }
    println!("\npaper's prediction confirmed: generation handles the common core but");
    println!("cannot reach the instruction-diversity tail; hand-written cases remain");
    println!("necessary there (or better generators - the open research problem).");
}
