//! Regenerates Tab. 4: bugs reported by the Pinpoint-style analyzer under
//! the compiling setting (low-version frontend) and the translating setting
//! (high-version frontend + the synthesized 12.0 -> 3.6 translator).

use siro_analysis::BugKind;
use siro_bench::{banner, pct, synthesize_pair};
use siro_ir::IrVersion;
use siro_workloads::run_table4;

fn main() {
    banner("Table 4 - Bugs reported by Pinpoint under two settings");
    println!("synthesizing the 12.0 -> 3.6 translator from the corpus ...");
    let outcome =
        synthesize_pair(IrVersion::V12_0, IrVersion::V3_6).unwrap_or_else(|e| panic!("{e}"));
    let results = run_table4(&outcome.translator, IrVersion::V12_0, IrVersion::V3_6)
        .unwrap_or_else(|e| panic!("{e}"));

    println!(
        "\n{:>12} | {:^17} | {:^17} | {:^17} | {:^17}",
        "Project", "NPD", "UAF", "FDL", "ML"
    );
    println!(
        "{:>12} | {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5} | {:>5} {:>5} {:>5}",
        "", "new", "miss", "shr", "new", "miss", "shr", "new", "miss", "shr", "new", "miss", "shr"
    );
    println!("{}", "-".repeat(92));
    let mut totals = [(0usize, 0usize, 0usize); 4];
    for r in &results {
        let mut cells = Vec::new();
        for (i, kind) in BugKind::ALL.iter().enumerate() {
            let (n, m, s) = r.diff.counts_for(*kind);
            totals[i].0 += n;
            totals[i].1 += m;
            totals[i].2 += s;
            cells.push(format!("{n:>5} {m:>5} {s:>5}"));
        }
        println!("{:>12} | {}", r.name, cells.join(" | "));
    }
    println!("{}", "-".repeat(92));
    let cells: Vec<String> = totals
        .iter()
        .map(|(n, m, s)| format!("{n:>5} {m:>5} {s:>5}"))
        .collect();
    println!("{:>12} | {}", "Total", cells.join(" | "));

    let shared: usize = results.iter().map(|r| r.diff.shared.len()).sum();
    let new: usize = results.iter().map(|r| r.diff.new.len()).sum();
    let missing: usize = results.iter().map(|r| r.diff.missing.len()).sum();
    println!(
        "\noverlap: {shared} shared, {new} new, {missing} missing -> accuracy {} \
         (paper: 253/276 = 91%)",
        pct(shared as f64 / (shared + new + missing) as f64)
    );
}
