//! Loopback benchmark for the `siro-serve` translation daemon.
//!
//! Boots an in-process server on an ephemeral loopback port, drives it
//! from several concurrent client connections with a mixed workload
//! (multiple version pairs, both reference and synthesized translators,
//! pipelined batches), and dumps the run to `BENCH_serve.json`
//! (`siro-bench/serve-v1` schema, path overridable via
//! `SIRO_BENCH_SERVE_JSON`).
//!
//! Knobs: `SIRO_THREADS` sizes the worker pool (the server default),
//! `SIRO_BENCH_SERVE_CONNS` the client connections (default 4), and
//! `SIRO_BENCH_SERVE_REQS` the requests per connection (default 64).

use std::time::{Duration, Instant};

use siro_bench::perf;
use siro_ir::{write, IrVersion};
use siro_serve::{Client, ServeConfig, TranslateMode};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// The mixed workload: every connection cycles through these pairs, so
/// cold synthesis, cache hits, and coalescing all occur naturally.
const PAIRS: [(IrVersion, IrVersion); 4] = [
    (IrVersion::V13_0, IrVersion::V3_6),
    (IrVersion::V12_0, IrVersion::V3_0),
    (IrVersion::V17_0, IrVersion::V12_0),
    (IrVersion::V15_0, IrVersion::V13_0),
];

fn main() {
    let connections = env_usize("SIRO_BENCH_SERVE_CONNS", 4);
    let per_conn = env_usize("SIRO_BENCH_SERVE_REQS", 64);

    let handle = siro_serve::start(ServeConfig::default()).expect("bind loopback server");
    let addr = handle.addr();
    siro_bench::banner(&format!(
        "serve_loopback: {} workers on {addr}, {connections} connections x {per_conn} requests",
        handle.workers()
    ));

    // Pre-render the request bodies once so the timed loop measures the
    // daemon, not the corpus builders.
    let bodies: Vec<Vec<(IrVersion, IrVersion, TranslateMode, String)>> = (0..connections)
        .map(|conn| {
            (0..per_conn)
                .map(|i| {
                    let (src, tgt) = PAIRS[(conn + i) % PAIRS.len()];
                    let mode = if i % 2 == 0 {
                        TranslateMode::Reference
                    } else {
                        TranslateMode::Synthesized
                    };
                    let cases = siro_testcases::corpus_for_pair(src, tgt);
                    let case = &cases[i % cases.len()];
                    (src, tgt, mode, write::write_module(&case.build(src)))
                })
                .collect()
        })
        .collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for body in &bodies {
            scope.spawn(move || {
                let mut client =
                    Client::connect(addr, Duration::from_secs(60)).expect("connect client");
                // Pipelined batches of 8 keep the queue busy without
                // saturating it into Busy rejections.
                for chunk in body.chunks(8) {
                    let results = client.translate_batch(chunk).expect("batch");
                    for r in results {
                        r.expect("every benchmark translation succeeds");
                    }
                }
            });
        }
    });
    let wall = started.elapsed();

    let metrics = handle.metrics().snapshot();
    let cache = siro_synth::TranslatorCache::snapshot();
    let totals = handle.engine().coalescer().totals();
    let record = perf::ServeRecord {
        threads: handle.workers(),
        connections,
        requests_total: metrics.requests_total,
        requests_ok: metrics.requests_ok,
        requests_busy: metrics.requests_busy,
        requests_error: metrics.requests_error,
        translations: metrics.translations,
        wall,
        latency_p50_us: metrics.latency_p50_us,
        latency_p99_us: metrics.latency_p99_us,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        pairs_synthesized: totals.syntheses,
        coalesced_waiters: totals.coalesced,
    };

    println!(
        "{} requests in {:.3}s  ({:.0} req/s)",
        record.requests_ok,
        wall.as_secs_f64(),
        record.throughput_rps()
    );
    println!(
        "latency p50 {:?}us  p99 {:?}us",
        record.latency_p50_us, record.latency_p99_us
    );
    println!(
        "cache {} hits / {} misses; {} pairs synthesized, {} coalesced",
        record.cache_hits, record.cache_misses, record.pairs_synthesized, record.coalesced_waiters
    );

    match perf::write_serve_json(&record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
    handle.shutdown();
}
