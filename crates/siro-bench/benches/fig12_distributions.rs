//! Regenerates Fig. 12: the number distributions of candidate (a) and
//! refined (b) atomic translators for the common instructions of the pair
//! 12.0 -> 3.6.

use siro_bench::{banner, synthesize_pair};
use siro_ir::IrVersion;

fn bucket_a(n: usize) -> usize {
    match n {
        0..=3 => 0,
        4..=10 => 1,
        11..=100 => 2,
        _ => 3,
    }
}

fn bucket_b(n: usize) -> usize {
    match n {
        0..=1 => 0,
        2 => 1,
        3..=6 => 2,
        _ => 3,
    }
}

fn main() {
    banner("Figure 12 - candidate and refined atomic-translator distributions (12.0 -> 3.6)");
    let outcome =
        synthesize_pair(IrVersion::V12_0, IrVersion::V3_6).unwrap_or_else(|e| panic!("{e}"));
    let total = outcome.report.candidate_counts.len() as f64;

    let mut a = [0usize; 4];
    for &n in outcome.report.candidate_counts.values() {
        a[bucket_a(n)] += 1;
    }
    println!("\n(a) initial candidates per common instruction (paper: 15% / 64% / 16% / 5%):");
    for (label, count) in ["[1-3]", "[4-10]", "[11-100]", ">100"].iter().zip(a) {
        println!(
            "  {label:>9}: {count:>3} kinds ({:>5.1}%)",
            count as f64 / total * 100.0
        );
    }

    let mut b = [0usize; 4];
    for &n in outcome.report.refined_counts.values() {
        b[bucket_b(n)] += 1;
    }
    let rtotal = outcome.report.refined_counts.len() as f64;
    println!("\n(b) refined candidates per kind (paper: 72% / 16% / 10% / 2%):");
    for (label, count) in ["1", "2", "[3-6]", ">6"].iter().zip(b) {
        println!(
            "  {label:>9}: {count:>3} kinds ({:>5.1}%)",
            count as f64 / rtotal * 100.0
        );
    }

    println!("\nper-kind detail (initial -> refined):");
    for (kind, n) in &outcome.report.candidate_counts {
        let r = outcome
            .report
            .refined_counts
            .get(kind)
            .copied()
            .unwrap_or(0);
        println!("  {:>16}: {:>4} -> {:>2}", kind.to_string(), n, r);
    }
    println!("\npaper findings reproduced: sub-kinds for branch/return, commutative arithmetic");
    println!("(swapped operands survive for add/mul/and/or/xor), alias getters kept as");
    println!("equivalent implementations (Fig. 11).");
}
