//! The full evaluation pipeline in one process, sharing one translator
//! cache — the "synthesis performance" experiment of EXPERIMENTS.md.
//!
//! Phases:
//!
//! 1. **cold sequential** — synthesize the Tab. 3 pairs one after another
//!    (cache cleared first) and time the loop;
//! 2. **cold fan-out** — clear the cache again and synthesize the same
//!    pairs through the multi-pair fan-out, for the parallel speedup;
//! 3. **warm evaluation** — run Tab. 4, Tab. 5, and the kernel campaign;
//!    every translator they need is already cached, so the phase performs
//!    **zero re-synthesis**, which the cache miss counter proves.
//!
//! Per-pair stage timings and the final hit/miss counters land in
//! `BENCH_synthesis.json`.

use std::time::Instant;

use siro_bench::{banner, oracle_tests, synthesize_pairs};
use siro_ir::IrVersion;
use siro_synth::{SynthesisConfig, Synthesizer, TranslatorCache};

const PAIRS: [(IrVersion, IrVersion); 10] = [
    (IrVersion::V12_0, IrVersion::V3_6),
    (IrVersion::V13_0, IrVersion::V3_6),
    (IrVersion::V14_0, IrVersion::V3_6),
    (IrVersion::V15_0, IrVersion::V3_6),
    (IrVersion::V17_0, IrVersion::V3_6),
    (IrVersion::V17_0, IrVersion::V3_0),
    (IrVersion::V3_6, IrVersion::V3_0),
    (IrVersion::V5_0, IrVersion::V4_0),
    (IrVersion::V17_0, IrVersion::V12_0),
    (IrVersion::V3_6, IrVersion::V12_0),
];

fn main() {
    banner("Full evaluation - shared translator cache + parallel fan-out");
    let threads = siro_synth::resolve_threads();
    println!("worker threads per pair: {threads} (SIRO_THREADS to override)");

    // Phase 1: cold sequential baseline.
    TranslatorCache::reset();
    let t0 = Instant::now();
    for &(src, tgt) in &PAIRS {
        let tests = oracle_tests(src, tgt);
        Synthesizer::new(SynthesisConfig::new(src, tgt))
            .synthesize(&tests)
            .unwrap_or_else(|e| panic!("sequential {src} -> {tgt}: {e}"));
    }
    let sequential = t0.elapsed();
    println!(
        "\nphase 1  cold sequential loop : {:>8.2}s for {} pairs",
        sequential.as_secs_f64(),
        PAIRS.len()
    );

    // Phase 2: cold fan-out over the same pairs.
    TranslatorCache::reset();
    let t0 = Instant::now();
    let results = synthesize_pairs(&PAIRS).unwrap_or_else(|e| panic!("{e}"));
    let fanout = t0.elapsed();
    println!(
        "phase 2  cold parallel fan-out: {:>8.2}s  (speedup {:.2}x)",
        fanout.as_secs_f64(),
        sequential.as_secs_f64() / fanout.as_secs_f64().max(1e-9),
    );
    let after_cold = TranslatorCache::stats();
    assert_eq!(
        after_cold.misses,
        PAIRS.len() as u64,
        "cold fan-out must synthesize every pair exactly once"
    );

    // Phase 3: the warm evaluation pipeline — Tab. 4, Tab. 5, kernel.
    let t0 = Instant::now();
    let tab4 = siro_bench::synthesize_pair(IrVersion::V12_0, IrVersion::V3_6)
        .unwrap_or_else(|e| panic!("{e}"));
    let results4 = siro_workloads::run_table4(&tab4.translator, IrVersion::V12_0, IrVersion::V3_6)
        .unwrap_or_else(|e| panic!("{e}"));
    let rows5 = siro_fuzz::run_table5(
        &tab4.translator,
        IrVersion::V12_0,
        IrVersion::V3_6,
        siro_fuzz::Scale::from_env(),
    )
    .unwrap_or_else(|e| panic!("{e}"));
    let t14 = siro_bench::synthesize_pair(IrVersion::V14_0, IrVersion::V3_6)
        .unwrap_or_else(|e| panic!("{e}"));
    let t15 = siro_bench::synthesize_pair(IrVersion::V15_0, IrVersion::V3_6)
        .unwrap_or_else(|e| panic!("{e}"));
    let campaign = siro_kernel::run_campaign(
        &|v| -> Box<dyn siro_core::InstTranslator> {
            if v == IrVersion::V14_0 {
                Box::new(t14.translator.clone())
            } else {
                Box::new(t15.translator.clone())
            }
        },
        IrVersion::V3_6,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    let warm = t0.elapsed();

    let stats = TranslatorCache::stats();
    let warm_misses = stats.misses - after_cold.misses;
    println!(
        "phase 3  warm Tab.4+Tab.5+kernel: {:>6.2}s, re-synthesis: {warm_misses} \
         (cache: {} hits / {} misses)",
        warm.as_secs_f64(),
        stats.hits,
        stats.misses
    );
    assert_eq!(warm_misses, 0, "warm evaluation must never re-synthesize");

    // Sanity: the warm pipeline still reproduces the paper's numbers.
    let shared: usize = results4.iter().map(|r| r.diff.shared.len()).sum();
    let cves: usize = rows5.iter().map(|r| r.cves).sum();
    assert_eq!(shared, 253);
    assert_eq!(cves, 111);
    assert_eq!(campaign.total_bugs(), 80);

    let records: Vec<_> = results.iter().map(|(_, r)| r.clone()).collect();
    match siro_bench::perf::write_synthesis_json(&records) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_synthesis.json: {e}"),
    }
    println!(
        "\nsummary: sequential {:.2}s -> fan-out {:.2}s on {threads} threads; warm",
        sequential.as_secs_f64(),
        fanout.as_secs_f64()
    );
    println!("evaluation re-synthesized nothing (Tab.4 + Tab.5 + kernel all cache hits).");
}
