//! Sustained-load comparison of the two `siro-serve` engines.
//!
//! Boots the **event** engine and the legacy **threaded** engine on
//! loopback with identical worker pools (`SIRO_THREADS`), drives each
//! with the same open-loop rate sweep from `siro-loadgen` (latencies
//! measured from *scheduled* arrival — no coordinated omission), and
//! reports each engine's max sustained RPS at the p99 SLO. The point of
//! the comparison is connection scalability: the schedule is spread over
//! many more connections than there are workers, which costs the
//! threaded engine two OS threads per connection while the event engine
//! runs one reactor thread regardless.
//!
//! Dumps `BENCH_loadtest.json` (`siro-bench/loadtest-v1`, path
//! overridable via `SIRO_BENCH_LOADTEST_JSON`) and exits non-zero when
//! the event engine fails to reach `SIRO_LOADTEST_MIN_RATIO` (default
//! 2.0, `0` disables the gate) times the threaded max sustained rate.
//!
//! Knobs: `SIRO_LOADTEST_CONNS` (default 384), `SIRO_LOADTEST_DURATION_MS`
//! (default 4000 — long enough that an engine that can only *briefly*
//! survive a rate tips over instead of squeaking through the step),
//! `SIRO_LOADTEST_RATES` (comma-separated req/s, default
//! `2500,5000,10000,12000,15000,20000` — swept ascending, since max
//! sustained is prefix-monotone), `SIRO_LOADTEST_SLO_MS` (default 20).

use std::time::Duration;

use siro_bench::perf;
use siro_ir::IrVersion;
use siro_loadgen::{corpus_payloads, sweep, EngineRun, LoadgenConfig};
use siro_serve::{EngineMode, ServeConfig, TranslateMode};

/// Version-pair mix for the sweep. Requests use [`TranslateMode::Reference`]
/// so each request does real (but cheap) translate work on one shared core
/// and the serving core — not translator synthesis — is the variable
/// under measurement.
const PAIRS: [(IrVersion, IrVersion); 4] = [
    (IrVersion::V13_0, IrVersion::V3_6),
    (IrVersion::V12_0, IrVersion::V3_0),
    (IrVersion::V17_0, IrVersion::V12_0),
    (IrVersion::V15_0, IrVersion::V13_0),
];

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn env_rates(default: &[f64]) -> Vec<f64> {
    std::env::var("SIRO_LOADTEST_RATES")
        .ok()
        .map(|spec| {
            spec.split(',')
                .map(|s| s.trim().parse().expect("bad SIRO_LOADTEST_RATES entry"))
                .collect()
        })
        .unwrap_or_else(|| default.to_vec())
}

fn run_engine(engine: EngineMode, base: &LoadgenConfig) -> EngineRun {
    let handle = siro_serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 512,
        read_timeout: Duration::from_millis(100),
        engine,
        ..ServeConfig::default()
    })
    .expect("bind loopback server");
    let label = match engine {
        EngineMode::Event => "event",
        EngineMode::Threaded => "threaded",
    };
    siro_bench::banner(&format!(
        "loadtest [{label}]: {} workers on {}, {} connections, SLO p99 <= {} ms",
        handle.workers(),
        handle.addr(),
        base.connections,
        base.slo_p99_ms
    ));
    let config = LoadgenConfig {
        addr: handle.addr(),
        ..base.clone()
    };
    let report = sweep(&config).expect("rate sweep");
    print!("{}", siro_loadgen::render_table(&report));
    let run = EngineRun {
        engine: label.to_string(),
        workers: handle.workers(),
        connections: config.connections,
        report,
    };
    handle.shutdown();
    run
}

fn main() {
    let min_ratio = env_f64("SIRO_LOADTEST_MIN_RATIO", 2.0);
    let base = LoadgenConfig {
        connections: env_usize("SIRO_LOADTEST_CONNS", 384),
        duration: Duration::from_millis(env_usize("SIRO_LOADTEST_DURATION_MS", 4000) as u64),
        rates_rps: env_rates(&[2500.0, 5000.0, 10000.0, 12000.0, 15000.0, 20000.0]),
        slo_p99_ms: env_f64("SIRO_LOADTEST_SLO_MS", 20.0),
        payloads: corpus_payloads(&PAIRS, TranslateMode::Reference),
        connect_timeout: Duration::from_secs(10),
        warmup: true,
        ..LoadgenConfig::default()
    };

    let runs = vec![
        run_engine(EngineMode::Event, &base),
        run_engine(EngineMode::Threaded, &base),
    ];

    let event = runs[0].report.max_sustained_rps;
    let threaded = runs[1].report.max_sustained_rps;
    let ratio = if threaded > 0.0 {
        event / threaded
    } else {
        0.0
    };
    siro_bench::banner(&format!(
        "max sustained RPS at SLO: event {event:.0}, threaded {threaded:.0} \
         ({ratio:.2}x, gate {min_ratio}x)"
    ));

    let json = siro_loadgen::render_loadtest_json(&runs);
    match perf::write_loadtest_json(&json) {
        Ok(path) => println!("loadtest record written to {}", path.display()),
        Err(e) => eprintln!("warning: writing loadtest JSON: {e}"),
    }

    assert!(
        event > 0.0,
        "the event engine met the SLO at no swept rate — lower the rates or raise the SLO"
    );
    if min_ratio > 0.0 {
        assert!(
            threaded == 0.0 || ratio >= min_ratio,
            "event engine sustained only {ratio:.2}x the threaded baseline \
             (gate {min_ratio}x; relax with SIRO_LOADTEST_MIN_RATIO)"
        );
    }
}
