//! Time-boxed smoke run of the coverage-guided differential fuzzer, in
//! two configurations per pair:
//!
//! 1. **clean** — the production synthesis pipeline; any oracle failure
//!    is a real translator bug and fails the bench (exit 1);
//! 2. **seeded fault** — a deliberately broken refinement
//!    (`swap-operands:sub`) injected into every translator leg; the bench
//!    fails unless the fuzzer both *catches* the fault and *shrinks* a
//!    reproduction to ≤ 10 placed instructions.
//!
//! It also enforces the validation-depth claim measured in
//! `EXPERIMENTS.md`: coverage-guided mutation must reach at least 10
//! opcode kinds the generated seed corpus alone never produces. Results
//! go to `BENCH_difftest.json` (schema `siro-bench/difftest-v1`, path
//! overridable via `SIRO_BENCH_DIFFTEST_JSON`).
//!
//! `SIRO_DIFFTEST_BUDGET_SECS` overrides the per-run budget (default 5).

use std::time::Duration;

use siro_difftest::{run, write_difftest_json, DifftestConfig, SHRINK_TARGET};
use siro_ir::{IrVersion, Opcode};
use siro_synth::SynthFault;

/// New-kind floor the guided mutation must demonstrate.
const NEW_KIND_FLOOR: usize = 10;

fn main() {
    let budget: f64 = std::env::var("SIRO_DIFFTEST_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    siro_bench::banner(&format!(
        "difftest_smoke: clean + seeded-fault runs, {budget}s budget each"
    ));

    let triple = (IrVersion::V13_0, IrVersion::V12_0, IrVersion::V3_6);
    let mut pass = true;
    let mut reports = Vec::new();

    // Clean configuration: production translators must survive fuzzing.
    let mut cfg = DifftestConfig::new(triple.0, triple.1, triple.2);
    cfg.budget = Duration::from_secs_f64(budget);
    let clean = run(&cfg).expect("clean synthesis failed");
    println!(
        "clean   {} -> {}: {} execs ({:.0}/s), corpus {}, {} new kinds, {} failures",
        clean.src,
        clean.tgt,
        clean.execs,
        clean.execs_per_sec(),
        clean.corpus_size,
        clean.new_kinds().len(),
        clean.failures.len()
    );
    if !clean.failures.is_empty() {
        eprintln!("FAIL: clean run found translator bugs:");
        for f in &clean.failures {
            eprintln!("  [{}/{}] {}", f.oracle, f.family.name(), f.detail);
        }
        pass = false;
    }
    if clean.new_kinds().len() < NEW_KIND_FLOOR {
        eprintln!(
            "FAIL: guided mutation reached only {} kinds beyond generation (floor {})",
            clean.new_kinds().len(),
            NEW_KIND_FLOOR
        );
        pass = false;
    }

    // Seeded-fault configuration: the pipeline must catch and shrink it.
    let mut cfg = DifftestConfig::new(triple.0, triple.1, triple.2);
    cfg.budget = Duration::from_secs_f64(budget);
    cfg.fault = Some(SynthFault::SwapOperands(Opcode::Sub));
    let faulted = run(&cfg).expect("faulted synthesis failed");
    let best_shrink = faulted.failures.iter().map(|f| f.reduced_insts).min();
    println!(
        "faulted {} -> {}: {} execs ({:.0}/s), {} failures ({} distinct), best shrink {:?}",
        faulted.src,
        faulted.tgt,
        faulted.execs,
        faulted.execs_per_sec(),
        faulted.failures.len(),
        faulted.distinct_failures(),
        best_shrink
    );
    match best_shrink {
        None => {
            eprintln!("FAIL: the seeded swap-operands:sub fault was not caught");
            pass = false;
        }
        Some(n) if n > SHRINK_TARGET => {
            eprintln!("FAIL: best reduction is {n} placed instructions (target {SHRINK_TARGET})");
            pass = false;
        }
        Some(_) => {}
    }

    reports.push(clean);
    reports.push(faulted);
    match write_difftest_json(&reports) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_difftest.json: {e}"),
    }

    if !pass {
        std::process::exit(1);
    }
    println!("PASS: clean run quiet, seeded fault caught and shrunk, {NEW_KIND_FLOOR}+ new kinds");
}
