//! Regenerates Tab. 5: reproducing Magma PoCs through executables built
//! from IR translated by the synthesized 12.0 -> 3.6 translator.
//!
//! PoC counts scale with SIRO_BENCH_SCALE (default 0.05; set 1.0 for the
//! paper's full 35,299-PoC corpus). The seven freeze-guarded libtiff PoCs
//! and php's backend failure are scale-independent.

use siro_bench::{banner, pct, synthesize_pair};
use siro_fuzz::{run_table5, Scale};
use siro_ir::IrVersion;

fn main() {
    banner("Table 5 - Statistics of reproducing PoCs with Siro");
    let scale = Scale::from_env();
    println!(
        "PoC scale: {} (SIRO_BENCH_SCALE; 1.0 = the paper's 35,299 PoCs)",
        scale.0
    );
    println!("synthesizing the 12.0 -> 3.6 translator from the corpus ...");
    let outcome =
        synthesize_pair(IrVersion::V12_0, IrVersion::V3_6).unwrap_or_else(|e| panic!("{e}"));
    let rows = run_table5(
        &outcome.translator,
        IrVersion::V12_0,
        IrVersion::V3_6,
        scale,
    )
    .unwrap_or_else(|e| panic!("{e}"));

    println!(
        "\n{:>9} | {:>8} | {:>7} | {:>5} | {:>6} | {:>6} | {:>6} | {:>9} | {:>9}",
        "Project",
        "#Targets",
        "#Insts",
        "#CVE",
        "#PoC",
        "#R-CVE",
        "#R-PoC",
        "CVE-Ratio",
        "PoC-Ratio"
    );
    println!("{}", "-".repeat(88));
    let (mut cves, mut pocs, mut rc, mut rp) = (0, 0, 0, 0);
    for r in &rows {
        cves += r.cves;
        pocs += r.pocs;
        rc += r.r_cve;
        rp += r.r_poc;
        println!(
            "{:>9} | {:>8} | {:>7} | {:>5} | {:>6} | {:>6} | {:>6} | {:>9} | {:>9}",
            r.name,
            r.targets,
            r.insts,
            r.cves,
            r.pocs,
            r.r_cve,
            r.r_poc,
            pct(r.cve_ratio()),
            pct(r.poc_ratio()),
        );
    }
    println!("{}", "-".repeat(88));
    println!(
        "{:>9} | {:>8} | {:>7} | {:>5} | {:>6} | {:>6} | {:>6} | {:>9} | {:>9}",
        "Total",
        "-",
        "-",
        cves,
        pocs,
        rc,
        rp,
        pct(rc as f64 / cves as f64),
        pct(rp as f64 / pocs as f64),
    );
    println!("\npaper shape: php 0% (backend codegen crash on hardware inline asm),");
    println!("libtiff loses exactly 7 PoCs (freeze-undef pinning), everything else 100%;");
    println!("aggregate CVE ratio 95/111 = 85.6%, PoC ratio ~95.9% at full scale.");
}
