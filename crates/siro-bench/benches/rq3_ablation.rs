//! Regenerates the RQ3 ablation study:
//!
//! 1. no per-test translators: enumerate all instruction translators of the
//!    test suite together -> astronomically many combinations (paper: 1e40);
//! 2. optimizations I+II disabled -> enumeration blow-up, the analogue of
//!    the paper's 24 h timeout with 13,000,000 translators pending;
//! 3. optimization III versus five random test orders.

use siro_bench::{banner, oracle_tests};
use siro_ir::IrVersion;
use siro_rng::seq::SliceRandom;
use siro_rng::SeedableRng;
use siro_synth::{GenLimits, SynthesisConfig, Synthesizer, TypeGraph};

fn main() {
    banner("RQ3 - ablation study (13.0 -> 3.6)");
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let tests = oracle_tests(src, tgt);

    // -- 1. Without per-test translators -------------------------------
    let registry = siro_api::ApiRegistry::for_pair(src, tgt);
    let graph = TypeGraph::new(&registry);
    let per_kind: std::collections::HashMap<_, _> =
        siro_synth::generate_all(&graph, GenLimits::default())
            .into_iter()
            .collect();
    let mut log10_combos = 0.0f64;
    let mut insts = 0usize;
    for t in &tests {
        for f in &t.module.funcs {
            for i in &f.insts {
                if let Some(c) = per_kind.get(&i.opcode) {
                    log10_combos += (c.len().max(1) as f64).log10();
                    insts += 1;
                }
            }
        }
    }
    println!("\n1. no per-test translators (validate the whole suite at once):");
    println!(
        "   {insts} instructions across {} tests -> ~1e{:.0} combined translators",
        tests.len(),
        log10_combos
    );
    println!("   (paper: 1e40 even ignoring predicates -> no chance for synthesis)");

    // -- 2. Optimizations I + II disabled --------------------------------
    let mut cfg = SynthesisConfig::new(src, tgt);
    cfg.opt_equivalence = false;
    cfg.opt_memoization = false;
    cfg.max_assignments_per_test = 200_000;
    println!("\n2. optimizations I (equivalence) and II (memoization) disabled:");
    match Synthesizer::new(cfg).synthesize(&tests) {
        Err(siro_synth::SynthError::Blowup { test, assignments }) => {
            println!("   aborted: test `{test}` left {assignments} per-test translators pending");
            println!("   (paper: timeout after 24 h, stuck at 13,000,000 pending translators)");
        }
        Err(e) => println!("   aborted: {e}"),
        Ok(o) => println!(
            "   completed anyway with {} validations (corpus too small to time out)",
            o.report.assignments_validated
        ),
    }

    // -- 3. Test ordering ----------------------------------------------------
    println!("\n3. optimization III (simple-tests-first) vs five random orders:");
    let mut cfg = SynthesisConfig::new(src, tgt);
    cfg.max_assignments_per_test = 2_000_000;
    let baseline = Synthesizer::new(cfg.clone())
        .synthesize(&tests)
        .expect("baseline");
    println!(
        "   ordered   : {:>9} validations, {:>7.2}s",
        baseline.report.assignments_validated,
        baseline.report.timings.total().as_secs_f64()
    );
    let mut rng = siro_rng::StdRng::seed_from_u64(0x5EED);
    for run in 0..5 {
        let mut shuffled = tests.clone();
        shuffled.shuffle(&mut rng);
        let mut c = cfg.clone();
        c.opt_ordering = false;
        match Synthesizer::new(c).synthesize(&shuffled) {
            Ok(o) => println!(
                "   random #{run} : {:>9} validations, {:>7.2}s",
                o.report.assignments_validated,
                o.report.timings.total().as_secs_f64()
            ),
            Err(e) => println!("   random #{run} : aborted ({e})"),
        }
    }
    println!("\npaper shape: random orders validate (much) more, three of five timed out;");
    println!("ordered runs let memoization prune later, larger tests.");
}
