//! `translate_hot`: the steady-state translate span, compiled tier versus
//! interpreter — the gate behind ROADMAP item 3 and PR 8's tentpole.
//!
//! One pair (13.0 -> 3.6, the paper's flagship), one synthesized
//! translator, identical workload modules through both tiers:
//!
//! 1. every Tab. 4 project module is translated through both tiers and the
//!    outputs are compared **byte-for-byte** (a fast wrong translator is
//!    worthless);
//! 2. the largest module is then timed — median of `REPS` timed calls per
//!    tier after warmup. The interpreted tier runs the skeleton driver;
//!    the compiled tier runs its serving entry point,
//!    `translate_module_owned` (serving parses each request into a module
//!    it owns — the per-rep clone stands in for that parse and happens
//!    *outside* the timed span);
//! 3. the gate requires `interpreted_p50 / compiled_p50 >=`
//!    `SIRO_TRANSLATE_HOT_MIN_SPEEDUP` (default 5.0) *and* byte identity.
//!
//! Dumps `BENCH_translate_hot.json` (`siro-bench/translate-hot-v1`, path
//! overridable via `SIRO_BENCH_TRANSLATE_HOT_JSON`); exits non-zero when
//! the gate fails, so CI can run it directly.

use std::time::Instant;

use siro_bench::perf::{write_translate_hot_json, TranslateHotRecord};
use siro_core::Skeleton;
use siro_ir::{IrVersion, Module};
use siro_synth::{
    oracle_corpus, StreamBackend, SynthesisConfig, TranslatorBackend, TranslatorCache,
};

const REPS: usize = 30;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn time_translations(
    skeleton: &Skeleton,
    module: &Module,
    translator: &dyn siro_core::InstTranslator,
) -> Vec<u64> {
    // Warmup: allocator, icache, thread-local scratch.
    for _ in 0..3 {
        std::hint::black_box(skeleton.translate_module(module, translator).unwrap());
    }
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(skeleton.translate_module(module, translator).unwrap());
            t.elapsed().as_micros() as u64
        })
        .collect()
}

fn time_owned(compiled: &siro_synth::CompiledTranslator, module: &Module) -> Vec<u64> {
    for _ in 0..3 {
        std::hint::black_box(compiled.translate_module_owned(module.clone()).unwrap());
    }
    (0..REPS)
        .map(|_| {
            // The clone models the per-request parse and is not part of
            // the translate span.
            let m = module.clone();
            let t = Instant::now();
            std::hint::black_box(compiled.translate_module_owned(m).unwrap());
            t.elapsed().as_micros() as u64
        })
        .collect()
}

fn main() {
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let min_speedup = env_f64("SIRO_TRANSLATE_HOT_MIN_SPEEDUP", 5.0);
    println!("translate_hot: pair {src}->{tgt}, {REPS} reps, gate {min_speedup}x + byte identity");

    let tests = oracle_corpus(src, tgt);
    let outcome = TranslatorCache::get_or_synthesize(SynthesisConfig::new(src, tgt), &tests)
        .expect("synthesis must succeed for the flagship pair");

    // One-time lowering cost, measured explicitly (the serving path pays
    // it once per process per pair, under the `compile.lower` span).
    let t = Instant::now();
    let compiled = StreamBackend
        .lower(&outcome.translator)
        .expect("flagship translator must lower");
    let lower_us = t.elapsed().as_micros() as u64;

    let skeleton = Skeleton::new(tgt);

    // ---- Byte identity over every workload module. ----------------------
    let mut byte_identical = true;
    let mut largest: Option<(String, Module)> = None;
    for spec in siro_workloads::table4_projects() {
        let module = siro_workloads::compile_project(&spec, siro_workloads::Frontend::High, src);
        let interp = skeleton
            .translate_module(&module, &outcome.translator)
            .expect("interpreted translate");
        let fast = compiled
            .translate_module_owned(module.clone())
            .expect("compiled translate");
        let same = siro_ir::write::write_module(&interp) == siro_ir::write::write_module(&fast);
        println!(
            "  {:<16} {:>6} insts  byte-identical: {}",
            spec.name,
            module.inst_count(),
            same
        );
        byte_identical &= same;
        if largest
            .as_ref()
            .map(|(_, m)| module.inst_count() > m.inst_count())
            .unwrap_or(true)
        {
            largest = Some((spec.name.to_string(), module));
        }
    }
    let (mod_name, module) = largest.expect("at least one workload project");
    let insts = module.inst_count();

    // ---- Steady-state timing on the largest module. ----------------------
    let interpreted = time_translations(&skeleton, &module, &outcome.translator);
    let fast = time_owned(&compiled, &module);
    let interpreted_p50_us = median(interpreted);
    let compiled_p50_us = median(fast).max(1);
    let speedup = interpreted_p50_us as f64 / compiled_p50_us as f64;

    let record = TranslateHotRecord {
        source: src,
        target: tgt,
        module: mod_name,
        insts,
        iters: REPS as u64,
        interpreted_p50_us,
        compiled_p50_us,
        interpreted_ns_per_inst: interpreted_p50_us as f64 * 1e3 / insts as f64,
        compiled_ns_per_inst: compiled_p50_us as f64 * 1e3 / insts as f64,
        lower_us,
        speedup,
        min_speedup,
        byte_identical,
        pass: byte_identical && speedup >= min_speedup,
    };
    println!(
        "\n  {} insts: interpreted p50 {} us ({:.1} ns/inst), compiled p50 {} us ({:.1} ns/inst)",
        insts,
        record.interpreted_p50_us,
        record.interpreted_ns_per_inst,
        record.compiled_p50_us,
        record.compiled_ns_per_inst,
    );
    println!(
        "  lowering {} us (one-time), speedup {:.2}x (gate {:.1}x), byte-identical {}",
        lower_us, speedup, min_speedup, byte_identical
    );

    match write_translate_hot_json(&record) {
        Ok(path) => println!("  wrote {}", path.display()),
        Err(e) => {
            eprintln!("translate_hot: FAIL could not write JSON: {e}");
            std::process::exit(1);
        }
    }
    if !record.pass {
        eprintln!(
            "translate_hot: FAIL (speedup {:.2}x < {:.1}x or tier divergence)",
            speedup, min_speedup
        );
        std::process::exit(1);
    }
    println!("translate_hot: PASS");
}
