//! Warm-start benchmark: proves that a `siro-serve` boot from a populated
//! translator store answers its *first* request at cache-hit speed — no
//! synthesis, no `synth.*` spans — and quantifies the win over cold boot.
//!
//! Three phases on one loopback server pair:
//!
//! 1. **cold** — store attached but empty; the first TRANSLATE pays full
//!    synthesis (and writes the entry back), then ~`REPS` hits give the
//!    steady-state baseline;
//! 2. **warm boot** — process caches wiped, server rebooted with
//!    `store_dir` set; boot wall clock includes the warm start;
//! 3. **warm** — the first TRANSLATE must be a cache hit within
//!    `SIRO_WARMSTART_MAX_RATIO` (default 2.0) of the warm hit median
//!    (floored at 500 µs against scheduler noise), with zero `synth.*`
//!    spans recorded.
//!
//! Dumps `BENCH_warmstart.json` (`siro-bench/warmstart-v1`, path
//! overridable via `SIRO_BENCH_WARMSTART_JSON`) and exits non-zero when
//! the gate fails.

use std::sync::Arc;
use std::time::{Duration, Instant};

use siro_bench::perf;
use siro_ir::{write, IrVersion};
use siro_serve::{Client, ServeConfig, TranslateMode};
use siro_synth::{
    reset_store_stats, set_active_store, store_stats, StoreConfig, TranslatorCache, TranslatorStore,
};

const PAIR: (IrVersion, IrVersion) = (IrVersion::V13_0, IrVersion::V3_6);
const REPS: usize = 30;
/// Sub-millisecond loopback requests are dominated by scheduler noise and
/// first-touch (icache/allocator) warm-up, so the gate compares the warm
/// first request against at least this much. The separation being gated is
/// cache-hit-class (hundreds of µs) vs synthesis-class (tens of ms), so a
/// 500 µs floor keeps >20x of margin against a real warm-start regression.
const NOISE_FLOOR_US: u64 = 500;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(default)
}

fn micros(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// One timed TRANSLATE over an existing connection, client-side wall.
fn timed_translate(client: &mut Client, text: &str) -> (u64, bool, String) {
    let started = Instant::now();
    let out = client
        .translate(PAIR.0, PAIR.1, TranslateMode::Synthesized, text.to_string())
        .expect("benchmark translation");
    (micros(started.elapsed()), out.cache_hit, out.text)
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let max_ratio = env_f64("SIRO_WARMSTART_MAX_RATIO", 2.0);
    let dir = std::env::temp_dir().join(format!("siro-bench-warmstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (src, tgt) = PAIR;
    let case = siro_testcases::corpus_for_pair(src, tgt)
        .into_iter()
        .next()
        .expect("corpus case for the pair");
    let text = write::write_module(&case.build(src));

    // ---- Phase 1: cold serve, store attached (populates the entry). ----
    let store = Arc::new(TranslatorStore::open(StoreConfig::at(&dir)).expect("open store"));
    set_active_store(Some(store));
    reset_store_stats();
    TranslatorCache::reset();
    let handle = siro_serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: Some(2),
        ..ServeConfig::default()
    })
    .expect("cold server binds");
    siro_bench::banner(&format!(
        "warmstart: pair {src}->{tgt} on {}, {REPS} reps, gate {max_ratio}x",
        handle.addr()
    ));
    let mut client = Client::connect(handle.addr(), Duration::from_secs(60)).expect("connect");
    let (cold_first_us, cold_hit, _) = timed_translate(&mut client, &text);
    assert!(!cold_hit, "the first cold request must synthesize");
    let cold_hits: Vec<u64> = (0..REPS)
        .map(|_| {
            let (us, hit, _) = timed_translate(&mut client, &text);
            assert!(hit, "post-synthesis requests must hit the cache");
            us
        })
        .collect();
    let cold_hit_p50_us = median(cold_hits);
    drop(client);
    handle.shutdown();
    assert_eq!(store_stats().writes, 1, "cold synthesis must persist");
    set_active_store(None);
    let store_bytes: u64 = std::fs::read_dir(&dir)
        .expect("store dir")
        .filter_map(|e| e.ok()?.metadata().ok())
        .map(|m| m.len())
        .sum();

    // ---- Phase 2 + 3: wipe process state, boot warm, measure. ----------
    TranslatorCache::reset();
    reset_store_stats();
    siro_trace::set_enabled(true);
    siro_trace::reset();
    let boot_started = Instant::now();
    let handle = siro_serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: Some(2),
        store_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .expect("warm server binds");
    let warm_boot_us = micros(boot_started.elapsed());
    let warm_loaded = store_stats().warm_loaded;
    assert!(warm_loaded >= 1, "warm boot loaded nothing from the store");

    let mut client = Client::connect(handle.addr(), Duration::from_secs(60)).expect("connect");
    let (warm_first_us, warm_first_hit, warm_text) = timed_translate(&mut client, &text);
    assert!(warm_first_hit, "the first warm request must be a cache hit");
    let warm_hits: Vec<u64> = (0..REPS)
        .map(|_| timed_translate(&mut client, &text).0)
        .collect();
    let warm_hit_p50_us = median(warm_hits);
    drop(client);
    handle.shutdown();

    let snapshot = siro_trace::snapshot();
    let synth_spans = snapshot
        .spans
        .iter()
        .filter(|s| s.name.starts_with("synth."))
        .count();
    siro_trace::set_enabled(false);
    set_active_store(None);

    // Cold output vs warm output equality is covered by the e2e test;
    // here we still sanity-check the warm answer is non-empty.
    assert!(!warm_text.is_empty());

    let ratio = warm_first_us as f64 / warm_hit_p50_us.max(NOISE_FLOOR_US) as f64;
    let pass = ratio <= max_ratio && synth_spans == 0;
    let record = perf::WarmstartRecord {
        source: src,
        target: tgt,
        cold_first_us,
        cold_hit_p50_us,
        warm_boot_us,
        warm_first_us,
        warm_hit_p50_us,
        warm_loaded,
        store_bytes,
        synth_spans,
        max_ratio,
        ratio,
        pass,
    };

    println!(
        "cold: first request {} us (full synthesis), hit p50 {} us",
        record.cold_first_us, record.cold_hit_p50_us
    );
    println!(
        "warm: boot {} us ({} entr{} loaded, {} store bytes), first request {} us, hit p50 {} us",
        record.warm_boot_us,
        record.warm_loaded,
        if record.warm_loaded == 1 { "y" } else { "ies" },
        record.store_bytes,
        record.warm_first_us,
        record.warm_hit_p50_us
    );
    println!(
        "gate: warm first / hit p50 = {:.3} (max {:.1}), synth spans {}  ->  {}",
        record.ratio,
        record.max_ratio,
        record.synth_spans,
        if record.pass { "pass" } else { "FAIL" }
    );

    match perf::write_warmstart_json(&record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_warmstart.json: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    if !pass {
        eprintln!(
            "warm-start gate failed: the first warm request is not cache-hit-class \
             (or warm boot synthesized)"
        );
        std::process::exit(1);
    }
}
