//! Regenerates the kernel deployment result (§6.3 "Handling Linux
//! Kernel"): two kernel releases compiled at 14.0 / 15.0, translated down
//! to 3.6 by two synthesized translators, and scanned by the
//! similarity-based bug detector.

use siro_bench::{banner, synthesize_pair};
use siro_ir::IrVersion;
use siro_kernel::{run_campaign, BugStatus};

fn main() {
    banner("RQ2 - Linux kernel deployment: similarity-based bug detection");
    println!("synthesizing the 14.0 -> 3.6 and 15.0 -> 3.6 translators ...");
    let t14 = synthesize_pair(IrVersion::V14_0, IrVersion::V3_6).unwrap_or_else(|e| panic!("{e}"));
    let t15 = synthesize_pair(IrVersion::V15_0, IrVersion::V3_6).unwrap_or_else(|e| panic!("{e}"));
    let campaign = run_campaign(
        &|v| -> Box<dyn siro_core::InstTranslator> {
            if v == IrVersion::V14_0 {
                Box::new(t14.translator.clone())
            } else {
                Box::new(t15.translator.clone())
            }
        },
        IrVersion::V3_6,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    for (release, compiler, bugs) in &campaign.per_release {
        println!(
            "\n{release} (compiled at {compiler}, translated {compiler} -> 3.6): {} bugs",
            bugs.len()
        );
        let mut per_patch: std::collections::BTreeMap<&str, usize> = Default::default();
        for b in bugs {
            *per_patch.entry(b.patch_id).or_default() += 1;
        }
        for (patch, n) in per_patch {
            println!("  via patch {patch}: {n} similar bugs");
        }
    }
    let merged = campaign.merged();
    let total = campaign.total_bugs();
    println!("\ntotal: {total} previously unknown bugs (paper: 80)");
    println!(
        "triage: {merged} fixed and merged, {} confirmed (paper: 56 merged of 80)",
        total - merged
    );
    assert_eq!(total, 80);
    assert_eq!(merged, 56);
    let _ = BugStatus::Confirmed;
}
