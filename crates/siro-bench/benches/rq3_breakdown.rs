//! Regenerates the RQ3 time breakdown: synthesis of the 13.0 -> 3.6 pair
//! over the 60 base test cases, with per-stage wall-clock shares.
//!
//! Paper reference: 2.91 h total; 90.7% validation; 0.12 h enumeration;
//! 0.15 h refinement + completion; only 0.19 h of validation was spent
//! executing test cases (translation/compilation rejects most wrong
//! translators early).

use std::time::Instant;

use siro_bench::{banner, oracle_tests, perf::SynthRecord, synthesize_pair};
use siro_ir::IrVersion;

fn main() {
    banner("RQ3 - synthesis time breakdown (13.0 -> 3.6, base corpus)");
    let tests: Vec<_> = oracle_tests(IrVersion::V13_0, IrVersion::V3_6);
    println!("test cases: {}", tests.len());
    let t0 = Instant::now();
    let outcome =
        synthesize_pair(IrVersion::V13_0, IrVersion::V3_6).unwrap_or_else(|e| panic!("{e}"));
    let wall = t0.elapsed();
    let t = outcome.report.timings;
    let total = t.total().as_secs_f64();
    let row = |name: &str, d: std::time::Duration| {
        println!(
            "{:>28}: {:>9.3}s ({:>5.1}%)",
            name,
            d.as_secs_f64(),
            d.as_secs_f64() / total * 100.0
        );
    };
    println!("\nwall-clock per stage:");
    row("type-guided generation", t.generation);
    row("profiling", t.profiling);
    row("enumeration (incl. probes)", t.enumeration);
    row("validation", t.validation);
    row("refinement", t.refinement);
    row("skeleton completion", t.completion);
    println!("{:>28}: {:>9.3}s", "total", total);
    println!("\nwithin validation (CPU time across workers):");
    println!(
        "{:>28}: {:>9.3}s",
        "translate + compile",
        t.validation_translate_cpu.as_secs_f64()
    );
    println!(
        "{:>28}: {:>9.3}s",
        "execute test cases",
        t.validation_execute_cpu.as_secs_f64()
    );
    println!(
        "\nper-test translators validated: {}",
        outcome.report.assignments_validated
    );
    let redundant = outcome.report.redundant_tests();
    println!(
        "test cases that pruned nothing (duplicate-candidates feedback): {}",
        if redundant.is_empty() {
            "none".to_string()
        } else {
            redundant.join(", ")
        }
    );
    let record = SynthRecord::new(IrVersion::V13_0, IrVersion::V3_6, &outcome, wall, false);
    match siro_bench::perf::write_synthesis_json(&[record]) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_synthesis.json: {e}"),
    }
    println!("\npaper shape: validation dominates; execution is a small fraction of it");
    println!("because translation/compilation failures reject most candidates early.");
}
