//! Any-to-any matrix benchmark: the version-graph router must serve
//! every ordered pair of the full 13-version catalog, and composed
//! routes must be byte-identical to direct synthesis.
//!
//! Three phases over one process:
//!
//! 1. **warm the spine** — synthesize (and persist to a scratch store)
//!    the adjacent-version edges in both directions, so the cost
//!    landscape has a hot low-cost chain running the length of the
//!    catalog and distant pairs genuinely *compose* instead of planning
//!    direct;
//! 2. **plan + serve the matrix** — plan all `N·(N-1)` ordered pairs in
//!    one snapshot (gate: zero unreachable), then acquire and run each
//!    pair's translator on a corpus module, timing per-pair serve
//!    latency bucketed by hop count;
//! 3. **byte identity** — for every pair, translate the pair's full
//!    oracle corpus through the served route (composed chain or direct)
//!    and through a direct synthesis. When every version on the route
//!    supports every opcode the module places, the rendered outputs must
//!    be byte-identical; when an intermediate must lower a feature it
//!    cannot represent (e.g. `callbr` routed through 3.0), bytes
//!    legitimately differ and the interpreter verdicts must agree
//!    instead (gate: zero mismatches of either kind).
//!
//! Dumps `BENCH_router.json` (`siro-bench/router-v1`, path overridable
//! via `SIRO_BENCH_ROUTER_JSON`) and exits non-zero when a gate fails.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use siro_bench::perf;
use siro_core::Skeleton;
use siro_ir::{write, IrVersion};
use siro_synth::{
    set_active_store, RouteOutcome, Router, StoreConfig, SynthesisConfig, TranslatorCache,
    TranslatorStore,
};

fn micros(d: std::time::Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    let idx = (sorted.len().saturating_sub(1)) * pct / 100;
    sorted[idx]
}

fn main() {
    let catalog = IrVersion::CATALOG;
    let dir = std::env::temp_dir().join(format!("siro-bench-router-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(TranslatorStore::open(StoreConfig::at(&dir)).expect("open scratch store"));
    set_active_store(Some(store));
    TranslatorCache::reset();
    siro_synth::reset_router_stats();

    siro_bench::banner(&format!(
        "router_matrix: {} versions, {} ordered pairs",
        catalog.len(),
        catalog.len() * (catalog.len() - 1)
    ));

    // ---- Phase 1: warm the adjacent-version spine, both directions. ----
    let t_warm = Instant::now();
    let mut spine = 0usize;
    for w in catalog.windows(2) {
        for (a, b) in [(w[0], w[1]), (w[1], w[0])] {
            let corpus = siro_synth::oracle_corpus(a, b);
            TranslatorCache::get_or_synthesize(SynthesisConfig::new(a, b), &corpus)
                .unwrap_or_else(|e| panic!("spine synthesis {a} -> {b}: {e}"));
            spine += 1;
        }
    }
    println!(
        "spine: {spine} adjacent edges hot in {:?}",
        t_warm.elapsed()
    );

    // ---- Phase 2: plan the whole matrix in one snapshot, then serve. ----
    let router = Router::new();
    let matrix = router.matrix();
    let mut unreachable = 0usize;
    let mut direct = 0usize;
    let mut composed = 0usize;
    let mut max_hops = 0usize;
    let mut planned: Vec<(IrVersion, IrVersion, usize)> = Vec::new();
    for ((a, b), plan) in &matrix {
        if a == b {
            continue;
        }
        match plan {
            None => {
                println!("UNREACHABLE: {a} -> {b}");
                unreachable += 1;
            }
            Some(p) => {
                if p.is_direct() {
                    direct += 1;
                } else {
                    composed += 1;
                }
                max_hops = max_hops.max(p.hop_count());
                let (sa, sb) = (
                    a.as_siro().expect("siro-only router"),
                    b.as_siro().expect("siro-only router"),
                );
                planned.push((sa, sb, p.hop_count()));
            }
        }
    }
    println!(
        "matrix: {} pairs, {direct} direct, {composed} composed, \
         {unreachable} unreachable, max {max_hops} hops",
        planned.len() + unreachable
    );

    let mut by_hops: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for &(a, b, hops) in &planned {
        let case = &siro_testcases::corpus_for_pair(a, b)[0];
        let module = case.build(a);
        let started = Instant::now();
        let acquired = router
            .acquire(a, b)
            .unwrap_or_else(|e| panic!("acquire {a} -> {b}: {e}"));
        let out = match &acquired.outcome {
            RouteOutcome::Direct(outcome) => {
                Skeleton::new(b).translate_module(&module, &outcome.translator)
            }
            RouteOutcome::Composed(chain) => chain.translate_module(&module),
        }
        .unwrap_or_else(|e| panic!("serve {a} -> {b}: {e}"));
        by_hops
            .entry(hops)
            .or_default()
            .push(micros(started.elapsed()));
        drop(out);
    }

    // ---- Phase 3: composed output must be byte-identical to direct. ----
    let t_bytes = Instant::now();
    let mut byte_checked = 0usize;
    let mut byte_mismatches = 0usize;
    let mut byte_cases = 0usize;
    let mut behavioral_cases = 0usize;
    for &(a, b, _) in &planned {
        // The route the matrix served: re-acquire (memoized) so composed
        // pairs compare their real chain; direct pairs compare a
        // router-ranked two-hop alternate instead, so every pair gets a
        // composed-vs-direct check.
        let acquired = router.acquire(a, b).expect("re-acquire");
        let chain = match &acquired.outcome {
            RouteOutcome::Composed(chain) => Arc::clone(chain),
            RouteOutcome::Direct(_) => {
                let mid = *siro_difftest::routed_mids(a, b)
                    .first()
                    .expect("catalog has an intermediate");
                Arc::new(
                    router
                        .compose_path(&[a, mid, b])
                        .unwrap_or_else(|e| panic!("compose {a} -> {mid} -> {b}: {e}")),
                )
            }
        };
        let direct_outcome =
            TranslatorCache::get_or_synthesize(SynthesisConfig::new(a, b), &router.corpus(a, b))
                .unwrap_or_else(|e| panic!("direct synthesis {a} -> {b}: {e}"));
        let skeleton = Skeleton::new(b);
        for test in router.corpus(a, b).iter() {
            let via_chain = chain.translate_module(&test.module);
            let via_direct = skeleton.translate_module(&test.module, &direct_outcome.translator);
            let (c, d) = match (via_chain, via_direct) {
                (Ok(c), Ok(d)) => (c, d),
                // Documented translator partiality may differ per path;
                // only successful translations on both routes compare.
                _ => continue,
            };
            let placed: Vec<_> = siro_difftest::fuzz::placed_kinds(&test.module)
                .into_iter()
                .collect();
            let faithful = chain.plan.hops.iter().all(|hop| {
                hop.to
                    .as_siro()
                    .is_some_and(|v| placed.iter().all(|&k| v.supports(k)))
            });
            if faithful {
                byte_cases += 1;
                if write::write_module(&c) != write::write_module(&d) {
                    println!("BYTE MISMATCH: {a} -> {b} on `{}`", test.name);
                    byte_mismatches += 1;
                }
            } else {
                // An intermediate lowered a feature it cannot represent:
                // bytes legitimately differ, behaviour must not.
                behavioral_cases += 1;
                let bc = siro_difftest::behaviour(&c, siro_difftest::ORACLE_FUEL);
                let bd = siro_difftest::behaviour(&d, siro_difftest::ORACLE_FUEL);
                if let (Some(bc), Some(bd)) = (bc, bd) {
                    if bc != bd {
                        println!(
                            "BEHAVIOUR MISMATCH: {a} -> {b} on `{}`: chain {bc}, direct {bd}",
                            test.name
                        );
                        byte_mismatches += 1;
                    }
                }
            }
        }
        byte_checked += 1;
    }
    println!(
        "route identity: {byte_checked} pairs in {:?} ({byte_cases} byte-compared, \
         {behavioral_cases} behaviour-compared), {byte_mismatches} mismatches",
        t_bytes.elapsed()
    );

    let hop_latency: Vec<perf::HopBucket> = by_hops
        .into_iter()
        .map(|(hops, mut lat)| {
            lat.sort_unstable();
            perf::HopBucket {
                hops,
                count: lat.len(),
                p50_us: percentile(&lat, 50),
                p99_us: percentile(&lat, 99),
            }
        })
        .collect();
    for b in &hop_latency {
        println!(
            "  {} hop(s): {} pairs, p50 {}us, p99 {}us",
            b.hops, b.count, b.p50_us, b.p99_us
        );
    }

    let stats = siro_synth::router_stats();
    println!(
        "router counters: {} plans, {} direct, {} composed ({} cached), \
         {} fallbacks, {} chains persisted",
        stats.plans,
        stats.direct,
        stats.composed,
        stats.composed_cached,
        stats.fallbacks,
        stats.chains_persisted
    );

    let pass = unreachable == 0 && byte_mismatches == 0;
    let record = perf::RouterRecord {
        nodes: catalog.len(),
        pairs: planned.len() + unreachable,
        direct,
        composed,
        unreachable,
        max_hops,
        byte_checked,
        byte_cases,
        behavioral_cases,
        byte_mismatches,
        hop_latency,
        pass,
    };
    match perf::write_router_json(&record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("writing BENCH_router.json: {e}");
            std::process::exit(1);
        }
    }

    set_active_store(None);
    let _ = std::fs::remove_dir_all(&dir);
    if !pass {
        eprintln!(
            "router_matrix gate FAILED: {unreachable} unreachable pairs, \
             {byte_mismatches} byte mismatches"
        );
        std::process::exit(1);
    }
    println!("router_matrix gate passed: full matrix served, composed == direct");
}
