//! Regenerates Tab. 3: synthesizing IR translators for ten version pairs.
//!
//! The ten pairs are synthesized concurrently through the process-wide
//! translator cache (`synthesize_pairs` fans one worker out per pair;
//! each worker parallelizes internally). For every pair the harness
//! reports the common/new instruction counts (exact reproduction) and the
//! candidate / final translator sizes (our substrate's scale; the paper's
//! numbers are C++ LOC over real LLVM), then dumps per-pair stage timings
//! and cache counters to `BENCH_synthesis.json`.

use std::time::Instant;

use siro_bench::{banner, synthesize_pairs};
use siro_ir::IrVersion;
use siro_synth::TranslatorCache;

fn main() {
    banner("Table 3 - Pairs of IR translator versions achieved by Siro");
    let pairs = [
        (IrVersion::V12_0, IrVersion::V3_6),
        (IrVersion::V13_0, IrVersion::V3_6),
        (IrVersion::V14_0, IrVersion::V3_6),
        (IrVersion::V15_0, IrVersion::V3_6),
        (IrVersion::V17_0, IrVersion::V3_6),
        (IrVersion::V17_0, IrVersion::V3_0),
        (IrVersion::V3_6, IrVersion::V3_0),
        (IrVersion::V5_0, IrVersion::V4_0),
        (IrVersion::V17_0, IrVersion::V12_0),
        (IrVersion::V3_6, IrVersion::V12_0),
    ];
    println!(
        "synthesizing {} pairs concurrently ({} worker threads per pair) ...",
        pairs.len(),
        siro_synth::resolve_threads()
    );
    let t0 = Instant::now();
    let results = synthesize_pairs(&pairs).unwrap_or_else(|e| panic!("{e}"));
    let fanout_wall = t0.elapsed();

    println!(
        "\n{:>3} | {:>7} | {:>7} | {:>12} | {:>9} | {:>6} | {:>17} | {:>15} | {:>8}",
        "No.",
        "Source",
        "Target",
        "#Common Inst",
        "#New Inst",
        "#Tests",
        "#Atomic Trans(LOC)",
        "#Inst Trans(LOC)",
        "Time"
    );
    println!("{}", "-".repeat(110));
    for (i, ((src, tgt), (outcome, record))) in pairs.iter().zip(&results).enumerate() {
        let common = src.common_instructions(*tgt).len();
        let new = src.new_instructions_vs(*tgt).len();
        println!(
            "{:>3} | {:>7} | {:>7} | {:>12} | {:>9} | {:>6} | {:>17} | {:>15} | {:>7.2}s",
            i + 1,
            src.to_string(),
            tgt.to_string(),
            common,
            new,
            record.tests_used,
            outcome.report.candidate_loc,
            outcome.report.translator_loc,
            record.wall.as_secs_f64(),
        );
    }
    let records: Vec<_> = results.iter().map(|(_, r)| r.clone()).collect();
    let stats = TranslatorCache::stats();
    println!(
        "\nfan-out wall clock: {:.2}s for {} pairs (sum of per-pair walls: {:.2}s); \
         cache: {} hits / {} misses",
        fanout_wall.as_secs_f64(),
        pairs.len(),
        records.iter().map(|r| r.wall.as_secs_f64()).sum::<f64>(),
        stats.hits,
        stats.misses,
    );
    match siro_bench::perf::write_synthesis_json(&records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_synthesis.json: {e}"),
    }
    println!("\npaper columns reproduced exactly: #Common Inst, #New Inst (all ten rows).");
    println!("LOC columns measure this substrate's rendered translators; the paper's are C++.");
    println!("paper wall-clock: < 3 h per pair on real LLVM; here the substrate is in-process.");
}
