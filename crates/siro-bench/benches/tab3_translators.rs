//! Regenerates Tab. 3: synthesizing IR translators for ten version pairs.
//!
//! For every pair the harness runs the full synthesis pipeline over the
//! test-case corpus and reports the common/new instruction counts (exact
//! reproduction) and the candidate / final translator sizes (our substrate's
//! scale; the paper's numbers are C++ LOC over real LLVM).

use std::time::Instant;

use siro_bench::{banner, oracle_tests};
use siro_ir::IrVersion;
use siro_synth::Synthesizer;

fn main() {
    banner("Table 3 - Pairs of IR translator versions achieved by Siro");
    let pairs = [
        (IrVersion::V12_0, IrVersion::V3_6),
        (IrVersion::V13_0, IrVersion::V3_6),
        (IrVersion::V14_0, IrVersion::V3_6),
        (IrVersion::V15_0, IrVersion::V3_6),
        (IrVersion::V17_0, IrVersion::V3_6),
        (IrVersion::V17_0, IrVersion::V3_0),
        (IrVersion::V3_6, IrVersion::V3_0),
        (IrVersion::V5_0, IrVersion::V4_0),
        (IrVersion::V17_0, IrVersion::V12_0),
        (IrVersion::V3_6, IrVersion::V12_0),
    ];
    println!(
        "{:>3} | {:>7} | {:>7} | {:>12} | {:>9} | {:>6} | {:>17} | {:>15} | {:>8}",
        "No.", "Source", "Target", "#Common Inst", "#New Inst", "#Tests",
        "#Atomic Trans(LOC)", "#Inst Trans(LOC)", "Time"
    );
    println!("{}", "-".repeat(110));
    for (i, (src, tgt)) in pairs.iter().enumerate() {
        let tests = oracle_tests(*src, *tgt);
        let t0 = Instant::now();
        let outcome = Synthesizer::for_pair(*src, *tgt)
            .synthesize(&tests)
            .unwrap_or_else(|e| panic!("pair {}: {e}", i + 1));
        let elapsed = t0.elapsed();
        let common = src.common_instructions(*tgt).len();
        let new = src.new_instructions_vs(*tgt).len();
        println!(
            "{:>3} | {:>7} | {:>7} | {:>12} | {:>9} | {:>6} | {:>17} | {:>15} | {:>7.2}s",
            i + 1,
            src.to_string(),
            tgt.to_string(),
            common,
            new,
            tests.len(),
            outcome.report.candidate_loc,
            outcome.report.translator_loc,
            elapsed.as_secs_f64(),
        );
    }
    println!("\npaper columns reproduced exactly: #Common Inst, #New Inst (all ten rows).");
    println!("LOC columns measure this substrate's rendered translators; the paper's are C++.");
    println!("paper wall-clock: < 3 h per pair on real LLVM; here the substrate is in-process.");
}
