//! Regenerates Fig. 8: the overall upgrading trend of LLVM IR across the
//! text, API, and semantic dimensions (cumulative percentage per version).

use siro_bench::banner;
use siro_study::{api_total_loc, new_instruction_total, text_total_loc, upgrade_trend};

fn main() {
    banner("Figure 8 - The overall upgrading trend of LLVM IR (3.0 - 17.0)");
    println!(
        "dimension totals: text = {} LOC (paper: ~25 KLOC), api = {} LOC (paper: ~31 KLOC), \
         new instructions = {} (paper: 8)\n",
        text_total_loc(),
        api_total_loc(),
        new_instruction_total()
    );
    let t = upgrade_trend();
    println!(
        "{:>8} | {:>18} | {:>18} | {:>18}",
        "version", "text cum. %", "API cum. %", "semantic cum. %"
    );
    println!("{}", "-".repeat(72));
    for (i, v) in t.versions.iter().enumerate() {
        println!(
            "{:>8} | {:>8.1} ({:>+5.1}) | {:>8.1} ({:>+5.1}) | {:>8.1} ({:>+5.1})",
            v,
            t.text[i].cumulative_pct,
            t.text[i].increment_pct,
            t.api[i].cumulative_pct,
            t.api[i].increment_pct,
            t.semantic[i].cumulative_pct,
            t.semantic[i].increment_pct,
        );
    }
    // The two growth periods the paper calls out.
    let idx = |v: &str| t.versions.iter().position(|&x| x == v).unwrap();
    let span = |s: &[siro_study::TrendPoint], a: &str, b: &str| -> f64 {
        s[idx(a)..=idx(b)].iter().map(|p| p.increment_pct).sum()
    };
    println!(
        "\nPeriod 1 (3.6 - 5):  text {:>5.1}%  api {:>5.1}%  semantic {:>5.1}%",
        span(&t.text, "3.6", "5"),
        span(&t.api, "3.6", "5"),
        span(&t.semantic, "3.6", "5")
    );
    println!(
        "Period 2 (6 - 11):   text {:>5.1}%  api {:>5.1}%  semantic {:>5.1}%",
        span(&t.text, "6", "11"),
        span(&t.api, "6", "11"),
        span(&t.semantic, "6", "11")
    );
    println!("\npaper shape: period 1 active in all three dimensions; period 2 in API+semantic.");
}
