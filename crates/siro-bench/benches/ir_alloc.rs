//! `ir_alloc`: allocator traffic on the serving request path — the gate
//! behind ROADMAP item 4 and the arena IR core.
//!
//! Every served request runs parse → translate (compiled tier) →
//! serialize. Before the arena core, that composition churned one heap
//! allocation per operand list, per block list, per name, per function
//! body; the arena refactor is required to cut allocator calls at least
//! in half on this exact path.
//!
//! Measurement: a counting `#[global_allocator]` (allocations +
//! reallocations, same-thread) around each leg of the composition on the
//! largest Tab. 4 workload module for the flagship pair 13.0 → 3.6.
//! Counts are exact and deterministic per rep; the minimum over reps is
//! reported so warm-up noise (thread-local slab priming, hashmap growth)
//! is excluded — steady state is what serving cares about.
//!
//! Gate: `baseline_allocs / total_allocs >= SIRO_IR_ALLOC_MIN_RATIO`
//! (default 2.0). The baseline is the pre-arena count measured on this
//! exact workload at the commit that introduced the bench, overridable
//! via `SIRO_IR_ALLOC_BASELINE`.
//!
//! Dumps `BENCH_ir_alloc.json` (`siro-bench/ir-alloc-v1`, path
//! overridable via `SIRO_BENCH_IR_ALLOC_JSON`); exits non-zero when the
//! gate fails, so CI can run it directly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use siro_bench::perf::{write_ir_alloc_json, IrAllocRecord};
use siro_ir::{parse, write, IrVersion};
use siro_synth::{
    oracle_corpus, StreamBackend, SynthesisConfig, TranslatorBackend, TranslatorCache,
};

/// Pre-arena allocator calls per request on this workload (tmux, 971
/// insts, 13.0 → 3.6), measured at the commit that added this bench.
/// Measured: parse 12,258 + translate 3 + serialize 7,770 = 20,031.
const PRE_ARENA_BASELINE: u64 = 20_031;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on and returns (result, allocs).
fn counted<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let out = f();
    COUNTING.store(false, Ordering::Relaxed);
    let after = ALLOCS.load(Ordering::Relaxed);
    (out, after - before)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

const REPS: usize = 20;

fn main() {
    let (src, tgt) = (IrVersion::V13_0, IrVersion::V3_6);
    let baseline = env_u64("SIRO_IR_ALLOC_BASELINE", PRE_ARENA_BASELINE);
    let min_ratio = env_f64("SIRO_IR_ALLOC_MIN_RATIO", 2.0);
    println!(
        "ir_alloc: pair {src}->{tgt}, {REPS} reps, gate >= {min_ratio:.1}x fewer allocator calls"
    );

    let tests = oracle_corpus(src, tgt);
    let outcome = TranslatorCache::get_or_synthesize(SynthesisConfig::new(src, tgt), &tests)
        .expect("synthesis must succeed for the flagship pair");
    let compiled = StreamBackend
        .lower(&outcome.translator)
        .expect("flagship translator must lower");
    // Largest Tab. 4 workload module, serialized once: the request text.
    let mut largest = None;
    for spec in siro_workloads::table4_projects() {
        let module = siro_workloads::compile_project(&spec, siro_workloads::Frontend::High, src);
        if largest
            .as_ref()
            .map(|(_, m): &(String, siro_ir::Module)| module.inst_count() > m.inst_count())
            .unwrap_or(true)
        {
            largest = Some((spec.name.to_string(), module));
        }
    }
    let (mod_name, module) = largest.expect("at least one workload project");
    let insts = module.inst_count();
    let request_text = write::write_module(&module);

    // Warmup: allocator state, synthesis caches, thread-local slabs.
    for _ in 0..3 {
        let m = parse::parse_module(&request_text).expect("workload parses");
        let t = compiled.translate_module_owned(m).expect("translates");
        std::hint::black_box(write::write_module(&t));
    }

    let mut parse_counts = Vec::with_capacity(REPS);
    let mut translate_counts = Vec::with_capacity(REPS);
    let mut serialize_counts = Vec::with_capacity(REPS);
    let mut request_times = Vec::with_capacity(REPS);
    let mut translate_times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t_req = Instant::now();
        let (parsed, parse_allocs) = counted(|| parse::parse_module(&request_text));
        let parsed = parsed.expect("workload parses");
        let t_tr = Instant::now();
        let (translated, translate_allocs) =
            counted(|| compiled.translate_module_owned(parsed).expect("translates"));
        translate_times.push(t_tr.elapsed().as_micros() as u64);
        let (text, serialize_allocs) = counted(|| write::write_module(&translated));
        request_times.push(t_req.elapsed().as_micros() as u64);
        std::hint::black_box(text);
        drop(translated);
        parse_counts.push(parse_allocs);
        translate_counts.push(translate_allocs);
        serialize_counts.push(serialize_allocs);
    }

    // Steady state: the minimum rep (first reps may still grow caches).
    let parse_allocs = *parse_counts.iter().min().unwrap();
    let translate_allocs = *translate_counts.iter().min().unwrap();
    let serialize_allocs = *serialize_counts.iter().min().unwrap();
    let total = parse_allocs + translate_allocs + serialize_allocs;
    let baseline = if baseline == 0 { total } else { baseline };
    let reduction = baseline as f64 / total.max(1) as f64;
    let pass = reduction >= min_ratio;

    println!(
        "  {mod_name} ({insts} insts): parse {parse_allocs} + translate {translate_allocs} + serialize {serialize_allocs} = {total} allocs/request"
    );
    println!(
        "  baseline (pre-arena) {baseline} allocs/request -> reduction {reduction:.2}x (gate {min_ratio:.1}x)"
    );

    let record = IrAllocRecord {
        source: src,
        target: tgt,
        module: mod_name,
        insts,
        iters: REPS as u64,
        parse_allocs,
        translate_allocs,
        serialize_allocs,
        total_allocs: total,
        baseline_allocs: baseline,
        reduction,
        min_reduction: min_ratio,
        request_p50_us: median(request_times),
        translate_p50_us: median(translate_times),
        pass,
    };
    match write_ir_alloc_json(&record) {
        Ok(path) => println!("  wrote {}", path.display()),
        Err(e) => {
            eprintln!("ir_alloc: FAIL could not write JSON: {e}");
            std::process::exit(1);
        }
    }
    if !pass {
        eprintln!("ir_alloc: FAIL (reduction {reduction:.2}x < {min_ratio:.1}x)");
        std::process::exit(1);
    }
    println!("ir_alloc: PASS");
}
