//! Cross-dialect gate: every in-catalog WIR pair and every SIRO↔WIR
//! bridge anchor must synthesize and round-trip byte-identically warm.
//!
//! Two phases:
//!
//! 1. **WIR matrix** — for each of the `N·(N-1)` ordered WIR pairs,
//!    synthesize the translator through the production memoized path
//!    (cold timing), push a universal-subset corpus through the
//!    `from → to → from` round trip (gate: byte-identical to the source
//!    on every module), then re-translate warm (gate: warm bytes equal
//!    cold bytes; the pair must be Hot in the process cache).
//! 2. **bridge anchors** — for each `BRIDGE_ANCHORS` entry, validate the
//!    bridge certificate cold, push a raisable corpus through
//!    raise → lower (gate: the `XBehaviour` bucket survives both legs on
//!    every module), then repeat one full round trip warm (gate: bytes
//!    identical to the cold pass; the certificate must be hot).
//!
//! Dumps `BENCH_cross_dialect.json` (`siro-bench/cross-dialect-v1`, path
//! overridable via `SIRO_BENCH_CROSS_JSON`) and exits non-zero when a
//! gate fails.

use std::time::Instant;

use siro_bench::perf;
use siro_synth::{
    bridge_cached, bridge_is_hot, lower_module, raise_module, reset_bridge_cache, reset_wir_cache,
    siro_behaviour, wir_behaviour, wir_pair_is_hot, wir_translator_cached, BRIDGE_ANCHORS,
};
use siro_wir::{generate_straightline, write_module, WirVersion};

const CORPUS: u64 = 24;

fn micros(d: std::time::Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Universal-subset corpus: straight-line modules generated at the base
/// version (no `select`/`local.tee`/`br_table`), re-stamped to `v` — the
/// subset every WIR version can express, so round trips must be exact.
fn universal_corpus(v: WirVersion) -> Vec<siro_wir::WirModule> {
    (0..CORPUS)
        .map(|seed| {
            let mut m = generate_straightline(seed, WirVersion::W1_0);
            m.version = v;
            m
        })
        .collect()
}

fn main() {
    reset_wir_cache();
    reset_bridge_cache();
    let catalog = WirVersion::CATALOG;
    siro_bench::banner(&format!(
        "cross_dialect: {} WIR pairs, {} bridge anchors",
        catalog.len() * (catalog.len() - 1),
        BRIDGE_ANCHORS.len()
    ));

    // First-synthesis latency per ordered pair: each pair's forward
    // translator also serves as a later pair's return leg, so cold times
    // are captured once here no matter which pair first triggers them.
    let mut cold_times: std::collections::HashMap<(WirVersion, WirVersion), u64> =
        std::collections::HashMap::new();
    fn acquire(
        cold_times: &mut std::collections::HashMap<(WirVersion, WirVersion), u64>,
        a: WirVersion,
        b: WirVersion,
    ) -> std::sync::Arc<siro_synth::WirOutcome> {
        let t = Instant::now();
        let (outcome, synthesized) =
            wir_translator_cached(a, b).unwrap_or_else(|e| panic!("synthesize {a}->{b}: {e}"));
        if synthesized {
            cold_times.insert((a, b), micros(t.elapsed()));
        }
        outcome
    }

    let mut pass = true;
    let mut wir_pairs = Vec::new();
    for &a in &catalog {
        for &b in &catalog {
            if a == b {
                continue;
            }
            let was_hot = wir_pair_is_hot(a, b);
            let fwd = acquire(&mut cold_times, a, b);
            let back = acquire(&mut cold_times, b, a);
            let synth_cold_us = cold_times.get(&(a, b)).copied().unwrap_or(0);

            let corpus = universal_corpus(a);
            let mut roundtrip_identical = 0usize;
            let mut cold_bytes = Vec::new();
            for m in &corpus {
                let t = fwd
                    .translator
                    .translate_module(m)
                    .unwrap_or_else(|e| panic!("{a}->{b}: {e}"));
                let rt = back
                    .translator
                    .translate_module(&t)
                    .unwrap_or_else(|e| panic!("{b}->{a}: {e}"));
                if write_module(&rt) == write_module(m) {
                    roundtrip_identical += 1;
                }
                cold_bytes.push(write_module(&t));
            }

            // Warm pass: memoized acquisition + re-translate, byte-compared
            // against the cold outputs.
            let t_warm = Instant::now();
            let (fwd2, resynth) = wir_translator_cached(a, b).expect("warm acquire");
            let warm_identical = !resynth
                && corpus.iter().zip(&cold_bytes).all(|(m, cold)| {
                    fwd2.translator
                        .translate_module(m)
                        .is_ok_and(|t| write_module(&t) == *cold)
                });
            let warm_us = micros(t_warm.elapsed()) / CORPUS.max(1);

            let ok = roundtrip_identical == corpus.len() && warm_identical && wir_pair_is_hot(a, b);
            pass &= ok;
            println!(
                "wir {a} -> {b}: cold {}us{}, warm {}us/module, {}/{} round trips exact{}",
                synth_cold_us,
                if was_hot { " (pre-hot)" } else { "" },
                warm_us,
                roundtrip_identical,
                corpus.len(),
                if ok { "" } else { "  GATE FAILED" }
            );
            wir_pairs.push(perf::WirPairRecord {
                from: a.to_string(),
                to: b.to_string(),
                synth_cold_us,
                warm_us,
                corpus: corpus.len(),
                roundtrip_identical,
                warm_identical,
            });
        }
    }

    let mut cross_pairs = Vec::new();
    for (siro, wir) in BRIDGE_ANCHORS {
        let t_cold = Instant::now();
        bridge_cached(siro, wir).unwrap_or_else(|e| panic!("bridge {siro}<->wir{wir}: {e}"));
        let bridge_cold_us = micros(t_cold.elapsed());

        let mut buckets_preserved = 0usize;
        let mut corpus_used = 0usize;
        let mut cold_rt: Option<(siro_wir::WirModule, String)> = None;
        for seed in 0..CORPUS {
            let w = generate_straightline(seed, wir);
            let want = wir_behaviour(&w);
            let Ok(s) = raise_module(&w, siro) else {
                continue; // outside the raisable subset: not corpus
            };
            corpus_used += 1;
            let lowered = lower_module(&s, wir)
                .unwrap_or_else(|e| panic!("lower {siro}->wir{wir} seed {seed}: {e}"));
            if siro_behaviour(&s) == want && wir_behaviour(&lowered) == want {
                buckets_preserved += 1;
            }
            if cold_rt.is_none() {
                cold_rt = Some((w, write_module(&lowered)));
            }
        }

        // Warm pass over one representative module: the certificate is hot
        // and the round trip reproduces the cold bytes exactly.
        let (w, cold_bytes) = cold_rt.expect("raisable corpus is non-empty");
        let t_warm = Instant::now();
        let (_, revalidated) = bridge_cached(siro, wir).expect("warm certificate");
        let warm_bytes = write_module(
            &lower_module(&raise_module(&w, siro).expect("warm raise"), wir).expect("warm lower"),
        );
        let warm_us = micros(t_warm.elapsed());
        let warm_identical = !revalidated && warm_bytes == cold_bytes && bridge_is_hot(siro, wir);

        let ok = buckets_preserved == corpus_used && corpus_used > 0 && warm_identical;
        pass &= ok;
        println!(
            "bridge {siro} <-> wir{wir}: cold {}us, warm {}us, {}/{} buckets preserved{}",
            bridge_cold_us,
            warm_us,
            buckets_preserved,
            corpus_used,
            if ok { "" } else { "  GATE FAILED" }
        );
        cross_pairs.push(perf::CrossPairRecord {
            siro: siro.to_string(),
            wir: wir.to_string(),
            bridge_cold_us,
            warm_us,
            corpus: corpus_used,
            buckets_preserved,
            warm_identical,
        });
    }

    let record = perf::CrossDialectRecord {
        wir_pairs,
        cross_pairs,
        pass,
    };
    match perf::write_cross_dialect_json(&record) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("writing BENCH_cross_dialect.json: {e}");
            std::process::exit(1);
        }
    }
    if !pass {
        eprintln!("cross_dialect gate FAILED");
        std::process::exit(1);
    }
    println!(
        "cross_dialect gate passed: {} WIR pairs + {} anchors, all warm round trips byte-identical",
        catalog.len() * (catalog.len() - 1),
        BRIDGE_ANCHORS.len()
    );
}
