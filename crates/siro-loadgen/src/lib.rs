//! # siro-loadgen — open-loop load generation for `siro-serve`
//!
//! Closed-loop clients (send, wait, send again) hide overload: when the
//! server slows down, the clients slow down with it, the offered rate
//! collapses, and the measured latency stays flattering. This crate
//! drives the daemon **open-loop** instead: requests depart on a fixed
//! arrival schedule derived from a target rate, whether or not earlier
//! responses have come back, and every latency is measured from the
//! request's *scheduled* arrival time — so sender lag (coordinated
//! omission) counts against the server rather than being silently
//! forgiven.
//!
//! A [`sweep`] walks a list of target rates, runs one fixed-duration
//! open-loop step per rate ([`run_rate`]), and reports the *max
//! sustained RPS*: the highest swept rate such that that step **and
//! every step before it** met the latency SLO with zero errors.
//! "Sustained" is prefix-monotone — sweep rates in ascending order; a
//! server that collapses at a low rate and happens to recover for one
//! higher step has not sustained the higher rate. `siro loadgen` (the
//! CLI) and the `loadtest` bench in `siro-bench` are thin wrappers over
//! this; the methodology is documented in `docs/SERVING.md`
//! § "siro-loadgen — open-loop load generation".
//!
//! The schedule is partitioned round-robin across N connections, each
//! owned by a sender thread (writes frames at their scheduled times)
//! and a reader thread (drains responses and records completions), so a
//! slow response never delays an unrelated departure.

#![deny(missing_docs)]

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

use siro_ir::{write, IrVersion};
use siro_serve::protocol::{read_frame, FrameRead, Request, Response};
use siro_serve::TranslateMode;

/// One request body in the workload mix.
#[derive(Debug, Clone)]
pub struct Payload {
    /// Source IR version.
    pub source: IrVersion,
    /// Target IR version.
    pub target: IrVersion,
    /// Translator mode to request.
    pub mode: TranslateMode,
    /// The module text shipped on the wire.
    pub text: String,
}

/// Builds one payload per version pair from the shared test corpus
/// (each pair's first usable case), ready for [`LoadgenConfig::payloads`].
///
/// # Panics
///
/// Panics if a pair has no usable corpus case — every catalog pair does.
pub fn corpus_payloads(mix: &[(IrVersion, IrVersion)], mode: TranslateMode) -> Vec<Payload> {
    mix.iter()
        .map(|&(source, target)| {
            let case = siro_testcases::full_corpus()
                .into_iter()
                .find(|c| c.usable_for_pair(source, target))
                .unwrap_or_else(|| panic!("no corpus case usable for {source} -> {target}"));
            Payload {
                source,
                target,
                mode,
                text: write::write_module(&case.build(source)),
            }
        })
        .collect()
}

/// Everything one load-generation run needs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The daemon to drive.
    pub addr: SocketAddr,
    /// Client connections the arrival schedule is partitioned across.
    pub connections: usize,
    /// Wall-clock length of each rate step.
    pub duration: Duration,
    /// Target arrival rates (requests/second) to sweep, in order.
    pub rates_rps: Vec<f64>,
    /// The latency SLO: a rate step passes only if its p99 (measured
    /// from scheduled arrival) stays at or below this.
    pub slo_p99_ms: f64,
    /// The workload mix; requests cycle through it round-robin.
    pub payloads: Vec<Payload>,
    /// TCP connect timeout per connection.
    pub connect_timeout: Duration,
    /// When true, every payload is sent once (and awaited) before the
    /// sweep so cold synthesis happens outside the measured window.
    pub warmup: bool,
    /// How many times a rate step that missed the SLO is re-run before
    /// its result stands (the last attempt is kept). One retry forgives
    /// one-off interference on a noisy host — a cross-container
    /// scheduling hiccup can blow a single step's p99 — without
    /// forgiving sustained overload, which misses the re-run too.
    pub step_retries: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 4799)),
            connections: 8,
            duration: Duration::from_secs(2),
            rates_rps: vec![100.0, 200.0, 400.0, 800.0],
            slo_p99_ms: 50.0,
            payloads: Vec::new(),
            connect_timeout: Duration::from_secs(5),
            warmup: true,
            step_retries: 1,
        }
    }
}

/// What one open-loop rate step observed.
#[derive(Debug, Clone, Copy)]
pub struct RateReport {
    /// The arrival rate the schedule targeted, requests/second.
    pub target_rps: f64,
    /// Requests the schedule offered (departures planned).
    pub offered: u64,
    /// Successful responses received.
    pub completed: u64,
    /// Error responses, transport failures, and requests still
    /// unanswered when the step's grace window closed.
    pub errors: u64,
    /// Requests rejected by admission control (`Throttled`).
    pub throttled: u64,
    /// Completions per second of wall-clock step time.
    pub achieved_rps: f64,
    /// Median latency from scheduled arrival, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, milliseconds.
    pub p999_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// True when every offered request completed successfully and the
    /// p99 stayed within the SLO.
    pub slo_met: bool,
}

/// A full rate sweep against one server.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The SLO the sweep was judged against.
    pub slo_p99_ms: f64,
    /// One entry per swept rate, in sweep order.
    pub rates: Vec<RateReport>,
    /// The highest target rate such that its step and every earlier
    /// step in the sweep met the SLO (prefix-monotone); `0.0` when the
    /// first step already missed.
    pub max_sustained_rps: f64,
}

/// The q-quantile (`0.0 ..= 1.0`) of an ascending-sorted latency slice,
/// using the nearest-rank method; `0.0` for an empty slice.
pub fn percentile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The per-connection slice of the global arrival schedule: connection
/// `conn` of `connections` departs at offsets `conn`, `conn +
/// connections`, … of the uniform `total`-request schedule.
pub fn connection_offsets(
    total: usize,
    connections: usize,
    interval: Duration,
    conn: usize,
) -> Vec<Duration> {
    (conn..total)
        .step_by(connections.max(1))
        .map(|k| interval * k as u32)
        .collect()
}

struct ConnOutcome {
    completed: u64,
    errors: u64,
    throttled: u64,
    latencies_ms: Vec<f64>,
}

/// Runs one open-loop step at `rate_rps` for `config.duration`.
///
/// # Errors
///
/// Fails only on setup problems (connecting the client sockets);
/// in-flight transport failures are folded into
/// [`RateReport::errors`].
pub fn run_rate(config: &LoadgenConfig, rate_rps: f64) -> Result<RateReport, String> {
    assert!(rate_rps > 0.0, "arrival rate must be positive");
    assert!(!config.payloads.is_empty(), "payload mix must be non-empty");
    let interval = Duration::from_secs_f64(1.0 / rate_rps);
    let total = ((config.duration.as_secs_f64() * rate_rps) as usize).max(1);
    let connections = config.connections.max(1);

    // Connect everything first; the schedule starts once all sockets are
    // up so connect time never eats into the measured window.
    let mut socks = Vec::with_capacity(connections);
    for i in 0..connections {
        let stream = TcpStream::connect_timeout(&config.addr, config.connect_timeout)
            .map_err(|e| format!("connect {i} to {}: {e}", config.addr))?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .map_err(|e| e.to_string())?;
        socks.push(stream);
    }

    // The schedule clock starts only once every sender and reader thread
    // is up: spawning 2×connections threads takes real time, and letting
    // arrivals come due during the spawn storm would book thread-start
    // lag as server latency.
    let ready = Arc::new(Barrier::new(2 * connections + 1));
    let start_cell: Arc<OnceLock<Instant>> = Arc::new(OnceLock::new());
    let grace = Duration::from_secs(10);
    let mut pairs = Vec::new();
    for (conn, stream) in socks.into_iter().enumerate() {
        let offsets = Arc::new(connection_offsets(total, connections, interval, conn));
        // Frames are pre-encoded so the timed sender loop is a clock
        // wait plus a write.
        let frames: Vec<Vec<u8>> = offsets
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let p = &config.payloads[(conn + i * connections) % config.payloads.len()];
                let body = Request::Translate {
                    source: p.source.into(),
                    target: p.target.into(),
                    mode: p.mode,
                    text: p.text.clone(),
                }
                .encode(i as u64 + 1);
                let mut frame = (body.len() as u32).to_be_bytes().to_vec();
                frame.extend_from_slice(&body);
                frame
            })
            .collect();

        let sent = Arc::new(AtomicUsize::new(0));
        let sender_done = Arc::new(AtomicBool::new(false));
        let reader_stream = stream.try_clone().map_err(|e| e.to_string())?;

        let sender = {
            let offsets = Arc::clone(&offsets);
            let sent = Arc::clone(&sent);
            let sender_done = Arc::clone(&sender_done);
            let ready = Arc::clone(&ready);
            let start_cell = Arc::clone(&start_cell);
            let mut stream = stream;
            std::thread::spawn(move || {
                ready.wait();
                ready.wait();
                let start = *start_cell.get().expect("start published before go");
                for (i, off) in offsets.iter().enumerate() {
                    let due = start + *off;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    if stream.write_all(&frames[i]).is_err() {
                        break;
                    }
                    sent.store(i + 1, Ordering::Release);
                }
                sender_done.store(true, Ordering::Release);
            })
        };

        let reader = {
            let offsets = Arc::clone(&offsets);
            let sent = Arc::clone(&sent);
            let sender_done = Arc::clone(&sender_done);
            let ready = Arc::clone(&ready);
            let start_cell = Arc::clone(&start_cell);
            let duration = config.duration;
            let mut stream = reader_stream;
            std::thread::spawn(move || {
                ready.wait();
                ready.wait();
                let start = *start_cell.get().expect("start published before go");
                let deadline = start + duration + grace;
                let mut out = ConnOutcome {
                    completed: 0,
                    errors: 0,
                    throttled: 0,
                    latencies_ms: Vec::with_capacity(offsets.len()),
                };
                let mut received = 0usize;
                loop {
                    if sender_done.load(Ordering::Acquire)
                        && received >= sent.load(Ordering::Acquire)
                    {
                        break;
                    }
                    if Instant::now() >= deadline {
                        break;
                    }
                    match read_frame(&mut stream) {
                        Ok(FrameRead::Payload(p)) => {
                            received += 1;
                            let Ok((id, response)) = Response::decode(&p) else {
                                out.errors += 1;
                                continue;
                            };
                            let index = (id as usize).saturating_sub(1);
                            match response {
                                Response::TranslateOk { .. } => {
                                    out.completed += 1;
                                    if let Some(off) = offsets.get(index) {
                                        let scheduled = start + *off;
                                        let lat =
                                            Instant::now().saturating_duration_since(scheduled);
                                        out.latencies_ms.push(lat.as_secs_f64() * 1e3);
                                    }
                                }
                                Response::Throttled { .. } => out.throttled += 1,
                                _ => out.errors += 1,
                            }
                        }
                        Ok(FrameRead::Idle) => continue,
                        Ok(FrameRead::Eof) | Err(_) => break,
                    }
                }
                out
            })
        };
        pairs.push((sender, reader));
    }

    // First wait: every thread is spawned and parked. Publish the start
    // instant, then release everyone together on the second wait.
    ready.wait();
    start_cell
        .set(Instant::now() + Duration::from_millis(20))
        .expect("start set once");
    ready.wait();

    let mut latencies = Vec::with_capacity(total);
    let (mut completed, mut errors, mut throttled) = (0u64, 0u64, 0u64);
    for (sender, reader) in pairs {
        sender.join().map_err(|_| "sender thread panicked")?;
        let out = reader.join().map_err(|_| "reader thread panicked")?;
        completed += out.completed;
        errors += out.errors;
        throttled += out.throttled;
        latencies.extend(out.latencies_ms);
    }
    let offered = total as u64;
    // Whatever never came back before the grace window closed is a loss.
    errors += offered.saturating_sub(completed + throttled + errors);
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let p99 = percentile_ms(&latencies, 0.99);
    Ok(RateReport {
        target_rps: rate_rps,
        offered,
        completed,
        errors,
        throttled,
        achieved_rps: completed as f64 / config.duration.as_secs_f64(),
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: p99,
        p999_ms: percentile_ms(&latencies, 0.999),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        slo_met: completed == offered && errors == 0 && throttled == 0 && p99 <= config.slo_p99_ms,
    })
}

/// Sends every payload once over one connection and waits for the
/// responses, so cold synthesis lands outside the measured steps.
///
/// # Errors
///
/// Propagates connect/translate failures — a warmup that cannot
/// complete means the sweep would only measure noise.
pub fn warm_pairs(config: &LoadgenConfig) -> Result<(), String> {
    let mut client = siro_serve::Client::connect(config.addr, config.connect_timeout)
        .map_err(|e| format!("warmup connect: {e}"))?;
    for p in &config.payloads {
        client
            .translate(p.source, p.target, p.mode, p.text.clone())
            .map_err(|e| format!("warmup {} -> {}: {e}", p.source, p.target))?;
    }
    Ok(())
}

/// Sweeps every configured rate and finds the max sustained RPS.
///
/// # Errors
///
/// Propagates warmup and per-step setup failures.
pub fn sweep(config: &LoadgenConfig) -> Result<LoadReport, String> {
    if config.warmup {
        warm_pairs(config)?;
    }
    let mut rates = Vec::with_capacity(config.rates_rps.len());
    for &rate in &config.rates_rps {
        let mut step = run_rate(config, rate)?;
        for _ in 0..config.step_retries {
            if step.slo_met {
                break;
            }
            step = run_rate(config, rate)?;
        }
        rates.push(step);
    }
    // "Sustained" is prefix-monotone: a server that blows the SLO at a
    // low rate has not sustained any higher rate, even if a later step
    // happens to squeak through — metastable engines (thread-per-
    // connection under scheduler pressure) produce exactly that pattern.
    let max_sustained_rps = rates
        .iter()
        .take_while(|r| r.slo_met)
        .map(|r| r.target_rps)
        .fold(0.0, f64::max);
    Ok(LoadReport {
        slo_p99_ms: config.slo_p99_ms,
        rates,
        max_sustained_rps,
    })
}

/// One engine's sweep, labelled for the old-vs-new comparison JSON.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Engine label (`"event"` / `"threaded"`).
    pub engine: String,
    /// Worker threads the server ran with.
    pub workers: usize,
    /// Client connections the schedule was partitioned across.
    pub connections: usize,
    /// The sweep itself.
    pub report: LoadReport,
}

/// Renders the `siro-bench/loadtest-v1` JSON document for a set of
/// engine sweeps (hand-rolled like the rest of `siro-bench`: flat,
/// stable key order, no JSON dependency).
pub fn render_loadtest_json(runs: &[EngineRun]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"siro-bench/loadtest-v1\",");
    let ratio = {
        let max_of = |name: &str| {
            runs.iter()
                .find(|r| r.engine == name)
                .map(|r| r.report.max_sustained_rps)
        };
        match (max_of("event"), max_of("threaded")) {
            (Some(e), Some(t)) if t > 0.0 => Some(e / t),
            _ => None,
        }
    };
    match ratio {
        Some(r) => {
            let _ = writeln!(out, "  \"ratio_event_over_threaded\": {r:.3},");
        }
        None => {
            let _ = writeln!(out, "  \"ratio_event_over_threaded\": null,");
        }
    }
    out.push_str("  \"engines\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"engine\": \"{}\",", run.engine);
        let _ = writeln!(out, "      \"workers\": {},", run.workers);
        let _ = writeln!(out, "      \"connections\": {},", run.connections);
        let _ = writeln!(out, "      \"slo_p99_ms\": {:.3},", run.report.slo_p99_ms);
        let _ = writeln!(
            out,
            "      \"max_sustained_rps\": {:.3},",
            run.report.max_sustained_rps
        );
        out.push_str("      \"rates\": [\n");
        for (j, r) in run.report.rates.iter().enumerate() {
            out.push_str("        { ");
            let _ = write!(
                out,
                "\"target_rps\": {:.3}, \"offered\": {}, \"completed\": {}, \
                 \"errors\": {}, \"throttled\": {}, \"achieved_rps\": {:.3}, \
                 \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \
                 \"max_ms\": {:.3}, \"slo_met\": {}",
                r.target_rps,
                r.offered,
                r.completed,
                r.errors,
                r.throttled,
                r.achieved_rps,
                r.p50_ms,
                r.p99_ms,
                r.p999_ms,
                r.max_ms,
                r.slo_met
            );
            out.push_str(" }");
            out.push_str(if j + 1 < run.report.rates.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str("    }");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable sweep table printed by `siro loadgen`.
pub fn render_table(report: &LoadReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}  slo",
        "target_rps",
        "offered",
        "done",
        "errs",
        "throttled",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "max_ms"
    );
    for r in &report.rates {
        let _ = writeln!(
            out,
            "{:>10.1} {:>8} {:>8} {:>7} {:>9} {:>9.2} {:>9.2} {:>9.2} {:>9.2}  {}",
            r.target_rps,
            r.offered,
            r.completed,
            r.errors,
            r.throttled,
            r.p50_ms,
            r.p99_ms,
            r.p999_ms,
            r.max_ms,
            if r.slo_met { "ok" } else { "MISS" }
        );
    }
    let _ = writeln!(
        out,
        "max sustained rate at p99 <= {:.1} ms: {:.1} req/s",
        report.slo_p99_ms, report.max_sustained_rps
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_ms(&v, 0.50), 50.0);
        assert_eq!(percentile_ms(&v, 0.99), 99.0);
        assert_eq!(percentile_ms(&v, 0.999), 100.0);
        assert_eq!(percentile_ms(&v, 1.0), 100.0);
        assert_eq!(percentile_ms(&[], 0.99), 0.0);
        assert_eq!(percentile_ms(&[7.5], 0.5), 7.5);
    }

    #[test]
    fn schedule_partition_covers_every_arrival_exactly_once() {
        let interval = Duration::from_millis(10);
        let (total, connections) = (103, 8);
        let mut all: Vec<Duration> = (0..connections)
            .flat_map(|c| connection_offsets(total, connections, interval, c))
            .collect();
        assert_eq!(all.len(), total);
        all.sort();
        for (k, off) in all.iter().enumerate() {
            assert_eq!(*off, interval * k as u32, "arrival {k}");
        }
    }

    #[test]
    fn corpus_payloads_cover_the_mix() {
        let mix = [
            (IrVersion::V13_0, IrVersion::V3_6),
            (IrVersion::V12_0, IrVersion::V3_0),
        ];
        let payloads = corpus_payloads(&mix, TranslateMode::Reference);
        assert_eq!(payloads.len(), 2);
        for (p, (src, tgt)) in payloads.iter().zip(mix) {
            assert_eq!((p.source, p.target), (src, tgt));
            assert!(p.text.contains("IR version"), "payload carries module text");
        }
    }

    #[test]
    fn loadtest_json_names_both_engines_and_the_ratio() {
        let report = LoadReport {
            slo_p99_ms: 50.0,
            rates: vec![RateReport {
                target_rps: 100.0,
                offered: 200,
                completed: 200,
                errors: 0,
                throttled: 0,
                achieved_rps: 100.0,
                p50_ms: 1.0,
                p99_ms: 2.0,
                p999_ms: 3.0,
                max_ms: 4.0,
                slo_met: true,
            }],
            max_sustained_rps: 100.0,
        };
        let runs = [
            EngineRun {
                engine: "event".into(),
                workers: 4,
                connections: 8,
                report: report.clone(),
            },
            EngineRun {
                engine: "threaded".into(),
                workers: 4,
                connections: 8,
                report: LoadReport {
                    max_sustained_rps: 50.0,
                    ..report
                },
            },
        ];
        let json = render_loadtest_json(&runs);
        assert!(json.contains("\"schema\": \"siro-bench/loadtest-v1\""));
        assert!(json.contains("\"engine\": \"event\""));
        assert!(json.contains("\"engine\": \"threaded\""));
        assert!(json.contains("\"ratio_event_over_threaded\": 2.000"));
        assert!(json.contains("\"slo_met\": true"));
    }
}
