//! Smoke test: a short open-loop step against a real in-process server
//! completes every scheduled request with zero protocol errors.

use std::time::Duration;

use siro_ir::IrVersion;
use siro_loadgen::{corpus_payloads, sweep, LoadgenConfig};
use siro_serve::{ServeConfig, TranslateMode};

#[test]
fn short_open_loop_step_completes_cleanly() {
    let handle = siro_serve::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: Some(2),
        queue_capacity: 64,
        read_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    })
    .expect("bind loopback server");

    let config = LoadgenConfig {
        addr: handle.addr(),
        connections: 4,
        duration: Duration::from_millis(500),
        rates_rps: vec![100.0],
        slo_p99_ms: 5_000.0,
        payloads: corpus_payloads(
            &[(IrVersion::V13_0, IrVersion::V3_6)],
            TranslateMode::Reference,
        ),
        connect_timeout: Duration::from_secs(5),
        warmup: true,
        step_retries: 0,
    };
    let report = sweep(&config).expect("sweep");
    assert_eq!(report.rates.len(), 1);
    let r = &report.rates[0];
    assert_eq!(r.offered, 50, "0.5 s at 100 req/s schedules 50 arrivals");
    assert_eq!(r.completed, r.offered, "every scheduled request completes");
    assert_eq!(r.errors, 0);
    assert_eq!(r.throttled, 0);
    assert!(r.slo_met, "p99 {} ms within generous SLO", r.p99_ms);
    assert!(report.max_sustained_rps >= 100.0);
    handle.shutdown();
}
