//! Registry-wide invariants across every catalog version pair, plus a
//! smoke execution of every getter against every corpus instruction.

use siro_api::{ApiKind, ApiRegistry, ApiType, ApiValue, Side, TranslationCtx};
use siro_ir::{IrVersion, Opcode};

#[test]
fn builders_exist_exactly_for_target_kinds() {
    for &src in &IrVersion::CATALOG {
        for &tgt in &IrVersion::CATALOG {
            let reg = ApiRegistry::for_pair(src, tgt);
            for op in Opcode::ALL {
                let builders = reg.builders_for(op);
                if tgt.supports(op) {
                    assert!(
                        !builders.is_empty(),
                        "{src}->{tgt}: no builder for supported `{op}`"
                    );
                } else {
                    assert!(
                        builders.is_empty(),
                        "{src}->{tgt}: builder for unsupported `{op}`"
                    );
                }
            }
        }
    }
}

#[test]
fn getters_first_param_is_a_source_instruction_of_a_supported_kind() {
    let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
    for (_, f) in reg.iter() {
        if f.kind != ApiKind::Getter {
            continue;
        }
        match f.params.first() {
            Some(ApiType::Inst(op, Side::Source)) => {
                assert!(
                    IrVersion::V13_0.supports(*op),
                    "getter {} on unsupported {op}",
                    f.name
                );
            }
            other => panic!("getter {} has first param {other:?}", f.name),
        }
    }
}

#[test]
fn predicate_getters_return_bool_or_enums() {
    for &src in &IrVersion::CATALOG {
        let reg = ApiRegistry::for_pair(src, IrVersion::V3_6);
        for (_, f) in reg.iter() {
            if f.is_predicate {
                assert!(
                    matches!(
                        f.ret,
                        ApiType::Bool
                            | ApiType::IntPred
                            | ApiType::FloatPred
                            | ApiType::RmwOp
                            | ApiType::Ordering
                    ),
                    "predicate {} returns {}",
                    f.name,
                    f.ret
                );
            }
        }
    }
}

#[test]
fn every_common_kind_has_generic_getters() {
    let reg = ApiRegistry::for_pair(IrVersion::V17_0, IrVersion::V3_0);
    for op in IrVersion::V17_0.common_instructions(IrVersion::V3_0) {
        assert!(
            reg.find_for_kind("get_result_type", op).is_some(),
            "missing get_result_type for {op}"
        );
        if siro_api::operand_index_bound(op) > 0 {
            assert!(
                reg.find_for_kind("get_operand", op).is_some(),
                "missing get_operand for {op}"
            );
        }
    }
}

/// Every getter runs without panicking on every instruction of its kind in
/// the whole corpus — failures are allowed (wrong sub-kind etc.), panics
/// are not.
#[test]
fn getters_never_panic_on_corpus_instructions() {
    let src = IrVersion::V17_0;
    let reg = ApiRegistry::for_pair(src, IrVersion::V12_0);
    for case in siro_testcases::full_corpus() {
        let module = case.build(src);
        let mut ctx = TranslationCtx::new(&module, IrVersion::V12_0);
        for fid in module.func_ids() {
            if module.func(fid).is_external {
                continue;
            }
            let tfid = ctx.clone_signature(fid);
            ctx.begin_function(fid, tfid);
            let func = module.func(fid);
            for (i, inst) in func.insts.iter().enumerate() {
                let iid = siro_ir::InstId::new(i as u32);
                for (api_id, f) in reg.iter() {
                    if f.kind != ApiKind::Getter {
                        continue;
                    }
                    let Some(ApiType::Inst(op, _)) = f.params.first() else {
                        continue;
                    };
                    if *op != inst.opcode {
                        continue;
                    }
                    // Try every index argument in range for indexed getters.
                    if f.params.len() == 2 {
                        for idx in 0..3u32 {
                            let _ = reg
                                .get(api_id)
                                .call(&mut ctx, &[ApiValue::SrcInst(iid), ApiValue::U32(idx)]);
                        }
                    } else {
                        let _ = reg.get(api_id).call(&mut ctx, &[ApiValue::SrcInst(iid)]);
                    }
                }
            }
        }
    }
}

#[test]
fn registry_sizes_grow_with_version_richness() {
    // More instructions and explicit-type builders mean more components.
    let small = ApiRegistry::for_pair(IrVersion::V3_0, IrVersion::V3_0).len();
    let large = ApiRegistry::for_pair(IrVersion::V17_0, IrVersion::V17_0).len();
    assert!(large > small, "{large} <= {small}");
}

#[test]
fn subkind_profile_is_deterministic_and_keyed_by_name() {
    let src = IrVersion::V13_0;
    let reg = ApiRegistry::for_pair(src, IrVersion::V3_6);
    let case = siro_testcases::full_corpus()
        .into_iter()
        .find(|c| c.name == "br_cond_true")
        .unwrap();
    let module = case.build(src);
    let mut ctx = TranslationCtx::new(&module, IrVersion::V3_6);
    let fid = module.func_by_name("main").unwrap();
    let t = ctx.clone_signature(fid);
    ctx.begin_function(fid, t);
    let func = module.func(fid);
    for (i, inst) in func.insts.iter().enumerate() {
        let iid = siro_ir::InstId::new(i as u32);
        let a = reg.subkind_profile(&mut ctx, inst.opcode, iid).unwrap();
        let b = reg.subkind_profile(&mut ctx, inst.opcode, iid).unwrap();
        assert_eq!(a, b);
        for key in a.keys() {
            assert!(key.starts_with("is_"), "predicate key {key}");
        }
    }
}
