//! The dialect-generic registry surface.
//!
//! The synthesizer's generality story rests on one abstraction: *any* IR
//! family that can describe its versioned component library — getters,
//! builders, their names and typed signatures — can be synthesized over.
//! [`DialectRegistry`] is that description. [`ApiRegistry`] (the Siro
//! family) and `siro_wir::WirRegistry` (the stack-machine family) both
//! implement it, and the cross-dialect conformance goldens byte-pin each
//! implementation's [`DialectRegistry::describe`] dump so API-surface
//! drift is caught the same way text-format drift is.

use crate::registry::{ApiKind, ApiRegistry};

/// One component in a registry's surface dump: the name and signature
/// rendered dialect-neutrally (types as strings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiSurfaceFn {
    /// Version-dependent component name.
    pub name: String,
    /// Component family.
    pub kind: ApiKind,
    /// Parameter type names, in declaration order.
    pub params: Vec<String>,
    /// Return type name.
    pub ret: String,
}

impl ApiSurfaceFn {
    /// Renders `name(param, ...) -> ret`.
    pub fn render(&self) -> String {
        format!("{}({}) -> {}", self.name, self.params.join(", "), self.ret)
    }
}

/// A versioned IR API registry, as the synthesizer sees it: an enumerable,
/// searchable set of named typed components.
pub trait DialectRegistry {
    /// The dialect's short lowercase name (`siro` / `wir`).
    fn dialect(&self) -> &'static str;

    /// The version(s) this registry was assembled for, rendered for
    /// reports (e.g. `13.0 -> 3.6` or `wir2.0`).
    fn versions(&self) -> String;

    /// Every component, in registration order.
    fn surface(&self) -> Vec<ApiSurfaceFn>;

    /// A stable, line-oriented dump of the full surface, suitable for
    /// golden-file pinning.
    fn describe(&self) -> String {
        let mut out = format!("registry {} {}\n", self.dialect(), self.versions());
        for f in self.surface() {
            let kind = match f.kind {
                ApiKind::Getter => "getter",
                ApiKind::Builder => "builder",
                ApiKind::OperandTranslator => "xlat",
                ApiKind::Const => "const",
            };
            out.push_str(&format!("  {kind:7} {}\n", f.render()));
        }
        out
    }
}

impl DialectRegistry for ApiRegistry {
    fn dialect(&self) -> &'static str {
        "siro"
    }

    fn versions(&self) -> String {
        format!("{} -> {}", self.src_version, self.tgt_version)
    }

    fn surface(&self) -> Vec<ApiSurfaceFn> {
        self.iter()
            .map(|(_, f)| ApiSurfaceFn {
                name: f.name.clone(),
                kind: f.kind,
                params: f.params.iter().map(|p| p.to_string()).collect(),
                ret: f.ret.to_string(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::IrVersion;

    #[test]
    fn siro_registry_surface_reflects_version_quirks() {
        let old = ApiRegistry::for_pair(IrVersion::V10_0, IrVersion::V3_6);
        let new = ApiRegistry::for_pair(IrVersion::V11_0, IrVersion::V3_6);
        let names =
            |r: &ApiRegistry| -> Vec<String> { r.surface().into_iter().map(|f| f.name).collect() };
        assert!(names(&old).contains(&"get_called_value".to_string()));
        assert!(names(&new).contains(&"get_called_operand".to_string()));
        assert!(old.describe().starts_with("registry siro 10.0 -> 3.6\n"));
    }
}
