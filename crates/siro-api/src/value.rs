//! The dynamic values and static types that flow through API components.
//!
//! Component-based synthesis (§4.2 of the paper) treats every IR-library
//! function as a typed component. [`ApiType`] is the type vocabulary of the
//! IR type graph (Def. 4.1); [`ApiValue`] is the runtime value a component
//! consumes or produces when a candidate translator is actually executed.

use std::fmt;

use siro_ir::{
    AtomicOrdering, BlockId, FloatPredicate, InstId, IntPredicate, Opcode, RmwOp, TypeId, ValueRef,
};

/// Which version a value or type belongs to: the source (❶) or target (❷)
/// IR libraries of Tab. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The version being translated *from*.
    Source,
    /// The version being translated *into*.
    Target,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Source => "s",
            Side::Target => "t",
        })
    }
}

/// A node of the IR type graph: the static type of an API parameter or
/// return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiType {
    /// An instruction of a specific kind, e.g. `Branch_s` / `Branch_t`.
    Inst(Opcode, Side),
    /// Any IR value.
    Value(Side),
    /// A basic block.
    Block(Side),
    /// An IR type handle.
    TypeRef(Side),
    /// A list of values (call arguments, GEP indices).
    ValueList(Side),
    /// A list of blocks (indirectbr / callbr destinations).
    BlockList(Side),
    /// Switch `(constant, block)` case pairs.
    CaseList(Side),
    /// Phi `(value, block)` incoming pairs.
    PhiList(Side),
    /// A boolean property.
    Bool,
    /// A small integer literal (operand / successor index).
    U32,
    /// An `icmp` predicate.
    IntPred,
    /// An `fcmp` predicate.
    FloatPred,
    /// An `atomicrmw` operation.
    RmwOp,
    /// An atomic ordering.
    Ordering,
    /// A constant index path / shuffle mask.
    Indices,
}

impl ApiType {
    /// Whether a value of static type `actual` can be passed where `self` is
    /// expected. The only subtyping rule: a target instruction *is a* target
    /// value (builders return instructions which are then usable as operand
    /// values), and likewise on the source side.
    pub fn accepts(self, actual: ApiType) -> bool {
        if self == actual {
            return true;
        }
        matches!(
            (self, actual),
            (ApiType::Value(a), ApiType::Inst(_, b)) if a == b
        )
    }

    /// The version side, if this type has one.
    pub fn side(self) -> Option<Side> {
        match self {
            ApiType::Inst(_, s)
            | ApiType::Value(s)
            | ApiType::Block(s)
            | ApiType::TypeRef(s)
            | ApiType::ValueList(s)
            | ApiType::BlockList(s)
            | ApiType::CaseList(s)
            | ApiType::PhiList(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for ApiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiType::Inst(op, s) => write!(f, "{}_{s}", camel(op.name())),
            ApiType::Value(s) => write!(f, "Value_{s}"),
            ApiType::Block(s) => write!(f, "Block_{s}"),
            ApiType::TypeRef(s) => write!(f, "Type_{s}"),
            ApiType::ValueList(s) => write!(f, "ValueList_{s}"),
            ApiType::BlockList(s) => write!(f, "BlockList_{s}"),
            ApiType::CaseList(s) => write!(f, "CaseList_{s}"),
            ApiType::PhiList(s) => write!(f, "PhiList_{s}"),
            ApiType::Bool => f.write_str("bool"),
            ApiType::U32 => f.write_str("u32"),
            ApiType::IntPred => f.write_str("IntPredicate"),
            ApiType::FloatPred => f.write_str("FloatPredicate"),
            ApiType::RmwOp => f.write_str("RmwOp"),
            ApiType::Ordering => f.write_str("AtomicOrdering"),
            ApiType::Indices => f.write_str("Indices"),
        }
    }
}

fn camel(name: &str) -> String {
    let mut out = String::new();
    let mut up = true;
    for ch in name.chars() {
        if ch == '_' {
            up = true;
            continue;
        }
        if up {
            out.extend(ch.to_uppercase());
            up = false;
        } else {
            out.push(ch);
        }
    }
    out
}

/// The runtime value of a sub-kind predicate: the result of a bool/enum
/// getter (Def. 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PredValue {
    /// A boolean property value.
    Bool(bool),
    /// An enum property value, stored as the variant index.
    Enum(u8),
}

impl fmt::Display for PredValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredValue::Bool(b) => write!(f, "{b}"),
            PredValue::Enum(i) => write!(f, "#{i}"),
        }
    }
}

/// A dynamic value produced or consumed by an API component at translator
/// execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiValue {
    /// A source-version instruction handle (in the current source function).
    SrcInst(InstId),
    /// A source-version value.
    SrcValue(ValueRef),
    /// A source-version block.
    SrcBlock(BlockId),
    /// A source-version type handle.
    SrcType(TypeId),
    /// A target-version value.
    TgtValue(ValueRef),
    /// A target-version block.
    TgtBlock(BlockId),
    /// A target-version type handle.
    TgtType(TypeId),
    /// A list of values.
    Values(Side, Vec<ValueRef>),
    /// A list of blocks.
    Blocks(Side, Vec<BlockId>),
    /// Switch cases.
    Cases(Side, Vec<(ValueRef, BlockId)>),
    /// Phi incoming pairs.
    Phis(Side, Vec<(ValueRef, BlockId)>),
    /// A boolean.
    Bool(bool),
    /// A small integer.
    U32(u32),
    /// An integer predicate.
    IntPred(IntPredicate),
    /// A float predicate.
    FloatPred(FloatPredicate),
    /// An rmw operation.
    RmwOp(RmwOp),
    /// An atomic ordering.
    Ordering(AtomicOrdering),
    /// A constant index path.
    Indices(Vec<u64>),
}

impl ApiValue {
    /// The predicate value, if this is a bool or enum result.
    pub fn as_pred(&self) -> Option<PredValue> {
        Some(match self {
            ApiValue::Bool(b) => PredValue::Bool(*b),
            ApiValue::IntPred(p) => PredValue::Enum(p.as_index()),
            ApiValue::FloatPred(p) => PredValue::Enum(p.as_index()),
            ApiValue::RmwOp(o) => PredValue::Enum(o.as_index()),
            ApiValue::Ordering(o) => PredValue::Enum(o.as_index()),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_subtypes_value_on_same_side() {
        let v = ApiType::Value(Side::Target);
        assert!(v.accepts(ApiType::Inst(Opcode::Add, Side::Target)));
        assert!(!v.accepts(ApiType::Inst(Opcode::Add, Side::Source)));
        assert!(v.accepts(v));
        assert!(!ApiType::Bool.accepts(v));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ApiType::Inst(Opcode::Br, Side::Source).to_string(), "Br_s");
        assert_eq!(ApiType::Block(Side::Target).to_string(), "Block_t");
        assert_eq!(
            ApiType::Inst(Opcode::GetElementPtr, Side::Target).to_string(),
            "Getelementptr_t"
        );
    }

    #[test]
    fn pred_values() {
        assert_eq!(ApiValue::Bool(true).as_pred(), Some(PredValue::Bool(true)));
        assert_eq!(
            ApiValue::IntPred(IntPredicate::Slt).as_pred(),
            Some(PredValue::Enum(8))
        );
        assert_eq!(ApiValue::U32(3).as_pred(), None);
    }

    #[test]
    fn sides() {
        assert_eq!(ApiType::Block(Side::Source).side(), Some(Side::Source));
        assert_eq!(ApiType::U32.side(), None);
    }
}
