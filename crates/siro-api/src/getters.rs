//! Source-side IR getters ("access information from an IR memory object",
//! Tab. 2).
//!
//! Getter availability and names follow the registry's *source* version:
//! only opcodes in the source instruction set get getters, and the call
//! target getter is `get_called_value` before 11.0 and `get_called_operand`
//! from 11.0 on.
//!
//! Alias getters are deliberate: `get_operand`/`get_block_operand` overlap
//! with the specific getters (`get_successor`, `get_lhs`, ...) exactly as
//! LLVM's `getOperand` overlaps `getSuccessor` — this is what produces the
//! equivalent-implementation candidates of Fig. 11 and the wrong-but-well-
//! typed candidates of Fig. 9 that refinement must prune.

use siro_ir::{Opcode, Type, ValueRef};

use crate::registry::{inst_arg, u32_arg, ApiKind, ApiRegistry};
use crate::value::{ApiType, ApiValue, Side};
use crate::{ApiError, ApiResult};

const S: Side = Side::Source;

/// Registers all getters for the registry's source version.
pub(crate) fn register(reg: &mut ApiRegistry) {
    let version = reg.src_version;
    for op in Opcode::ALL {
        if !version.supports(op) {
            continue;
        }
        register_generic(reg, op);
        register_specific(reg, op);
    }
}

fn inst_ty(op: Opcode) -> ApiType {
    ApiType::Inst(op, S)
}

/// Static upper bound on the operand count of `op`, used to prune indexed
/// getters in the type graph (part of type-guided generation).
pub(crate) fn max_operand_index(op: Opcode) -> u32 {
    use Opcode::*;
    match op {
        Ret | FNeg | Load | Resume | VAArg | Freeze | ExtractValue | Trunc | ZExt | SExt
        | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP | PtrToInt | IntToPtr | BitCast
        | AddrSpaceCast | CatchRet | CleanupRet => 1,
        Unreachable | Fence | LandingPad | CatchPad | CleanupPad | Alloca => 0,
        Select | CmpXchg | InsertElement | Br => 3,
        Switch | IndirectBr | Invoke | CallBr | Call | Phi | GetElementPtr | CatchSwitch => 3,
        _ => 2,
    }
}

fn register_generic(reg: &mut ApiRegistry, op: Opcode) {
    let n = max_operand_index(op);
    if n > 0 {
        reg.add(
            "get_operand",
            ApiKind::Getter,
            vec![inst_ty(op), ApiType::U32],
            ApiType::Value(S),
            false,
            move |ctx, args| {
                let inst = inst_arg(ctx, args, 0)?;
                let i = u32_arg(args, 1)? as usize;
                let v = *inst
                    .operands
                    .get(i)
                    .ok_or_else(|| ApiError::OutOfRange(format!("operand {i}")))?;
                if v.is_block() {
                    return Err(ApiError::Type("operand is a block label".into()));
                }
                Ok(ApiValue::SrcValue(v))
            },
        );
        reg.add(
            "get_operand_type",
            ApiKind::Getter,
            vec![inst_ty(op), ApiType::U32],
            ApiType::TypeRef(S),
            false,
            move |ctx, args| {
                let inst = inst_arg(ctx, args, 0)?;
                let i = u32_arg(args, 1)? as usize;
                let v = *inst
                    .operands
                    .get(i)
                    .ok_or_else(|| ApiError::OutOfRange(format!("operand {i}")))?;
                ctx.src_value_type(v)
                    .map(ApiValue::SrcType)
                    .ok_or_else(|| ApiError::Type("operand has no table type".into()))
            },
        );
    }
    reg.add(
        "get_result_type",
        ApiKind::Getter,
        vec![inst_ty(op)],
        ApiType::TypeRef(S),
        false,
        move |ctx, args| Ok(ApiValue::SrcType(inst_arg(ctx, args, 0)?.ty)),
    );
    // Block-operand alias getter for opcodes that have block operands.
    let has_blocks = matches!(
        op,
        Opcode::Br
            | Opcode::Switch
            | Opcode::IndirectBr
            | Opcode::Invoke
            | Opcode::CallBr
            | Opcode::CatchSwitch
            | Opcode::CatchRet
            | Opcode::CleanupRet
    );
    if has_blocks {
        reg.add(
            "get_block_operand",
            ApiKind::Getter,
            vec![inst_ty(op), ApiType::U32],
            ApiType::Block(S),
            false,
            move |ctx, args| {
                let inst = inst_arg(ctx, args, 0)?;
                let i = u32_arg(args, 1)? as usize;
                let v = *inst
                    .operands
                    .get(i)
                    .ok_or_else(|| ApiError::OutOfRange(format!("operand {i}")))?;
                v.as_block()
                    .map(ApiValue::SrcBlock)
                    .ok_or_else(|| ApiError::Type("operand is not a block".into()))
            },
        );
        reg.add(
            "get_successor",
            ApiKind::Getter,
            vec![inst_ty(op), ApiType::U32],
            ApiType::Block(S),
            false,
            move |ctx, args| {
                let inst = inst_arg(ctx, args, 0)?;
                let i = u32_arg(args, 1)? as usize;
                inst.successors()
                    .get(i)
                    .copied()
                    .map(ApiValue::SrcBlock)
                    .ok_or_else(|| ApiError::OutOfRange(format!("successor {i}")))
            },
        );
    }
}

#[allow(clippy::too_many_lines)]
fn register_specific(reg: &mut ApiRegistry, op: Opcode) {
    use Opcode::*;
    match op {
        Br => {
            reg.add(
                "is_unconditional",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Bool,
                true,
                |ctx, args| {
                    Ok(ApiValue::Bool(
                        inst_arg(ctx, args, 0)?.is_unconditional_branch(),
                    ))
                },
            );
            reg.add(
                "get_condition",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Value(S),
                false,
                |ctx, args| {
                    let inst = inst_arg(ctx, args, 0)?;
                    if inst.is_unconditional_branch() {
                        return Err(ApiError::WrongSubKind(
                            "unconditional branch has no condition".into(),
                        ));
                    }
                    Ok(ApiValue::SrcValue(inst.operands[0]))
                },
            );
        }
        Ret => {
            reg.add(
                "is_void_return",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Bool,
                true,
                |ctx, args| Ok(ApiValue::Bool(inst_arg(ctx, args, 0)?.is_void_return())),
            );
            reg.add(
                "get_return_value",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Value(S),
                false,
                |ctx, args| {
                    let inst = inst_arg(ctx, args, 0)?;
                    inst.operands
                        .first()
                        .copied()
                        .map(ApiValue::SrcValue)
                        .ok_or_else(|| ApiError::WrongSubKind("void return has no value".into()))
                },
            );
        }
        Switch => {
            reg.add(
                "get_default_dest",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Block(S),
                false,
                |ctx, args| {
                    let inst = inst_arg(ctx, args, 0)?;
                    inst.operands
                        .get(1)
                        .and_then(|v| v.as_block())
                        .map(ApiValue::SrcBlock)
                        .ok_or_else(|| ApiError::Type("switch default missing".into()))
                },
            );
            reg.add(
                "get_cases",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::CaseList(S),
                false,
                |ctx, args| {
                    let inst = inst_arg(ctx, args, 0)?;
                    Ok(ApiValue::Cases(S, inst.switch_cases()))
                },
            );
        }
        IndirectBr => {
            reg.add(
                "get_address",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Value(S),
                false,
                |ctx, args| Ok(ApiValue::SrcValue(inst_arg(ctx, args, 0)?.operands[0])),
            );
            reg.add(
                "get_destinations",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::BlockList(S),
                false,
                |ctx, args| Ok(ApiValue::Blocks(S, inst_arg(ctx, args, 0)?.successors())),
            );
        }
        Call | Invoke | CallBr => {
            register_call_family(reg, op);
            match op {
                Invoke => {
                    reg.add(
                        "get_normal_dest",
                        ApiKind::Getter,
                        vec![inst_ty(op)],
                        ApiType::Block(S),
                        false,
                        |ctx, args| {
                            let s = inst_arg(ctx, args, 0)?.successors();
                            s.first()
                                .copied()
                                .map(ApiValue::SrcBlock)
                                .ok_or_else(|| ApiError::Type("invoke without dests".into()))
                        },
                    );
                    reg.add(
                        "get_unwind_dest",
                        ApiKind::Getter,
                        vec![inst_ty(op)],
                        ApiType::Block(S),
                        false,
                        |ctx, args| {
                            let s = inst_arg(ctx, args, 0)?.successors();
                            s.get(1)
                                .copied()
                                .map(ApiValue::SrcBlock)
                                .ok_or_else(|| ApiError::Type("invoke without dests".into()))
                        },
                    );
                }
                CallBr => {
                    reg.add(
                        "get_fallthrough_dest",
                        ApiKind::Getter,
                        vec![inst_ty(op)],
                        ApiType::Block(S),
                        false,
                        |ctx, args| {
                            let s = inst_arg(ctx, args, 0)?.successors();
                            s.first()
                                .copied()
                                .map(ApiValue::SrcBlock)
                                .ok_or_else(|| ApiError::Type("callbr without dests".into()))
                        },
                    );
                    reg.add(
                        "get_indirect_dests",
                        ApiKind::Getter,
                        vec![inst_ty(op)],
                        ApiType::BlockList(S),
                        false,
                        |ctx, args| {
                            let s = inst_arg(ctx, args, 0)?.successors();
                            Ok(ApiValue::Blocks(S, s[1..].to_vec()))
                        },
                    );
                }
                _ => {
                    reg.add(
                        "is_tail_call",
                        ApiKind::Getter,
                        vec![inst_ty(op)],
                        ApiType::Bool,
                        true,
                        |ctx, args| Ok(ApiValue::Bool(inst_arg(ctx, args, 0)?.attrs.tail_call)),
                    );
                    reg.add(
                        "is_indirect_call",
                        ApiKind::Getter,
                        vec![inst_ty(op)],
                        ApiType::Bool,
                        true,
                        |ctx, args| {
                            let inst = inst_arg(ctx, args, 0)?;
                            Ok(ApiValue::Bool(!matches!(
                                inst.callee(),
                                Some(ValueRef::Func(_) | ValueRef::InlineAsm(_))
                            )))
                        },
                    );
                }
            }
        }
        ICmp => {
            reg.add(
                "get_predicate",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::IntPred,
                false,
                |ctx, args| {
                    inst_arg(ctx, args, 0)?
                        .attrs
                        .int_pred
                        .map(ApiValue::IntPred)
                        .ok_or_else(|| ApiError::Type("icmp without predicate".into()))
                },
            );
            register_lhs_rhs(reg, op);
        }
        FCmp => {
            reg.add(
                "get_float_predicate",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::FloatPred,
                false,
                |ctx, args| {
                    inst_arg(ctx, args, 0)?
                        .attrs
                        .float_pred
                        .map(ApiValue::FloatPred)
                        .ok_or_else(|| ApiError::Type("fcmp without predicate".into()))
                },
            );
            register_lhs_rhs(reg, op);
        }
        Alloca => {
            reg.add(
                "get_allocated_type",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::TypeRef(S),
                false,
                |ctx, args| {
                    inst_arg(ctx, args, 0)?
                        .attrs
                        .alloc_ty
                        .map(ApiValue::SrcType)
                        .ok_or_else(|| ApiError::Type("alloca without type".into()))
                },
            );
        }
        Load => {
            register_pointer_operand(reg, op, 0);
            register_volatile(reg, op);
        }
        Store => {
            reg.add(
                "get_value_operand",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Value(S),
                false,
                |ctx, args| Ok(ApiValue::SrcValue(inst_arg(ctx, args, 0)?.operands[0])),
            );
            register_pointer_operand(reg, op, 1);
            register_volatile(reg, op);
        }
        GetElementPtr => {
            register_pointer_operand(reg, op, 0);
            reg.add(
                "get_source_element_type",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::TypeRef(S),
                false,
                |ctx, args| {
                    inst_arg(ctx, args, 0)?
                        .attrs
                        .gep_source_ty
                        .map(ApiValue::SrcType)
                        .ok_or_else(|| ApiError::Type("gep without source type".into()))
                },
            );
            reg.add(
                "get_indices",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::ValueList(S),
                false,
                |ctx, args| {
                    let inst = inst_arg(ctx, args, 0)?;
                    Ok(ApiValue::Values(S, inst.operands[1..].to_vec()))
                },
            );
            reg.add(
                "is_inbounds",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Bool,
                true,
                |ctx, args| Ok(ApiValue::Bool(inst_arg(ctx, args, 0)?.attrs.inbounds)),
            );
        }
        Fence | CmpXchg | AtomicRmw => {
            reg.add(
                "get_ordering",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Ordering,
                false,
                |ctx, args| {
                    Ok(ApiValue::Ordering(
                        inst_arg(ctx, args, 0)?
                            .attrs
                            .ordering
                            .unwrap_or(siro_ir::AtomicOrdering::SeqCst),
                    ))
                },
            );
            if op == CmpXchg || op == AtomicRmw {
                register_pointer_operand(reg, op, 0);
            }
            if op == AtomicRmw {
                reg.add(
                    "get_rmw_operation",
                    ApiKind::Getter,
                    vec![inst_ty(op)],
                    ApiType::RmwOp,
                    false,
                    |ctx, args| {
                        inst_arg(ctx, args, 0)?
                            .attrs
                            .rmw_op
                            .map(ApiValue::RmwOp)
                            .ok_or_else(|| ApiError::Type("atomicrmw without op".into()))
                    },
                );
            }
        }
        ExtractValue | InsertValue => {
            reg.add(
                "get_index_path",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Indices,
                false,
                |ctx, args| Ok(ApiValue::Indices(inst_arg(ctx, args, 0)?.attrs.indices)),
            );
        }
        ShuffleVector => {
            reg.add(
                "get_shuffle_mask",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Indices,
                false,
                |ctx, args| Ok(ApiValue::Indices(inst_arg(ctx, args, 0)?.attrs.indices)),
            );
        }
        Phi => {
            reg.add(
                "get_incoming",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::PhiList(S),
                false,
                |ctx, args| Ok(ApiValue::Phis(S, inst_arg(ctx, args, 0)?.phi_incoming())),
            );
        }
        LandingPad => {
            reg.add(
                "is_cleanup",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Bool,
                true,
                |ctx, args| Ok(ApiValue::Bool(inst_arg(ctx, args, 0)?.attrs.is_cleanup)),
            );
        }
        CatchSwitch => {
            reg.add(
                "get_handlers",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::BlockList(S),
                false,
                |ctx, args| Ok(ApiValue::Blocks(S, inst_arg(ctx, args, 0)?.successors())),
            );
        }
        CatchRet | CleanupRet => {
            reg.add(
                "get_dest",
                ApiKind::Getter,
                vec![inst_ty(op)],
                ApiType::Block(S),
                false,
                |ctx, args| {
                    inst_arg(ctx, args, 0)?
                        .operands
                        .first()
                        .and_then(|v| v.as_block())
                        .map(ApiValue::SrcBlock)
                        .ok_or_else(|| ApiError::Type("missing destination".into()))
                },
            );
        }
        _ => {}
    }
}

fn register_lhs_rhs(reg: &mut ApiRegistry, op: Opcode) {
    reg.add(
        "get_lhs",
        ApiKind::Getter,
        vec![inst_ty(op)],
        ApiType::Value(S),
        false,
        |ctx, args| Ok(ApiValue::SrcValue(inst_arg(ctx, args, 0)?.operands[0])),
    );
    reg.add(
        "get_rhs",
        ApiKind::Getter,
        vec![inst_ty(op)],
        ApiType::Value(S),
        false,
        |ctx, args| Ok(ApiValue::SrcValue(inst_arg(ctx, args, 0)?.operands[1])),
    );
}

fn register_volatile(reg: &mut ApiRegistry, op: Opcode) {
    reg.add(
        "is_volatile",
        ApiKind::Getter,
        vec![inst_ty(op)],
        ApiType::Bool,
        true,
        |ctx, args| Ok(ApiValue::Bool(inst_arg(ctx, args, 0)?.attrs.volatile)),
    );
}

fn register_pointer_operand(reg: &mut ApiRegistry, op: Opcode, idx: usize) {
    reg.add(
        "get_pointer_operand",
        ApiKind::Getter,
        vec![inst_ty(op)],
        ApiType::Value(S),
        false,
        move |ctx, args| {
            let inst = inst_arg(ctx, args, 0)?;
            inst.operands
                .get(idx)
                .copied()
                .map(ApiValue::SrcValue)
                .ok_or_else(|| ApiError::OutOfRange("pointer operand".into()))
        },
    );
}

fn register_call_family(reg: &mut ApiRegistry, op: Opcode) {
    let target_getter_name = if reg.src_version.renamed_called_operand_getter() {
        "get_called_operand"
    } else {
        "get_called_value"
    };
    reg.add(
        target_getter_name,
        ApiKind::Getter,
        vec![inst_ty(op)],
        ApiType::Value(S),
        false,
        |ctx, args| {
            inst_arg(ctx, args, 0)?
                .callee()
                .map(ApiValue::SrcValue)
                .ok_or_else(|| ApiError::Type("no callee".into()))
        },
    );
    reg.add(
        "get_called_function",
        ApiKind::Getter,
        vec![inst_ty(op)],
        ApiType::Value(S),
        false,
        |ctx, args| match inst_arg(ctx, args, 0)?.callee() {
            Some(v @ ValueRef::Func(_)) => Ok(ApiValue::SrcValue(v)),
            _ => Err(ApiError::WrongSubKind("indirect call".into())),
        },
    );
    reg.add(
        "get_arguments",
        ApiKind::Getter,
        vec![inst_ty(op)],
        ApiType::ValueList(S),
        false,
        |ctx, args| {
            let inst = inst_arg(ctx, args, 0)?;
            Ok(ApiValue::Values(S, inst.call_args().to_vec()))
        },
    );
    reg.add(
        "get_callee_type",
        ApiKind::Getter,
        vec![inst_ty(op)],
        ApiType::TypeRef(S),
        false,
        |ctx, args| {
            let inst = inst_arg(ctx, args, 0)?;
            match inst.callee() {
                Some(ValueRef::Func(fid)) => {
                    let f = ctx.src.func(fid);
                    let (ret, params, varargs) = (
                        f.ret_ty,
                        f.params.iter().map(|p| p.ty).collect::<Vec<_>>(),
                        f.varargs,
                    );
                    let ty = if varargs {
                        ctx.src_types.func_varargs(ret, params)
                    } else {
                        ctx.src_types.func(ret, params)
                    };
                    Ok(ApiValue::SrcType(ty))
                }
                Some(ValueRef::InlineAsm(a)) => Ok(ApiValue::SrcType(ctx.src.asm(a).ty)),
                Some(v) => {
                    let ty = ctx
                        .src_value_type(v)
                        .ok_or_else(|| ApiError::Type("untyped callee".into()))?;
                    match ctx.src_types.get(ty) {
                        Type::Ptr { pointee, .. }
                            if matches!(ctx.src_types.get(*pointee), Type::Func { .. }) =>
                        {
                            Ok(ApiValue::SrcType(*pointee))
                        }
                        Type::Func { .. } => Ok(ApiValue::SrcType(ty)),
                        // Opaque-pointer dialects erase the pointee, so an
                        // indirect call's function type must be rebuilt from
                        // the call site (return type + argument types) —
                        // exactly what LLVM's opaque-pointer migration does.
                        Type::Ptr { .. } => {
                            let params = inst
                                .call_args()
                                .iter()
                                .map(|&a| {
                                    ctx.src_value_type(a).ok_or_else(|| {
                                        ApiError::Type("untyped call argument".into())
                                    })
                                })
                                .collect::<ApiResult<Vec<_>>>()?;
                            Ok(ApiValue::SrcType(ctx.src_types.func(inst.ty, params)))
                        }
                        _ => Err(ApiError::Type("callee is not a function pointer".into())),
                    }
                }
                None => Err(ApiError::Type("no callee".into())),
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::TranslationCtx;
    use siro_ir::{FuncBuilder, IntPredicate, IrVersion, Module};

    fn branchy_module() -> Module {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let t = b.add_block("then");
        let el = b.add_block("else");
        b.position_at_end(e);
        let c = b.icmp(
            IntPredicate::Slt,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        b.cond_br(c, t, el);
        b.position_at_end(t);
        b.ret(Some(ValueRef::const_int(i32t, 1)));
        b.position_at_end(el);
        b.br(t);
        m
    }

    fn ctx_and_setup(m: &Module) -> TranslationCtx<'_> {
        let mut ctx = TranslationCtx::new(m, IrVersion::V3_6);
        let sfid = m.func_by_name("main").unwrap();
        let tfid = ctx.clone_signature(sfid);
        ctx.begin_function(sfid, tfid);
        ctx
    }

    #[test]
    fn condition_getter_respects_sub_kinds() {
        let m = branchy_module();
        let mut ctx = ctx_and_setup(&m);
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let get_cond = reg.find_for_kind("get_condition", Opcode::Br).unwrap();
        // Instruction 1 is the conditional branch.
        let ok = reg
            .get(get_cond)
            .call(&mut ctx, &[ApiValue::SrcInst(siro_ir::InstId::new(1))]);
        assert!(matches!(ok, Ok(ApiValue::SrcValue(_))));
        // Instruction 3 is the unconditional branch in `else`.
        let err = reg
            .get(get_cond)
            .call(&mut ctx, &[ApiValue::SrcInst(siro_ir::InstId::new(3))]);
        assert!(matches!(err, Err(ApiError::WrongSubKind(_))));
    }

    #[test]
    fn successor_and_block_operand_are_offset_aliases() {
        let m = branchy_module();
        let mut ctx = ctx_and_setup(&m);
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let succ = reg.find_for_kind("get_successor", Opcode::Br).unwrap();
        let bop = reg.find_for_kind("get_block_operand", Opcode::Br).unwrap();
        let inst = ApiValue::SrcInst(siro_ir::InstId::new(1));
        // successor(0) == block_operand(1) for a conditional branch.
        let a = reg
            .get(succ)
            .call(&mut ctx, &[inst.clone(), ApiValue::U32(0)])
            .unwrap();
        let b = reg
            .get(bop)
            .call(&mut ctx, &[inst.clone(), ApiValue::U32(1)])
            .unwrap();
        assert_eq!(a, b);
        // block_operand(0) is the condition, not a block.
        let e = reg.get(bop).call(&mut ctx, &[inst, ApiValue::U32(0)]);
        assert!(e.is_err());
    }

    #[test]
    fn predicate_getter_reads_icmp() {
        let m = branchy_module();
        let mut ctx = ctx_and_setup(&m);
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let p = reg.find_for_kind("get_predicate", Opcode::ICmp).unwrap();
        let v = reg
            .get(p)
            .call(&mut ctx, &[ApiValue::SrcInst(siro_ir::InstId::new(0))])
            .unwrap();
        assert_eq!(v, ApiValue::IntPred(IntPredicate::Slt));
    }

    #[test]
    fn callee_type_getter_synthesizes_function_type() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let callee = m.add_func(siro_ir::Function::external("ext", i32t, vec![]));
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let r = b.call(i32t, ValueRef::Func(callee), vec![]);
        b.ret(Some(r));
        let mut ctx = TranslationCtx::new(&m, IrVersion::V3_6);
        let sfid = m.func_by_name("main").unwrap();
        let tfid = ctx.clone_signature(sfid);
        ctx.begin_function(sfid, tfid);
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let g = reg.find_for_kind("get_callee_type", Opcode::Call).unwrap();
        let v = reg
            .get(g)
            .call(&mut ctx, &[ApiValue::SrcInst(siro_ir::InstId::new(0))])
            .unwrap();
        match v {
            ApiValue::SrcType(t) => {
                assert!(matches!(ctx.src_types.get(t), Type::Func { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// An indirect call whose callee is a bare opaque `ptr` (the shape a
    /// module parsed from a 15.0+ dialect has — the function pointee is
    /// erased to the nominal `i8`) must still yield a function type,
    /// rebuilt from the call site.
    #[test]
    fn callee_type_getter_rebuilds_through_opaque_pointers() {
        let mut m = Module::new("m", IrVersion::V15_0);
        let i32t = m.types.i32();
        let i8t = m.types.i8();
        let opaque = m.types.ptr(i8t);
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let slot = b.alloca(opaque);
        let fp = b.load(opaque, slot);
        let arg = ValueRef::const_int(i32t, 7);
        let call_id = {
            let r = b.call(i32t, fp, vec![arg]);
            match r {
                ValueRef::Inst(id) => id,
                other => panic!("unexpected {other:?}"),
            }
        };
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let mut ctx = TranslationCtx::new(&m, IrVersion::V13_0);
        let sfid = m.func_by_name("main").unwrap();
        let tfid = ctx.clone_signature(sfid);
        ctx.begin_function(sfid, tfid);
        let reg = ApiRegistry::for_pair(IrVersion::V15_0, IrVersion::V13_0);
        let g = reg.find_for_kind("get_callee_type", Opcode::Call).unwrap();
        let v = reg
            .get(g)
            .call(&mut ctx, &[ApiValue::SrcInst(call_id)])
            .unwrap();
        match v {
            ApiValue::SrcType(t) => match ctx.src_types.get(t).clone() {
                Type::Func { ret, params, .. } => {
                    assert_eq!(ret, i32t, "return type comes from the call site");
                    assert_eq!(params, vec![i32t], "params come from the arguments");
                }
                other => panic!("expected a function type, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
