//! The translation context: the state shared between the translation
//! skeleton and the API components while one module is being translated.
//!
//! It owns the target module under construction and the correspondence maps
//! between source and target IR entities. Forward references are handled
//! with placeholder values exactly as §5 ("Handling IR Value Dependence")
//! describes: an untranslated operand yields a [`ValueRef::Placeholder`],
//! and once the operand is translated every use is patched.

use std::collections::HashMap;

use siro_ir::{
    BlockId, FuncId, Function, Global, GlobalId, InlineAsm, InstId, Instruction, IrVersion, Module,
    Param, Type, TypeId, TypeTable, ValueRef,
};

use crate::error::{ApiError, ApiResult};

/// The instruction-result correspondence map of one function translation.
///
/// The skeleton's generic walk uses the hashed form; the compiled tier's
/// module driver — which knows the source function's instruction count up
/// front — opts into the dense form via
/// [`TranslationCtx::begin_function_dense`] so the per-operand probe in
/// [`TranslationCtx::translate_value`] is an index, not a hash. Both forms
/// hold exactly the same mapping; the choice is invisible to API
/// components.
#[derive(Debug)]
enum ValueMap {
    Hash(HashMap<InstId, ValueRef>),
    Dense(Vec<Option<ValueRef>>),
}

impl ValueMap {
    #[inline]
    fn get(&self, i: InstId) -> Option<ValueRef> {
        match self {
            ValueMap::Hash(m) => m.get(&i).copied(),
            ValueMap::Dense(v) => v.get(i.index()).copied().flatten(),
        }
    }

    #[inline]
    fn insert(&mut self, i: InstId, v: ValueRef) {
        match self {
            ValueMap::Hash(m) => {
                m.insert(i, v);
            }
            ValueMap::Dense(vec) => {
                let idx = i.index();
                if idx >= vec.len() {
                    vec.resize(idx + 1, None);
                }
                vec[idx] = Some(v);
            }
        }
    }
}

/// Mutable translation state threaded through every API component.
#[derive(Debug)]
pub struct TranslationCtx<'s> {
    /// The source module (read-only).
    pub src: &'s Module,
    /// A mutable scratch copy of the source type table. It starts as an
    /// exact clone (so every source [`TypeId`] stays valid) and lets getters
    /// intern *new* source-side types (e.g. the callee function type
    /// required by post-9.0 builders, Fig. 13).
    pub src_types: TypeTable,
    /// The target module being built.
    pub tgt: Module,
    src_func: Option<FuncId>,
    tgt_func: Option<FuncId>,
    cur_block: Option<BlockId>,
    // Module-level maps.
    // Source func/global ids are dense arena indices, so these maps are
    // direct-indexed: `translate_value` hits `func_map` on every call
    // operand and a hash probe there is measurable on the translate span.
    func_map: Vec<Option<FuncId>>,
    global_map: Vec<Option<GlobalId>>,
    asm_map: HashMap<siro_ir::AsmId, siro_ir::AsmId>,
    // Source `TypeId`s are dense table indices, so the type-translation
    // cache is a flat vector probe instead of a hash map. Sized to the
    // source table up front; getters may intern new source types later, so
    // inserts still resize on demand.
    type_cache: Vec<Option<TypeId>>,
    // Per-function maps (cleared by `begin_function`).
    value_map: ValueMap,
    // Blocks are dense per-function indices too: same flat-probe scheme.
    block_map: Vec<Option<BlockId>>,
    pending: HashMap<InstId, u32>,
    placeholder_types: HashMap<u32, TypeId>,
    next_placeholder: u32,
    warnings: Vec<String>,
}

impl<'s> TranslationCtx<'s> {
    /// Starts a translation of `src` into a fresh module of
    /// `target_version`.
    pub fn new(src: &'s Module, target_version: IrVersion) -> Self {
        let mut tgt = Module::new(src.name.clone(), target_version);
        // The target ends up with one function/global per source entry;
        // pre-sizing avoids re-moving the arenas as signatures are cloned.
        tgt.funcs.reserve(src.funcs.len());
        tgt.globals.reserve(src.globals.len());
        TranslationCtx {
            src,
            src_types: src.types.clone(),
            tgt,
            src_func: None,
            tgt_func: None,
            cur_block: None,
            func_map: vec![None; src.func_ids().count()],
            global_map: vec![None; src.global_ids().count()],
            asm_map: HashMap::new(),
            type_cache: vec![None; src.types.len()],
            value_map: ValueMap::Hash(HashMap::new()),
            block_map: Vec::new(),
            pending: HashMap::new(),
            placeholder_types: HashMap::new(),
            next_placeholder: 0,
            warnings: Vec::new(),
        }
    }

    /// The source function currently being translated.
    ///
    /// # Errors
    ///
    /// [`ApiError::Missing`] outside of a function translation.
    pub fn src_func(&self) -> ApiResult<&Function> {
        self.src_func
            .map(|f| self.src.func(f))
            .ok_or_else(|| ApiError::Missing("no current source function".into()))
    }

    /// Id of the current source function.
    pub fn src_func_id(&self) -> Option<FuncId> {
        self.src_func
    }

    /// Id of the current target function.
    pub fn tgt_func_id(&self) -> Option<FuncId> {
        self.tgt_func
    }

    /// Warnings accumulated so far (e.g. unseen predicates).
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Records a warning.
    pub fn warn(&mut self, msg: impl Into<String>) {
        self.warnings.push(msg.into());
    }

    /// Consumes the context and yields the built target module.
    pub fn finish(self) -> Module {
        self.tgt
    }

    // ---- Module-level registration (used by the skeleton) ----------------

    /// Registers the target counterpart of a source function.
    pub fn map_func(&mut self, src: FuncId, tgt: FuncId) {
        let idx = src.index();
        if idx >= self.func_map.len() {
            self.func_map.resize(idx + 1, None);
        }
        self.func_map[idx] = Some(tgt);
    }

    /// Registers the target counterpart of a source global.
    pub fn map_global(&mut self, src: GlobalId, tgt: GlobalId) {
        let idx = src.index();
        if idx >= self.global_map.len() {
            self.global_map.resize(idx + 1, None);
        }
        self.global_map[idx] = Some(tgt);
    }

    /// Enters a new function: clears per-function maps and sets the current
    /// source/target pair.
    pub fn begin_function(&mut self, src: FuncId, tgt: FuncId) {
        self.value_map = ValueMap::Hash(HashMap::new());
        self.begin_function_common(src, tgt);
    }

    /// [`TranslationCtx::begin_function`] with a pre-sized dense
    /// instruction-result map: the caller promises the source function has
    /// `insts` instructions (`Function::inst_count`), so operand lookups
    /// become direct indexing. Used by the compiled tier's module driver;
    /// behaviour is otherwise identical to `begin_function`.
    pub fn begin_function_dense(&mut self, src: FuncId, tgt: FuncId, insts: usize) {
        // Reuse the previous function's buffer: modules average a handful
        // of instructions per function, so a fresh alloc per function is
        // measurable on the translate span.
        match &mut self.value_map {
            ValueMap::Dense(v) => {
                v.clear();
                v.resize(insts, None);
            }
            m => *m = ValueMap::Dense(vec![None; insts]),
        }
        // The target function will hold roughly one instruction per source
        // instruction; reserving up front keeps the hot build loop from
        // reallocating the arena.
        self.tgt.func_mut(tgt).insts.reserve(insts);
        self.begin_function_common(src, tgt);
    }

    fn begin_function_common(&mut self, src: FuncId, tgt: FuncId) {
        self.src_func = Some(src);
        self.tgt_func = Some(tgt);
        self.cur_block = None;
        self.block_map.clear();
        self.pending.clear();
        self.placeholder_types.clear();
    }

    /// Registers the target counterpart of a source block in the current
    /// function.
    pub fn map_block(&mut self, src: BlockId, tgt: BlockId) {
        let idx = src.index();
        if idx >= self.block_map.len() {
            self.block_map.resize(idx + 1, None);
        }
        self.block_map[idx] = Some(tgt);
    }

    /// Sets the builder insertion point in the target function.
    pub fn set_insertion(&mut self, block: BlockId) {
        self.cur_block = Some(block);
    }

    /// Records that source instruction `src` translated to target value
    /// `tgt`, patching any placeholders created by earlier forward
    /// references.
    pub fn note_translated(&mut self, src: InstId, tgt: ValueRef) -> ApiResult<()> {
        self.value_map.insert(src, tgt);
        // Forward references are rare; skip the per-instruction hash when
        // none are outstanding.
        if self.pending.is_empty() {
            return Ok(());
        }
        if let Some(key) = self.pending.remove(&src) {
            let f = self
                .tgt_func
                .ok_or_else(|| ApiError::Missing("no target function".into()))?;
            self.tgt.func_mut(f).replace_placeholder(key, tgt);
        }
        Ok(())
    }

    /// Whether forward references remain unresolved (must be empty at the
    /// end of a function).
    pub fn unresolved_placeholders(&self) -> usize {
        self.pending.len()
    }

    /// Appends `inst` at the insertion point, returning its value.
    ///
    /// # Errors
    ///
    /// [`ApiError::Missing`] without a target function or insertion point.
    pub fn build(&mut self, inst: Instruction) -> ApiResult<ValueRef> {
        let f = self
            .tgt_func
            .ok_or_else(|| ApiError::Missing("no target function".into()))?;
        let b = self
            .cur_block
            .ok_or_else(|| ApiError::Missing("no insertion point".into()))?;
        Ok(ValueRef::Inst(self.tgt.func_mut(f).push_inst(b, inst)))
    }

    // ---- Operand translators (Tab. 2's skeleton interfaces) ---------------

    /// Translates a source type to the target table, structurally.
    pub fn translate_type(&mut self, src_ty: TypeId) -> TypeId {
        if let Some(Some(t)) = self.type_cache.get(src_ty.index()) {
            return *t;
        }
        let ty = self.src_types.get(src_ty).clone();
        let mapped = match ty {
            Type::Void => self.tgt.types.void(),
            Type::Int(b) => self.tgt.types.int(b),
            Type::F32 => self.tgt.types.f32(),
            Type::F64 => self.tgt.types.f64(),
            Type::Label => self.tgt.types.label(),
            Type::Token => self.tgt.types.token(),
            Type::Ptr {
                pointee,
                addr_space,
            } => {
                let p = self.translate_type(pointee);
                self.tgt.types.ptr_in(p, addr_space)
            }
            Type::Array { elem, len } => {
                let e = self.translate_type(elem);
                self.tgt.types.array(e, len)
            }
            Type::Vector { elem, len } => {
                let e = self.translate_type(elem);
                self.tgt.types.vector(e, len)
            }
            Type::Struct { fields } => {
                let fs: Vec<TypeId> = fields.iter().map(|&f| self.translate_type(f)).collect();
                self.tgt.types.struct_(fs)
            }
            Type::Func {
                ret,
                params,
                varargs,
            } => {
                let r = self.translate_type(ret);
                let ps: Vec<TypeId> = params.iter().map(|&p| self.translate_type(p)).collect();
                if varargs {
                    self.tgt.types.func_varargs(r, ps)
                } else {
                    self.tgt.types.func(r, ps)
                }
            }
        };
        let idx = src_ty.index();
        if idx >= self.type_cache.len() {
            self.type_cache.resize(idx + 1, None);
        }
        self.type_cache[idx] = Some(mapped);
        mapped
    }

    /// Translates a source block reference (current function).
    ///
    /// # Errors
    ///
    /// [`ApiError::Missing`] if the skeleton has not pre-created the block.
    pub fn translate_block(&mut self, src: BlockId) -> ApiResult<BlockId> {
        self.block_map
            .get(src.index())
            .copied()
            .flatten()
            .ok_or_else(|| ApiError::Missing(format!("block {} not mapped", src.raw())))
    }

    /// Translates a source function reference.
    ///
    /// # Errors
    ///
    /// [`ApiError::Missing`] if the skeleton has not pre-registered it.
    pub fn translate_func(&mut self, src: FuncId) -> ApiResult<FuncId> {
        self.func_map
            .get(src.index())
            .copied()
            .flatten()
            .ok_or_else(|| ApiError::Missing(format!("function {} not mapped", src.raw())))
    }

    /// Translates a source global, creating the target global on demand.
    pub fn translate_global(&mut self, src: GlobalId) -> GlobalId {
        if let Some(Some(g)) = self.global_map.get(src.index()) {
            return *g;
        }
        let g = self.src.global(src).clone();
        let ty = self.translate_type(g.ty);
        let id = self.tgt.add_global(Global { ty, ..g });
        self.map_global(src, id);
        id
    }

    /// Translates an inline-assembly snippet, creating it on demand.
    pub fn translate_asm(&mut self, src: siro_ir::AsmId) -> siro_ir::AsmId {
        if let Some(&a) = self.asm_map.get(&src) {
            return a;
        }
        let a = self.src.asm(src).clone();
        let ty = self.translate_type(a.ty);
        let id = self.tgt.add_asm(InlineAsm { ty, ..a });
        self.asm_map.insert(src, id);
        id
    }

    /// Translates any source value to the target version — the
    /// `TranslateValue` operand-translator interface of Fig. 4.
    ///
    /// Untranslated instruction operands produce placeholders that
    /// [`TranslationCtx::note_translated`] later patches.
    ///
    /// # Errors
    ///
    /// Propagates [`ApiError::Missing`] for unmapped blocks/functions.
    pub fn translate_value(&mut self, v: ValueRef) -> ApiResult<ValueRef> {
        Ok(match v {
            ValueRef::Inst(i) => {
                if let Some(t) = self.value_map.get(i) {
                    t
                } else {
                    let key = match self.pending.get(&i) {
                        Some(&k) => k,
                        None => {
                            let k = self.next_placeholder;
                            self.next_placeholder += 1;
                            self.pending.insert(i, k);
                            // Record the placeholder's eventual type so that
                            // builders can infer result types through
                            // forward references.
                            let src_ty = self.src_func()?.inst(i).ty;
                            let tgt_ty = self.translate_type(src_ty);
                            self.placeholder_types.insert(k, tgt_ty);
                            k
                        }
                    };
                    ValueRef::Placeholder(key)
                }
            }
            ValueRef::Arg(a) => ValueRef::Arg(a),
            ValueRef::Global(g) => ValueRef::Global(self.translate_global(g)),
            ValueRef::Func(f) => ValueRef::Func(self.translate_func(f)?),
            ValueRef::Block(b) => ValueRef::Block(self.translate_block(b)?),
            ValueRef::ConstInt { ty, value } => ValueRef::ConstInt {
                ty: self.translate_type(ty),
                value,
            },
            ValueRef::ConstFloat { ty, bits } => ValueRef::ConstFloat {
                ty: self.translate_type(ty),
                bits,
            },
            ValueRef::Null(t) => ValueRef::Null(self.translate_type(t)),
            ValueRef::Undef(t) => ValueRef::Undef(self.translate_type(t)),
            ValueRef::ZeroInit(t) => ValueRef::ZeroInit(self.translate_type(t)),
            ValueRef::InlineAsm(a) => ValueRef::InlineAsm(self.translate_asm(a)),
            ValueRef::Placeholder(_) => {
                return Err(ApiError::Type("cannot translate a placeholder".into()))
            }
        })
    }

    /// The static type of a *target* value (used by builders that must
    /// compute result types).
    pub fn tgt_value_type(&self, v: ValueRef) -> Option<TypeId> {
        let f = self.tgt.func(self.tgt_func?);
        match v {
            ValueRef::Global(g) => Some(self.tgt.global(g).ty),
            ValueRef::Placeholder(k) => self.placeholder_types.get(&k).copied(),
            _ => self.tgt.value_type(f, v),
        }
    }

    /// The static type of a *source* value.
    pub fn src_value_type(&self, v: ValueRef) -> Option<TypeId> {
        let f = self.src.func(self.src_func?);
        match v {
            ValueRef::Global(g) => Some(self.src.global(g).ty),
            _ => self.src.value_type(f, v),
        }
    }

    /// Convenience: create a skeleton-compatible target function shell for a
    /// source function (same name/signature, translated types).
    pub fn clone_signature(&mut self, src_fid: FuncId) -> FuncId {
        let f = self.src.func(src_fid);
        let name = f.name.clone();
        let is_external = f.is_external;
        let varargs = f.varargs;
        let ret = self.translate_type(f.ret_ty);
        let params: Vec<Param> = f
            .params
            .iter()
            .map(|p| Param {
                ty: self.translate_type(p.ty),
                name: p.name.clone(),
            })
            .collect();
        let mut nf = if is_external {
            Function::external(name, ret, params)
        } else {
            Function::new(name, ret, params)
        };
        nf.varargs = varargs;
        let id = self.tgt.add_func(nf);
        self.map_func(src_fid, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{FuncBuilder, Opcode};

    fn src_module() -> Module {
        let mut m = Module::new("src", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.add(ValueRef::const_int(i32t, 1), ValueRef::const_int(i32t, 2));
        b.ret(Some(v));
        m
    }

    #[test]
    fn type_translation_is_structural_and_cached() {
        let src = src_module();
        let mut ctx = TranslationCtx::new(&src, IrVersion::V3_6);
        let src_i32 = {
            let mut t = src.types.clone();
            t.i32()
        };
        let a = ctx.translate_type(src_i32);
        let b = ctx.translate_type(src_i32);
        assert_eq!(a, b);
        assert!(ctx.tgt.types.is_int(a));
    }

    #[test]
    fn placeholder_roundtrip() {
        let src = src_module();
        let mut ctx = TranslationCtx::new(&src, IrVersion::V3_6);
        let sfid = src.func_by_name("main").unwrap();
        let tfid = ctx.clone_signature(sfid);
        ctx.begin_function(sfid, tfid);
        let tb = ctx.tgt.func_mut(tfid).add_block("entry");
        ctx.map_block(BlockId::new(0), tb);
        ctx.set_insertion(tb);
        // Forward-reference instruction 0 before translating it.
        let ph = ctx.translate_value(ValueRef::Inst(InstId::new(0))).unwrap();
        assert!(matches!(ph, ValueRef::Placeholder(_)));
        assert_eq!(ctx.unresolved_placeholders(), 1);
        // Build an instruction using the placeholder.
        let i32t = ctx.tgt.types.i32();
        let built = ctx
            .build(Instruction::new(Opcode::Add, i32t, vec![ph, ph]))
            .unwrap();
        // Now "translate" instruction 0 and observe the patch.
        ctx.note_translated(InstId::new(0), ValueRef::const_int(i32t, 5))
            .unwrap();
        assert_eq!(ctx.unresolved_placeholders(), 0);
        let f = ctx.tgt.func(tfid);
        let built_inst = f.inst(built.as_inst().unwrap());
        assert_eq!(built_inst.operands[0], ValueRef::const_int(i32t, 5));
        assert_eq!(built_inst.operands[1], ValueRef::const_int(i32t, 5));
    }

    #[test]
    fn unmapped_block_is_an_error() {
        let src = src_module();
        let mut ctx = TranslationCtx::new(&src, IrVersion::V3_6);
        let e = ctx.translate_block(BlockId::new(7)).unwrap_err();
        assert!(matches!(e, ApiError::Missing(_)));
    }

    #[test]
    fn globals_created_on_demand() {
        let mut m = src_module();
        let i32t = m.types.i32();
        m.add_global(Global {
            name: "g".into(),
            ty: i32t,
            init: siro_ir::GlobalInit::Int(3),
            is_const: false,
        });
        let mut ctx = TranslationCtx::new(&m, IrVersion::V3_6);
        let v = ctx
            .translate_value(ValueRef::Global(GlobalId::new(0)))
            .unwrap();
        assert!(matches!(v, ValueRef::Global(_)));
        assert_eq!(ctx.tgt.globals.len(), 1);
        // Second translation reuses the mapping.
        let _ = ctx
            .translate_value(ValueRef::Global(GlobalId::new(0)))
            .unwrap();
        assert_eq!(ctx.tgt.globals.len(), 1);
    }

    #[test]
    fn clone_signature_translates_params() {
        let mut m = Module::new("src", IrVersion::V13_0);
        let i64t = m.types.i64();
        let p = m.types.ptr(i64t);
        let f = m.add_func(Function::new(
            "f",
            i64t,
            vec![Param {
                name: "x".into(),
                ty: p,
            }],
        ));
        let mut ctx = TranslationCtx::new(&m, IrVersion::V3_0);
        let t = ctx.clone_signature(f);
        let tf = ctx.tgt.func(t);
        assert_eq!(tf.name, "f");
        assert!(ctx.tgt.types.is_ptr(tf.params[0].ty));
    }
}
