//! # siro-api — versioned reflective IR API registries
//!
//! The paper builds IR translators out of three component families (Tab. 2,
//! §3.3.1): source-version **IR getters**, target-version **IR builders**,
//! and the skeleton's **operand translators**. This crate reifies those
//! components as typed, versioned, *searchable* objects:
//!
//! * [`ApiRegistry::for_pair`] assembles the component library for one
//!   `(source, target)` version pair. Component availability, names, and
//!   signatures depend on the versions — `create_invoke` requires an
//!   explicit function type from 9.0 on (Fig. 13), the call-target getter
//!   renames at 11.0, `create_freeze` only exists when the target knows
//!   `freeze`, and so on.
//! * [`TranslationCtx`] is the shared translation state: the target module
//!   under construction plus the source-to-target maps, with placeholder
//!   fix-ups for forward references (§5).
//! * [`ApiProgram`] is a candidate atomic translator (the λ of Def. 3.1) as
//!   a straight-line composition of components — data the synthesizer can
//!   generate, execute, compare, and finally render as source code.
//!
//! `siro-synth` performs the actual type-guided generation and test-guided
//! refinement over these registries; `siro-core` provides the translation
//! skeleton that invokes the finished translators.

#![warn(missing_docs)]

mod builders;
mod getters;

pub mod ctx;
pub mod dialect;
pub mod error;
pub mod program;
pub mod registry;
pub mod value;

pub use ctx::TranslationCtx;
pub use dialect::{ApiSurfaceFn, DialectRegistry};
pub use error::{ApiError, ApiResult};
pub use program::{ApiCall, ApiProgram, Reg};
pub use registry::{ApiFn, ApiId, ApiKind, ApiRegistry, PredConj};
pub use value::{ApiType, ApiValue, PredValue, Side};

/// Static upper bound on the operand count of an opcode, exposed for the
/// synthesizer's type-graph pruning.
pub fn operand_index_bound(op: siro_ir::Opcode) -> u32 {
    getters::max_operand_index(op)
}
