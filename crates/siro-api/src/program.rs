//! Atomic-translator programs: candidate translators as *data*.
//!
//! An [`ApiProgram`] is a straight-line composition of API components — the
//! λ of Def. 3.1. Representing candidates as data (instead of closures) is
//! what makes the rest of the paper's machinery implementable: the type
//! graph inspects signatures, enumeration composes per-test translators from
//! candidate lists, Optimization I merges structurally equivalent programs,
//! and skeleton completion renders the surviving programs as source code
//! (Figs. 4/9/11/13).

use std::fmt::Write as _;

use siro_ir::{InstId, Opcode};

use crate::ctx::TranslationCtx;
use crate::error::{ApiError, ApiResult};
use crate::registry::{ApiId, ApiRegistry};
use crate::value::{ApiType, ApiValue, Side};

/// An argument slot of one program step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// The source instruction being translated.
    Input,
    /// The result of an earlier step.
    Step(usize),
}

/// One API call within a program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApiCall {
    /// The component to invoke.
    pub api: ApiId,
    /// Argument slots, one per parameter.
    pub args: Vec<Reg>,
}

/// A candidate atomic translator λ for one instruction kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApiProgram {
    /// The instruction kind this program translates.
    pub kind: Opcode,
    /// The steps, executed in order; the last step's result is the
    /// translated instruction.
    pub steps: Vec<ApiCall>,
}

impl ApiProgram {
    /// Executes the program on one source instruction, appending the
    /// translated instruction at the context's insertion point and returning
    /// its value.
    ///
    /// # Errors
    ///
    /// Any component failure aborts the program (translation failure of this
    /// candidate for this instruction).
    pub fn run(
        &self,
        reg: &ApiRegistry,
        ctx: &mut TranslationCtx<'_>,
        inst: InstId,
    ) -> ApiResult<siro_ir::ValueRef> {
        let mut results: Vec<ApiValue> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let args: Vec<ApiValue> = step
                .args
                .iter()
                .map(|r| match r {
                    Reg::Input => ApiValue::SrcInst(inst),
                    Reg::Step(i) => results[*i].clone(),
                })
                .collect();
            let out = reg.get(step.api).call(ctx, &args)?;
            results.push(out);
        }
        match results.last() {
            Some(ApiValue::TgtValue(v)) => Ok(*v),
            other => Err(ApiError::Type(format!(
                "program did not end in a target instruction: {other:?}"
            ))),
        }
    }

    /// The static type of step `i`'s result.
    pub fn step_type(&self, reg: &ApiRegistry, i: usize) -> ApiType {
        reg.get(self.steps[i].api).ret
    }

    /// Whether the program is well-typed w.r.t. the registry and consumes
    /// the input instruction at least once (the reachability rule of
    /// Def. 4.2).
    pub fn well_typed(&self, reg: &ApiRegistry) -> bool {
        let input_ty = ApiType::Inst(self.kind, Side::Source);
        let mut uses_input = false;
        for (i, step) in self.steps.iter().enumerate() {
            let f = reg.get(step.api);
            if f.params.len() != step.args.len() {
                return false;
            }
            for (param, arg) in f.params.iter().zip(&step.args) {
                let actual = match arg {
                    Reg::Input => {
                        uses_input = true;
                        input_ty
                    }
                    Reg::Step(j) => {
                        if *j >= i {
                            return false;
                        }
                        self.step_type(reg, *j)
                    }
                };
                if !param.accepts(actual) {
                    return false;
                }
            }
        }
        let out_ok = self
            .steps
            .last()
            .map(|s| reg.get(s.api).ret == ApiType::Inst(self.kind, Side::Target))
            .unwrap_or(false);
        // Nullary builders (`create_ret_void`, `create_unreachable`, the EH
        // pads) legitimately consume nothing from the input instruction.
        let nullary_root = self.steps.len() == 1 && reg.get(self.steps[0].api).params.is_empty();
        (uses_input || nullary_root) && out_ok
    }

    /// Renders the program as human-readable pseudo-Rust, in the style of
    /// the paper's Fig. 4 listings.
    pub fn render(&self, reg: &ApiRegistry) -> String {
        let mut out = String::new();
        let kind = ApiType::Inst(self.kind, Side::Source);
        let _ = writeln!(out, "|inst: {kind}| {{");
        for (i, step) in self.steps.iter().enumerate() {
            let f = reg.get(step.api);
            let args: Vec<String> = step
                .args
                .iter()
                .map(|r| match r {
                    Reg::Input => "inst".to_string(),
                    Reg::Step(j) => format!("v{j}"),
                })
                .collect();
            if i + 1 == self.steps.len() {
                let _ = writeln!(out, "    {}({})", f.name, args.join(", "));
            } else {
                let _ = writeln!(out, "    let v{i} = {}({});", f.name, args.join(", "));
            }
        }
        out.push('}');
        out
    }

    /// A compact single-line summary, e.g.
    /// `create_br(translate_block(get_successor(inst, 0)))`.
    pub fn summary(&self, reg: &ApiRegistry) -> String {
        fn expr(p: &ApiProgram, reg: &ApiRegistry, r: Reg) -> String {
            match r {
                Reg::Input => "inst".into(),
                Reg::Step(i) => {
                    let step = &p.steps[i];
                    let f = reg.get(step.api);
                    let args: Vec<String> = step.args.iter().map(|&a| expr(p, reg, a)).collect();
                    format!("{}({})", f.name, args.join(", "))
                }
            }
        }
        expr(self, reg, Reg::Step(self.steps.len() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::TranslationCtx;
    use siro_ir::{FuncBuilder, IrVersion, Module, ValueRef};

    /// Hand-assembles the correct `br`-unconditional translator:
    /// `create_br(translate_block(get_successor(inst, 0)))`.
    fn uncond_br_program(reg: &ApiRegistry) -> ApiProgram {
        let const0 = reg.find("const_0").unwrap();
        let get_succ = reg.find_for_kind("get_successor", Opcode::Br).unwrap();
        let tr_block = reg.find("translate_block").unwrap();
        let create_br = reg.find("create_br").unwrap();
        ApiProgram {
            kind: Opcode::Br,
            steps: vec![
                ApiCall {
                    api: const0,
                    args: vec![],
                },
                ApiCall {
                    api: get_succ,
                    args: vec![Reg::Input, Reg::Step(0)],
                },
                ApiCall {
                    api: tr_block,
                    args: vec![Reg::Step(1)],
                },
                ApiCall {
                    api: create_br,
                    args: vec![Reg::Step(2)],
                },
            ],
        }
    }

    #[test]
    fn hand_built_branch_translator_runs() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let x = b.add_block("exit");
        b.position_at_end(e);
        b.br(x);
        b.position_at_end(x);
        b.ret(Some(ValueRef::const_int(i32t, 0)));

        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let prog = uncond_br_program(&reg);
        assert!(prog.well_typed(&reg));

        let mut ctx = TranslationCtx::new(&m, IrVersion::V3_6);
        let sfid = m.func_by_name("main").unwrap();
        let tfid = ctx.clone_signature(sfid);
        ctx.begin_function(sfid, tfid);
        let te = ctx.tgt.func_mut(tfid).add_block("entry");
        let tx = ctx.tgt.func_mut(tfid).add_block("exit");
        ctx.map_block(siro_ir::BlockId::new(0), te);
        ctx.map_block(siro_ir::BlockId::new(1), tx);
        ctx.set_insertion(te);
        let v = prog.run(&reg, &mut ctx, siro_ir::InstId::new(0)).unwrap();
        assert!(matches!(v, ValueRef::Inst(_)));
        let tf = ctx.tgt.func(tfid);
        let inst = tf.inst(v.as_inst().unwrap());
        assert_eq!(inst.opcode, Opcode::Br);
        assert_eq!(inst.operands, vec![ValueRef::Block(tx)]);
    }

    #[test]
    fn well_typed_rejects_bad_programs() {
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let mut prog = uncond_br_program(&reg);
        assert!(prog.well_typed(&reg));
        // Feed the block where a value is expected -> ill-typed.
        let create_ret = reg.find("create_ret").unwrap();
        prog.steps.last_mut().unwrap().api = create_ret;
        assert!(!prog.well_typed(&reg));
    }

    #[test]
    fn render_and_summary_are_readable() {
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let prog = uncond_br_program(&reg);
        let s = prog.summary(&reg);
        assert_eq!(
            s,
            "create_br(translate_block(get_successor(inst, const_0())))"
        );
        let r = prog.render(&reg);
        assert!(r.contains("create_br"));
        assert!(r.starts_with("|inst: Br_s|"));
    }

    #[test]
    fn forward_step_references_rejected() {
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let create_br = reg.find("create_br").unwrap();
        let prog = ApiProgram {
            kind: Opcode::Br,
            steps: vec![ApiCall {
                api: create_br,
                args: vec![Reg::Step(5)],
            }],
        };
        assert!(!prog.well_typed(&reg));
    }
}
