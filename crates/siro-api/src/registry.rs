//! The versioned API registry: every IR-library function the synthesizer may
//! compose, with its typed signature.
//!
//! [`ApiRegistry::for_pair`] assembles, for one `(source, target)` version
//! pair, the three component families of §3.3.1: source-side **IR getters**,
//! target-side **IR builders**, and the skeleton's **operand translators**
//! (`translate_value` / `translate_block` / `translate_type` / ...), plus the
//! constant providers needed for indexed getters. Component names and
//! signatures are *version-dependent* — the API incompatibility the paper's
//! synthesis overcomes (e.g. `create_invoke` requires an explicit function
//! type from 9.0 on, and the call-target getter renames at 11.0).

use std::fmt;
use std::sync::Arc;

use siro_ir::{Instruction, IrVersion, Opcode, ValueRef};

use crate::ctx::TranslationCtx;
use crate::error::{ApiError, ApiResult};
use crate::value::{ApiType, ApiValue, PredValue, Side};

/// The conjunction of all sub-kind predicate values of one instruction
/// (the σ& of Def. 4.3), keyed by predicate-getter name.
pub type PredConj = std::collections::BTreeMap<String, PredValue>;

/// Handle to a component inside an [`ApiRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ApiId(pub u32);

/// Which family a component belongs to (Tab. 2 / Def. 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiKind {
    /// Source-version IR getter.
    Getter,
    /// Target-version IR builder.
    Builder,
    /// Operand-translator interface exposed by the skeleton.
    OperandTranslator,
    /// A constant provider (small integer literals for indexed getters).
    Const,
}

type ApiImpl =
    Arc<dyn Fn(&mut TranslationCtx<'_>, &[ApiValue]) -> ApiResult<ApiValue> + Send + Sync>;

/// One typed API component.
#[derive(Clone)]
pub struct ApiFn {
    /// Version-dependent component name, e.g. `get_called_operand`.
    pub name: String,
    /// Component family.
    pub kind: ApiKind,
    /// Parameter types.
    pub params: Vec<ApiType>,
    /// Return type.
    pub ret: ApiType,
    /// Whether this getter is a sub-kind predicate source (bool/enum getter
    /// in the sense of Def. 3.1).
    pub is_predicate: bool,
    run: ApiImpl,
}

impl fmt::Debug for ApiFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> {}", self.ret)
    }
}

impl ApiFn {
    /// Executes the component.
    ///
    /// # Errors
    ///
    /// Propagates the component's [`ApiError`].
    pub fn call(&self, ctx: &mut TranslationCtx<'_>, args: &[ApiValue]) -> ApiResult<ApiValue> {
        (self.run)(ctx, args)
    }
}

/// All components available for one `(source, target)` version pair.
#[derive(Debug, Clone)]
pub struct ApiRegistry {
    /// Source version (getter side).
    pub src_version: IrVersion,
    /// Target version (builder side).
    pub tgt_version: IrVersion,
    fns: Vec<ApiFn>,
}

impl ApiRegistry {
    /// Builds the registry for a version pair.
    pub fn for_pair(src_version: IrVersion, tgt_version: IrVersion) -> Self {
        let mut reg = ApiRegistry {
            src_version,
            tgt_version,
            fns: Vec::new(),
        };
        reg.register_consts();
        reg.register_operand_translators();
        crate::getters::register(&mut reg);
        crate::builders::register(&mut reg);
        reg
    }

    /// Registers one component; used by the getter/builder modules.
    pub(crate) fn add(
        &mut self,
        name: impl Into<String>,
        kind: ApiKind,
        params: Vec<ApiType>,
        ret: ApiType,
        is_predicate: bool,
        run: impl Fn(&mut TranslationCtx<'_>, &[ApiValue]) -> ApiResult<ApiValue>
            + Send
            + Sync
            + 'static,
    ) -> ApiId {
        let id = ApiId(self.fns.len() as u32);
        self.fns.push(ApiFn {
            name: name.into(),
            kind,
            params,
            ret,
            is_predicate,
            run: Arc::new(run),
        });
        id
    }

    /// The component behind `id`.
    pub fn get(&self, id: ApiId) -> &ApiFn {
        &self.fns[id.0 as usize]
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// Iterates over `(id, component)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ApiId, &ApiFn)> {
        self.fns
            .iter()
            .enumerate()
            .map(|(i, f)| (ApiId(i as u32), f))
    }

    /// All predicate getters applicable to instructions of `kind` (the Σ
    /// alphabet of Def. 3.1 for that kind).
    pub fn predicates_for(&self, kind: Opcode) -> Vec<ApiId> {
        self.iter()
            .filter(|(_, f)| {
                f.is_predicate
                    && f.params.len() == 1
                    && f.params[0] == ApiType::Inst(kind, Side::Source)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// All builders producing instructions of `kind`.
    pub fn builders_for(&self, kind: Opcode) -> Vec<ApiId> {
        self.iter()
            .filter(|(_, f)| {
                f.kind == ApiKind::Builder && f.ret == ApiType::Inst(kind, Side::Target)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Finds a component by exact name (first match).
    pub fn find(&self, name: &str) -> Option<ApiId> {
        self.iter().find(|(_, f)| f.name == name).map(|(id, _)| id)
    }

    /// Finds a component by name whose first parameter accepts source
    /// instructions of `kind`.
    pub fn find_for_kind(&self, name: &str, kind: Opcode) -> Option<ApiId> {
        self.iter()
            .find(|(_, f)| {
                f.name == name
                    && f.params
                        .first()
                        .is_some_and(|p| p.accepts(ApiType::Inst(kind, Side::Source)))
            })
            .map(|(id, _)| id)
    }

    /// Evaluates every predicate getter of `kind` on one instruction — the
    /// conjunction σ& recorded by the sub-kind profiler (Def. 4.3).
    ///
    /// Keys are getter names so that conjunctions compare stably across
    /// registries of different version pairs.
    ///
    /// # Errors
    ///
    /// Propagates getter failures (which cannot normally happen for
    /// predicate getters).
    pub fn subkind_profile(
        &self,
        ctx: &mut TranslationCtx<'_>,
        kind: Opcode,
        inst: siro_ir::InstId,
    ) -> ApiResult<PredConj> {
        let mut conj = PredConj::new();
        for id in self.predicates_for(kind) {
            let f = self.get(id);
            let out = f.call(ctx, &[ApiValue::SrcInst(inst)])?;
            let pv = out
                .as_pred()
                .ok_or_else(|| ApiError::Type(format!("{} is not a predicate", f.name)))?;
            conj.insert(f.name.clone(), pv);
        }
        Ok(conj)
    }

    // ---- Built-in component groups ----------------------------------------

    fn register_consts(&mut self) {
        for i in 0..3u32 {
            self.add(
                format!("const_{i}"),
                ApiKind::Const,
                vec![],
                ApiType::U32,
                false,
                move |_, _| Ok(ApiValue::U32(i)),
            );
        }
    }

    fn register_operand_translators(&mut self) {
        self.add(
            "translate_value",
            ApiKind::OperandTranslator,
            vec![ApiType::Value(Side::Source)],
            ApiType::Value(Side::Target),
            false,
            |ctx, args| {
                let v = src_value_arg(args, 0)?;
                Ok(ApiValue::TgtValue(ctx.translate_value(v)?))
            },
        );
        self.add(
            "translate_block",
            ApiKind::OperandTranslator,
            vec![ApiType::Block(Side::Source)],
            ApiType::Block(Side::Target),
            false,
            |ctx, args| match args.first() {
                Some(ApiValue::SrcBlock(b)) => Ok(ApiValue::TgtBlock(ctx.translate_block(*b)?)),
                _ => Err(ApiError::Type("expected source block".into())),
            },
        );
        self.add(
            "translate_type",
            ApiKind::OperandTranslator,
            vec![ApiType::TypeRef(Side::Source)],
            ApiType::TypeRef(Side::Target),
            false,
            |ctx, args| match args.first() {
                Some(ApiValue::SrcType(t)) => Ok(ApiValue::TgtType(ctx.translate_type(*t))),
                _ => Err(ApiError::Type("expected source type".into())),
            },
        );
        self.add(
            "translate_values",
            ApiKind::OperandTranslator,
            vec![ApiType::ValueList(Side::Source)],
            ApiType::ValueList(Side::Target),
            false,
            |ctx, args| match args.first() {
                Some(ApiValue::Values(Side::Source, vs)) => {
                    let out: ApiResult<Vec<ValueRef>> =
                        vs.iter().map(|&v| ctx.translate_value(v)).collect();
                    Ok(ApiValue::Values(Side::Target, out?))
                }
                _ => Err(ApiError::Type("expected source value list".into())),
            },
        );
        self.add(
            "translate_blocks",
            ApiKind::OperandTranslator,
            vec![ApiType::BlockList(Side::Source)],
            ApiType::BlockList(Side::Target),
            false,
            |ctx, args| match args.first() {
                Some(ApiValue::Blocks(Side::Source, bs)) => {
                    let out: ApiResult<Vec<siro_ir::BlockId>> =
                        bs.iter().map(|&b| ctx.translate_block(b)).collect();
                    Ok(ApiValue::Blocks(Side::Target, out?))
                }
                _ => Err(ApiError::Type("expected source block list".into())),
            },
        );
        self.add(
            "translate_cases",
            ApiKind::OperandTranslator,
            vec![ApiType::CaseList(Side::Source)],
            ApiType::CaseList(Side::Target),
            false,
            |ctx, args| match args.first() {
                Some(ApiValue::Cases(Side::Source, cs)) => {
                    let out: ApiResult<Vec<(ValueRef, siro_ir::BlockId)>> = cs
                        .iter()
                        .map(|&(v, b)| Ok((ctx.translate_value(v)?, ctx.translate_block(b)?)))
                        .collect();
                    Ok(ApiValue::Cases(Side::Target, out?))
                }
                _ => Err(ApiError::Type("expected source case list".into())),
            },
        );
        self.add(
            "translate_incoming",
            ApiKind::OperandTranslator,
            vec![ApiType::PhiList(Side::Source)],
            ApiType::PhiList(Side::Target),
            false,
            |ctx, args| match args.first() {
                Some(ApiValue::Phis(Side::Source, ps)) => {
                    let out: ApiResult<Vec<(ValueRef, siro_ir::BlockId)>> = ps
                        .iter()
                        .map(|&(v, b)| Ok((ctx.translate_value(v)?, ctx.translate_block(b)?)))
                        .collect();
                    Ok(ApiValue::Phis(Side::Target, out?))
                }
                _ => Err(ApiError::Type("expected source phi list".into())),
            },
        );
    }
}

// ---- Shared argument-extraction helpers (used by getters/builders too) ----

/// Extracts the source instruction handle at position `i`.
pub(crate) fn inst_id_arg(args: &[ApiValue], i: usize) -> ApiResult<siro_ir::InstId> {
    match args.get(i) {
        Some(ApiValue::SrcInst(id)) => Ok(*id),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected source instruction, got {other:?}"
        ))),
    }
}

/// Clones the source instruction at position `i` out of the current source
/// function.
pub(crate) fn inst_arg(
    ctx: &TranslationCtx<'_>,
    args: &[ApiValue],
    i: usize,
) -> ApiResult<Instruction> {
    let id = inst_id_arg(args, i)?;
    Ok(ctx.src_func()?.inst(id).clone())
}

/// Extracts a `u32` literal at position `i`.
pub(crate) fn u32_arg(args: &[ApiValue], i: usize) -> ApiResult<u32> {
    match args.get(i) {
        Some(ApiValue::U32(v)) => Ok(*v),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected u32, got {other:?}"
        ))),
    }
}

/// Extracts a source value at position `i`.
pub(crate) fn src_value_arg(args: &[ApiValue], i: usize) -> ApiResult<ValueRef> {
    match args.get(i) {
        Some(ApiValue::SrcValue(v)) => Ok(*v),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected source value, got {other:?}"
        ))),
    }
}

/// Extracts a target value at position `i`.
pub(crate) fn tgt_value_arg(args: &[ApiValue], i: usize) -> ApiResult<ValueRef> {
    match args.get(i) {
        Some(ApiValue::TgtValue(v)) => Ok(*v),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected target value, got {other:?}"
        ))),
    }
}

/// Extracts a target block at position `i`.
pub(crate) fn tgt_block_arg(args: &[ApiValue], i: usize) -> ApiResult<siro_ir::BlockId> {
    match args.get(i) {
        Some(ApiValue::TgtBlock(b)) => Ok(*b),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected target block, got {other:?}"
        ))),
    }
}

/// Extracts a target type at position `i`.
pub(crate) fn tgt_type_arg(args: &[ApiValue], i: usize) -> ApiResult<siro_ir::TypeId> {
    match args.get(i) {
        Some(ApiValue::TgtType(t)) => Ok(*t),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected target type, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_for_every_catalog_pair() {
        for &s in &IrVersion::CATALOG {
            for &t in &IrVersion::CATALOG {
                let r = ApiRegistry::for_pair(s, t);
                assert!(
                    r.len() > 100,
                    "registry for {s}->{t} too small: {}",
                    r.len()
                );
            }
        }
    }

    #[test]
    fn operand_translators_present() {
        let r = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        for n in [
            "translate_value",
            "translate_block",
            "translate_type",
            "translate_values",
            "translate_cases",
            "translate_incoming",
        ] {
            assert!(r.find(n).is_some(), "missing {n}");
        }
    }

    #[test]
    fn call_target_getter_renamed_at_11() {
        let old = ApiRegistry::for_pair(IrVersion::V5_0, IrVersion::V3_6);
        assert!(old.find("get_called_value").is_some());
        assert!(old.find("get_called_operand").is_none());
        let new = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        assert!(new.find("get_called_operand").is_some());
        assert!(new.find("get_called_value").is_none());
    }

    #[test]
    fn builders_gated_by_target_version() {
        let down = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        assert!(down.builders_for(Opcode::Freeze).is_empty());
        let up = ApiRegistry::for_pair(IrVersion::V3_6, IrVersion::V13_0);
        assert!(!up.builders_for(Opcode::Freeze).is_empty());
    }

    #[test]
    fn branch_predicates_found() {
        let r = ApiRegistry::for_pair(IrVersion::V13_0, IrVersion::V3_6);
        let preds = r.predicates_for(Opcode::Br);
        assert!(!preds.is_empty());
        assert!(preds.iter().any(|&p| r.get(p).name == "is_unconditional"));
    }
}
