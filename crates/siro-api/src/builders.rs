//! Target-side IR builders ("construct in-memory IR programs and IR
//! elements", Tab. 2).
//!
//! Builder availability follows the registry's *target* version (no
//! `create_freeze` when targeting 3.6), and builder signatures change at 9.0:
//! `create_call`/`create_invoke`/`create_load`/`create_gep` require an
//! explicit type argument from 9.0 on — the exact API change Fig. 13 of the
//! paper shows for `CreateInvoke`.

use siro_ir::{Instruction, Opcode, Type, TypeId, ValueRef};

use crate::ctx::TranslationCtx;
use crate::error::{ApiError, ApiResult};
use crate::registry::{tgt_block_arg, tgt_type_arg, tgt_value_arg, ApiKind, ApiRegistry};
use crate::value::{ApiType, ApiValue, Side};

const T: Side = Side::Target;

/// Registers all builders for the registry's target version.
pub(crate) fn register(reg: &mut ApiRegistry) {
    let v = reg.tgt_version;
    let explicit = v.builders_require_explicit_type();
    for op in Opcode::ALL {
        if !v.supports(op) {
            continue;
        }
        register_one(reg, op, explicit);
    }
}

fn ret_ty(op: Opcode) -> ApiType {
    ApiType::Inst(op, T)
}

fn value() -> ApiType {
    ApiType::Value(T)
}

fn block() -> ApiType {
    ApiType::Block(T)
}

fn tyref() -> ApiType {
    ApiType::TypeRef(T)
}

/// The function type (ret, params) behind a target callee value.
fn callee_fn_type(ctx: &TranslationCtx<'_>, callee: ValueRef) -> ApiResult<(TypeId, Vec<TypeId>)> {
    match callee {
        ValueRef::Func(fid) => {
            let f = ctx.tgt.func(fid);
            Ok((f.ret_ty, f.params.iter().map(|p| p.ty).collect()))
        }
        ValueRef::InlineAsm(a) => {
            let ty = ctx.tgt.asm(a).ty;
            fn_parts(ctx, ty)
        }
        other => {
            let ty = ctx
                .tgt_value_type(other)
                .ok_or_else(|| ApiError::Type("untyped callee".into()))?;
            match ctx.tgt.types.get(ty) {
                Type::Ptr { pointee, .. } => fn_parts(ctx, *pointee),
                Type::Func { .. } => fn_parts(ctx, ty),
                _ => Err(ApiError::Type("callee is not callable".into())),
            }
        }
    }
}

fn fn_parts(ctx: &TranslationCtx<'_>, ty: TypeId) -> ApiResult<(TypeId, Vec<TypeId>)> {
    match ctx.tgt.types.get(ty) {
        Type::Func { ret, params, .. } => Ok((*ret, params.clone())),
        _ => Err(ApiError::Type("expected function type".into())),
    }
}

fn values_arg(args: &[ApiValue], i: usize) -> ApiResult<Vec<ValueRef>> {
    match args.get(i) {
        Some(ApiValue::Values(Side::Target, vs)) => Ok(vs.clone()),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected target value list, got {other:?}"
        ))),
    }
}

fn blocks_arg(args: &[ApiValue], i: usize) -> ApiResult<Vec<siro_ir::BlockId>> {
    match args.get(i) {
        Some(ApiValue::Blocks(Side::Target, bs)) => Ok(bs.clone()),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected target block list, got {other:?}"
        ))),
    }
}

fn indices_arg(args: &[ApiValue], i: usize) -> ApiResult<Vec<u64>> {
    match args.get(i) {
        Some(ApiValue::Indices(v)) => Ok(v.clone()),
        other => Err(ApiError::Type(format!(
            "arg {i}: expected indices, got {other:?}"
        ))),
    }
}

/// The static type of a target value, required (error when unknown).
fn want_type(ctx: &TranslationCtx<'_>, v: ValueRef) -> ApiResult<TypeId> {
    // Globals and functions are *addresses*: their value type is a pointer.
    match v {
        ValueRef::Global(_) | ValueRef::Func(_) => {
            Err(ApiError::Type("address value needs explicit type".into()))
        }
        _ => ctx
            .tgt_value_type(v)
            .ok_or_else(|| ApiError::Type("operand type unknown".into())),
    }
}

fn walk_agg_path(ctx: &mut TranslationCtx<'_>, mut ty: TypeId, path: &[u64]) -> ApiResult<TypeId> {
    for &i in path {
        ty = match ctx.tgt.types.get(ty).clone() {
            Type::Struct { fields } => *fields
                .get(i as usize)
                .ok_or_else(|| ApiError::OutOfRange("aggregate index".into()))?,
            Type::Array { elem, .. } => elem,
            _ => return Err(ApiError::Type("not an aggregate".into())),
        };
    }
    Ok(ty)
}

fn gep_result(
    ctx: &mut TranslationCtx<'_>,
    src_ty: TypeId,
    indices: &[ValueRef],
) -> ApiResult<TypeId> {
    let mut cur = src_ty;
    for idx in indices.iter().skip(1) {
        cur = match ctx.tgt.types.get(cur).clone() {
            Type::Array { elem, .. } | Type::Vector { elem, .. } => elem,
            Type::Struct { fields } => {
                let i = idx
                    .as_int()
                    .ok_or_else(|| ApiError::Type("struct gep index must be constant".into()))?
                    as usize;
                *fields
                    .get(i)
                    .ok_or_else(|| ApiError::OutOfRange("struct field".into()))?
            }
            _ => return Err(ApiError::Type("gep through scalar".into())),
        };
    }
    Ok(ctx.tgt.types.ptr(cur))
}

#[allow(clippy::too_many_lines)]
fn register_one(reg: &mut ApiRegistry, op: Opcode, explicit: bool) {
    use Opcode::*;
    match op {
        Ret => {
            reg.add(
                "create_ret",
                ApiKind::Builder,
                vec![value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let void = ctx.tgt.types.void();
                    ctx.build(Instruction::new(Ret, void, vec![v])).map(as_inst)
                },
            );
            reg.add(
                "create_ret_void",
                ApiKind::Builder,
                vec![],
                ret_ty(op),
                false,
                |ctx, _| {
                    let void = ctx.tgt.types.void();
                    ctx.build(Instruction::new(Ret, void, vec![])).map(as_inst)
                },
            );
        }
        Br => {
            reg.add(
                "create_br",
                ApiKind::Builder,
                vec![block()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let b = tgt_block_arg(args, 0)?;
                    let void = ctx.tgt.types.void();
                    ctx.build(Instruction::new(Br, void, vec![ValueRef::Block(b)]))
                        .map(as_inst)
                },
            );
            reg.add(
                "create_cond_br",
                ApiKind::Builder,
                vec![value(), block(), block()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let c = tgt_value_arg(args, 0)?;
                    let t = tgt_block_arg(args, 1)?;
                    let f = tgt_block_arg(args, 2)?;
                    let void = ctx.tgt.types.void();
                    ctx.build(Instruction::new(
                        Br,
                        void,
                        vec![c, ValueRef::Block(t), ValueRef::Block(f)],
                    ))
                    .map(as_inst)
                },
            );
        }
        Switch => {
            reg.add(
                "create_switch",
                ApiKind::Builder,
                vec![value(), block(), ApiType::CaseList(T)],
                ret_ty(op),
                false,
                |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let def = tgt_block_arg(args, 1)?;
                    let cases = match args.get(2) {
                        Some(ApiValue::Cases(Side::Target, cs)) => cs.clone(),
                        _ => return Err(ApiError::Type("expected target cases".into())),
                    };
                    let void = ctx.tgt.types.void();
                    let mut ops = vec![v, ValueRef::Block(def)];
                    for (c, b) in cases {
                        ops.push(c);
                        ops.push(ValueRef::Block(b));
                    }
                    ctx.build(Instruction::new(Switch, void, ops)).map(as_inst)
                },
            );
        }
        IndirectBr => {
            reg.add(
                "create_indirect_br",
                ApiKind::Builder,
                vec![value(), ApiType::BlockList(T)],
                ret_ty(op),
                false,
                |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let bs = blocks_arg(args, 1)?;
                    let void = ctx.tgt.types.void();
                    let mut ops = vec![v];
                    ops.extend(bs.into_iter().map(ValueRef::Block));
                    ctx.build(Instruction::new(IndirectBr, void, ops))
                        .map(as_inst)
                },
            );
        }
        Call => {
            if explicit {
                reg.add(
                    "create_call",
                    ApiKind::Builder,
                    vec![tyref(), value(), ApiType::ValueList(T)],
                    ret_ty(op),
                    false,
                    |ctx, args| {
                        let fnty = tgt_type_arg(args, 0)?;
                        let callee = tgt_value_arg(args, 1)?;
                        let call_args = values_arg(args, 2)?;
                        let (ret, _) = fn_parts(ctx, fnty)?;
                        build_call(ctx, Call, ret, callee, call_args, Some(fnty))
                    },
                );
            } else {
                reg.add(
                    "create_call",
                    ApiKind::Builder,
                    vec![value(), ApiType::ValueList(T)],
                    ret_ty(op),
                    false,
                    |ctx, args| {
                        let callee = tgt_value_arg(args, 0)?;
                        let call_args = values_arg(args, 1)?;
                        let (ret, _) = callee_fn_type(ctx, callee)?;
                        build_call(ctx, Call, ret, callee, call_args, None)
                    },
                );
            }
        }
        Invoke => {
            if explicit {
                reg.add(
                    "create_invoke",
                    ApiKind::Builder,
                    vec![tyref(), value(), ApiType::ValueList(T), block(), block()],
                    ret_ty(op),
                    false,
                    |ctx, args| {
                        let fnty = tgt_type_arg(args, 0)?;
                        let callee = tgt_value_arg(args, 1)?;
                        let call_args = values_arg(args, 2)?;
                        let n = tgt_block_arg(args, 3)?;
                        let u = tgt_block_arg(args, 4)?;
                        let (ret, _) = fn_parts(ctx, fnty)?;
                        build_invoke(ctx, ret, callee, call_args, n, u, Some(fnty))
                    },
                );
            } else {
                reg.add(
                    "create_invoke",
                    ApiKind::Builder,
                    vec![value(), ApiType::ValueList(T), block(), block()],
                    ret_ty(op),
                    false,
                    |ctx, args| {
                        let callee = tgt_value_arg(args, 0)?;
                        let call_args = values_arg(args, 1)?;
                        let n = tgt_block_arg(args, 2)?;
                        let u = tgt_block_arg(args, 3)?;
                        let (ret, _) = callee_fn_type(ctx, callee)?;
                        build_invoke(ctx, ret, callee, call_args, n, u, None)
                    },
                );
            }
        }
        CallBr => {
            reg.add(
                "create_callbr",
                ApiKind::Builder,
                vec![
                    tyref(),
                    value(),
                    ApiType::ValueList(T),
                    block(),
                    ApiType::BlockList(T),
                ],
                ret_ty(op),
                false,
                |ctx, args| {
                    let fnty = tgt_type_arg(args, 0)?;
                    let callee = tgt_value_arg(args, 1)?;
                    let call_args = values_arg(args, 2)?;
                    let ft = tgt_block_arg(args, 3)?;
                    let ind = blocks_arg(args, 4)?;
                    let (ret, _) = fn_parts(ctx, fnty)?;
                    let mut ops = vec![callee];
                    let n = call_args.len() as u32;
                    ops.extend(call_args);
                    ops.push(ValueRef::Block(ft));
                    ops.extend(ind.into_iter().map(ValueRef::Block));
                    let mut inst = Instruction::new(CallBr, ret, ops);
                    inst.attrs.num_args = n;
                    inst.attrs.callee_ty = Some(fnty);
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        Resume => {
            reg.add(
                "create_resume",
                ApiKind::Builder,
                vec![value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let void = ctx.tgt.types.void();
                    ctx.build(Instruction::new(Resume, void, vec![v]))
                        .map(as_inst)
                },
            );
        }
        Unreachable => {
            reg.add(
                "create_unreachable",
                ApiKind::Builder,
                vec![],
                ret_ty(op),
                false,
                |ctx, _| {
                    let void = ctx.tgt.types.void();
                    ctx.build(Instruction::new(Unreachable, void, vec![]))
                        .map(as_inst)
                },
            );
        }
        Add | FAdd | Sub | FSub | Mul | FMul | UDiv | SDiv | FDiv | URem | SRem | FRem | Shl
        | LShr | AShr | And | Or | Xor => {
            reg.add(
                format!("create_{}", op.name()),
                ApiKind::Builder,
                vec![value(), value()],
                ret_ty(op),
                false,
                move |ctx, args| {
                    let a = tgt_value_arg(args, 0)?;
                    let b = tgt_value_arg(args, 1)?;
                    let ty = want_type(ctx, a).or_else(|_| want_type(ctx, b))?;
                    ctx.build(Instruction::new(op, ty, vec![a, b])).map(as_inst)
                },
            );
        }
        FNeg => {
            reg.add(
                "create_fneg",
                ApiKind::Builder,
                vec![value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let a = tgt_value_arg(args, 0)?;
                    let ty = want_type(ctx, a)?;
                    ctx.build(Instruction::new(FNeg, ty, vec![a])).map(as_inst)
                },
            );
        }
        Alloca => {
            reg.add(
                "create_alloca",
                ApiKind::Builder,
                vec![tyref()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let ty = tgt_type_arg(args, 0)?;
                    let ptr = ctx.tgt.types.ptr(ty);
                    let mut inst = Instruction::new(Alloca, ptr, vec![]);
                    inst.attrs.alloc_ty = Some(ty);
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        Load => {
            if explicit {
                reg.add(
                    "create_load",
                    ApiKind::Builder,
                    vec![tyref(), value()],
                    ret_ty(op),
                    false,
                    |ctx, args| {
                        let ty = tgt_type_arg(args, 0)?;
                        let p = tgt_value_arg(args, 1)?;
                        let mut inst = Instruction::new(Load, ty, vec![p]);
                        inst.attrs.gep_source_ty = Some(ty);
                        ctx.build(inst).map(as_inst)
                    },
                );
            } else {
                reg.add(
                    "create_load",
                    ApiKind::Builder,
                    vec![value()],
                    ret_ty(op),
                    false,
                    |ctx, args| {
                        let p = tgt_value_arg(args, 0)?;
                        let pty = match p {
                            ValueRef::Global(g) => {
                                let t = ctx.tgt.global(g).ty;
                                ctx.tgt.types.ptr(t)
                            }
                            _ => want_type(ctx, p)?,
                        };
                        let ty = ctx
                            .tgt
                            .types
                            .pointee(pty)
                            .ok_or_else(|| ApiError::Type("load from non-pointer".into()))?;
                        let mut inst = Instruction::new(Load, ty, vec![p]);
                        inst.attrs.gep_source_ty = Some(ty);
                        ctx.build(inst).map(as_inst)
                    },
                );
            }
        }
        Store => {
            reg.add(
                "create_store",
                ApiKind::Builder,
                vec![value(), value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let p = tgt_value_arg(args, 1)?;
                    let void = ctx.tgt.types.void();
                    ctx.build(Instruction::new(Store, void, vec![v, p]))
                        .map(as_inst)
                },
            );
        }
        GetElementPtr => {
            if explicit {
                reg.add(
                    "create_gep",
                    ApiKind::Builder,
                    vec![tyref(), value(), ApiType::ValueList(T)],
                    ret_ty(op),
                    false,
                    |ctx, args| {
                        let src_ty = tgt_type_arg(args, 0)?;
                        let base = tgt_value_arg(args, 1)?;
                        let idx = values_arg(args, 2)?;
                        let rty = gep_result(ctx, src_ty, &idx)?;
                        let mut ops = vec![base];
                        ops.extend(idx);
                        let mut inst = Instruction::new(GetElementPtr, rty, ops);
                        inst.attrs.gep_source_ty = Some(src_ty);
                        ctx.build(inst).map(as_inst)
                    },
                );
            } else {
                reg.add(
                    "create_gep",
                    ApiKind::Builder,
                    vec![value(), ApiType::ValueList(T)],
                    ret_ty(op),
                    false,
                    |ctx, args| {
                        let base = tgt_value_arg(args, 0)?;
                        let idx = values_arg(args, 1)?;
                        let pty = match base {
                            ValueRef::Global(g) => {
                                let t = ctx.tgt.global(g).ty;
                                ctx.tgt.types.ptr(t)
                            }
                            _ => want_type(ctx, base)?,
                        };
                        let src_ty = ctx
                            .tgt
                            .types
                            .pointee(pty)
                            .ok_or_else(|| ApiError::Type("gep on non-pointer".into()))?;
                        let rty = gep_result(ctx, src_ty, &idx)?;
                        let mut ops = vec![base];
                        ops.extend(idx);
                        let mut inst = Instruction::new(GetElementPtr, rty, ops);
                        inst.attrs.gep_source_ty = Some(src_ty);
                        ctx.build(inst).map(as_inst)
                    },
                );
            }
        }
        Fence => {
            reg.add(
                "create_fence",
                ApiKind::Builder,
                vec![ApiType::Ordering],
                ret_ty(op),
                false,
                |ctx, args| {
                    let ord = match args.first() {
                        Some(ApiValue::Ordering(o)) => *o,
                        _ => return Err(ApiError::Type("expected ordering".into())),
                    };
                    let void = ctx.tgt.types.void();
                    let mut inst = Instruction::new(Fence, void, vec![]);
                    inst.attrs.ordering = Some(ord);
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        CmpXchg => {
            reg.add(
                "create_cmpxchg",
                ApiKind::Builder,
                vec![value(), value(), value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let p = tgt_value_arg(args, 0)?;
                    let e = tgt_value_arg(args, 1)?;
                    let n = tgt_value_arg(args, 2)?;
                    let vty = want_type(ctx, e)?;
                    let i1 = ctx.tgt.types.i1();
                    let rty = ctx.tgt.types.struct_(vec![vty, i1]);
                    let mut inst = Instruction::new(CmpXchg, rty, vec![p, e, n]);
                    inst.attrs.ordering = Some(siro_ir::AtomicOrdering::SeqCst);
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        AtomicRmw => {
            reg.add(
                "create_atomicrmw",
                ApiKind::Builder,
                vec![ApiType::RmwOp, value(), value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let rmw = match args.first() {
                        Some(ApiValue::RmwOp(o)) => *o,
                        _ => return Err(ApiError::Type("expected rmw op".into())),
                    };
                    let p = tgt_value_arg(args, 1)?;
                    let v = tgt_value_arg(args, 2)?;
                    let vty = want_type(ctx, v)?;
                    let mut inst = Instruction::new(AtomicRmw, vty, vec![p, v]);
                    inst.attrs.rmw_op = Some(rmw);
                    inst.attrs.ordering = Some(siro_ir::AtomicOrdering::SeqCst);
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        Trunc | ZExt | SExt | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP | PtrToInt
        | IntToPtr | BitCast | AddrSpaceCast => {
            reg.add(
                format!("create_{}", op.name()),
                ApiKind::Builder,
                vec![value(), tyref()],
                ret_ty(op),
                false,
                move |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let to = tgt_type_arg(args, 1)?;
                    ctx.build(Instruction::new(op, to, vec![v])).map(as_inst)
                },
            );
        }
        ICmp => {
            reg.add(
                "create_icmp",
                ApiKind::Builder,
                vec![ApiType::IntPred, value(), value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let pred = match args.first() {
                        Some(ApiValue::IntPred(p)) => *p,
                        _ => return Err(ApiError::Type("expected predicate".into())),
                    };
                    let a = tgt_value_arg(args, 1)?;
                    let b = tgt_value_arg(args, 2)?;
                    let rty = cmp_result_ty(ctx, a, b)?;
                    let mut inst = Instruction::new(ICmp, rty, vec![a, b]);
                    inst.attrs.int_pred = Some(pred);
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        FCmp => {
            reg.add(
                "create_fcmp",
                ApiKind::Builder,
                vec![ApiType::FloatPred, value(), value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let pred = match args.first() {
                        Some(ApiValue::FloatPred(p)) => *p,
                        _ => return Err(ApiError::Type("expected predicate".into())),
                    };
                    let a = tgt_value_arg(args, 1)?;
                    let b = tgt_value_arg(args, 2)?;
                    let rty = cmp_result_ty(ctx, a, b)?;
                    let mut inst = Instruction::new(FCmp, rty, vec![a, b]);
                    inst.attrs.float_pred = Some(pred);
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        Phi => {
            reg.add(
                "create_phi",
                ApiKind::Builder,
                vec![tyref(), ApiType::PhiList(T)],
                ret_ty(op),
                false,
                |ctx, args| {
                    let ty = tgt_type_arg(args, 0)?;
                    let pairs = match args.get(1) {
                        Some(ApiValue::Phis(Side::Target, ps)) => ps.clone(),
                        _ => return Err(ApiError::Type("expected target phi list".into())),
                    };
                    let mut ops = Vec::with_capacity(pairs.len() * 2);
                    for (v, b) in pairs {
                        ops.push(v);
                        ops.push(ValueRef::Block(b));
                    }
                    ctx.build(Instruction::new(Phi, ty, ops)).map(as_inst)
                },
            );
        }
        Select => {
            reg.add(
                "create_select",
                ApiKind::Builder,
                vec![value(), value(), value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let c = tgt_value_arg(args, 0)?;
                    let t = tgt_value_arg(args, 1)?;
                    let f = tgt_value_arg(args, 2)?;
                    let ty = want_type(ctx, t).or_else(|_| want_type(ctx, f))?;
                    ctx.build(Instruction::new(Select, ty, vec![c, t, f]))
                        .map(as_inst)
                },
            );
        }
        VAArg => {
            reg.add(
                "create_va_arg",
                ApiKind::Builder,
                vec![value(), tyref()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let ty = tgt_type_arg(args, 1)?;
                    ctx.build(Instruction::new(VAArg, ty, vec![v])).map(as_inst)
                },
            );
        }
        ExtractElement => {
            reg.add(
                "create_extractelement",
                ApiKind::Builder,
                vec![value(), value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let i = tgt_value_arg(args, 1)?;
                    let vty = want_type(ctx, v)?;
                    let ety = match ctx.tgt.types.get(vty) {
                        Type::Vector { elem, .. } => *elem,
                        _ => return Err(ApiError::Type("not a vector".into())),
                    };
                    ctx.build(Instruction::new(ExtractElement, ety, vec![v, i]))
                        .map(as_inst)
                },
            );
        }
        InsertElement => {
            reg.add(
                "create_insertelement",
                ApiKind::Builder,
                vec![value(), value(), value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let e = tgt_value_arg(args, 1)?;
                    let i = tgt_value_arg(args, 2)?;
                    let vty = want_type(ctx, v)?;
                    ctx.build(Instruction::new(InsertElement, vty, vec![v, e, i]))
                        .map(as_inst)
                },
            );
        }
        ShuffleVector => {
            reg.add(
                "create_shufflevector",
                ApiKind::Builder,
                vec![value(), value(), ApiType::Indices],
                ret_ty(op),
                false,
                |ctx, args| {
                    let a = tgt_value_arg(args, 0)?;
                    let b = tgt_value_arg(args, 1)?;
                    let mask = indices_arg(args, 2)?;
                    let aty = want_type(ctx, a)?;
                    let ety = match ctx.tgt.types.get(aty) {
                        Type::Vector { elem, .. } => *elem,
                        _ => return Err(ApiError::Type("not a vector".into())),
                    };
                    let rty = ctx.tgt.types.vector(ety, mask.len() as u32);
                    let mut inst = Instruction::new(ShuffleVector, rty, vec![a, b]);
                    inst.attrs.indices = mask;
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        ExtractValue => {
            reg.add(
                "create_extractvalue",
                ApiKind::Builder,
                vec![value(), ApiType::Indices],
                ret_ty(op),
                false,
                |ctx, args| {
                    let agg = tgt_value_arg(args, 0)?;
                    let path = indices_arg(args, 1)?;
                    let aty = want_type(ctx, agg)?;
                    let rty = walk_agg_path(ctx, aty, &path)?;
                    let mut inst = Instruction::new(ExtractValue, rty, vec![agg]);
                    inst.attrs.indices = path;
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        InsertValue => {
            reg.add(
                "create_insertvalue",
                ApiKind::Builder,
                vec![value(), value(), ApiType::Indices],
                ret_ty(op),
                false,
                |ctx, args| {
                    let agg = tgt_value_arg(args, 0)?;
                    let v = tgt_value_arg(args, 1)?;
                    let path = indices_arg(args, 2)?;
                    let aty = want_type(ctx, agg)?;
                    let mut inst = Instruction::new(InsertValue, aty, vec![agg, v]);
                    inst.attrs.indices = path;
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        LandingPad => {
            reg.add(
                "create_landingpad",
                ApiKind::Builder,
                vec![tyref(), ApiType::Bool],
                ret_ty(op),
                false,
                |ctx, args| {
                    let ty = tgt_type_arg(args, 0)?;
                    let cleanup = matches!(args.get(1), Some(ApiValue::Bool(true)));
                    let mut inst = Instruction::new(LandingPad, ty, vec![]);
                    inst.attrs.is_cleanup = cleanup;
                    ctx.build(inst).map(as_inst)
                },
            );
        }
        Freeze => {
            reg.add(
                "create_freeze",
                ApiKind::Builder,
                vec![value()],
                ret_ty(op),
                false,
                |ctx, args| {
                    let v = tgt_value_arg(args, 0)?;
                    let ty = want_type(ctx, v)?;
                    ctx.build(Instruction::new(Freeze, ty, vec![v]))
                        .map(as_inst)
                },
            );
        }
        CatchSwitch => {
            reg.add(
                "create_catchswitch",
                ApiKind::Builder,
                vec![ApiType::BlockList(T)],
                ret_ty(op),
                false,
                |ctx, args| {
                    let bs = blocks_arg(args, 0)?;
                    let void = ctx.tgt.types.void();
                    let ops: siro_ir::OpVec = bs.into_iter().map(ValueRef::Block).collect();
                    ctx.build(Instruction::new(CatchSwitch, void, ops))
                        .map(as_inst)
                },
            );
        }
        CatchPad | CleanupPad => {
            reg.add(
                format!("create_{}", op.name()),
                ApiKind::Builder,
                vec![],
                ret_ty(op),
                false,
                move |ctx, _| {
                    let tok = ctx.tgt.types.token();
                    ctx.build(Instruction::new(op, tok, vec![])).map(as_inst)
                },
            );
        }
        CatchRet | CleanupRet => {
            reg.add(
                format!("create_{}", op.name()),
                ApiKind::Builder,
                vec![block()],
                ret_ty(op),
                false,
                move |ctx, args| {
                    let b = tgt_block_arg(args, 0)?;
                    let void = ctx.tgt.types.void();
                    ctx.build(Instruction::new(op, void, vec![ValueRef::Block(b)]))
                        .map(as_inst)
                },
            );
        }
    }
}

fn cmp_result_ty(ctx: &mut TranslationCtx<'_>, a: ValueRef, b: ValueRef) -> ApiResult<TypeId> {
    let ty = want_type(ctx, a).or_else(|_| want_type(ctx, b))?;
    Ok(match ctx.tgt.types.get(ty).clone() {
        Type::Vector { len, .. } => {
            let i1 = ctx.tgt.types.i1();
            ctx.tgt.types.vector(i1, len)
        }
        _ => ctx.tgt.types.i1(),
    })
}

fn build_call(
    ctx: &mut TranslationCtx<'_>,
    op: Opcode,
    ret: TypeId,
    callee: ValueRef,
    call_args: Vec<ValueRef>,
    fnty: Option<TypeId>,
) -> ApiResult<ApiValue> {
    let mut ops = vec![callee];
    let n = call_args.len() as u32;
    ops.extend(call_args);
    let mut inst = Instruction::new(op, ret, ops);
    inst.attrs.num_args = n;
    inst.attrs.callee_ty = fnty;
    ctx.build(inst).map(as_inst)
}

fn build_invoke(
    ctx: &mut TranslationCtx<'_>,
    ret: TypeId,
    callee: ValueRef,
    call_args: Vec<ValueRef>,
    normal: siro_ir::BlockId,
    unwind: siro_ir::BlockId,
    fnty: Option<TypeId>,
) -> ApiResult<ApiValue> {
    let mut ops = vec![callee];
    let n = call_args.len() as u32;
    ops.extend(call_args);
    ops.push(ValueRef::Block(normal));
    ops.push(ValueRef::Block(unwind));
    let mut inst = Instruction::new(Opcode::Invoke, ret, ops);
    inst.attrs.num_args = n;
    inst.attrs.callee_ty = fnty;
    ctx.build(inst).map(as_inst)
}

fn as_inst(v: ValueRef) -> ApiValue {
    ApiValue::TgtValue(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::TranslationCtx;
    use siro_ir::{FuncBuilder, IrVersion, Module};

    fn setup(tgt: IrVersion) -> (Module, ApiRegistry) {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let reg = ApiRegistry::for_pair(IrVersion::V13_0, tgt);
        (m, reg)
    }

    fn fresh_ctx(m: &Module, tgt: IrVersion) -> TranslationCtx<'_> {
        let mut ctx = TranslationCtx::new(m, tgt);
        let sfid = m.func_by_name("main").unwrap();
        let tfid = ctx.clone_signature(sfid);
        ctx.begin_function(sfid, tfid);
        let b = ctx.tgt.func_mut(tfid).add_block("entry");
        ctx.map_block(siro_ir::BlockId::new(0), b);
        ctx.set_insertion(b);
        ctx
    }

    #[test]
    fn create_add_infers_type() {
        let (m, reg) = setup(IrVersion::V3_6);
        let mut ctx = fresh_ctx(&m, IrVersion::V3_6);
        let i32t = ctx.tgt.types.i32();
        let id = reg.find("create_add").unwrap();
        let out = reg
            .get(id)
            .call(
                &mut ctx,
                &[
                    ApiValue::TgtValue(ValueRef::const_int(i32t, 1)),
                    ApiValue::TgtValue(ValueRef::const_int(i32t, 2)),
                ],
            )
            .unwrap();
        match out {
            ApiValue::TgtValue(ValueRef::Inst(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
        let tf = ctx.tgt.func(ctx.tgt_func_id().unwrap());
        assert_eq!(tf.inst_count(), 1);
        assert_eq!(tf.inst(siro_ir::InstId::new(0)).opcode, Opcode::Add);
    }

    #[test]
    fn load_builder_signature_depends_on_version() {
        let (_m, old) = setup(IrVersion::V3_6);
        let id = old.find("create_load").unwrap();
        assert_eq!(old.get(id).params.len(), 1);
        let (_m, new) = setup(IrVersion::V13_0);
        let id = new.find("create_load").unwrap();
        assert_eq!(new.get(id).params.len(), 2);
    }

    #[test]
    fn invoke_builder_signature_matches_fig13() {
        let (_m, old) = setup(IrVersion::V5_0);
        assert_eq!(old.get(old.find("create_invoke").unwrap()).params.len(), 4);
        let (_m, new) = setup(IrVersion::V12_0);
        assert_eq!(new.get(new.find("create_invoke").unwrap()).params.len(), 5);
    }

    #[test]
    fn cond_br_builds_three_operand_branch() {
        let (m, reg) = setup(IrVersion::V3_6);
        let mut ctx = fresh_ctx(&m, IrVersion::V3_6);
        let i1 = ctx.tgt.types.i1();
        let tfid = ctx.tgt_func_id().unwrap();
        let extra = ctx.tgt.func_mut(tfid).add_block("other");
        let id = reg.find("create_cond_br").unwrap();
        reg.get(id)
            .call(
                &mut ctx,
                &[
                    ApiValue::TgtValue(ValueRef::const_int(i1, 1)),
                    ApiValue::TgtBlock(extra),
                    ApiValue::TgtBlock(extra),
                ],
            )
            .unwrap();
        let tf = ctx.tgt.func(tfid);
        let inst = tf.inst(siro_ir::InstId::new(0));
        assert_eq!(inst.opcode, Opcode::Br);
        assert_eq!(inst.operands.len(), 3);
    }

    #[test]
    fn gep_builder_computes_result_type() {
        let (m, reg) = setup(IrVersion::V13_0);
        let mut ctx = fresh_ctx(&m, IrVersion::V13_0);
        let i32t = ctx.tgt.types.i32();
        let i64t = ctx.tgt.types.i64();
        let arr = ctx.tgt.types.array(i32t, 4);
        let parr = ctx.tgt.types.ptr(arr);
        let id = reg.find("create_gep").unwrap();
        let out = reg
            .get(id)
            .call(
                &mut ctx,
                &[
                    ApiValue::TgtType(arr),
                    ApiValue::TgtValue(ValueRef::Null(parr)),
                    ApiValue::Values(
                        Side::Target,
                        vec![ValueRef::const_int(i64t, 0), ValueRef::const_int(i64t, 2)],
                    ),
                ],
            )
            .unwrap();
        let v = match out {
            ApiValue::TgtValue(v) => v,
            other => panic!("unexpected {other:?}"),
        };
        let rty = ctx.tgt_value_type(v).unwrap();
        assert_eq!(ctx.tgt.types.pointee(rty), Some(i32t));
    }
}
