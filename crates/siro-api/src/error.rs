//! Errors raised while executing API components.

use std::fmt;

/// Failure during execution of an API component or translator program.
///
/// A failing component aborts the enclosing candidate translator for the
/// current instruction — the "translation failure" early-rejection signal of
/// the paper's validation pipeline (§6.4 notes most wrong per-test
/// translators die before execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// A getter was applied to the wrong sub-kind (e.g. `get_condition` on
    /// an unconditional branch).
    WrongSubKind(String),
    /// A dynamic type mismatch (component fed the wrong value shape).
    Type(String),
    /// An index was out of range.
    OutOfRange(String),
    /// Something required by the component is missing from the translation
    /// context (e.g. an unmapped function).
    Missing(String),
    /// The component is not available in this version.
    Unsupported(String),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::WrongSubKind(m) => write!(f, "wrong sub-kind: {m}"),
            ApiError::Type(m) => write!(f, "type mismatch: {m}"),
            ApiError::OutOfRange(m) => write!(f, "index out of range: {m}"),
            ApiError::Missing(m) => write!(f, "missing from context: {m}"),
            ApiError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

/// Result alias for API component execution.
pub type ApiResult<T> = Result<T, ApiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ApiError::WrongSubKind("x".into())
            .to_string()
            .contains("sub-kind"));
        assert!(ApiError::Missing("f".into())
            .to_string()
            .contains("missing"));
    }
}
