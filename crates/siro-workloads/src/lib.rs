//! # siro-workloads — synthetic projects and the two compiler frontends
//!
//! The Tab. 4 experiment runs one static analyzer over two IR forms of the
//! same projects: one *compiled* directly with the low-version compiler,
//! one compiled with the high-version compiler and then *translated* down
//! by Siro. The real projects (tmux, libssh, ...) are external inputs to
//! that experiment; what is reproducible is the **mechanism**: the two
//! frontends emit differently-shaped IR for the same source constructs, so
//! the analyzer's reports overlap but differ.
//!
//! This crate provides:
//!
//! * a deterministic project generator whose per-project bug census follows
//!   Tab. 4 of the paper exactly (`new`/`miss`/`shared` per bug kind);
//! * two frontends ([`Frontend::Low`], [`Frontend::High`]) over ONE shared
//!   emission: the high frontend is the low frontend's output run through
//!   the real optimizer pipeline of `siro-opt` (mem2reg, constant folding,
//!   branch folding, DCE) — exactly how newer compilers produce
//!   differently-shaped IR for the same source, which is what creates the
//!   report deltas;
//! * the end-to-end [`run_table4`] pipeline: high-version IR → Siro
//!   translator → analyzer vs. low-version IR → analyzer, diffed.

#![warn(missing_docs)]

use siro_rng::{Rng, SeedableRng, StdRng};

use siro_analysis::{analyze_module, BugKind, ReportDiff};
use siro_core::{InstTranslator, Skeleton};
use siro_ir::{
    FuncBuilder, FuncId, Function, Global, GlobalInit, IrVersion, Module, Param, TypeId, ValueRef,
};

/// How many instances of one bug kind a project plants in each Tab. 4
/// category.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counts {
    /// Found only via the translating (high-version) pipeline.
    pub new: usize,
    /// Found only via the compiling (low-version) pipeline.
    pub miss: usize,
    /// Found by both.
    pub shared: usize,
}

/// The per-kind bug census of a project.
#[derive(Debug, Clone, Copy, Default)]
pub struct BugPlan {
    /// Null-pointer dereferences.
    pub npd: Counts,
    /// Use-after-frees.
    pub uaf: Counts,
    /// File-descriptor leaks.
    pub fdl: Counts,
    /// Memory leaks.
    pub ml: Counts,
}

/// One synthetic project.
#[derive(Debug, Clone)]
pub struct ProjectSpec {
    /// Project name (matches the Tab. 4 rows).
    pub name: &'static str,
    /// The bug census.
    pub plan: BugPlan,
    /// Number of benign filler functions.
    pub filler: usize,
    /// RNG seed for the filler shapes.
    pub seed: u64,
}

const fn counts(new: usize, miss: usize, shared: usize) -> Counts {
    Counts { new, miss, shared }
}

/// The eight projects of Tab. 4 with the paper's exact bug census.
pub fn table4_projects() -> Vec<ProjectSpec> {
    let zero = Counts::default();
    vec![
        ProjectSpec {
            name: "libcapstone",
            plan: BugPlan {
                npd: counts(1, 0, 18),
                ..BugPlan::default()
            },
            filler: 40,
            seed: 0xCA95,
        },
        ProjectSpec {
            name: "tmux",
            plan: BugPlan {
                npd: counts(2, 0, 85),
                uaf: counts(0, 3, 14),
                fdl: zero,
                ml: counts(9, 5, 105),
            },
            filler: 120,
            seed: 0x7311,
        },
        ProjectSpec {
            name: "libssh",
            plan: BugPlan {
                npd: counts(3, 0, 21),
                ml: counts(0, 0, 4),
                ..BugPlan::default()
            },
            filler: 60,
            seed: 0x55A,
        },
        ProjectSpec {
            name: "libuv",
            plan: BugPlan {
                uaf: counts(0, 0, 2),
                ..BugPlan::default()
            },
            filler: 50,
            seed: 0x10B,
        },
        ProjectSpec {
            name: "pbzip",
            plan: BugPlan::default(),
            filler: 25,
            seed: 0xB21,
        },
        ProjectSpec {
            name: "libcjson",
            plan: BugPlan::default(),
            filler: 20,
            seed: 0xC50,
        },
        ProjectSpec {
            name: "http-parser",
            plan: BugPlan::default(),
            filler: 30,
            seed: 0x477,
        },
        ProjectSpec {
            name: "pkg-config",
            plan: BugPlan {
                npd: counts(0, 0, 3),
                fdl: counts(0, 0, 1),
                ..BugPlan::default()
            },
            filler: 15,
            seed: 0x9C0,
        },
    ]
}

/// Which compiler produced the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// The old compiler: emits the naive shape (locals in stack slots,
    /// constant branches kept).
    Low,
    /// The new compiler: the same emission run through the `siro-opt`
    /// pipeline (mem2reg, constant folding, branch folding, DCE).
    High,
}

struct Externs {
    malloc: FuncId,
    free: FuncId,
    open: FuncId,
    close: FuncId,
    sink: FuncId,
}

fn declare_externs(m: &mut Module) -> Externs {
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let i8t = m.types.i8();
    let p8 = m.types.ptr(i8t);
    let void = m.types.void();
    let p = |name: &str, ty: TypeId| Param {
        name: name.into(),
        ty,
    };
    Externs {
        malloc: m.add_func(Function::external("malloc", p8, vec![p("n", i64t)])),
        free: m.add_func(Function::external("free", void, vec![p("p", p8)])),
        open: m.add_func(Function::external("open", i32t, vec![])),
        close: m.add_func(Function::external("close", void, vec![p("fd", i32t)])),
        sink: m.add_func(Function::external("sink", void, vec![p("v", i32t)])),
    }
}

/// Compiles one project with the chosen frontend into the given IR version.
pub fn compile_project(spec: &ProjectSpec, frontend: Frontend, version: IrVersion) -> Module {
    let mut m = Module::new(spec.name.to_string(), version);
    let i8t = m.types.i8();
    let p8 = m.types.ptr(i8t);
    m.add_global(Global {
        name: "published".into(),
        ty: p8,
        init: GlobalInit::Zero,
        is_const: false,
    });
    let ex = declare_externs(&mut m);
    let plan = spec.plan;
    for (kind, c) in [
        (BugKind::Npd, plan.npd),
        (BugKind::Uaf, plan.uaf),
        (BugKind::Fdl, plan.fdl),
        (BugKind::Ml, plan.ml),
    ] {
        for i in 0..c.shared {
            emit_bug(&mut m, &ex, spec.name, kind, Category::Shared, i);
        }
        for i in 0..c.new {
            emit_bug(&mut m, &ex, spec.name, kind, Category::New, i);
        }
        for i in 0..c.miss {
            emit_bug(&mut m, &ex, spec.name, kind, Category::Miss, i);
        }
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    for i in 0..spec.filler {
        emit_filler(&mut m, &ex, spec.name, i, &mut rng);
    }
    // The high-version compiler is the low-version compiler plus its
    // optimizer: slot promotion, constant folding, branch folding, DCE.
    if frontend == Frontend::High {
        siro_opt::optimize(&mut m);
    }
    m
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Category {
    Shared,
    New,
    Miss,
}

impl Category {
    fn tag(self) -> &'static str {
        match self {
            Category::Shared => "shared",
            Category::New => "new",
            Category::Miss => "miss",
        }
    }
}

fn emit_bug(m: &mut Module, ex: &Externs, proj: &str, kind: BugKind, cat: Category, idx: usize) {
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let i8t = m.types.i8();
    let p8 = m.types.ptr(i8t);
    let p32 = m.types.ptr(i32t);
    let void = m.types.void();
    let fname = format!(
        "{proj}_{}_{}_{idx}",
        kind.short_name().to_lowercase(),
        cat.tag()
    );
    let f = FuncBuilder::define(m, fname.clone(), i32t, vec![]);
    let mut b = FuncBuilder::new(m, f);
    let entry = b.add_block("entry");
    b.position_at_end(entry);
    let zero = ValueRef::const_int(i32t, 0);
    let name_inst = |b: &mut FuncBuilder<'_>, v: ValueRef, label: String| {
        if let ValueRef::Inst(id) = v {
            let fid = b.func_id();
            b.module().func_mut(fid).inst_mut(id).name = Some(label);
        }
    };
    // One emission per pattern — both frontends see exactly this source
    // shape; the high frontend then optimizes it.
    match (kind, cat) {
        // ---- Null pointer dereference ---------------------------------
        (BugKind::Npd, Category::Shared) => {
            // A direct unchecked dereference: survives optimization
            // unchanged (the loaded value is returned, so DCE keeps it).
            let v = b.load(i32t, ValueRef::Null(p32));
            name_inst(&mut b, v, format!("{fname}_sink"));
            b.ret(Some(v));
        }
        (BugKind::Npd, Category::New) => {
            // The null is laundered through a stack slot. The sparse
            // analyzer loses it in the unoptimized IR; mem2reg promotes the
            // slot, so the optimized IR dereferences the null directly.
            let slot = b.alloca(p32);
            b.store(ValueRef::Null(p32), slot);
            let q = b.load(p32, slot);
            let v = b.load(i32t, q);
            name_inst(&mut b, v, format!("{fname}_sink"));
            b.ret(Some(v));
        }
        (BugKind::Npd, Category::Miss) => {
            // The dereference sits in a constant-dead branch: the
            // path-insensitive analyzer reports it on unoptimized IR;
            // branch folding + DCE remove it entirely.
            let dead = b.add_block("dead");
            let live = b.add_block("live");
            let c = b.icmp(
                siro_ir::IntPredicate::Eq,
                ValueRef::const_int(i32t, 1),
                ValueRef::const_int(i32t, 2),
            );
            b.cond_br(c, dead, live);
            b.position_at_end(dead);
            let v = b.load(i32t, ValueRef::Null(p32));
            name_inst(&mut b, v, format!("{fname}_sink"));
            b.ret(Some(v));
            b.position_at_end(live);
            b.ret(Some(zero));
        }
        // ---- Use after free ---------------------------------------------
        (BugKind::Uaf, Category::Shared) => {
            let p = b.call(
                p8,
                ValueRef::Func(ex.malloc),
                vec![ValueRef::const_int(i64t, 16)],
            );
            let fr = b.call(void, ValueRef::Func(ex.free), vec![p]);
            name_inst(&mut b, fr, format!("{fname}_free"));
            let v = b.load(i8t, p);
            name_inst(&mut b, v, format!("{fname}_use"));
            let z = b.zext(v, i32t);
            b.ret(Some(z));
        }
        (BugKind::Uaf, Category::New) => {
            // Slot-laundered use after free.
            let p = b.call(
                p8,
                ValueRef::Func(ex.malloc),
                vec![ValueRef::const_int(i64t, 16)],
            );
            let slot = b.alloca(p8);
            b.store(p, slot);
            let fr = b.call(void, ValueRef::Func(ex.free), vec![p]);
            name_inst(&mut b, fr, format!("{fname}_free"));
            let q = b.load(p8, slot);
            let v = b.load(i8t, q);
            name_inst(&mut b, v, format!("{fname}_use"));
            let z = b.zext(v, i32t);
            b.ret(Some(z));
        }
        (BugKind::Uaf, Category::Miss) => {
            // Use in a constant-dead branch.
            let p = b.call(
                p8,
                ValueRef::Func(ex.malloc),
                vec![ValueRef::const_int(i64t, 16)],
            );
            let fr = b.call(void, ValueRef::Func(ex.free), vec![p]);
            name_inst(&mut b, fr, format!("{fname}_free"));
            let dead = b.add_block("dead");
            let live = b.add_block("live");
            let c = b.icmp(
                siro_ir::IntPredicate::Eq,
                ValueRef::const_int(i32t, 1),
                ValueRef::const_int(i32t, 2),
            );
            b.cond_br(c, dead, live);
            b.position_at_end(dead);
            let v = b.load(i8t, p);
            name_inst(&mut b, v, format!("{fname}_use"));
            let z = b.zext(v, i32t);
            b.ret(Some(z));
            b.position_at_end(live);
            b.ret(Some(zero));
        }
        // ---- File-descriptor leak -----------------------------------------
        (BugKind::Fdl, _) => {
            let fd = b.call(i32t, ValueRef::Func(ex.open), vec![]);
            name_inst(&mut b, fd, format!("{fname}_sink"));
            b.call(void, ValueRef::Func(ex.sink), vec![fd]);
            b.ret(Some(zero));
        }
        // ---- Memory leak -----------------------------------------------------
        (BugKind::Ml, Category::Shared) => {
            let p = b.call(
                p8,
                ValueRef::Func(ex.malloc),
                vec![ValueRef::const_int(i64t, 32)],
            );
            name_inst(&mut b, p, format!("{fname}_sink"));
            b.ret(Some(zero));
        }
        (BugKind::Ml, Category::New) => {
            // The only free lives in a constant-dead branch: on unoptimized
            // IR the flow-insensitive leak checker sees "a free exists";
            // the optimizer removes the dead branch and a genuine leak
            // surfaces.
            let p = b.call(
                p8,
                ValueRef::Func(ex.malloc),
                vec![ValueRef::const_int(i64t, 32)],
            );
            name_inst(&mut b, p, format!("{fname}_sink"));
            let dead = b.add_block("dead");
            let live = b.add_block("live");
            let c = b.icmp(
                siro_ir::IntPredicate::Eq,
                ValueRef::const_int(i32t, 1),
                ValueRef::const_int(i32t, 2),
            );
            b.cond_br(c, dead, live);
            b.position_at_end(dead);
            b.call(void, ValueRef::Func(ex.free), vec![p]);
            b.ret(Some(zero));
            b.position_at_end(live);
            b.ret(Some(zero));
        }
        (BugKind::Ml, Category::Miss) => {
            // The free goes through a reloaded slot: the analyzer cannot
            // connect it on unoptimized IR (spurious leak report); mem2reg
            // reconnects it on optimized IR.
            let p = b.call(
                p8,
                ValueRef::Func(ex.malloc),
                vec![ValueRef::const_int(i64t, 32)],
            );
            name_inst(&mut b, p, format!("{fname}_sink"));
            let slot = b.alloca(p8);
            b.store(p, slot);
            let q = b.load(p8, slot);
            b.call(void, ValueRef::Func(ex.free), vec![q]);
            b.ret(Some(zero));
        }
    }
}

/// Benign filler: arithmetic, paired malloc/free, paired open/close, stack
/// round-trips — shapes chosen pseudo-randomly but identically for both
/// frontends.
fn emit_filler(m: &mut Module, ex: &Externs, proj: &str, idx: usize, rng: &mut StdRng) {
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let i8t = m.types.i8();
    let p8 = m.types.ptr(i8t);
    let void = m.types.void();
    let fname = format!("{proj}_fn_{idx}");
    let f = FuncBuilder::define(
        m,
        fname,
        i32t,
        vec![Param {
            name: "x".into(),
            ty: i32t,
        }],
    );
    let mut b = FuncBuilder::new(m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    match rng.gen_range(0..4u32) {
        0 => {
            let k = rng.gen_range(1..7i64);
            let a = b.mul(ValueRef::Arg(0), ValueRef::const_int(i32t, k));
            let c = b.add(a, ValueRef::const_int(i32t, rng.gen_range(0..100i64)));
            let d = b.xor(c, ValueRef::const_int(i32t, 0x55));
            b.ret(Some(d));
        }
        1 => {
            let n = rng.gen_range(8..64i64);
            let p = b.call(
                p8,
                ValueRef::Func(ex.malloc),
                vec![ValueRef::const_int(i64t, n)],
            );
            b.store(ValueRef::const_int(i8t, 7), p);
            let v = b.load(i8t, p);
            b.call(void, ValueRef::Func(ex.free), vec![p]);
            let z = b.zext(v, i32t);
            b.ret(Some(z));
        }
        2 => {
            let fd = b.call(i32t, ValueRef::Func(ex.open), vec![]);
            b.call(void, ValueRef::Func(ex.close), vec![fd]);
            b.ret(Some(fd));
        }
        _ => {
            let slot = b.alloca(i32t);
            b.store(ValueRef::Arg(0), slot);
            let v = b.load(i32t, slot);
            let w = b.ashr(v, ValueRef::const_int(i32t, 1));
            b.ret(Some(w));
        }
    }
}

/// The Tab. 4 result for one project.
#[derive(Debug, Clone)]
pub struct ProjectResult {
    /// Project name.
    pub name: &'static str,
    /// The report diff between the translating and compiling settings.
    pub diff: ReportDiff,
}

/// A Tab. 4 pipeline failure, tagged with the project and the stage that
/// failed so a multi-project run names the culprit.
#[derive(Debug)]
pub struct PipelineError {
    /// The project being processed.
    pub project: &'static str,
    /// The stage that failed (`"translation"`, `"verification"`).
    pub stage: &'static str,
    /// The underlying error.
    pub source: Box<dyn std::error::Error + Send + Sync>,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} failed: {}",
            self.stage, self.project, self.source
        )
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

/// Runs the full Tab. 4 pipeline for every project:
/// compile-high → translate with `translator` → analyze, versus
/// compile-low → analyze; then diff.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the project when translation or
/// verification of a translated module fails.
pub fn run_table4(
    translator: &dyn InstTranslator,
    high: IrVersion,
    low: IrVersion,
) -> Result<Vec<ProjectResult>, PipelineError> {
    let skel = Skeleton::new(low);
    table4_projects()
        .iter()
        .map(|spec| {
            let high_ir = compile_project(spec, Frontend::High, high);
            let translated =
                skel.translate_module(&high_ir, translator)
                    .map_err(|e| PipelineError {
                        project: spec.name,
                        stage: "translation",
                        source: Box::new(e),
                    })?;
            siro_ir::verify::verify_module(&translated).map_err(|e| PipelineError {
                project: spec.name,
                stage: "verification",
                source: Box::new(e),
            })?;
            let low_ir = compile_project(spec, Frontend::Low, low);
            let translating = analyze_module(&translated);
            let compiling = analyze_module(&low_ir);
            Ok(ProjectResult {
                name: spec.name,
                diff: ReportDiff::compare(&translating, &compiling),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_core::ReferenceTranslator;

    #[test]
    fn frontends_emit_verifiable_modules() {
        for spec in table4_projects() {
            for fe in [Frontend::Low, Frontend::High] {
                let m = compile_project(&spec, fe, IrVersion::V12_0);
                siro_ir::verify::verify_module(&m)
                    .unwrap_or_else(|e| panic!("{} ({fe:?}): {e}", spec.name));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &table4_projects()[1];
        let a = compile_project(spec, Frontend::Low, IrVersion::V3_6);
        let b = compile_project(spec, Frontend::Low, IrVersion::V3_6);
        assert_eq!(
            siro_ir::write::write_module(&a),
            siro_ir::write::write_module(&b)
        );
    }

    #[test]
    fn table4_counts_match_the_paper() {
        type CountRow = [(usize, usize, usize); 4];
        let results = run_table4(&ReferenceTranslator, IrVersion::V12_0, IrVersion::V3_6).unwrap();
        let expect: &[(&str, CountRow)] = &[
            ("libcapstone", [(1, 0, 18), (0, 0, 0), (0, 0, 0), (0, 0, 0)]),
            ("tmux", [(2, 0, 85), (0, 3, 14), (0, 0, 0), (9, 5, 105)]),
            ("libssh", [(3, 0, 21), (0, 0, 0), (0, 0, 0), (0, 0, 4)]),
            ("libuv", [(0, 0, 0), (0, 0, 2), (0, 0, 0), (0, 0, 0)]),
            ("pbzip", [(0, 0, 0); 4]),
            ("libcjson", [(0, 0, 0); 4]),
            ("http-parser", [(0, 0, 0); 4]),
            ("pkg-config", [(0, 0, 3), (0, 0, 0), (0, 0, 1), (0, 0, 0)]),
        ];
        for (res, (name, rows)) in results.iter().zip(expect) {
            assert_eq!(res.name, *name);
            for (kind, want) in BugKind::ALL.iter().zip(rows) {
                let got = res.diff.counts_for(*kind);
                assert_eq!(got, *want, "{name}/{kind}");
            }
        }
        // Aggregate accuracy: 253 shared out of 253+15+8 -> 91%.
        let shared: usize = results.iter().map(|r| r.diff.shared.len()).sum();
        let new: usize = results.iter().map(|r| r.diff.new.len()).sum();
        let missing: usize = results.iter().map(|r| r.diff.missing.len()).sum();
        assert_eq!((shared, new, missing), (253, 15, 8));
    }
}
