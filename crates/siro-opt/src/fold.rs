//! Constant folding: arithmetic, comparisons, casts, and selects over
//! constant operands are evaluated at compile time (with the interpreter's
//! exact masked-width semantics) and their uses rewritten.

use std::collections::HashMap;

use siro_ir::{Function, InstId, IntPredicate, Module, Opcode, TypeTable, ValueRef};

/// Folds constants in every defined function. Returns the number of folded
/// instructions.
pub fn fold_constants(module: &mut Module) -> usize {
    let mut folded = 0;
    let types = module.types.clone();
    for fid in module.func_ids().collect::<Vec<_>>() {
        if module.func(fid).is_external {
            continue;
        }
        folded += fold_function(module.func_mut(fid), &types);
    }
    folded
}

fn mask(bits: u32, v: u128) -> u128 {
    if bits >= 128 {
        v
    } else {
        v & ((1u128 << bits) - 1)
    }
}

fn sext(bits: u32, v: u128) -> i128 {
    if bits == 0 || bits >= 128 {
        return v as i128;
    }
    let shift = 128 - bits;
    ((v << shift) as i128) >> shift
}

fn const_int(types: &TypeTable, v: ValueRef) -> Option<(u32, i128, u128)> {
    match v {
        ValueRef::ConstInt { ty, value } => {
            let bits = types.int_bits(ty)?;
            let u = mask(bits, value as u128);
            Some((bits, sext(bits, u), u))
        }
        _ => None,
    }
}

fn fold_function(func: &mut Function, types: &TypeTable) -> usize {
    let mut total = 0;
    loop {
        let mut replace: HashMap<InstId, ValueRef> = HashMap::new();
        for b in func.block_ids() {
            for &iid in &func.block(b).insts {
                let inst = func.inst(iid);
                if let Some(v) = fold_inst(types, inst) {
                    replace.insert(iid, v);
                }
            }
        }
        if replace.is_empty() {
            break;
        }
        total += replace.len();
        for inst in &mut func.insts {
            for op in &mut inst.operands {
                if let ValueRef::Inst(i) = op {
                    if let Some(&v) = replace.get(i) {
                        *op = v;
                    }
                }
            }
        }
        for block in &mut func.blocks {
            block.insts.retain(|i| !replace.contains_key(i));
        }
    }
    total
}

#[allow(clippy::too_many_lines)]
fn fold_inst(types: &TypeTable, inst: &siro_ir::Instruction) -> Option<ValueRef> {
    use Opcode::*;
    match inst.opcode {
        Add | Sub | Mul | UDiv | SDiv | URem | SRem | Shl | LShr | AShr | And | Or | Xor => {
            let (bits, sa, ua) = const_int(types, *inst.operands.first()?)?;
            let (_, sb, ub) = const_int(types, *inst.operands.get(1)?)?;
            let r: i128 = match inst.opcode {
                Add => sa.wrapping_add(sb),
                Sub => sa.wrapping_sub(sb),
                Mul => sa.wrapping_mul(sb),
                UDiv => {
                    if ub == 0 {
                        return None;
                    }
                    (ua / ub) as i128
                }
                SDiv => {
                    if sb == 0 {
                        return None;
                    }
                    sa.wrapping_div(sb)
                }
                URem => {
                    if ub == 0 {
                        return None;
                    }
                    (ua % ub) as i128
                }
                SRem => {
                    if sb == 0 {
                        return None;
                    }
                    sa.wrapping_rem(sb)
                }
                Shl => sa.wrapping_shl((ub % u128::from(bits.max(1))) as u32),
                LShr => (ua >> (ub % u128::from(bits.max(1)))) as i128,
                AShr => sext(bits, mask(bits, ua)) >> (ub % u128::from(bits.max(1))),
                And => sa & sb,
                Or => sa | sb,
                Xor => sa ^ sb,
                _ => unreachable!(),
            };
            Some(ValueRef::ConstInt {
                ty: inst.operands[0].ty_of_const()?,
                value: sext(bits, mask(bits, r as u128)) as i64,
            })
        }
        ICmp => {
            let (_, sa, ua) = const_int(types, *inst.operands.first()?)?;
            let (_, sb, ub) = const_int(types, *inst.operands.get(1)?)?;
            let p = inst.attrs.int_pred?;
            let r = match p {
                IntPredicate::Eq => ua == ub,
                IntPredicate::Ne => ua != ub,
                IntPredicate::Ugt => ua > ub,
                IntPredicate::Uge => ua >= ub,
                IntPredicate::Ult => ua < ub,
                IntPredicate::Ule => ua <= ub,
                IntPredicate::Sgt => sa > sb,
                IntPredicate::Sge => sa >= sb,
                IntPredicate::Slt => sa < sb,
                IntPredicate::Sle => sa <= sb,
            };
            Some(ValueRef::ConstInt {
                ty: inst.ty,
                value: i64::from(r),
            })
        }
        Trunc | ZExt | SExt => {
            let (_, s, u) = const_int(types, *inst.operands.first()?)?;
            let to_bits = types.int_bits(inst.ty)?;
            let value = match inst.opcode {
                Trunc | ZExt => sext(to_bits, mask(to_bits, u)) as i64,
                SExt => sext(to_bits, mask(to_bits, s as u128)) as i64,
                _ => unreachable!(),
            };
            Some(ValueRef::ConstInt { ty: inst.ty, value })
        }
        Select => {
            let (_, _, cond) = const_int(types, *inst.operands.first()?)?;
            let pick = if cond & 1 == 1 {
                inst.operands.get(1)?
            } else {
                inst.operands.get(2)?
            };
            pick.is_constant().then_some(*pick)
        }
        Freeze => {
            let v = *inst.operands.first()?;
            match v {
                ValueRef::ConstInt { .. } | ValueRef::ConstFloat { .. } | ValueRef::Null(_) => {
                    Some(v)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Small helper so folding can reuse the original constant's type id.
trait ConstTy {
    fn ty_of_const(&self) -> Option<siro_ir::TypeId>;
}

impl ConstTy for ValueRef {
    fn ty_of_const(&self) -> Option<siro_ir::TypeId> {
        match self {
            ValueRef::ConstInt { ty, .. } => Some(*ty),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{interp::Machine, verify, FuncBuilder, IrVersion};

    #[test]
    fn arithmetic_chain_folds_to_constants() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let x = b.mul(ValueRef::const_int(i32t, 6), ValueRef::const_int(i32t, 7));
        let y = b.add(x, ValueRef::const_int(i32t, 8));
        let z = b.ashr(y, ValueRef::const_int(i32t, 1));
        b.ret(Some(z));
        let before = Machine::new(&m)
            .run_main()
            .expect("interpreter must not fault")
            .return_int();
        let n = fold_constants(&mut m);
        assert_eq!(n, 3);
        verify::verify_module(&m).expect("pass output must verify");
        assert_eq!(
            Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault")
                .return_int(),
            before
        );
        // main is now a single ret.
        assert_eq!(m.func(siro_ir::FuncId::new(0)).blocks[0].insts.len(), 1);
    }

    #[test]
    fn icmp_and_select_fold() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let c = b.icmp(
            IntPredicate::Slt,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        let v = b.select(
            c,
            ValueRef::const_int(i32t, 5),
            ValueRef::const_int(i32t, 6),
        );
        b.ret(Some(v));
        fold_constants(&mut m);
        let func = m.func(siro_ir::FuncId::new(0));
        assert_eq!(func.blocks[0].insts.len(), 1);
        assert_eq!(
            Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault")
                .return_int(),
            Some(5)
        );
    }

    #[test]
    fn division_by_zero_is_not_folded() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.sdiv(ValueRef::const_int(i32t, 1), ValueRef::const_int(i32t, 0));
        b.ret(Some(v));
        assert_eq!(fold_constants(&mut m), 0);
        // The runtime trap is preserved.
        assert!(Machine::new(&m)
            .run_main()
            .expect("interpreter must not fault")
            .crashed());
    }

    #[test]
    fn casts_fold_with_masked_semantics() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let i8t = m.types.i8();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let i64t = b.module().types.i64();
        let t = b.trunc(ValueRef::const_int(i64t, 300), i8t);
        let s = b.sext(t, i32t);
        b.ret(Some(s));
        fold_constants(&mut m);
        assert_eq!(
            Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault")
                .return_int(),
            Some(44)
        );
    }
}
