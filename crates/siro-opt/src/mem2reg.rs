//! Promotion of stack slots to SSA registers (LLVM's `mem2reg`).
//!
//! A slot is promotable when its address is used *only* as the pointer of
//! loads and stores. Promotion uses the textbook algorithm: phi placement
//! on the iterated dominance frontier of the stores, then a dominator-tree
//! renaming walk.

use std::collections::{HashMap, HashSet};

use siro_analysis::{Cfg, DomTree};
use siro_ir::{BlockId, Function, InstId, Instruction, Module, Opcode, TypeId, ValueRef};

/// Runs mem2reg on every defined function. Returns the number of promoted
/// slots.
pub fn mem2reg(module: &mut Module) -> usize {
    let mut promoted = 0;
    for fid in module.func_ids().collect::<Vec<_>>() {
        if module.func(fid).is_external {
            continue;
        }
        promoted += promote_function(module.func_mut(fid));
    }
    promoted
}

/// Finds the allocas of `func` whose address never escapes.
fn promotable_allocas(func: &Function) -> Vec<InstId> {
    let mut candidates: HashMap<InstId, TypeId> = HashMap::new();
    for b in func.block_ids() {
        for &iid in &func.block(b).insts {
            let inst = func.inst(iid);
            if inst.opcode == Opcode::Alloca && inst.operands.is_empty() {
                if let Some(ty) = inst.attrs.alloc_ty {
                    candidates.insert(iid, ty);
                }
            }
        }
    }
    // Reject any candidate whose address is used outside load/store-pointer
    // position.
    for b in func.block_ids() {
        for &iid in &func.block(b).insts {
            let inst = func.inst(iid);
            for (pos, op) in inst.operands.iter().enumerate() {
                let ValueRef::Inst(def) = op else { continue };
                if !candidates.contains_key(def) {
                    continue;
                }
                let ok = match inst.opcode {
                    Opcode::Load => pos == 0,
                    Opcode::Store => pos == 1,
                    _ => false,
                };
                if !ok {
                    candidates.remove(def);
                }
            }
        }
    }
    let mut v: Vec<InstId> = candidates.into_keys().collect();
    v.sort();
    v
}

fn promote_function(func: &mut Function) -> usize {
    let slots = promotable_allocas(func);
    if slots.is_empty() || func.blocks.is_empty() {
        return 0;
    }
    let slot_set: HashSet<InstId> = slots.iter().copied().collect();
    let slot_ty: HashMap<InstId, TypeId> = slots
        .iter()
        .map(|&s| (s, func.inst(s).attrs.alloc_ty.expect("alloca type")))
        .collect();
    let cfg = Cfg::build(func);
    let dom = DomTree::build(&cfg);

    // Dominance frontiers (Cooper-Harvey-Kennedy).
    let nblocks = func.blocks.len();
    let mut df: Vec<HashSet<BlockId>> = vec![HashSet::new(); nblocks];
    for b in func.block_ids() {
        let preds = cfg.predecessors(b).to_vec();
        if preds.len() < 2 {
            continue;
        }
        let Some(idom_b) = dom.idom(b).or(Some(b)).filter(|_| dom.is_reachable(b)) else {
            continue;
        };
        for p in preds {
            if !dom.is_reachable(p) {
                continue;
            }
            let mut runner = p;
            while runner != idom_b {
                df[runner.index()].insert(b);
                match dom.idom(runner) {
                    Some(d) => runner = d,
                    None => break,
                }
            }
        }
    }

    // Phi placement: iterated dominance frontier of each slot's stores.
    let mut phi_slots: HashMap<(BlockId, InstId), InstId> = HashMap::new();
    for &slot in &slots {
        let mut work: Vec<BlockId> = Vec::new();
        for b in func.block_ids() {
            let stores_here = func.block(b).insts.iter().any(|&i| {
                let inst = func.inst(i);
                inst.opcode == Opcode::Store && inst.operands.get(1) == Some(&ValueRef::Inst(slot))
            });
            if stores_here {
                work.push(b);
            }
        }
        let mut placed: HashSet<BlockId> = HashSet::new();
        while let Some(b) = work.pop() {
            for &frontier in df[b.index()].clone().iter() {
                if placed.insert(frontier) {
                    // Insert an (initially empty) phi at the block head.
                    let phi = Instruction::new(Opcode::Phi, slot_ty[&slot], vec![]);
                    let pid = InstId::new(func.insts.len() as u32);
                    func.insts.push(phi);
                    func.blocks[frontier.index()].insts.insert(0, pid);
                    phi_slots.insert((frontier, slot), pid);
                    work.push(frontier);
                }
            }
        }
    }

    // Renaming walk over the dominator tree.
    let mut dom_children: Vec<Vec<BlockId>> = vec![Vec::new(); nblocks];
    for b in func.block_ids() {
        if let Some(d) = dom.idom(b) {
            dom_children[d.index()].push(b);
        }
    }
    let mut replace: HashMap<InstId, ValueRef> = HashMap::new(); // load -> value
    let mut dead: HashSet<InstId> = HashSet::new(); // removed loads/stores/allocas
    dead.extend(slots.iter().copied());

    struct Frame {
        block: BlockId,
        child_idx: usize,
        pushed: Vec<InstId>, // slots whose stack we pushed in this block
    }
    let mut stacks: HashMap<InstId, Vec<ValueRef>> =
        slots.iter().map(|&s| (s, Vec::new())).collect();
    let current = |stacks: &HashMap<InstId, Vec<ValueRef>>, slot: InstId, ty: TypeId| {
        stacks[&slot].last().copied().unwrap_or(ValueRef::Undef(ty))
    };

    let mut stack_frames = vec![Frame {
        block: BlockId::new(0),
        child_idx: 0,
        pushed: Vec::new(),
    }];
    // Process entry of the first frame.
    let mut entered = vec![false; nblocks];
    while let Some(frame) = stack_frames.last_mut() {
        let b = frame.block;
        if !entered[b.index()] {
            entered[b.index()] = true;
            // 1. Phis placed in this block define new values.
            for (&(pb, slot), &pid) in &phi_slots {
                if pb == b {
                    stacks
                        .get_mut(&slot)
                        .expect("phi_slots only references promotable slots, which all have stacks")
                        .push(ValueRef::Inst(pid));
                    frame.pushed.push(slot);
                }
            }
            // 2. Walk the instructions.
            for &iid in func.blocks[b.index()].insts.clone().iter() {
                let inst = func.inst(iid).clone();
                match inst.opcode {
                    Opcode::Load => {
                        if let Some(ValueRef::Inst(slot)) = inst.operands.first() {
                            if slot_set.contains(slot) {
                                let v = current(&stacks, *slot, slot_ty[slot]);
                                replace.insert(iid, v);
                                dead.insert(iid);
                            }
                        }
                    }
                    Opcode::Store => {
                        if let Some(ValueRef::Inst(slot)) = inst.operands.get(1) {
                            if slot_set.contains(slot) {
                                let stored = inst.operands[0];
                                stacks
                                    .get_mut(slot)
                                    .expect("slot_set membership implies a stack entry")
                                    .push(stored);
                                frame.pushed.push(*slot);
                                dead.insert(iid);
                            }
                        }
                    }
                    _ => {}
                }
            }
            // 3. Fill successor phis.
            for s in cfg.successors(b) {
                for (&(pb, slot), &pid) in &phi_slots {
                    if pb == *s {
                        let v = current(&stacks, slot, slot_ty[&slot]);
                        let phi = func.inst_mut(pid);
                        phi.operands.push(v);
                        phi.operands.push(ValueRef::Block(b));
                    }
                }
            }
        }
        // 4. Recurse into dominator-tree children.
        let children = &dom_children[b.index()];
        if frame.child_idx < children.len() {
            let child = children[frame.child_idx];
            frame.child_idx += 1;
            stack_frames.push(Frame {
                block: child,
                child_idx: 0,
                pushed: Vec::new(),
            });
            continue;
        }
        // 5. Pop this block's definitions.
        let frame = stack_frames
            .pop()
            .expect("loop condition guarantees a live frame");
        for slot in frame.pushed {
            stacks
                .get_mut(&slot)
                .expect("frames only record slots that have stacks")
                .pop();
        }
    }

    // Resolve chained replacements (a load replaced by another dead load).
    let resolve = |mut v: ValueRef, replace: &HashMap<InstId, ValueRef>| {
        let mut fuel = replace.len() + 1;
        while let ValueRef::Inst(i) = v {
            match replace.get(&i) {
                Some(&next) if fuel > 0 => {
                    v = next;
                    fuel -= 1;
                }
                _ => break,
            }
        }
        v
    };
    // Rewrite every operand.
    for inst in &mut func.insts {
        for op in &mut inst.operands {
            *op = resolve(*op, &replace);
        }
    }
    // Remove the dead loads/stores/allocas from the block lists.
    for block in &mut func.blocks {
        block.insts.retain(|i| !dead.contains(i));
    }
    slots.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{interp::Machine, verify, FuncBuilder, IntPredicate, IrVersion};

    fn run(m: &Module) -> Option<i64> {
        Machine::new(m)
            .run_main()
            .expect("interpreter must not fault")
            .return_int()
    }

    #[test]
    fn straight_line_slot_is_promoted() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let slot = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 41), slot);
        let v = b.load(i32t, slot);
        let w = b.add(v, ValueRef::const_int(i32t, 1));
        b.ret(Some(w));
        let before = run(&m);
        let n = mem2reg(&mut m);
        assert_eq!(n, 1);
        verify::verify_module(&m).expect("pass output must verify");
        assert_eq!(run(&m), before);
        // No memory operations remain.
        let func = m.func(siro_ir::FuncId::new(0));
        for bb in &func.blocks {
            for &i in &bb.insts {
                assert!(!matches!(
                    func.inst(i).opcode,
                    Opcode::Alloca | Opcode::Load | Opcode::Store
                ));
            }
        }
    }

    #[test]
    fn diamond_gets_a_phi() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let t = b.add_block("then");
        let el = b.add_block("else");
        let mg = b.add_block("merge");
        b.position_at_end(e);
        let slot = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 0), slot);
        let c = b.icmp(
            IntPredicate::Slt,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        b.cond_br(c, t, el);
        b.position_at_end(t);
        b.store(ValueRef::const_int(i32t, 10), slot);
        b.br(mg);
        b.position_at_end(el);
        b.store(ValueRef::const_int(i32t, 20), slot);
        b.br(mg);
        b.position_at_end(mg);
        let v = b.load(i32t, slot);
        b.ret(Some(v));
        let before = run(&m);
        assert_eq!(before, Some(10));
        mem2reg(&mut m);
        verify::verify_module(&m).expect("pass output must verify");
        assert_eq!(run(&m), before);
        let func = m.func(siro_ir::FuncId::new(0));
        let has_phi = func
            .blocks
            .iter()
            .flat_map(|bb| &bb.insts)
            .any(|&i| func.inst(i).opcode == Opcode::Phi);
        assert!(has_phi, "merge block needs a phi");
    }

    #[test]
    fn loop_promotion_preserves_sum() {
        // sum 0..5 through a memory slot.
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.position_at_end(e);
        let i_slot = b.alloca(i32t);
        let s_slot = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 0), i_slot);
        b.store(ValueRef::const_int(i32t, 0), s_slot);
        b.br(header);
        b.position_at_end(header);
        let i = b.load(i32t, i_slot);
        let c = b.icmp(IntPredicate::Slt, i, ValueRef::const_int(i32t, 5));
        b.cond_br(c, body, exit);
        b.position_at_end(body);
        let s = b.load(i32t, s_slot);
        let s2 = b.add(s, i);
        b.store(s2, s_slot);
        let i2 = b.add(i, ValueRef::const_int(i32t, 1));
        b.store(i2, i_slot);
        b.br(header);
        b.position_at_end(exit);
        let out = b.load(i32t, s_slot);
        b.ret(Some(out));
        assert_eq!(run(&m), Some(10));
        let n = mem2reg(&mut m);
        assert_eq!(n, 2);
        verify::verify_module(&m).expect("pass output must verify");
        assert_eq!(run(&m), Some(10));
    }

    #[test]
    fn escaping_slot_is_not_promoted() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let slot = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 9), slot);
        // Address escapes through ptrtoint.
        let addr = b.ptrtoint(slot, i64t);
        let _ = addr;
        let v = b.load(i32t, slot);
        b.ret(Some(v));
        let n = mem2reg(&mut m);
        assert_eq!(n, 0);
        assert_eq!(run(&m), Some(9));
    }

    #[test]
    fn load_before_any_store_becomes_undef() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let slot = b.alloca(i32t);
        let v = b.load(i32t, slot);
        // Use the (undefined) value so the ret stays well-typed.
        let w = b.and(v, ValueRef::const_int(i32t, 0));
        b.ret(Some(w));
        mem2reg(&mut m);
        verify::verify_module(&m).expect("pass output must verify");
        // Undef & 0 interprets as Undef in our semantics; the program still
        // runs to completion.
        let o = Machine::new(&m)
            .run_main()
            .expect("interpreter must not fault");
        assert!(o.trap().is_none());
    }
}
