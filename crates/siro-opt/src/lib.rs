//! # siro-opt — optimization passes over the siro IR
//!
//! A small but real optimizer: slot promotion ([`mem2reg()`]), constant
//! folding ([`fold_constants`]), CFG simplification ([`simplify_cfg`]), and
//! dead-code elimination ([`dce()`]), composed by [`optimize`].
//!
//! In the reproduction these passes are what makes the *high-version
//! compiler frontend* of the Tab. 4 experiment real: the high frontend is
//! the low frontend's output run through `optimize`, exactly how newer
//! compilers produce differently-shaped IR for the same source program —
//! which is the phenomenon behind the paper's new/miss report deltas.
//!
//! ## Example
//!
//! ```
//! use siro_ir::{FuncBuilder, IntPredicate, IrVersion, Module, ValueRef};
//!
//! let mut m = Module::new("demo", IrVersion::V13_0);
//! let i32t = m.types.i32();
//! let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
//! let mut b = FuncBuilder::new(&mut m, f);
//! let e = b.add_block("entry");
//! b.position_at_end(e);
//! let slot = b.alloca(i32t);
//! b.store(ValueRef::const_int(i32t, 21), slot);
//! let v = b.load(i32t, slot);
//! let w = b.add(v, v);
//! b.ret(Some(w));
//!
//! let stats = siro_opt::optimize(&mut m);
//! assert!(stats.promoted_slots >= 1);
//! // After mem2reg + folding the function is a single `ret i32 42`.
//! assert_eq!(m.func(siro_ir::FuncId::new(0)).blocks[0].insts.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod compact;
pub mod dce;
pub mod fold;
pub mod mem2reg;
pub mod simplify;

pub use compact::compact;
pub use dce::dce;
pub use fold::fold_constants;
pub use mem2reg::mem2reg;
pub use simplify::simplify_cfg;

/// Statistics of one [`optimize`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Stack slots promoted to SSA.
    pub promoted_slots: usize,
    /// Instructions folded to constants.
    pub folded: usize,
    /// Unreachable blocks removed.
    pub removed_blocks: usize,
    /// Dead instructions removed.
    pub removed_insts: usize,
}

/// The standard pipeline: mem2reg, then fold/simplify/DCE to a fixed point.
pub fn optimize(module: &mut siro_ir::Module) -> OptStats {
    let mut stats = OptStats {
        promoted_slots: mem2reg(module),
        ..OptStats::default()
    };
    loop {
        let folded = fold_constants(module);
        let blocks = simplify_cfg(module);
        let insts = dce(module);
        stats.folded += folded;
        stats.removed_blocks += blocks;
        stats.removed_insts += insts;
        if folded + blocks + insts == 0 {
            break;
        }
    }
    compact(module);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{
        interp::Machine, verify, FuncBuilder, IntPredicate, IrVersion, Module, ValueRef,
    };

    #[test]
    fn pipeline_collapses_slot_diamond_to_a_constant_return() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let t = b.add_block("then");
        let el = b.add_block("else");
        let mg = b.add_block("merge");
        b.position_at_end(e);
        let slot = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 1), slot);
        let c = b.icmp(
            IntPredicate::Slt,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        b.cond_br(c, t, el);
        b.position_at_end(t);
        b.store(ValueRef::const_int(i32t, 33), slot);
        b.br(mg);
        b.position_at_end(el);
        b.store(ValueRef::const_int(i32t, 44), slot);
        b.br(mg);
        b.position_at_end(mg);
        let v = b.load(i32t, slot);
        b.ret(Some(v));
        let before = Machine::new(&m)
            .run_main()
            .expect("interpreter must not fault")
            .return_int();
        let stats = optimize(&mut m);
        verify::verify_module(&m).expect("pass output must verify");
        assert_eq!(
            Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault")
                .return_int(),
            before
        );
        assert_eq!(before, Some(33));
        assert_eq!(stats.promoted_slots, 1);
        assert!(stats.removed_blocks >= 2, "{stats:?}");
        // Fully collapsed: one block, one ret.
        let func = m.func(siro_ir::FuncId::new(0));
        assert_eq!(func.blocks.len(), 1);
        assert_eq!(func.blocks[0].insts.len(), 1);
    }

    #[test]
    fn optimizer_preserves_corpus_semantics() {
        // Every synthesis test case must behave identically after the full
        // pipeline — the optimizer is itself IR-based software.
        for case in siro_testcases::full_corpus() {
            let mut m = case.build(IrVersion::V17_0);
            let before = Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault");
            optimize(&mut m);
            verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("{} after optimize: {e}", case.name));
            let after = Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault");
            assert_eq!(
                before.return_int(),
                after.return_int(),
                "case {}",
                case.name
            );
        }
    }
}
