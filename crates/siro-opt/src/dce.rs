//! Dead-code elimination: side-effect-free instructions whose results are
//! never used are removed, iterating to a fixed point.

use std::collections::HashSet;

use siro_ir::{Function, InstId, Module, Opcode, ValueRef};

/// Whether removing an unused instance of `op` can change behaviour.
fn has_side_effects(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Store
            | Opcode::Call
            | Opcode::Invoke
            | Opcode::CallBr
            | Opcode::Fence
            | Opcode::CmpXchg
            | Opcode::AtomicRmw
            | Opcode::Resume
            | Opcode::Unreachable
            | Opcode::VAArg
            | Opcode::LandingPad
            | Opcode::CatchPad
            | Opcode::CleanupPad
            | Opcode::UDiv // may trap on zero
            | Opcode::SDiv
            | Opcode::URem
            | Opcode::SRem
    ) || op.is_terminator()
}

/// Runs DCE on every defined function. Returns the number of removed
/// instructions.
pub fn dce(module: &mut Module) -> usize {
    let mut removed = 0;
    for fid in module.func_ids().collect::<Vec<_>>() {
        if module.func(fid).is_external {
            continue;
        }
        removed += dce_function(module.func_mut(fid));
    }
    removed
}

fn dce_function(func: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut used: HashSet<InstId> = HashSet::new();
        let live_insts: Vec<InstId> = func
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter().copied())
            .collect();
        for &iid in &live_insts {
            for op in &func.inst(iid).operands {
                if let ValueRef::Inst(d) = op {
                    used.insert(*d);
                }
            }
        }
        let dead: HashSet<InstId> = live_insts
            .iter()
            .copied()
            .filter(|&i| !used.contains(&i) && !has_side_effects(func.inst(i).opcode))
            .collect();
        if dead.is_empty() {
            return total;
        }
        total += dead.len();
        for block in &mut func.blocks {
            block.insts.retain(|i| !dead.contains(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{interp::Machine, verify, FuncBuilder, IrVersion};

    #[test]
    fn unused_chain_is_removed_transitively() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let x = b.add(ValueRef::const_int(i32t, 1), ValueRef::const_int(i32t, 2));
        let _y = b.mul(x, ValueRef::const_int(i32t, 3)); // both dead
        b.ret(Some(ValueRef::const_int(i32t, 5)));
        let removed = dce(&mut m);
        assert_eq!(removed, 2);
        verify::verify_module(&m).expect("pass output must verify");
        assert_eq!(
            Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault")
                .return_int(),
            Some(5)
        );
    }

    #[test]
    fn side_effects_survive() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let void = m.types.void();
        let sink = m.add_func(siro_ir::Function::external(
            "sink",
            void,
            vec![siro_ir::Param {
                name: "v".into(),
                ty: i32t,
            }],
        ));
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        // The call result is unused but the call must stay.
        b.call(
            void,
            ValueRef::Func(sink),
            vec![ValueRef::const_int(i32t, 1)],
        );
        // Division may trap: must stay even if unused.
        b.sdiv(ValueRef::const_int(i32t, 4), ValueRef::const_int(i32t, 2));
        let slot = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 3), slot);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let before = m.func(siro_ir::FuncId::new(1)).blocks[0].insts.len();
        let removed = dce(&mut m);
        // Only the unused sdiv? No: sdiv has potential traps -> kept.
        // alloca is used by the store -> kept. Nothing is removable.
        assert_eq!(removed, 0);
        assert_eq!(
            m.func(siro_ir::FuncId::new(1)).blocks[0].insts.len(),
            before
        );
    }
}
