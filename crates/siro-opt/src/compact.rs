//! Arena compaction: transformations leave orphaned instructions behind in
//! the per-function arenas; compaction rebuilds each arena with only the
//! live (block-listed) instructions and remaps every reference.

use std::collections::HashMap;

use siro_ir::{InstId, Module, ValueRef};

/// Compacts every defined function's instruction arena. Returns the number
/// of orphaned instructions dropped.
pub fn compact(module: &mut Module) -> usize {
    let mut dropped = 0;
    for fid in module.func_ids().collect::<Vec<_>>() {
        let func = module.func_mut(fid);
        if func.is_external {
            continue;
        }
        let live: Vec<InstId> = func
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter().copied())
            .collect();
        if live.len() == func.insts.len() {
            continue;
        }
        dropped += func.insts.len() - live.len();
        let remap: HashMap<InstId, InstId> = live
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, InstId::new(new as u32)))
            .collect();
        let mut new_insts = Vec::with_capacity(live.len());
        for &old in &live {
            new_insts.push(func.inst(old).clone());
        }
        for inst in &mut new_insts {
            for op in &mut inst.operands {
                if let ValueRef::Inst(i) = op {
                    *op = ValueRef::Inst(*remap.get(i).expect("live operand"));
                }
            }
        }
        func.insts = new_insts.into();
        for block in &mut func.blocks {
            for iid in &mut block.insts {
                *iid = remap[iid];
            }
        }
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{interp::Machine, verify, FuncBuilder, IrVersion};

    #[test]
    fn compaction_drops_orphans_and_preserves_behaviour() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let slot = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 21), slot);
        let v = b.load(i32t, slot);
        let w = b.add(v, v);
        b.ret(Some(w));
        crate::mem2reg(&mut m); // leaves alloca/store/load orphaned
        let func = m.func(siro_ir::FuncId::new(0));
        assert!(func.insts.len() > func.blocks[0].insts.len());
        let dropped = compact(&mut m);
        assert_eq!(dropped, 3);
        let func = m.func(siro_ir::FuncId::new(0));
        assert_eq!(func.insts.len(), func.blocks[0].insts.len());
        verify::verify_module(&m).expect("pass output must verify");
        assert_eq!(
            Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault")
                .return_int(),
            Some(42)
        );
    }

    #[test]
    fn compaction_is_a_noop_on_clean_functions() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, 1)));
        assert_eq!(compact(&mut m), 0);
    }
}
