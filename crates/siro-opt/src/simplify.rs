//! CFG simplification: constant conditional branches become unconditional,
//! unreachable blocks are removed (with phi incoming lists repaired), and
//! single-incoming phis collapse to their value.

use std::collections::{HashMap, HashSet};

use siro_analysis::Cfg;
use siro_ir::{BlockId, Function, InstId, Instruction, Module, Opcode, ValueRef};

/// Simplifies every defined function's CFG. Returns the number of removed
/// blocks.
pub fn simplify_cfg(module: &mut Module) -> usize {
    let mut removed = 0;
    for fid in module.func_ids().collect::<Vec<_>>() {
        if module.func(fid).is_external {
            continue;
        }
        removed += simplify_function(module.func_mut(fid));
    }
    removed
}

fn simplify_function(func: &mut Function) -> usize {
    if func.blocks.is_empty() {
        return 0;
    }
    let mut removed = 0;
    loop {
        fold_branches(func);
        let mut round = drop_unreachable(func);
        repair_phis(func);
        round += merge_straight_line(func);
        removed += round;
        if round == 0 {
            return removed;
        }
    }
}

/// Merges `b -> s` pairs where `b` ends in an unconditional branch to `s`
/// and `s` has no other predecessor (and no phis — `repair_phis` ran
/// first). Returns the number of merged-away blocks.
fn merge_straight_line(func: &mut Function) -> usize {
    let mut merged = 0;
    loop {
        let cfg = Cfg::build(func);
        let mut pair: Option<(BlockId, BlockId)> = None;
        for b in func.block_ids() {
            let Some(term) = func.terminator(b) else {
                continue;
            };
            if !(term.opcode == Opcode::Br && term.operands.len() == 1) {
                continue;
            }
            let Some(s) = term.operands[0].as_block() else {
                continue;
            };
            if s == b || s.raw() == 0 || cfg.predecessors(s) != [b] {
                continue;
            }
            let s_has_phi = func.blocks[s.index()]
                .insts
                .first()
                .is_some_and(|&i| func.inst(i).opcode == Opcode::Phi);
            if s_has_phi {
                continue;
            }
            pair = Some((b, s));
            break;
        }
        let Some((b, s)) = pair else { return merged };
        // Drop b's branch, splice s's instructions in, and redirect phi
        // references to s's successors.
        func.blocks[b.index()].insts.pop();
        let moved = std::mem::take(&mut func.blocks[s.index()].insts);
        func.blocks[b.index()].insts.extend(moved);
        for inst in &mut func.insts {
            if inst.opcode == Opcode::Phi {
                for op in &mut inst.operands {
                    if *op == ValueRef::Block(s) {
                        *op = ValueRef::Block(b);
                    }
                }
            }
        }
        merged += drop_unreachable(func);
    }
}

/// `br i1 <const>, %a, %b` → `br %taken`; constant `switch` → `br %case`.
fn fold_branches(func: &mut Function) {
    for b in 0..func.blocks.len() {
        let Some(&last) = func.blocks[b].insts.last() else {
            continue;
        };
        let inst = func.inst(last).clone();
        match inst.opcode {
            Opcode::Br if inst.operands.len() == 3 => {
                if let ValueRef::ConstInt { value, .. } = inst.operands[0] {
                    let taken = if value & 1 == 1 {
                        inst.operands[1]
                    } else {
                        inst.operands[2]
                    };
                    *func.inst_mut(last) = Instruction::new(Opcode::Br, inst.ty, vec![taken]);
                }
            }
            Opcode::Switch => {
                if let ValueRef::ConstInt { value, .. } = inst.operands[0] {
                    let mut dest = inst.operands[1];
                    for (case, block) in inst.switch_cases() {
                        if case.as_int() == Some(value) {
                            dest = ValueRef::Block(block);
                            break;
                        }
                    }
                    *func.inst_mut(last) = Instruction::new(Opcode::Br, inst.ty, vec![dest]);
                }
            }
            _ => {}
        }
    }
}

/// Rebuilds the function without blocks unreachable from the entry.
/// Returns how many blocks were removed.
fn drop_unreachable(func: &mut Function) -> usize {
    let cfg = Cfg::build(func);
    let mut reachable: Vec<BlockId> = Vec::new();
    let mut seen = HashSet::new();
    let mut stack = vec![BlockId::new(0)];
    while let Some(b) = stack.pop() {
        if !seen.insert(b) {
            continue;
        }
        reachable.push(b);
        for &s in cfg.successors(b) {
            stack.push(s);
        }
    }
    if seen.len() == func.blocks.len() {
        return 0;
    }
    reachable.sort();
    let remap: HashMap<BlockId, BlockId> = reachable
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, BlockId::new(new as u32)))
        .collect();
    let removed = func.blocks.len() - reachable.len();
    // Rebuild the block list.
    let mut new_blocks = Vec::with_capacity(reachable.len());
    for &old in &reachable {
        new_blocks.push(func.blocks[old.index()].clone());
    }
    func.blocks = new_blocks.into();
    // Rewrite block operands everywhere (dropping phi pairs from removed
    // predecessors happens in `repair_phis`).
    let kept_insts: HashSet<InstId> = func
        .blocks
        .iter()
        .flat_map(|b| b.insts.iter().copied())
        .collect();
    for (i, inst) in func.insts.iter_mut().enumerate() {
        if !kept_insts.contains(&InstId::new(i as u32)) {
            continue;
        }
        if inst.opcode == Opcode::Phi {
            // Remove incoming pairs from now-deleted blocks, then remap.
            let mut ops = Vec::with_capacity(inst.operands.len());
            for pair in inst.operands.chunks(2) {
                if let [v, ValueRef::Block(pb)] = pair {
                    if let Some(&nb) = remap.get(pb) {
                        ops.push(*v);
                        ops.push(ValueRef::Block(nb));
                    }
                }
            }
            inst.operands = ops.into();
        } else {
            for op in &mut inst.operands {
                if let ValueRef::Block(pb) = op {
                    if let Some(&nb) = remap.get(pb) {
                        *op = ValueRef::Block(nb);
                    }
                }
            }
        }
    }
    removed
}

/// Drops phi incoming pairs from blocks that are no longer predecessors and
/// collapses single-incoming phis.
fn repair_phis(func: &mut Function) {
    let cfg = Cfg::build(func);
    let mut replace: HashMap<InstId, ValueRef> = HashMap::new();
    for b in func.block_ids() {
        let preds: HashSet<BlockId> = cfg.predecessors(b).iter().copied().collect();
        for &iid in func.blocks[b.index()].insts.clone().iter() {
            if func.inst(iid).opcode != Opcode::Phi {
                continue;
            }
            let inst = func.inst_mut(iid);
            let mut ops = Vec::with_capacity(inst.operands.len());
            for pair in inst.operands.chunks(2) {
                if let [v, ValueRef::Block(pb)] = pair {
                    if preds.contains(pb) {
                        ops.push(*v);
                        ops.push(ValueRef::Block(*pb));
                    }
                }
            }
            inst.operands = ops.into();
            if inst.operands.len() == 2 {
                replace.insert(iid, inst.operands[0]);
            }
        }
    }
    if replace.is_empty() {
        return;
    }
    // Resolve phi-to-phi chains.
    let resolve = |mut v: ValueRef| {
        let mut fuel = replace.len() + 1;
        while let ValueRef::Inst(i) = v {
            match replace.get(&i) {
                Some(&next) if fuel > 0 => {
                    v = next;
                    fuel -= 1;
                }
                _ => break,
            }
        }
        v
    };
    for inst in &mut func.insts {
        for op in &mut inst.operands {
            *op = resolve(*op);
        }
    }
    for block in &mut func.blocks {
        block.insts.retain(|i| !replace.contains_key(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{interp::Machine, verify, FuncBuilder, IntPredicate, IrVersion};

    #[test]
    fn constant_branch_folds_and_dead_block_is_removed() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let dead = b.add_block("dead");
        let live = b.add_block("live");
        b.position_at_end(e);
        let c = b.icmp(
            IntPredicate::Eq,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        b.cond_br(c, dead, live);
        b.position_at_end(dead);
        b.ret(Some(ValueRef::const_int(i32t, -1)));
        b.position_at_end(live);
        b.ret(Some(ValueRef::const_int(i32t, 4)));
        // Fold the comparison first so the branch condition is a constant.
        crate::fold::fold_constants(&mut m);
        let removed = simplify_cfg(&mut m);
        assert!(removed >= 1, "removed {removed}");
        verify::verify_module(&m).expect("pass output must verify");
        assert_eq!(
            Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault")
                .return_int(),
            Some(4)
        );
        // dead removed, live merged into entry.
        assert_eq!(m.func(siro_ir::FuncId::new(0)).blocks.len(), 1);
    }

    #[test]
    fn constant_switch_folds() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let c1 = b.add_block("c1");
        let c2 = b.add_block("c2");
        let d = b.add_block("d");
        b.position_at_end(e);
        b.switch(ValueRef::const_int(i32t, 2), d, vec![(1, c1), (2, c2)]);
        b.position_at_end(c1);
        b.ret(Some(ValueRef::const_int(i32t, 10)));
        b.position_at_end(c2);
        b.ret(Some(ValueRef::const_int(i32t, 20)));
        b.position_at_end(d);
        b.ret(Some(ValueRef::const_int(i32t, 30)));
        let removed = simplify_cfg(&mut m);
        assert!(removed >= 2, "removed {removed}");
        verify::verify_module(&m).expect("pass output must verify");
        assert_eq!(
            Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault")
                .return_int(),
            Some(20)
        );
        assert_eq!(m.func(siro_ir::FuncId::new(0)).blocks.len(), 1);
    }

    #[test]
    fn phis_lose_edges_from_removed_blocks() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let t = b.add_block("then");
        let el = b.add_block("else");
        let mg = b.add_block("merge");
        b.position_at_end(e);
        let c = b.icmp(
            IntPredicate::Slt,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        b.cond_br(c, t, el);
        b.position_at_end(t);
        b.br(mg);
        b.position_at_end(el);
        b.br(mg);
        b.position_at_end(mg);
        let p = b.phi(
            i32t,
            vec![
                (ValueRef::const_int(i32t, 7), t),
                (ValueRef::const_int(i32t, 9), el),
            ],
        );
        b.ret(Some(p));
        crate::fold::fold_constants(&mut m);
        simplify_cfg(&mut m);
        verify::verify_module(&m).expect("pass output must verify");
        // The else edge died; the single-incoming phi collapsed to 7.
        assert_eq!(
            Machine::new(&m)
                .run_main()
                .expect("interpreter must not fault")
                .return_int(),
            Some(7)
        );
        let func = m.func(siro_ir::FuncId::new(0));
        let any_phi = func
            .blocks
            .iter()
            .flat_map(|bb| &bb.insts)
            .any(|&i| func.inst(i).opcode == Opcode::Phi);
        assert!(!any_phi);
    }
}
