//! Property-based tests: the optimizer pipeline preserves observable
//! behaviour on randomly generated programs, its output is a fixed point,
//! and constant folding of the shift family agrees with the interpreter.
//!
//! Driven by the deterministic `siro-rng` generator (fixed seeds, fixed
//! case counts) so every failure reproduces exactly.

use siro_rng::{Rng, SeedableRng, StdRng};

use siro_ir::{
    interp::Machine, verify, FuncBuilder, Instruction, IrVersion, Module, Opcode, ValueRef,
};
use siro_testcases::gen::generate_cases;

/// optimize() preserves the return value of generated programs.
#[test]
fn optimize_preserves_generated_semantics() {
    let mut rng = StdRng::seed_from_u64(0x0F_01);
    for _ in 0..48 {
        let seed = rng.gen_range(0..u32::MAX as i64) as u64;
        for case in generate_cases(seed, 3, IrVersion::V13_0) {
            let mut m = case.module.clone();
            siro_opt::optimize(&mut m);
            verify::verify_module(&m).unwrap();
            let got = Machine::new(&m).run_main().unwrap().return_int();
            assert_eq!(got, Some(case.oracle), "{}", case.name);
        }
    }
}

/// Running the pipeline twice changes nothing the second time.
#[test]
fn optimize_reaches_a_fixed_point() {
    let mut rng = StdRng::seed_from_u64(0x0F_02);
    for _ in 0..48 {
        let seed = rng.gen_range(0..u32::MAX as i64) as u64;
        for case in generate_cases(seed.wrapping_add(7), 2, IrVersion::V13_0) {
            let mut m = case.module.clone();
            siro_opt::optimize(&mut m);
            let once = siro_ir::write::write_module(&m);
            let stats = siro_opt::optimize(&mut m);
            let twice = siro_ir::write::write_module(&m);
            assert_eq!(&once, &twice);
            assert_eq!(stats.folded, 0);
            assert_eq!(stats.removed_blocks, 0);
            assert_eq!(stats.removed_insts, 0);
        }
    }
}

/// The optimizer never breaks translatability: optimized programs still
/// translate down and behave identically.
#[test]
fn optimized_programs_still_translate() {
    use siro_core::{ReferenceTranslator, Skeleton};
    let mut rng = StdRng::seed_from_u64(0x0F_03);
    for _ in 0..48 {
        let seed = rng.gen_range(0..u32::MAX as i64) as u64;
        for case in generate_cases(seed.wrapping_mul(31), 2, IrVersion::V13_0) {
            let mut m = case.module.clone();
            siro_opt::optimize(&mut m);
            let t = Skeleton::new(IrVersion::V3_6)
                .translate_module(&m, &ReferenceTranslator)
                .unwrap();
            verify::verify_module(&t).unwrap();
            let got = Machine::new(&t).run_main().unwrap().return_int();
            assert_eq!(got, Some(case.oracle), "{}", case.name);
        }
    }
}

/// Runs `op a, b` at the given integer width through the interpreter
/// WITHOUT folding (operands hidden behind a stack round-trip would change
/// shapes; instead compare an unoptimized run against a folded run).
fn shift_program(op: Opcode, width: u32, a: i64, b: i64) -> Module {
    let mut m = Module::new("shift", IrVersion::V13_0);
    let ity = m.types.int(width);
    let i64t = m.types.i64();
    let f = FuncBuilder::define(&mut m, "main", i64t, vec![]);
    let mut bld = FuncBuilder::new(&mut m, f);
    let e = bld.add_block("entry");
    bld.position_at_end(e);
    let v = bld.push(Instruction::new(
        op,
        ity,
        vec![ValueRef::const_int(ity, a), ValueRef::const_int(ity, b)],
    ));
    let wide = bld.sext(v, i64t);
    bld.ret(Some(wide));
    m
}

/// Differential property: constant folding of `shl`/`lshr`/`ashr` agrees
/// with the interpreter on random operands — including shift amounts at and
/// beyond the type width (both sides reduce the amount modulo the width)
/// and across widths 8/16/32/64.
#[test]
fn shift_folding_matches_interpreter() {
    let mut rng = StdRng::seed_from_u64(0x0F_04);
    for case in 0..512 {
        let op = [Opcode::Shl, Opcode::LShr, Opcode::AShr][rng.gen_range(0..3usize)];
        let width = [8u32, 16, 32, 64][rng.gen_range(0..4usize)];
        let a = match rng.gen_range(0..4u32) {
            0 => -1,
            1 => i64::MIN >> (64 - width),
            _ => rng.gen_range(i64::MIN..i64::MAX),
        };
        // Cover in-range, boundary, and beyond-width shift amounts.
        let b = match rng.gen_range(0..4u32) {
            0 => i64::from(width),
            1 => i64::from(width) - 1,
            2 => rng.gen_range(i64::from(width)..4 * i64::from(width)),
            _ => rng.gen_range(0..i64::from(width)),
        };
        let reference = shift_program(op, width, a, b);
        let expect = Machine::new(&reference)
            .run_main()
            .unwrap()
            .return_int()
            .unwrap();
        let mut folded = shift_program(op, width, a, b);
        let n = siro_opt::fold::fold_constants(&mut folded);
        assert!(n >= 1, "case {case}: {op} at i{width} did not fold");
        verify::verify_module(&folded).unwrap();
        let got = Machine::new(&folded)
            .run_main()
            .unwrap()
            .return_int()
            .unwrap();
        assert_eq!(
            got, expect,
            "case {case}: fold({op} i{width} {a}, {b}) diverged from the interpreter"
        );
    }
}
