//! Property-based tests: the optimizer pipeline preserves observable
//! behaviour on randomly generated programs, and its output is a fixed
//! point.

use proptest::prelude::*;

use siro_ir::{interp::Machine, verify, IrVersion};
use siro_testcases::gen::generate_cases;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// optimize() preserves the return value of generated programs.
    #[test]
    fn optimize_preserves_generated_semantics(seed in any::<u32>()) {
        for case in generate_cases(u64::from(seed), 3, IrVersion::V13_0) {
            let mut m = case.module.clone();
            siro_opt::optimize(&mut m);
            verify::verify_module(&m).unwrap();
            let got = Machine::new(&m).run_main().unwrap().return_int();
            prop_assert_eq!(got, Some(case.oracle), "{}", case.name);
        }
    }

    /// Running the pipeline twice changes nothing the second time.
    #[test]
    fn optimize_reaches_a_fixed_point(seed in any::<u32>()) {
        for case in generate_cases(u64::from(seed).wrapping_add(7), 2, IrVersion::V13_0) {
            let mut m = case.module.clone();
            siro_opt::optimize(&mut m);
            let once = siro_ir::write::write_module(&m);
            let stats = siro_opt::optimize(&mut m);
            let twice = siro_ir::write::write_module(&m);
            prop_assert_eq!(&once, &twice);
            prop_assert_eq!(stats.folded, 0);
            prop_assert_eq!(stats.removed_blocks, 0);
            prop_assert_eq!(stats.removed_insts, 0);
        }
    }

    /// The optimizer never breaks translatability: optimized programs still
    /// translate down and behave identically.
    #[test]
    fn optimized_programs_still_translate(seed in any::<u32>()) {
        use siro_core::{ReferenceTranslator, Skeleton};
        for case in generate_cases(u64::from(seed).wrapping_mul(31), 2, IrVersion::V13_0) {
            let mut m = case.module.clone();
            siro_opt::optimize(&mut m);
            let t = Skeleton::new(IrVersion::V3_6)
                .translate_module(&m, &ReferenceTranslator)
                .unwrap();
            verify::verify_module(&t).unwrap();
            let got = Machine::new(&t).run_main().unwrap().return_int();
            prop_assert_eq!(got, Some(case.oracle), "{}", case.name);
        }
    }
}
