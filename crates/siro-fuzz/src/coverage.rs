//! IR-level coverage instrumentation — the transformation a grey-box
//! fuzzer applies to its target (Scenario II of Fig. 1).
//!
//! [`instrument`] inserts a `sink(block_id)` probe at the head of every
//! basic block; [`covered_blocks`] recovers the executed block set from the
//! interpreter's event stream. Because instrumentation is just another
//! IR-based software, it works on *translated* modules too — which is the
//! collaboration the IR version trap otherwise prevents.

use std::collections::BTreeSet;

use siro_ir::{
    interp::{Event, Machine},
    FuncId, Function, Instruction, IrVersion, Module, Opcode, Param, ValueRef,
};

/// Instruments every block of every defined function with a coverage
/// probe. Returns the instrumented copy and the number of probes inserted.
pub fn instrument(module: &Module) -> (Module, usize) {
    let mut out = module.clone();
    let i64t = out.types.i64();
    let void = out.types.void();
    let sink = match out.func_by_name("sink") {
        Some(f) => f,
        None => out.add_func(Function::external(
            "sink",
            void,
            vec![Param {
                name: "v".into(),
                ty: i64t,
            }],
        )),
    };
    let mut probes = 0usize;
    let mut global_block = 0i64;
    for fid in out.func_ids().collect::<Vec<FuncId>>() {
        if out.func(fid).is_external || fid == sink {
            continue;
        }
        let nblocks = out.func(fid).blocks.len();
        for bi in 0..nblocks {
            let id = global_block;
            global_block += 1;
            let func = out.func_mut(fid);
            let mut call = Instruction::new(
                Opcode::Call,
                void,
                vec![
                    ValueRef::Func(sink),
                    ValueRef::ConstInt {
                        ty: i64t,
                        value: id,
                    },
                ],
            );
            call.attrs.num_args = 1;
            // Insert after any leading phis (probes must not break the phi
            // group invariant).
            let block = &func.blocks[bi];
            let mut pos = 0;
            for &iid in &block.insts {
                if func.inst(iid).opcode == Opcode::Phi {
                    pos += 1;
                } else {
                    break;
                }
            }
            let iid = siro_ir::InstId::new(func.insts.len() as u32);
            func.insts.push(call);
            func.blocks[bi].insts.insert(pos, iid);
            probes += 1;
        }
    }
    (out, probes)
}

/// Runs the instrumented module on one input and returns the covered block
/// ids.
pub fn covered_blocks(module: &Module, input: &[u8]) -> BTreeSet<i64> {
    Machine::new(module)
        .with_input(input.to_vec())
        .with_fuel(1_000_000)
        .run_main()
        .map(|o| {
            o.events
                .iter()
                .filter_map(|e| match e {
                    Event::Sink(v) => Some(*v),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Coverage-guided corpus minimisation: keeps the inputs that add new
/// blocks, in order.
pub fn minimise_corpus(module: &Module, inputs: &[Vec<u8>]) -> Vec<usize> {
    let mut seen: BTreeSet<i64> = BTreeSet::new();
    let mut kept = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        let cov = covered_blocks(module, input);
        if cov.iter().any(|b| !seen.contains(b)) {
            seen.extend(cov);
            kept.push(i);
        }
    }
    kept
}

/// Convenience: instruments at one version and checks it still verifies.
///
/// # Errors
///
/// Propagates verification failures on the instrumented module.
pub fn instrument_checked(module: &Module) -> Result<(Module, usize), siro_ir::IrError> {
    let (m, n) = instrument(module);
    siro_ir::verify::verify_module(&m)?;
    Ok((m, n))
}

/// Demonstration helper used by tests and the fuzzing example: builds a
/// two-branch target whose branches cover different blocks.
pub fn demo_target(version: IrVersion) -> Module {
    let mut m = Module::new("cov-demo", version);
    let i32t = m.types.i32();
    let input = m.add_func(Function::external(
        "input",
        i32t,
        vec![Param {
            name: "i".into(),
            ty: i32t,
        }],
    ));
    let f = siro_ir::FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = siro_ir::FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    let yes = b.add_block("yes");
    let no = b.add_block("no");
    b.position_at_end(e);
    let v = b.call(
        i32t,
        ValueRef::Func(input),
        vec![ValueRef::const_int(i32t, 0)],
    );
    let c = b.icmp(siro_ir::IntPredicate::Eq, v, ValueRef::const_int(i32t, 1));
    b.cond_br(c, yes, no);
    b.position_at_end(yes);
    b.ret(Some(ValueRef::const_int(i32t, 1)));
    b.position_at_end(no);
    b.ret(Some(ValueRef::const_int(i32t, 0)));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_cover_branches_distinctly() {
        let m = demo_target(IrVersion::V13_0);
        let (inst, probes) = instrument_checked(&m).unwrap();
        assert_eq!(probes, 3);
        let cov_yes = covered_blocks(&inst, &[1]);
        let cov_no = covered_blocks(&inst, &[0]);
        assert_ne!(cov_yes, cov_no);
        assert_eq!(cov_yes.intersection(&cov_no).count(), 1); // entry shared
    }

    #[test]
    fn minimise_keeps_only_novel_inputs() {
        let m = demo_target(IrVersion::V13_0);
        let (inst, _) = instrument(&m);
        let corpus = vec![vec![0u8], vec![0u8], vec![1u8], vec![1u8]];
        let kept = minimise_corpus(&inst, &corpus);
        assert_eq!(kept, vec![0, 2]);
    }

    #[test]
    fn instrumentation_survives_translation() {
        use siro_core::{ReferenceTranslator, Skeleton};
        let m = demo_target(IrVersion::V13_0);
        let t = Skeleton::new(IrVersion::V3_6)
            .translate_module(&m, &ReferenceTranslator)
            .unwrap();
        let (inst, probes) = instrument_checked(&t).unwrap();
        assert_eq!(probes, 3);
        assert!(!covered_blocks(&inst, &[1]).is_empty());
    }
}
