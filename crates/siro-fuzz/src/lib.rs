//! # siro-fuzz — the Magma-like fuzzing benchmark (Tab. 5)
//!
//! The paper's fuzzing experiment asks: after translating a project's IR
//! from 12.0 down to 3.6, do the known crash inputs (PoCs) still reproduce
//! their CVEs? This crate rebuilds that benchmark:
//!
//! * seven projects mirroring the Magma rows (libpng ... php), each a
//!   module whose `main` reads the PoC byte stream (`input(i)`) and
//!   reaches planted crash sites (`magma_bug(id)`) when guard bytes match;
//! * a PoC corpus per CVE (counts follow Tab. 5, downscalable via
//!   [`Scale`]);
//! * the two non-reproduction mechanisms of the paper, modelled honestly:
//!   - seven libtiff PoCs crash only through a `freeze undef` path, and the
//!     analysis-preserving `freeze -> operand` lowering does not preserve
//!     undef semantics, so they stop reproducing after translation (the
//!     CVE itself still reproduces through its other PoCs — libtiff keeps
//!     its 100% CVE ratio while losing 7 PoCs, as in the paper);
//!   - php hard-codes inline assembly requiring a newer hardware level, so
//!     the translated module fails *backend code generation*
//!     ([`siro_ir::verify::codegen_check`]) and reproduces nothing.
//!
//! The [`coverage`] module adds the block-coverage instrumentation a
//! grey-box fuzzer would apply at the IR level (Scenario II of Fig. 1).

#![warn(missing_docs)]

pub mod coverage;

use siro_rng::{Rng, SeedableRng, StdRng};

use siro_core::{InstTranslator, Skeleton};
use siro_ir::{
    interp::Machine, verify, FuncBuilder, FuncId, Function, InlineAsm, IrVersion, Module, Param,
    ValueRef,
};

/// Downscaling factor for PoC counts (1.0 = the paper's counts). The seven
/// freeze-dependent libtiff PoCs are never scaled away, so the
/// non-reproduction signal survives any scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Reads `SIRO_BENCH_SCALE` (default `0.05`).
    pub fn from_env() -> Self {
        let v = std::env::var("SIRO_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.05);
        Scale(v.clamp(0.001, 1.0))
    }

    fn apply(self, n: usize) -> usize {
        ((n as f64 * self.0).ceil() as usize).max(1)
    }
}

/// One CVE planted in a project.
#[derive(Debug, Clone)]
pub struct CveSpec {
    /// Globally unique id.
    pub id: u32,
    /// Number of ordinary PoCs (already scaled).
    pub pocs: usize,
    /// Additional PoCs whose crash path goes through `freeze undef` — they
    /// stop reproducing after a downgrade translation.
    pub freeze_pocs: usize,
}

/// A Magma-like project.
#[derive(Debug, Clone)]
pub struct FuzzProject {
    /// Project name (Tab. 5 row).
    pub name: &'static str,
    /// Number of fuzz targets (drivers).
    pub targets: usize,
    /// The planted CVEs.
    pub cves: Vec<CveSpec>,
    /// Whether the project hard-codes high-level inline assembly (php).
    pub needs_hw_asm: bool,
    /// Filler functions for bulk.
    pub filler: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A proof-of-crash input.
#[derive(Debug, Clone)]
pub struct Poc {
    /// The CVE it triggers.
    pub cve: u32,
    /// The input byte stream.
    pub bytes: Vec<u8>,
}

fn split_evenly(total: usize, parts: usize) -> Vec<usize> {
    let base = total / parts;
    let rem = total % parts;
    (0..parts).map(|i| base + usize::from(i < rem)).collect()
}

/// The seven Tab. 5 projects with the paper's CVE/PoC census, ordinary PoC
/// counts scaled by `scale`.
pub fn magma_projects(scale: Scale) -> Vec<FuzzProject> {
    // (name, targets, #CVE, #PoC, needs_hw_asm, filler)
    let rows: [(&'static str, usize, usize, usize, bool, usize); 7] = [
        ("libpng", 1, 7, 634, false, 30),
        ("libtiff", 2, 14, 3716, false, 60),
        ("libxml", 2, 15, 19731, false, 80),
        ("poppler", 3, 19, 7343, false, 90),
        ("openssl", 4, 20, 655, false, 100),
        ("sqlite", 1, 20, 1777, false, 70),
        ("php", 1, 16, 1443, true, 60),
    ];
    let mut next_id = 1000;
    rows.iter()
        .enumerate()
        .map(|(pi, &(name, targets, ncve, npoc, hw, filler))| {
            // libtiff: 7 of its PoCs (attached to the first CVE, which also
            // has ordinary PoCs) are freeze-guarded — the 3716 -> 3709
            // delta of the paper, with the CVE ratio staying 100%.
            let freeze_pocs = if name == "libtiff" { 7 } else { 0 };
            let per_cve = split_evenly(npoc - freeze_pocs, ncve);
            let cves = (0..ncve)
                .map(|ci| CveSpec {
                    id: next_id + ci as u32,
                    pocs: scale.apply(per_cve[ci]),
                    freeze_pocs: if ci == 0 { freeze_pocs } else { 0 },
                })
                .collect();
            next_id += 100;
            FuzzProject {
                name,
                targets,
                cves,
                needs_hw_asm: hw,
                filler,
                seed: 0xF022 + pi as u64,
            }
        })
        .collect()
}

const MAGIC: i64 = 0xA5;

/// Builds the project's module in `version` and its PoC corpus.
///
/// Input layout: byte `k` guards CVE index `k`; a CVE with freeze PoCs has
/// a secondary, freeze-guarded path reading byte `#cves`.
pub fn build_project(project: &FuzzProject, version: IrVersion) -> (Module, Vec<Poc>) {
    let mut m = Module::new(project.name.to_string(), version);
    let i32t = m.types.i32();
    let void = m.types.void();
    let input = m.add_func(Function::external(
        "input",
        i32t,
        vec![Param {
            name: "i".into(),
            ty: i32t,
        }],
    ));
    let magma_bug = m.add_func(Function::external(
        "magma_bug",
        void,
        vec![Param {
            name: "id".into(),
            ty: i32t,
        }],
    ));
    let n_guards = project.cves.len();
    let freeze_pos = n_guards as i64;
    // One driver function per target; CVEs distributed round-robin.
    let mut drivers: Vec<FuncId> = Vec::new();
    for t in 0..project.targets {
        let f = FuncBuilder::define(&mut m, format!("driver_{t}"), i32t, vec![]);
        drivers.push(f);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.add_block("entry");
        let mut next_block = entry;
        for (ci, cve) in project.cves.iter().enumerate() {
            if ci % project.targets != t {
                continue;
            }
            // Ordinary guard: input(ci) == MAGIC.
            next_block = emit_guard(
                &mut b, next_block, input, magma_bug, ci as i64, cve.id, false,
            );
            // Secondary freeze-guarded path.
            if cve.freeze_pocs > 0 {
                next_block = emit_guard(
                    &mut b, next_block, input, magma_bug, freeze_pos, cve.id, true,
                );
            }
        }
        b.position_at_end(next_block);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
    }
    // php's hardware-specific inline assembly, executed unconditionally.
    if project.needs_hw_asm {
        let fnty = m.types.func(i32t, vec![]);
        let asm = m.add_asm(InlineAsm {
            text: "crc32 ; hardware-accelerated checksum".into(),
            constraints: "r".into(),
            ty: fnty,
            hw_level: 3,
        });
        let f = FuncBuilder::define(&mut m, "hw_checksum", i32t, vec![]);
        drivers.insert(0, f);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.call(i32t, ValueRef::InlineAsm(asm), vec![]);
        b.ret(Some(v));
    }
    // Bulk filler.
    let mut rng = StdRng::seed_from_u64(project.seed);
    for i in 0..project.filler {
        let f = FuncBuilder::define(&mut m, format!("helper_{i}"), i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let a = ValueRef::const_int(i32t, rng.gen_range(0..1000i64));
        let c = ValueRef::const_int(i32t, rng.gen_range(1..50i64));
        let x = b.mul(a, c);
        let y = b.add(x, ValueRef::const_int(i32t, rng.gen_range(0..9i64)));
        b.ret(Some(y));
    }
    // main: run every driver in order.
    let mainf = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, mainf);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let mut acc = ValueRef::const_int(i32t, 0);
    for d in drivers {
        let r = b.call(i32t, ValueRef::Func(d), vec![]);
        acc = b.add(acc, r);
    }
    b.ret(Some(acc));
    // PoC corpus.
    let len = n_guards + 1;
    let mut pocs = Vec::new();
    for (ci, cve) in project.cves.iter().enumerate() {
        for _ in 0..cve.pocs {
            let mut bytes = benign_bytes(len, &mut rng);
            bytes[ci] = MAGIC as u8;
            pocs.push(Poc { cve: cve.id, bytes });
        }
        for _ in 0..cve.freeze_pocs {
            let mut bytes = benign_bytes(len, &mut rng);
            bytes[n_guards] = MAGIC as u8;
            pocs.push(Poc { cve: cve.id, bytes });
        }
    }
    (m, pocs)
}

fn benign_bytes(len: usize, rng: &mut StdRng) -> Vec<u8> {
    // Anything below 0x80 never trips a guard.
    (0..len).map(|_| rng.gen_range(0..0x80u8)).collect()
}

/// Emits one guarded crash site; returns the continuation block.
fn emit_guard(
    b: &mut FuncBuilder<'_>,
    check: siro_ir::BlockId,
    input: FuncId,
    magma_bug: FuncId,
    byte_pos: i64,
    cve_id: u32,
    freeze_guarded: bool,
) -> siro_ir::BlockId {
    let i32t = b.module().types.i32();
    let void = b.module().types.void();
    let bug = b.add_block(format!(
        "bug_{cve_id}{}",
        if freeze_guarded { "_fz" } else { "" }
    ));
    let cont = b.add_block(format!(
        "cont_{cve_id}{}",
        if freeze_guarded { "_fz" } else { "" }
    ));
    b.position_at_end(check);
    let byte = b.call(
        i32t,
        ValueRef::Func(input),
        vec![ValueRef::const_int(i32t, byte_pos)],
    );
    let guard_val = if freeze_guarded {
        // `freeze` pins the undef to a concrete value (0 here); the
        // analysis-preserving lowering lets the undef escape, so the
        // comparison stops holding after translation.
        let frozen = b.freeze(ValueRef::Undef(i32t));
        b.add(byte, frozen)
    } else {
        byte
    };
    let cond = b.icmp(
        siro_ir::IntPredicate::Eq,
        guard_val,
        ValueRef::const_int(i32t, MAGIC),
    );
    b.cond_br(cond, bug, cont);
    b.position_at_end(bug);
    b.call(
        void,
        ValueRef::Func(magma_bug),
        vec![ValueRef::const_int(i32t, i64::from(cve_id))],
    );
    b.br(cont);
    cont
}

/// Whether `poc` reproduces its CVE on `module`.
pub fn poc_reproduces(module: &Module, poc: &Poc) -> bool {
    Machine::new(module)
        .with_input(poc.bytes.clone())
        .with_fuel(1_000_000)
        .run_main()
        .map(|o| o.triggered_cves().contains(&poc.cve))
        .unwrap_or(false)
}

/// One Tab. 5 row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Project name.
    pub name: &'static str,
    /// Fuzz-target count.
    pub targets: usize,
    /// Instructions in the (source-version) module.
    pub insts: usize,
    /// Planted CVEs.
    pub cves: usize,
    /// PoCs in the (scaled) corpus.
    pub pocs: usize,
    /// CVEs with at least one reproducing PoC after translation.
    pub r_cve: usize,
    /// PoCs reproducing after translation.
    pub r_poc: usize,
}

impl Table5Row {
    /// `R-CVE / #CVE`.
    pub fn cve_ratio(&self) -> f64 {
        if self.cves == 0 {
            return 1.0;
        }
        self.r_cve as f64 / self.cves as f64
    }

    /// `R-PoC / #PoC`.
    pub fn poc_ratio(&self) -> f64 {
        if self.pocs == 0 {
            return 1.0;
        }
        self.r_poc as f64 / self.pocs as f64
    }
}

/// A Tab. 5 pipeline failure, tagged with the Magma project and the stage
/// that failed.
#[derive(Debug)]
pub struct PipelineError {
    /// The Magma project being processed.
    pub project: &'static str,
    /// The stage that failed (`"build verification"`, `"translation"`).
    pub stage: &'static str,
    /// The underlying error.
    pub source: Box<dyn std::error::Error + Send + Sync>,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} failed: {}",
            self.stage, self.project, self.source
        )
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

/// Runs the whole Tab. 5 pipeline: build each project at `high`, translate
/// down to `low` with `translator`, "compile" (verify + backend check), and
/// re-run every PoC.
///
/// # Errors
///
/// Returns a [`PipelineError`] naming the project when a pre-translation
/// build fails to verify or translation itself fails. A *post*-translation
/// compile failure is data, not an error — it shows up as the project
/// reproducing zero PoCs (php in the paper).
pub fn run_table5(
    translator: &dyn InstTranslator,
    high: IrVersion,
    low: IrVersion,
    scale: Scale,
) -> Result<Vec<Table5Row>, PipelineError> {
    let skel = Skeleton::new(low);
    magma_projects(scale)
        .iter()
        .map(|project| {
            let (module, pocs) = build_project(project, high);
            verify::verify_module(&module).map_err(|e| PipelineError {
                project: project.name,
                stage: "build verification",
                source: Box::new(e),
            })?;
            let translated =
                skel.translate_module(&module, translator)
                    .map_err(|e| PipelineError {
                        project: project.name,
                        stage: "translation",
                        source: Box::new(e),
                    })?;
            let compiled = verify::verify_module(&translated).is_ok()
                && verify::codegen_check(&translated).is_ok();
            let mut r_poc = 0;
            let mut reproduced_cves = std::collections::BTreeSet::new();
            if compiled {
                for poc in &pocs {
                    if poc_reproduces(&translated, poc) {
                        r_poc += 1;
                        reproduced_cves.insert(poc.cve);
                    }
                }
            }
            Ok(Table5Row {
                name: project.name,
                targets: project.targets,
                insts: module.inst_count(),
                cves: project.cves.len(),
                pocs: pocs.len(),
                r_cve: reproduced_cves.len(),
                r_poc,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_core::ReferenceTranslator;

    #[test]
    fn pocs_reproduce_natively() {
        let scale = Scale(0.01);
        for project in magma_projects(scale) {
            let (m, pocs) = build_project(&project, IrVersion::V12_0);
            verify::verify_module(&m).unwrap();
            for poc in pocs.iter().take(5) {
                assert!(
                    poc_reproduces(&m, poc),
                    "{}: PoC for CVE {} does not crash natively",
                    project.name,
                    poc.cve
                );
            }
        }
    }

    #[test]
    fn table5_shape_matches_the_paper() {
        let rows = run_table5(
            &ReferenceTranslator,
            IrVersion::V12_0,
            IrVersion::V3_6,
            Scale(0.01),
        )
        .unwrap();
        let by_name: std::collections::HashMap<&str, &Table5Row> =
            rows.iter().map(|r| (r.name, r)).collect();
        // php reproduces nothing (backend codegen failure).
        assert_eq!(by_name["php"].r_poc, 0);
        assert_eq!(by_name["php"].r_cve, 0);
        // libtiff loses exactly its 7 freeze-guarded PoCs, but keeps all
        // CVEs (the first CVE still reproduces through its ordinary PoCs).
        let lt = by_name["libtiff"];
        assert_eq!(lt.pocs - lt.r_poc, 7);
        assert_eq!(lt.r_cve, lt.cves);
        // Everything else reproduces fully.
        for name in ["libpng", "libxml", "poppler", "openssl", "sqlite"] {
            let r = by_name[name];
            assert_eq!(r.r_poc, r.pocs, "{name}");
            assert_eq!(r.r_cve, r.cves, "{name}");
        }
        // Paper aggregates: 111 CVEs total, 95 reproduced (php's 16 lost).
        let cves: usize = rows.iter().map(|r| r.cves).sum();
        let r_cves: usize = rows.iter().map(|r| r.r_cve).sum();
        assert_eq!(cves, 111);
        assert_eq!(r_cves, 95);
    }

    #[test]
    fn full_scale_poc_census_matches_the_paper() {
        // At scale 1.0 the corpus has exactly the paper's 35,299 PoCs.
        let total: usize = magma_projects(Scale(1.0))
            .iter()
            .flat_map(|p| p.cves.iter().map(|c| c.pocs + c.freeze_pocs))
            .sum();
        assert_eq!(total, 35_299);
    }

    #[test]
    fn freeze_guard_crashes_before_translation_only() {
        let project = magma_projects(Scale(0.01))
            .into_iter()
            .find(|p| p.name == "libtiff")
            .unwrap();
        let (m, pocs) = build_project(&project, IrVersion::V12_0);
        let n_guards = project.cves.len();
        // A freeze PoC is one whose magic byte sits at the secondary slot.
        let fp = pocs
            .iter()
            .find(|p| p.bytes[n_guards] == 0xA5)
            .expect("freeze PoC present");
        assert!(poc_reproduces(&m, fp));
        let t = Skeleton::new(IrVersion::V3_6)
            .translate_module(&m, &ReferenceTranslator)
            .unwrap();
        assert!(
            !poc_reproduces(&t, fp),
            "freeze lowering must lose undef pinning"
        );
    }
}
