//! Randomized round-trip and determinism properties for every WIR version.
//!
//! The dialect-generic counterpart of the Siro parser/printer property
//! tests: for a large seeded corpus at each [`WirVersion`] in the catalog,
//!
//! * `parse(write(m))` succeeds and `write` is a parser **fixpoint**;
//! * the reparsed module is structurally equal to the original;
//! * the interpreter is **deterministic**: two runs of the same module
//!   agree exactly (result and step count), and the reparsed module
//!   replays the original's outcome;
//! * churning through 1k parse→drop cycles keeps the thread-local
//!   instruction slab **bounded** — the WIR arena recycles buffers
//!   instead of growing without limit (see `docs/IR_CORE.md`).

use siro_wir::{
    generate_module, generate_straightline, parse_module, verify_module, wir_slab_depth,
    write_module, WirMachine, WirVersion,
};

/// Matches `SLAB_MAX` in `siro-ir`'s arena core; the recycling slab never
/// parks more than this many buffers per thread.
const SLAB_BOUND: usize = 64;

const SEEDS_PER_VERSION: u64 = 200;

#[test]
fn parse_write_round_trip_is_a_fixpoint_for_every_version() {
    for version in WirVersion::CATALOG {
        for seed in 0..SEEDS_PER_VERSION {
            let m = generate_module(seed, version);
            verify_module(&m).unwrap_or_else(|e| panic!("wir{version} seed {seed}: {e}"));
            let text = write_module(&m);
            let reparsed = parse_module(&text)
                .unwrap_or_else(|e| panic!("wir{version} seed {seed}: parse failed: {e}"));
            assert_eq!(
                reparsed, m,
                "wir{version} seed {seed}: reparse is not structural identity"
            );
            assert_eq!(
                write_module(&reparsed),
                text,
                "wir{version} seed {seed}: write is not a parser fixpoint"
            );
        }
    }
}

#[test]
fn straightline_generator_round_trips_too() {
    for version in WirVersion::CATALOG {
        for seed in 0..SEEDS_PER_VERSION {
            let m = generate_straightline(seed, version);
            verify_module(&m).unwrap_or_else(|e| panic!("wir{version} seed {seed}: {e}"));
            let text = write_module(&m);
            let reparsed = parse_module(&text)
                .unwrap_or_else(|e| panic!("wir{version} seed {seed}: parse failed: {e}"));
            assert_eq!(write_module(&reparsed), text, "wir{version} seed {seed}");
        }
    }
}

#[test]
fn interpreter_is_deterministic_and_survives_reparse() {
    for version in WirVersion::CATALOG {
        for seed in 0..SEEDS_PER_VERSION {
            let m = generate_module(seed, version);
            let a = WirMachine::new(&m).run_main();
            let b = WirMachine::new(&m).run_main();
            assert_eq!(a, b, "wir{version} seed {seed}: nondeterministic run");
            let reparsed = parse_module(&write_module(&m)).expect("round trip");
            let c = WirMachine::new(&reparsed).run_main();
            assert_eq!(
                a, c,
                "wir{version} seed {seed}: reparse changed the outcome"
            );
        }
    }
}

#[test]
fn slab_depth_stays_bounded_across_1k_parses() {
    // Pre-render the corpus so the churn loop below measures only the
    // parse→drop cycle.
    let texts: Vec<String> = (0..50u64)
        .flat_map(|seed| {
            WirVersion::CATALOG
                .iter()
                .map(move |&v| write_module(&generate_module(seed, v)))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut max_depth = 0;
    for i in 0..1000 {
        let text = &texts[i % texts.len()];
        let m = parse_module(text).expect("corpus text parses");
        drop(m);
        max_depth = max_depth.max(wir_slab_depth());
    }
    assert!(
        max_depth <= SLAB_BOUND,
        "WIR slab grew to {max_depth} parked buffers (bound {SLAB_BOUND}); \
         arena recycling regressed"
    );
    assert!(
        max_depth > 0,
        "slab never parked a buffer; recycling is not engaged"
    );
}
