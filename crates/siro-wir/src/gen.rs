//! Seeded WIR program generation for property tests and fuzzing.
//!
//! Two generators, both deterministic in `(seed, version)` and both
//! producing modules that validate by construction:
//!
//! * [`generate_module`] — the general generator: straight-line arithmetic
//!   plus structured control (block-skip, bounded loops, and `br_table`
//!   dispatch where the version allows), used by the round-trip property
//!   tests and the WIR→WIR differential oracle.
//! * [`generate_straightline`] — the raisable subset (no control flow, no
//!   calls), used by the cross-dialect fuzz loop; it deliberately
//!   over-samples division edge cases (`0`, `-1`, `MIN`) because that is
//!   where the two dialects' semantics genuinely differ.

use siro_rng::{Rng, SeedableRng, StdRng};

use crate::inst::{WBin, WCmp, WTy, WirInst};
use crate::module::{WirFunc, WirModule};
use crate::version::WirVersion;

/// Interesting i32 constants, over-weighting arithmetic edge cases.
const CONST_POOL: [i64; 10] = [
    0,
    1,
    -1,
    2,
    7,
    42,
    -1_000_003,
    i32::MAX as i64,
    i32::MIN as i64,
    13,
];

struct Gen {
    rng: StdRng,
    version: WirVersion,
}

impl Gen {
    fn konst(&mut self) -> WirInst {
        WirInst::Const(
            WTy::I32,
            CONST_POOL[self.rng.gen_range(0..CONST_POOL.len())],
        )
    }

    /// Emits instructions pushing exactly one i32 onto the stack.
    fn expr(&mut self, f: &mut WirFunc, depth: usize) {
        let n_locals = f.local_count() as u32;
        let choice = if depth == 0 {
            self.rng.gen_range(0..2)
        } else {
            self.rng.gen_range(0..8)
        };
        match choice {
            0 => {
                let c = self.konst();
                f.body.alloc(c);
            }
            1 => {
                let i = self.rng.gen_range(0..n_locals);
                f.body.alloc(WirInst::LocalGet(i));
            }
            2 | 3 => {
                self.expr(f, depth - 1);
                self.expr(f, depth - 1);
                let op = WBin::ALL[self.rng.gen_range(0..WBin::ALL.len())];
                f.body.alloc(WirInst::Binop(WTy::I32, op));
            }
            4 => {
                self.expr(f, depth - 1);
                self.expr(f, depth - 1);
                let op = WCmp::ALL[self.rng.gen_range(0..WCmp::ALL.len())];
                f.body.alloc(WirInst::Cmp(WTy::I32, op));
            }
            5 => {
                self.expr(f, depth - 1);
                f.body.alloc(WirInst::Eqz(WTy::I32));
            }
            6 if self.version.supports(crate::inst::WKind::Select) => {
                self.expr(f, depth - 1);
                self.expr(f, depth - 1);
                self.expr(f, depth - 1);
                f.body.alloc(WirInst::Select);
            }
            7 if self.version.supports(crate::inst::WKind::LocalTee) => {
                self.expr(f, depth - 1);
                let i = self.rng.gen_range(0..n_locals);
                f.body.alloc(WirInst::LocalTee(i));
            }
            _ => {
                let c = self.konst();
                f.body.alloc(c);
            }
        }
    }

    /// Emits a height-neutral statement.
    fn stmt(&mut self, f: &mut WirFunc) {
        match self.rng.gen_range(0..6) {
            // expr; local.set
            0 | 1 => {
                self.expr(f, 2);
                let i = self.rng.gen_range(0..f.local_count() as u32);
                f.body.alloc(WirInst::LocalSet(i));
            }
            // expr; drop
            2 => {
                self.expr(f, 2);
                f.body.alloc(WirInst::Drop);
            }
            // block (cond br_if 0) set end — conditionally skip a store
            3 => {
                f.body.alloc(WirInst::Block);
                self.expr(f, 1);
                f.body.alloc(WirInst::BrIf(0));
                self.expr(f, 1);
                let i = self.rng.gen_range(0..f.local_count() as u32);
                f.body.alloc(WirInst::LocalSet(i));
                f.body.alloc(WirInst::End);
            }
            // bounded counting loop over a fresh local
            4 => {
                let c = f.alloc_local(WTy::I32);
                let bound = self.rng.gen_range(2..8);
                f.body.alloc(WirInst::Const(WTy::I32, 0));
                f.body.alloc(WirInst::LocalSet(c));
                f.body.alloc(WirInst::Loop);
                f.body.alloc(WirInst::LocalGet(c));
                f.body.alloc(WirInst::Const(WTy::I32, 1));
                f.body.alloc(WirInst::Binop(WTy::I32, WBin::Add));
                f.body.alloc(WirInst::LocalSet(c));
                f.body.alloc(WirInst::LocalGet(c));
                f.body.alloc(WirInst::Const(WTy::I32, bound));
                f.body.alloc(WirInst::Cmp(WTy::I32, WCmp::LtS));
                f.body.alloc(WirInst::BrIf(0));
                f.body.alloc(WirInst::End);
            }
            // br_table dispatch (3.0+), else nop padding
            _ => {
                if self.version.supports(crate::inst::WKind::BrTable) {
                    f.body.alloc(WirInst::Block);
                    f.body.alloc(WirInst::Block);
                    self.expr(f, 1);
                    let default = self.rng.gen_range(0..2) as u32;
                    f.body.alloc(WirInst::BrTable(vec![0, 1, default]));
                    f.body.alloc(WirInst::End);
                    self.expr(f, 1);
                    let i = self.rng.gen_range(0..f.local_count() as u32);
                    f.body.alloc(WirInst::LocalSet(i));
                    f.body.alloc(WirInst::End);
                } else {
                    f.body.alloc(WirInst::Nop);
                }
            }
        }
    }
}

/// Generates a valid single-function module exercising the version's full
/// instruction set (locals, blocks, loops, dispatch).
pub fn generate_module(seed: u64, version: WirVersion) -> WirModule {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed ^ 0x5751_C0DE),
        version,
    };
    let mut m = WirModule::new(format!("gen{seed:x}"), version);
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    for _ in 0..g.rng.gen_range(2..5usize) {
        f.alloc_local(WTy::I32);
    }
    let n_stmts = g.rng.gen_range(1..4usize);
    for _ in 0..n_stmts {
        g.stmt(&mut f);
    }
    g.expr(&mut f, 2);
    f.body.alloc(WirInst::Return);
    m.funcs.push(f);
    debug_assert!(
        crate::validate::verify_module(&m).is_ok(),
        "generator produced an invalid module for seed {seed}: {:?}",
        crate::validate::verify_module(&m)
    );
    m
}

/// Generates a valid, control-flow-free module (the raisable subset used
/// by the cross-dialect oracle).
pub fn generate_straightline(seed: u64, version: WirVersion) -> WirModule {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed ^ 0x5751_F1A7),
        version,
    };
    let mut m = WirModule::new(format!("flat{seed:x}"), version);
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    for _ in 0..g.rng.gen_range(1..4usize) {
        f.alloc_local(WTy::I32);
    }
    for _ in 0..g.rng.gen_range(0..3usize) {
        // Straight-line statements only: stores and drops.
        if g.rng.gen_bool(0.7) {
            g.flat_expr(&mut f, 2);
            let i = g.rng.gen_range(0..f.local_count() as u32);
            f.body.alloc(WirInst::LocalSet(i));
        } else {
            g.flat_expr(&mut f, 2);
            f.body.alloc(WirInst::Drop);
        }
    }
    g.flat_expr(&mut f, 2);
    f.body.alloc(WirInst::Return);
    m.funcs.push(f);
    debug_assert!(crate::validate::verify_module(&m).is_ok());
    m
}

impl Gen {
    /// Like [`Gen::expr`] but never emits control flow (no tee either, to
    /// keep the subset raisable into pure SSA data flow).
    fn flat_expr(&mut self, f: &mut WirFunc, depth: usize) {
        let n_locals = f.local_count() as u32;
        let choice = if depth == 0 {
            self.rng.gen_range(0..2)
        } else {
            self.rng.gen_range(0..7)
        };
        match choice {
            0 => {
                let c = self.konst();
                f.body.alloc(c);
            }
            1 => {
                let i = self.rng.gen_range(0..n_locals);
                f.body.alloc(WirInst::LocalGet(i));
            }
            // Over-weight div/rem: that is where dialects disagree.
            2 | 3 => {
                self.flat_expr(f, depth - 1);
                self.flat_expr(f, depth - 1);
                let op = if self.rng.gen_bool(0.4) {
                    if self.rng.gen_bool(0.5) {
                        WBin::DivS
                    } else {
                        WBin::RemS
                    }
                } else {
                    WBin::ALL[self.rng.gen_range(0..WBin::ALL.len())]
                };
                f.body.alloc(WirInst::Binop(WTy::I32, op));
            }
            4 => {
                self.flat_expr(f, depth - 1);
                self.flat_expr(f, depth - 1);
                let op = WCmp::ALL[self.rng.gen_range(0..WCmp::ALL.len())];
                f.body.alloc(WirInst::Cmp(WTy::I32, op));
            }
            5 => {
                self.flat_expr(f, depth - 1);
                f.body.alloc(WirInst::Eqz(WTy::I32));
            }
            6 if self.version.supports(crate::inst::WKind::Select) => {
                self.flat_expr(f, depth - 1);
                self.flat_expr(f, depth - 1);
                self.flat_expr(f, depth - 1);
                f.body.alloc(WirInst::Select);
            }
            _ => {
                let c = self.konst();
                f.body.alloc(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::WirMachine;
    use crate::validate::verify_module;

    #[test]
    fn generated_modules_validate_and_run_for_every_version() {
        for version in WirVersion::CATALOG {
            for seed in 0..50 {
                let m = generate_module(seed, version);
                verify_module(&m).unwrap_or_else(|e| panic!("seed {seed} @ {version}: {e}"));
                let out = WirMachine::new(&m).with_fuel(100_000).run_main();
                // Fuel is generous; the bounded loops always terminate.
                assert!(out.steps <= 100_000);
            }
        }
    }

    #[test]
    fn straightline_modules_avoid_control_flow() {
        for seed in 0..50 {
            let m = generate_straightline(seed, WirVersion::W2_0);
            verify_module(&m).expect("valid");
            assert!(m.funcs[0].body.iter().all(|i| !matches!(
                i.kind(),
                crate::inst::WKind::Block
                    | crate::inst::WKind::Loop
                    | crate::inst::WKind::Br
                    | crate::inst::WKind::BrIf
                    | crate::inst::WKind::BrTable
                    | crate::inst::WKind::Call
            )));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = crate::write::write_module(&generate_module(7, WirVersion::W3_0));
        let b = crate::write::write_module(&generate_module(7, WirVersion::W3_0));
        assert_eq!(a, b);
    }
}
