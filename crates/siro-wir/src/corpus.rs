//! Hand-written WIR conformance programs.
//!
//! These are the WIR analogue of `siro_ir::corpus`: small, deliberately
//! tricky modules used three ways — as parse/print/interp conformance
//! goldens in the root `ir_conformance` suite, as the oracle corpus for
//! WIR→WIR synthesis, and as seed programs for the differential mutator.
//! Each case is written against the *lowest* version whose features it
//! needs, so every case can also be re-versioned upward.

use crate::inst::{WBin, WCmp, WTy, WirInst};
use crate::module::{WirFunc, WirModule};
use crate::version::WirVersion;

/// A named conformance program.
pub struct WirCase {
    /// Stable case name (used in golden file paths).
    pub name: &'static str,
    /// The lowest version the case is valid at.
    pub min_version: WirVersion,
    /// Builds the module at the given version (must be `>= min_version`).
    pub build: fn(WirVersion) -> WirModule,
}

fn module_one(name: &str, version: WirVersion, f: WirFunc) -> WirModule {
    let mut m = WirModule::new(name, version);
    m.funcs.push(f);
    m
}

/// `(7 + 35) * 1 = 42` — pure straight-line arithmetic.
fn c_arith(v: WirVersion) -> WirModule {
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    f.body.alloc(WirInst::Const(WTy::I32, 7));
    f.body.alloc(WirInst::Const(WTy::I32, 35));
    f.body.alloc(WirInst::Binop(WTy::I32, WBin::Add));
    f.body.alloc(WirInst::Const(WTy::I32, 1));
    f.body.alloc(WirInst::Binop(WTy::I32, WBin::Mul));
    f.body.alloc(WirInst::Return);
    module_one("arith", v, f)
}

/// Signed division edge semantics: `i32::MIN / -1` traps in WIR.
fn c_div_overflow(v: WirVersion) -> WirModule {
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    f.body.alloc(WirInst::Const(WTy::I32, i32::MIN as i64));
    f.body.alloc(WirInst::Const(WTy::I32, -1));
    f.body.alloc(WirInst::Binop(WTy::I32, WBin::DivS));
    f.body.alloc(WirInst::Return);
    module_one("div_overflow", v, f)
}

/// `i32::MIN % -1 = 0` — no trap, unlike division.
fn c_rem_edge(v: WirVersion) -> WirModule {
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    f.body.alloc(WirInst::Const(WTy::I32, i32::MIN as i64));
    f.body.alloc(WirInst::Const(WTy::I32, -1));
    f.body.alloc(WirInst::Binop(WTy::I32, WBin::RemS));
    f.body.alloc(WirInst::Return);
    module_one("rem_edge", v, f)
}

/// Locals and a conditional skip: `x = 5; block { br_if eqz(0); x = 9 }; x`
/// — the branch is taken, so the store is skipped and `x` stays 5.
fn c_block_skip(v: WirVersion) -> WirModule {
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    let x = f.alloc_local(WTy::I32);
    f.body.alloc(WirInst::Const(WTy::I32, 5));
    f.body.alloc(WirInst::LocalSet(x));
    f.body.alloc(WirInst::Block);
    f.body.alloc(WirInst::Const(WTy::I32, 0));
    f.body.alloc(WirInst::Eqz(WTy::I32));
    f.body.alloc(WirInst::BrIf(0));
    f.body.alloc(WirInst::Const(WTy::I32, 9));
    f.body.alloc(WirInst::LocalSet(x));
    f.body.alloc(WirInst::End);
    f.body.alloc(WirInst::LocalGet(x));
    f.body.alloc(WirInst::Return);
    module_one("block_skip", v, f)
}

/// Sum 0..10 with a counting loop; result 45.
fn c_loop_sum(v: WirVersion) -> WirModule {
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    let i = f.alloc_local(WTy::I32);
    let acc = f.alloc_local(WTy::I32);
    f.body.alloc(WirInst::Loop);
    f.body.alloc(WirInst::LocalGet(acc));
    f.body.alloc(WirInst::LocalGet(i));
    f.body.alloc(WirInst::Binop(WTy::I32, WBin::Add));
    f.body.alloc(WirInst::LocalSet(acc));
    f.body.alloc(WirInst::LocalGet(i));
    f.body.alloc(WirInst::Const(WTy::I32, 1));
    f.body.alloc(WirInst::Binop(WTy::I32, WBin::Add));
    f.body.alloc(WirInst::LocalSet(i));
    f.body.alloc(WirInst::LocalGet(i));
    f.body.alloc(WirInst::Const(WTy::I32, 10));
    f.body.alloc(WirInst::Cmp(WTy::I32, WCmp::LtS));
    f.body.alloc(WirInst::BrIf(0));
    f.body.alloc(WirInst::End);
    f.body.alloc(WirInst::LocalGet(acc));
    f.body.alloc(WirInst::Return);
    module_one("loop_sum", v, f)
}

/// Cross-function call: `main` calls `sq(6)`; result 36.
fn c_call(v: WirVersion) -> WirModule {
    let mut m = WirModule::new("call", v);
    let mut sq = WirFunc::new("sq", vec![WTy::I32], Some(WTy::I32));
    sq.body.alloc(WirInst::LocalGet(0));
    sq.body.alloc(WirInst::LocalGet(0));
    sq.body.alloc(WirInst::Binop(WTy::I32, WBin::Mul));
    sq.body.alloc(WirInst::Return);
    m.funcs.push(sq);
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    f.body.alloc(WirInst::Const(WTy::I32, 6));
    f.body.alloc(WirInst::Call(0));
    f.body.alloc(WirInst::Return);
    m.funcs.push(f);
    m
}

/// i64 shifts mask the count mod 64: `1 << 65 == 2`.
fn c_shift_mask(v: WirVersion) -> WirModule {
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    f.body.alloc(WirInst::Const(WTy::I64, 1));
    f.body.alloc(WirInst::Const(WTy::I64, 65));
    f.body.alloc(WirInst::Binop(WTy::I64, WBin::Shl));
    f.body.alloc(WirInst::Const(WTy::I64, 2));
    f.body.alloc(WirInst::Cmp(WTy::I64, WCmp::Eq));
    f.body.alloc(WirInst::Return);
    module_one("shift_mask", v, f)
}

/// 2.0+: `select`/`local.tee` — `tee x = 3; select(x, 30, 40) = 30`.
fn c_select_tee(v: WirVersion) -> WirModule {
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    let x = f.alloc_local(WTy::I32);
    f.body.alloc(WirInst::Const(WTy::I32, 3));
    f.body.alloc(WirInst::LocalTee(x));
    f.body.alloc(WirInst::Drop);
    f.body.alloc(WirInst::Const(WTy::I32, 30));
    f.body.alloc(WirInst::Const(WTy::I32, 40));
    f.body.alloc(WirInst::LocalGet(x));
    f.body.alloc(WirInst::Select);
    f.body.alloc(WirInst::Return);
    module_one("select_tee", v, f)
}

/// 3.0+: `br_table` three-way dispatch on 1 → middle arm → 200.
fn c_br_table(v: WirVersion) -> WirModule {
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    let r = f.alloc_local(WTy::I32);
    f.body.alloc(WirInst::Block); // depth 2 exit
    f.body.alloc(WirInst::Block); // depth 1 -> arm 1
    f.body.alloc(WirInst::Block); // depth 0 -> arm 0
    f.body.alloc(WirInst::Const(WTy::I32, 1));
    f.body.alloc(WirInst::BrTable(vec![0, 1, 2]));
    f.body.alloc(WirInst::End);
    f.body.alloc(WirInst::Const(WTy::I32, 100));
    f.body.alloc(WirInst::LocalSet(r));
    f.body.alloc(WirInst::Br(1));
    f.body.alloc(WirInst::End);
    f.body.alloc(WirInst::Const(WTy::I32, 200));
    f.body.alloc(WirInst::LocalSet(r));
    f.body.alloc(WirInst::Br(0));
    f.body.alloc(WirInst::End);
    f.body.alloc(WirInst::LocalGet(r));
    f.body.alloc(WirInst::Return);
    module_one("br_table", v, f)
}

/// Division by zero traps.
fn c_div_zero(v: WirVersion) -> WirModule {
    let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
    f.body.alloc(WirInst::Const(WTy::I32, 42));
    f.body.alloc(WirInst::Const(WTy::I32, 0));
    f.body.alloc(WirInst::Binop(WTy::I32, WBin::RemS));
    f.body.alloc(WirInst::Return);
    module_one("div_zero", v, f)
}

/// The conformance corpus, ordered by minimum version.
pub const CASES: &[WirCase] = &[
    WirCase {
        name: "arith",
        min_version: WirVersion::W1_0,
        build: c_arith,
    },
    WirCase {
        name: "div_overflow",
        min_version: WirVersion::W1_0,
        build: c_div_overflow,
    },
    WirCase {
        name: "rem_edge",
        min_version: WirVersion::W1_0,
        build: c_rem_edge,
    },
    WirCase {
        name: "div_zero",
        min_version: WirVersion::W1_0,
        build: c_div_zero,
    },
    WirCase {
        name: "block_skip",
        min_version: WirVersion::W1_0,
        build: c_block_skip,
    },
    WirCase {
        name: "loop_sum",
        min_version: WirVersion::W1_0,
        build: c_loop_sum,
    },
    WirCase {
        name: "call",
        min_version: WirVersion::W1_0,
        build: c_call,
    },
    WirCase {
        name: "shift_mask",
        min_version: WirVersion::W1_0,
        build: c_shift_mask,
    },
    WirCase {
        name: "select_tee",
        min_version: WirVersion::W2_0,
        build: c_select_tee,
    },
    WirCase {
        name: "br_table",
        min_version: WirVersion::W3_0,
        build: c_br_table,
    },
];

/// The cases valid at `version`, instantiated there.
pub fn cases_at(version: WirVersion) -> Vec<WirModule> {
    CASES
        .iter()
        .filter(|c| c.min_version <= version)
        .map(|c| (c.build)(version))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{WirExec, WirMachine, WirTrap};
    use crate::validate::verify_module;

    #[test]
    fn every_case_validates_at_every_admitting_version() {
        for c in CASES {
            for v in WirVersion::CATALOG {
                if c.min_version <= v {
                    let m = (c.build)(v);
                    verify_module(&m).unwrap_or_else(|e| panic!("{} @ {v}: {e}", c.name));
                }
            }
        }
    }

    #[test]
    fn expected_results() {
        let run = |m: &WirModule| WirMachine::new(m).run_main().result;
        assert_eq!(run(&c_arith(WirVersion::W1_0)), WirExec::Value(42));
        assert_eq!(
            run(&c_div_overflow(WirVersion::W1_0)),
            WirExec::Trap(WirTrap::IntegerOverflow)
        );
        assert_eq!(run(&c_rem_edge(WirVersion::W1_0)), WirExec::Value(0));
        assert_eq!(
            run(&c_div_zero(WirVersion::W1_0)),
            WirExec::Trap(WirTrap::DivByZero)
        );
        assert_eq!(run(&c_block_skip(WirVersion::W1_0)), WirExec::Value(5));
        assert_eq!(run(&c_loop_sum(WirVersion::W1_0)), WirExec::Value(45));
        assert_eq!(run(&c_call(WirVersion::W1_0)), WirExec::Value(36));
        assert_eq!(run(&c_shift_mask(WirVersion::W1_0)), WirExec::Value(1));
        assert_eq!(run(&c_select_tee(WirVersion::W2_0)), WirExec::Value(30));
        assert_eq!(run(&c_br_table(WirVersion::W3_0)), WirExec::Value(200));
    }

    #[test]
    fn cases_round_trip_through_text_at_every_version() {
        for v in WirVersion::CATALOG {
            for m in cases_at(v) {
                let text = crate::write::write_module(&m);
                let back = crate::parse::parse_module(&text)
                    .unwrap_or_else(|e| panic!("{} @ {v}: {e}\n{text}", m.name));
                assert_eq!(crate::write::write_module(&back), text);
            }
        }
    }
}
