//! The WIR version catalog.
//!
//! WIR's catalog evolves the way [`siro_ir::IrVersion`] does: each release
//! gates instructions and changes the builder API surface in one of the
//! paper's three breakage shapes — renamed components, reordered
//! parameters, and representation migrations (named vs. opaque function
//! references in the text format).

use std::fmt;

use siro_ir::DialectVersion;

use crate::inst::WKind;

/// A major.minor WIR version, e.g. `1.0`.
///
/// # Examples
///
/// ```
/// use siro_wir::WirVersion;
/// assert!(WirVersion::W2_0 > WirVersion::W1_0);
/// assert_eq!(WirVersion::W1_0.to_string(), "1.0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WirVersion {
    major: u16,
    minor: u16,
}

impl WirVersion {
    /// The base release: no `select`, no `local.tee`, no `br_table`;
    /// builders are named `emit_*`.
    pub const W1_0: WirVersion = WirVersion::new(1, 0);
    /// Adds `select` and `local.tee`; renames every builder `emit_*` →
    /// `build_*`.
    pub const W2_0: WirVersion = WirVersion::new(2, 0);
    /// Adds `br_table`; swaps the binop builder's `(type, op)` parameters
    /// to `(op, type)`; call sites print opaque `@fN` references instead of
    /// `$name`.
    pub const W3_0: WirVersion = WirVersion::new(3, 0);

    /// Every WIR version, oldest first.
    pub const CATALOG: [WirVersion; 3] = [Self::W1_0, Self::W2_0, Self::W3_0];

    /// Creates a version from raw major/minor numbers.
    pub const fn new(major: u16, minor: u16) -> Self {
        WirVersion { major, minor }
    }

    /// The major component.
    pub const fn major(self) -> u16 {
        self.major
    }

    /// The minor component.
    pub const fn minor(self) -> u16 {
        self.minor
    }

    /// Whether this version's instruction set contains `kind`.
    pub fn supports(self, kind: WKind) -> bool {
        match kind {
            WKind::Select | WKind::LocalTee => self >= Self::W2_0,
            WKind::BrTable => self >= Self::W3_0,
            _ => true,
        }
    }

    /// Instruction kinds available in this version, in canonical order.
    pub fn instruction_set(self) -> Vec<WKind> {
        WKind::ALL
            .iter()
            .copied()
            .filter(|k| self.supports(*k))
            .collect()
    }

    // ---- API / serialization quirks -------------------------------------

    /// Since 2.0, builders are named `build_*` instead of `emit_*`.
    pub fn renamed_builders(self) -> bool {
        self >= Self::W2_0
    }

    /// Since 3.0, the binop builder takes `(op, type)` instead of
    /// `(type, op)`.
    pub fn reordered_binop_params(self) -> bool {
        self >= Self::W3_0
    }

    /// Since 3.0, call sites print opaque function references (`call @f0`)
    /// instead of symbolic names (`call $main`).
    pub fn opaque_func_refs_in_text(self) -> bool {
        self >= Self::W3_0
    }
}

impl fmt::Display for WirVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

impl From<WirVersion> for DialectVersion {
    fn from(v: WirVersion) -> Self {
        DialectVersion::wir(v.major, v.minor)
    }
}

impl TryFrom<DialectVersion> for WirVersion {
    type Error = String;

    fn try_from(v: DialectVersion) -> Result<Self, String> {
        match v.dialect {
            siro_ir::Dialect::Wir => Ok(WirVersion::new(v.major, v.minor)),
            siro_ir::Dialect::Siro => Err(format!("{v} is not a WIR version")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_follows_the_catalog_story() {
        assert!(!WirVersion::W1_0.supports(WKind::Select));
        assert!(!WirVersion::W1_0.supports(WKind::LocalTee));
        assert!(WirVersion::W2_0.supports(WKind::Select));
        assert!(!WirVersion::W2_0.supports(WKind::BrTable));
        assert!(WirVersion::W3_0.supports(WKind::BrTable));
        assert_eq!(
            WirVersion::W1_0.instruction_set().len(),
            WKind::ALL.len() - 3
        );
        assert_eq!(WirVersion::W3_0.instruction_set().len(), WKind::ALL.len());
    }

    #[test]
    fn quirks_are_monotone() {
        assert!(!WirVersion::W1_0.renamed_builders());
        assert!(WirVersion::W2_0.renamed_builders());
        assert!(!WirVersion::W2_0.reordered_binop_params());
        assert!(WirVersion::W3_0.reordered_binop_params());
        assert!(WirVersion::W3_0.opaque_func_refs_in_text());
    }

    #[test]
    fn dialect_version_round_trip() {
        let d: DialectVersion = WirVersion::W2_0.into();
        assert_eq!(d.to_string(), "wir2.0");
        assert_eq!(WirVersion::try_from(d).unwrap(), WirVersion::W2_0);
        assert!(WirVersion::try_from(DialectVersion::siro(13, 0)).is_err());
    }
}
