//! WIR modules and functions.
//!
//! Function bodies live in the same typed-arena infrastructure as Siro IR:
//! [`WirInst`] implements `siro_ir`'s [`Entity`] trait with its own
//! thread-local recycling slab, so a serve worker's parse → translate →
//! serialize churn over WIR modules reuses buffer capacity exactly like the
//! Siro path does (see `docs/IR_CORE.md`). [`wir_slab_depth`] exposes the
//! slab depth for the bounded-recycling property tests.

use std::cell::RefCell;

use siro_ir::{Arena, Entity};

use crate::inst::{WTy, WirInst};
use crate::version::WirVersion;

thread_local! {
    static WIR_INST_SLAB: RefCell<Vec<Vec<WirInst>>> = const { RefCell::new(Vec::new()) };
}

impl Entity for WirInst {
    const PTR_NAME: &'static str = "WInstId";

    fn with_slab<R>(f: impl FnOnce(&mut Vec<Vec<Self>>) -> R) -> R {
        WIR_INST_SLAB.with(|s| f(&mut s.borrow_mut()))
    }
}

/// Number of parked [`WirInst`] buffers in this thread's recycling slab.
///
/// The WIR counterpart of `siro_ir::ctx::slab_depths`; bounded by the same
/// slab constant, which the round-trip property tests assert.
pub fn wir_slab_depth() -> usize {
    WirInst::with_slab(|s| s.len())
}

/// One WIR function: a typed signature plus a flat, structured body.
///
/// The local index space is the parameters followed by the declared extra
/// locals, wasm-style: local `i < params.len()` is the `i`-th parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct WirFunc {
    /// Symbolic name (`$name` in the text format).
    pub name: String,
    /// Parameter types (also the first locals).
    pub params: Vec<WTy>,
    /// Result type; `None` for no result.
    pub result: Option<WTy>,
    /// Extra local declarations, zero-initialized at entry.
    pub locals: Vec<WTy>,
    /// The body, in textual order. Structured control flow: `block`/`loop`
    /// regions are closed by `end` within this sequence.
    pub body: Arena<WirInst>,
}

impl WirFunc {
    /// Creates an empty function with the given signature.
    pub fn new(name: impl Into<String>, params: Vec<WTy>, result: Option<WTy>) -> Self {
        WirFunc {
            name: name.into(),
            params,
            result,
            locals: Vec::new(),
            body: Arena::new(),
        }
    }

    /// Total number of locals (parameters + extras).
    pub fn local_count(&self) -> usize {
        self.params.len() + self.locals.len()
    }

    /// The type of local `i`, if it exists.
    pub fn local_ty(&self, i: u32) -> Option<WTy> {
        let i = i as usize;
        if i < self.params.len() {
            Some(self.params[i])
        } else {
            self.locals.get(i - self.params.len()).copied()
        }
    }

    /// Appends a fresh local of type `ty` and returns its index.
    pub fn alloc_local(&mut self, ty: WTy) -> u32 {
        self.locals.push(ty);
        (self.params.len() + self.locals.len() - 1) as u32
    }
}

/// A WIR module: a named collection of functions at one [`WirVersion`].
#[derive(Debug, Clone, PartialEq)]
pub struct WirModule {
    /// Module name (`(module $name)` in the text format).
    pub name: String,
    /// The version whose instruction set and text format this module uses.
    pub version: WirVersion,
    /// Functions, in declaration order; [`WirInst::Call`] indexes this.
    pub funcs: Vec<WirFunc>,
}

impl WirModule {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>, version: WirVersion) -> Self {
        WirModule {
            name: name.into(),
            version,
            funcs: Vec::new(),
        }
    }

    /// Index of the function named `name`.
    pub fn func_index(&self, name: &str) -> Option<u32> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    /// The entry function (`main`), if present.
    pub fn main(&self) -> Option<&WirFunc> {
        self.funcs.iter().find(|f| f.name == "main")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_index_space_covers_params_then_locals() {
        let mut f = WirFunc::new("f", vec![WTy::I32, WTy::I64], Some(WTy::I32));
        assert_eq!(f.local_ty(0), Some(WTy::I32));
        assert_eq!(f.local_ty(1), Some(WTy::I64));
        assert_eq!(f.local_ty(2), None);
        let l = f.alloc_local(WTy::I32);
        assert_eq!(l, 2);
        assert_eq!(f.local_ty(2), Some(WTy::I32));
        assert_eq!(f.local_count(), 3);
    }

    #[test]
    fn body_arena_recycles_through_the_wir_slab() {
        let baseline = wir_slab_depth();
        {
            let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
            f.body.alloc(WirInst::Const(WTy::I32, 1));
            f.body.alloc(WirInst::Return);
        }
        assert_eq!(wir_slab_depth(), baseline + 1);
        let f = WirFunc::new("main", vec![], None);
        assert_eq!(wir_slab_depth(), baseline);
        drop(f);
    }
}
