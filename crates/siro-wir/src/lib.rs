//! # siro-wir — a versioned stack-machine IR family
//!
//! The repo's second IR dialect: a small wasm-flavoured stack machine with
//! typed i32/i64 values, structured `block`/`loop`/`end` regions, relative
//! branches, locals, and calls. Like the Siro family, WIR exists at several
//! catalog versions ([`WirVersion::CATALOG`]) whose *API surface* evolves
//! in the paper's three breakage shapes — renamed builders (2.0),
//! reordered builder parameters (3.0), and representation migrations
//! (opaque function references, 3.0) — so the same synthesis pipeline that
//! builds Siro version translators can build WIR→WIR translators and
//! cross-dialect SIRO↔WIR bridges from the [`WirRegistry`] surface alone.
//!
//! Per-dialect pieces mirror `siro-ir`'s layout:
//!
//! * [`inst`]/[`module`] — the instruction set and arena-backed module
//!   forms (the instruction arena recycles through the same thread-local
//!   slab machinery as Siro's, via `siro_ir::Entity`);
//! * [`parse`]/[`mod@write`] — a canonical text format with byte-stable
//!   round-tripping, version-gated at parse time;
//! * [`validate`] — a stack-typing verifier (height-neutral regions, no
//!   dead code, branch-depth checking);
//! * [`interp`] — a deterministic fuel-limited interpreter, the
//!   differential oracle's ground truth;
//! * [`api`] — the versioned builder/getter registry, implementing
//!   `siro_api::DialectRegistry`;
//! * [`gen`]/[`corpus`] — seeded program generation and hand conformance
//!   cases;
//! * [`any`] — the dialect-tagged [`AnyModule`] wrapper the serving path
//!   uses.

#![warn(missing_docs)]

pub mod any;
pub mod api;
pub mod corpus;
pub mod gen;
pub mod inst;
pub mod interp;
pub mod module;
pub mod parse;
pub mod validate;
pub mod version;
pub mod write;

pub use any::{parse_wir_expecting, AnyModule};
pub use api::{WirApiFn, WirApiImpl, WirApiType, WirApiValue, WirEmit, WirRegistry};
pub use gen::{generate_module, generate_straightline};
pub use inst::{WBin, WCmp, WKind, WTy, WirInst};
pub use interp::{WirExec, WirMachine, WirOutcome, WirTrap, DEFAULT_FUEL};
pub use module::{wir_slab_depth, WirFunc, WirModule};
pub use parse::{looks_like_wir, parse_module, WirParseError};
pub use validate::{verify_module, WirVerifyError};
pub use version::WirVersion;
pub use write::write_module;
