//! The WIR validator: typed stack discipline and structured control flow.
//!
//! Validation walks each body once with a typed operand stack and a
//! control-frame stack, wasm-style but simplified: blocks and loops carry
//! no parameters or results (they are height-neutral), and dead code is
//! outlawed instead of specially typed — an unconditional terminator
//! (`br`, `br_table`, `return`) must be the last instruction of its
//! enclosing region. The difftest mutators and the generator respect that
//! rule by construction, which keeps the checker a simple linear pass.

use crate::inst::{WKind, WTy, WirInst};
use crate::module::{WirFunc, WirModule};

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirVerifyError {
    /// Function the error is in.
    pub func: String,
    /// Body index of the offending instruction (or `body.len()` for
    /// end-of-body errors).
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for WirVerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "func ${}, inst {}: {}", self.func, self.at, self.message)
    }
}

impl std::error::Error for WirVerifyError {}

struct Frame {
    entry_height: usize,
}

/// Pops one value, enforcing the optional expected type and the innermost
/// frame's entry height as a floor (wasm's "a block cannot consume values
/// it did not push" rule).
fn pop(stack: &mut Vec<WTy>, want: Option<WTy>, floor: usize, kind: WKind) -> Result<WTy, String> {
    if stack.len() <= floor {
        return Err(format!("stack underflow at `{kind}`"));
    }
    let got = stack.pop().expect("len checked");
    if let Some(want) = want {
        if got != want {
            return Err(format!("type mismatch at `{kind}`: want {want}, got {got}"));
        }
    }
    Ok(got)
}

/// Validates a whole module: per-function stack discipline plus module
/// invariants (version gating, unique names, resolvable calls).
pub fn verify_module(m: &WirModule) -> Result<(), WirVerifyError> {
    for (i, f) in m.funcs.iter().enumerate() {
        if m.funcs[..i].iter().any(|g| g.name == f.name) {
            return Err(WirVerifyError {
                func: f.name.clone(),
                at: 0,
                message: "duplicate function name".into(),
            });
        }
        verify_func(m, f)?;
    }
    Ok(())
}

fn verify_func(m: &WirModule, f: &WirFunc) -> Result<(), WirVerifyError> {
    let fail = |at: usize, message: String| WirVerifyError {
        func: f.name.clone(),
        at,
        message,
    };
    let mut stack: Vec<WTy> = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();
    // Set after an unconditional terminator; only `end` (or end-of-body)
    // may follow, and it resets the stack to the frame's entry height.
    let mut terminated = false;

    for (at, inst) in f.body.iter().enumerate() {
        if !m.version.supports(inst.kind()) {
            return Err(fail(
                at,
                format!("`{}` is not available in wir {}", inst.kind(), m.version),
            ));
        }
        if terminated && !matches!(inst, WirInst::End) {
            return Err(fail(
                at,
                format!("unreachable `{}` after a terminator", inst.kind()),
            ));
        }
        let kind = inst.kind();
        let floor = frames.last().map_or(0, |fr| fr.entry_height);
        macro_rules! pop {
            ($want:expr) => {
                pop(&mut stack, $want, floor, kind).map_err(|m| fail(at, m))?
            };
        }
        match inst {
            WirInst::Const(ty, _) => stack.push(*ty),
            WirInst::Binop(ty, _) => {
                pop!(Some(*ty));
                pop!(Some(*ty));
                stack.push(*ty);
            }
            WirInst::Cmp(ty, _) => {
                pop!(Some(*ty));
                pop!(Some(*ty));
                stack.push(WTy::I32);
            }
            WirInst::Eqz(ty) => {
                pop!(Some(*ty));
                stack.push(WTy::I32);
            }
            WirInst::LocalGet(i) => {
                let ty = f
                    .local_ty(*i)
                    .ok_or_else(|| fail(at, format!("no local {i}")))?;
                stack.push(ty);
            }
            WirInst::LocalSet(i) => {
                let ty = f
                    .local_ty(*i)
                    .ok_or_else(|| fail(at, format!("no local {i}")))?;
                pop!(Some(ty));
            }
            WirInst::LocalTee(i) => {
                let ty = f
                    .local_ty(*i)
                    .ok_or_else(|| fail(at, format!("no local {i}")))?;
                pop!(Some(ty));
                stack.push(ty);
            }
            WirInst::Select => {
                pop!(Some(WTy::I32));
                let b = pop!(None);
                pop!(Some(b));
                stack.push(b);
            }
            WirInst::Drop => {
                pop!(None);
            }
            WirInst::Nop => {}
            WirInst::Block | WirInst::Loop => frames.push(Frame {
                entry_height: stack.len(),
            }),
            WirInst::End => {
                let frame = frames
                    .pop()
                    .ok_or_else(|| fail(at, "`end` without an open block".into()))?;
                if terminated {
                    stack.truncate(frame.entry_height);
                    terminated = false;
                } else if stack.len() != frame.entry_height {
                    return Err(fail(
                        at,
                        format!(
                            "block is not height-neutral: entered at {}, ends at {}",
                            frame.entry_height,
                            stack.len()
                        ),
                    ));
                }
            }
            WirInst::Br(d) | WirInst::BrIf(d) => {
                if matches!(inst, WirInst::BrIf(_)) {
                    pop!(Some(WTy::I32));
                }
                let d = *d as usize;
                if d >= frames.len() {
                    return Err(fail(at, format!("branch depth {d} exceeds nesting")));
                }
                let target = &frames[frames.len() - 1 - d];
                if stack.len() < target.entry_height {
                    return Err(fail(at, "branch below target frame height".into()));
                }
                if matches!(inst, WirInst::Br(_)) {
                    terminated = true;
                }
            }
            WirInst::BrTable(targets) => {
                pop!(Some(WTy::I32));
                for &d in targets {
                    let d = d as usize;
                    if d >= frames.len() {
                        return Err(fail(at, format!("br_table depth {d} exceeds nesting")));
                    }
                    if stack.len() < frames[frames.len() - 1 - d].entry_height {
                        return Err(fail(at, "br_table below target frame height".into()));
                    }
                }
                terminated = true;
            }
            WirInst::Return => {
                if let Some(r) = f.result {
                    pop!(Some(r));
                }
                terminated = true;
            }
            WirInst::Call(idx) => {
                let callee = m
                    .funcs
                    .get(*idx as usize)
                    .ok_or_else(|| fail(at, format!("call to unknown function {idx}")))?;
                for p in callee.params.iter().rev() {
                    pop!(Some(*p));
                }
                if let Some(r) = callee.result {
                    stack.push(r);
                }
            }
        }
    }
    let at = f.body.len();
    if !frames.is_empty() {
        return Err(fail(at, format!("{} unclosed block(s)", frames.len())));
    }
    if !terminated {
        // Falling off the end implicitly returns; the stack must hold
        // exactly the declared result.
        match f.result {
            Some(r) if stack.as_slice() == [r] => {}
            Some(r) => {
                return Err(fail(
                    at,
                    format!("body must end with exactly one {r} on the stack, has {stack:?}"),
                ))
            }
            None if stack.is_empty() => {}
            None => return Err(fail(at, format!("values left on the stack: {stack:?}"))),
        }
    }
    Ok(())
}

/// Whether every instruction kind used by `m` is available at `v` — the
/// cheap gating half of validation, used by translators probing targets.
pub fn supported_at(m: &WirModule, v: crate::version::WirVersion) -> bool {
    m.funcs
        .iter()
        .flat_map(|f| f.body.iter())
        .all(|i| v.supports(i.kind()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{WBin, WCmp};
    use crate::version::WirVersion;

    fn module_with(body: Vec<WirInst>, result: Option<WTy>) -> WirModule {
        let mut m = WirModule::new("t", WirVersion::W3_0);
        let mut f = WirFunc::new("main", vec![], result);
        f.body.extend(body);
        m.funcs.push(f);
        m
    }

    #[test]
    fn well_typed_straightline_passes() {
        let m = module_with(
            vec![
                WirInst::Const(WTy::I32, 2),
                WirInst::Const(WTy::I32, 3),
                WirInst::Binop(WTy::I32, WBin::Mul),
                WirInst::Return,
            ],
            Some(WTy::I32),
        );
        verify_module(&m).expect("valid");
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let m = module_with(
            vec![
                WirInst::Const(WTy::I32, 2),
                WirInst::Const(WTy::I64, 3),
                WirInst::Binop(WTy::I32, WBin::Add),
                WirInst::Return,
            ],
            Some(WTy::I32),
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("type mismatch"), "{e}");
    }

    #[test]
    fn blocks_must_be_height_neutral() {
        let m = module_with(
            vec![
                WirInst::Block,
                WirInst::Const(WTy::I32, 1),
                WirInst::End,
                WirInst::Const(WTy::I32, 1),
                WirInst::Return,
            ],
            Some(WTy::I32),
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("height-neutral"), "{e}");
    }

    #[test]
    fn dead_code_after_terminator_is_rejected() {
        let m = module_with(
            vec![WirInst::Const(WTy::I32, 1), WirInst::Return, WirInst::Nop],
            Some(WTy::I32),
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("unreachable"), "{e}");
    }

    #[test]
    fn branch_depth_and_version_gates() {
        let m = module_with(vec![WirInst::Br(0)], None);
        assert!(verify_module(&m).is_err(), "branch without a block");
        let mut m = module_with(
            vec![
                WirInst::Const(WTy::I32, 1),
                WirInst::Const(WTy::I32, 2),
                WirInst::Const(WTy::I32, 1),
                WirInst::Select,
                WirInst::Drop,
            ],
            None,
        );
        m.version = WirVersion::W1_0;
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("not available"), "{e}");
    }

    #[test]
    fn cmp_pushes_i32_even_for_i64_operands() {
        let m = module_with(
            vec![
                WirInst::Const(WTy::I64, 2),
                WirInst::Const(WTy::I64, 3),
                WirInst::Cmp(WTy::I64, WCmp::LtS),
                WirInst::Return,
            ],
            Some(WTy::I32),
        );
        verify_module(&m).expect("valid");
    }

    #[test]
    fn fall_off_requires_exact_result_stack() {
        let m = module_with(vec![WirInst::Const(WTy::I32, 1)], Some(WTy::I32));
        verify_module(&m).expect("implicit return");
        let m = module_with(
            vec![WirInst::Const(WTy::I32, 1), WirInst::Const(WTy::I32, 2)],
            Some(WTy::I32),
        );
        assert!(verify_module(&m).is_err());
    }
}
