//! WIR instructions: a small, typed, wasm-shaped stack-machine ISA.
//!
//! Every instruction is an enum variant carrying its immediates inline; the
//! operand *values* live on the implicit evaluation stack, so unlike
//! `siro_ir::Instruction` there is no operand list. Control flow is
//! structured: `block`/`loop` open a labelled region closed by `end`, and
//! `br`/`br_if`/`br_table` jump to an enclosing label by relative depth
//! (0 = innermost).

use std::fmt;

/// A WIR value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WTy {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
}

impl WTy {
    /// Both value types, in canonical order.
    pub const ALL: [WTy; 2] = [WTy::I32, WTy::I64];

    /// The type's textual name (`i32` / `i64`).
    pub const fn name(self) -> &'static str {
        match self {
            WTy::I32 => "i32",
            WTy::I64 => "i64",
        }
    }

    /// Parses `i32` / `i64`.
    pub fn parse(s: &str) -> Option<WTy> {
        match s {
            "i32" => Some(WTy::I32),
            "i64" => Some(WTy::I64),
            _ => None,
        }
    }

    /// Bit width (32 / 64).
    pub const fn bits(self) -> u32 {
        match self {
            WTy::I32 => 32,
            WTy::I64 => 64,
        }
    }
}

impl fmt::Display for WTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! w_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident => $text:literal),+ $(,)? }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $($(#[$vmeta])* $variant),+
        }

        impl $name {
            /// All variants, in canonical order.
            pub const ALL: [$name; [$($name::$variant),+].len()] = [$($name::$variant),+];

            /// The variant's textual mnemonic.
            pub const fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $text),+
                }
            }

            /// Parses a mnemonic back into the variant.
            pub fn parse(s: &str) -> Option<$name> {
                match s {
                    $($text => Some($name::$variant),)+
                    _ => None,
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.name())
            }
        }
    };
}

w_enum! {
    /// Two-operand arithmetic/bitwise operators (`ty.op` in the text form).
    WBin {
        /// Wrapping addition.
        Add => "add",
        /// Wrapping subtraction.
        Sub => "sub",
        /// Wrapping multiplication.
        Mul => "mul",
        /// Signed division; traps on division by zero and on overflow
        /// (`MIN / -1`), like wasm and unlike Siro's wrapping `sdiv`.
        DivS => "div_s",
        /// Signed remainder; traps on zero divisor, `MIN % -1` is 0.
        RemS => "rem_s",
        /// Bitwise and.
        And => "and",
        /// Bitwise or.
        Or => "or",
        /// Bitwise xor.
        Xor => "xor",
        /// Shift left; the count is masked modulo the bit width.
        Shl => "shl",
        /// Arithmetic shift right; the count is masked modulo the bit width.
        ShrS => "shr_s",
    }
}

w_enum! {
    /// Two-operand comparisons pushing an `i32` 0/1.
    WCmp {
        /// Equal.
        Eq => "eq",
        /// Not equal.
        Ne => "ne",
        /// Signed less-than.
        LtS => "lt_s",
        /// Signed greater-than.
        GtS => "gt_s",
        /// Signed less-or-equal.
        LeS => "le_s",
        /// Signed greater-or-equal.
        GeS => "ge_s",
    }
}

/// One WIR instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WirInst {
    /// Push an integer constant of the given type.
    Const(WTy, i64),
    /// Pop two values of the type, push the operator's result.
    Binop(WTy, WBin),
    /// Pop two values of the type, push an `i32` 0/1.
    Cmp(WTy, WCmp),
    /// Pop one value of the type, push an `i32` 1 if it was zero else 0.
    Eqz(WTy),
    /// Push local `n`.
    LocalGet(u32),
    /// Pop into local `n`.
    LocalSet(u32),
    /// Pop into local `n` and push the value back (2.0+).
    LocalTee(u32),
    /// Pop `cond:i32`, `b`, `a`; push `a` if `cond != 0` else `b` (2.0+).
    Select,
    /// Pop and discard one value.
    Drop,
    /// Do nothing.
    Nop,
    /// Open a block label; `br` to it jumps past the matching `end`.
    Block,
    /// Open a loop label; `br` to it jumps back to the loop head.
    Loop,
    /// Close the innermost `block`/`loop`.
    End,
    /// Unconditional branch to the label `depth` levels out.
    Br(u32),
    /// Pop an `i32`; branch if it is non-zero.
    BrIf(u32),
    /// Pop an `i32` index; branch to `targets[i]`, or to the last entry
    /// (the default) when out of range (3.0+).
    BrTable(Vec<u32>),
    /// Return from the function (popping the result value, if any).
    Return,
    /// Call function `n` of the module.
    Call(u32),
}

/// The kind (shape) of a [`WirInst`], used for version gating and as the
/// synthesizer's translation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WKind {
    /// [`WirInst::Const`].
    Const,
    /// [`WirInst::Binop`].
    Binop,
    /// [`WirInst::Cmp`].
    Cmp,
    /// [`WirInst::Eqz`].
    Eqz,
    /// [`WirInst::LocalGet`].
    LocalGet,
    /// [`WirInst::LocalSet`].
    LocalSet,
    /// [`WirInst::LocalTee`].
    LocalTee,
    /// [`WirInst::Select`].
    Select,
    /// [`WirInst::Drop`].
    Drop,
    /// [`WirInst::Nop`].
    Nop,
    /// [`WirInst::Block`].
    Block,
    /// [`WirInst::Loop`].
    Loop,
    /// [`WirInst::End`].
    End,
    /// [`WirInst::Br`].
    Br,
    /// [`WirInst::BrIf`].
    BrIf,
    /// [`WirInst::BrTable`].
    BrTable,
    /// [`WirInst::Return`].
    Return,
    /// [`WirInst::Call`].
    Call,
}

impl WKind {
    /// Every kind, in canonical order.
    pub const ALL: [WKind; 18] = [
        WKind::Const,
        WKind::Binop,
        WKind::Cmp,
        WKind::Eqz,
        WKind::LocalGet,
        WKind::LocalSet,
        WKind::LocalTee,
        WKind::Select,
        WKind::Drop,
        WKind::Nop,
        WKind::Block,
        WKind::Loop,
        WKind::End,
        WKind::Br,
        WKind::BrIf,
        WKind::BrTable,
        WKind::Return,
        WKind::Call,
    ];

    /// A stable lowercase name for reports and persisted translators.
    pub const fn name(self) -> &'static str {
        match self {
            WKind::Const => "const",
            WKind::Binop => "binop",
            WKind::Cmp => "cmp",
            WKind::Eqz => "eqz",
            WKind::LocalGet => "local_get",
            WKind::LocalSet => "local_set",
            WKind::LocalTee => "local_tee",
            WKind::Select => "select",
            WKind::Drop => "drop",
            WKind::Nop => "nop",
            WKind::Block => "block",
            WKind::Loop => "loop",
            WKind::End => "end",
            WKind::Br => "br",
            WKind::BrIf => "br_if",
            WKind::BrTable => "br_table",
            WKind::Return => "return",
            WKind::Call => "call",
        }
    }

    /// Parses [`WKind::name`] output.
    pub fn parse(s: &str) -> Option<WKind> {
        WKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

impl fmt::Display for WKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl WirInst {
    /// This instruction's [`WKind`].
    pub fn kind(&self) -> WKind {
        match self {
            WirInst::Const(..) => WKind::Const,
            WirInst::Binop(..) => WKind::Binop,
            WirInst::Cmp(..) => WKind::Cmp,
            WirInst::Eqz(..) => WKind::Eqz,
            WirInst::LocalGet(..) => WKind::LocalGet,
            WirInst::LocalSet(..) => WKind::LocalSet,
            WirInst::LocalTee(..) => WKind::LocalTee,
            WirInst::Select => WKind::Select,
            WirInst::Drop => WKind::Drop,
            WirInst::Nop => WKind::Nop,
            WirInst::Block => WKind::Block,
            WirInst::Loop => WKind::Loop,
            WirInst::End => WKind::End,
            WirInst::Br(..) => WKind::Br,
            WirInst::BrIf(..) => WKind::BrIf,
            WirInst::BrTable(..) => WKind::BrTable,
            WirInst::Return => WKind::Return,
            WirInst::Call(..) => WKind::Call,
        }
    }

    /// Whether execution never continues to the textually next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            WirInst::Br(..) | WirInst::BrTable(..) | WirInst::Return
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_round_trip() {
        for b in WBin::ALL {
            assert_eq!(WBin::parse(b.name()), Some(b));
        }
        for c in WCmp::ALL {
            assert_eq!(WCmp::parse(c.name()), Some(c));
        }
        for k in WKind::ALL {
            assert_eq!(WKind::parse(k.name()), Some(k));
        }
        // The binop and cmp mnemonic namespaces must not collide: the
        // parser resolves `ty.xxx` by trying both tables.
        for b in WBin::ALL {
            assert_eq!(WCmp::parse(b.name()), None);
        }
    }

    #[test]
    fn kind_covers_every_variant() {
        assert_eq!(WirInst::Const(WTy::I32, 1).kind(), WKind::Const);
        assert_eq!(WirInst::BrTable(vec![0]).kind(), WKind::BrTable);
        assert_eq!(WKind::ALL.len(), 18);
    }
}
