//! The versioned WIR builder/getter registry.
//!
//! WIR's API surface evolves across the catalog in the paper's three
//! breakage shapes, mirroring how [`siro_api::ApiRegistry`] evolves for the
//! Siro family:
//!
//! * **renames** — every builder is `emit_*` in 1.0 and `build_*` from 2.0;
//! * **reordered parameters** — the binop builder takes `(type, op)` before
//!   3.0 and `(op, type)` from 3.0;
//! * **representation migrations** — 3.0 replaces the symbolic call builder
//!   with `build_call_ref` (opaque function references), and versions
//!   lacking `select`/`local.tee`/`br_table` offer *composite* builders
//!   (`emit_select_via_branch`, …) that expand to supported sequences.
//!
//! The registry implements [`DialectRegistry`], so the synthesizer
//! enumerates and searches it exactly like the Siro registry: candidates
//! are filtered by typed applicability (every parameter must be fillable
//! by a getter on the source instruction) and validated differentially.

use siro_api::{ApiKind, ApiSurfaceFn, DialectRegistry};

use crate::inst::{WBin, WCmp, WTy, WirInst};
use crate::module::WirFunc;
use crate::version::WirVersion;

/// Types in WIR's component signatures.
///
/// Each getter returns a distinct type, so a builder parameter's type
/// uniquely determines which getter feeds it — the property the candidate
/// search exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WirApiType {
    /// A value type (`i32`/`i64`).
    ValTy,
    /// A binary operator kind.
    BinKind,
    /// A comparison kind.
    CmpKind,
    /// A constant value.
    ConstVal,
    /// A local index.
    LocalIdx,
    /// A function reference.
    FuncIdx,
    /// A relative branch depth.
    Depth,
    /// A branch table (targets + default).
    Table,
    /// No value (builder return type).
    Void,
}

impl WirApiType {
    /// The type's name in surface dumps.
    pub const fn name(self) -> &'static str {
        match self {
            WirApiType::ValTy => "ValTy",
            WirApiType::BinKind => "BinKind",
            WirApiType::CmpKind => "CmpKind",
            WirApiType::ConstVal => "ConstVal",
            WirApiType::LocalIdx => "LocalIdx",
            WirApiType::FuncIdx => "FuncIdx",
            WirApiType::Depth => "Depth",
            WirApiType::Table => "Table",
            WirApiType::Void => "Void",
        }
    }
}

/// A runtime value in WIR's component signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirApiValue {
    /// A value type.
    ValTy(WTy),
    /// A binop kind.
    Bin(WBin),
    /// A comparison kind.
    Cmp(WCmp),
    /// A constant.
    Const(i64),
    /// A local index.
    Local(u32),
    /// A function reference.
    Func(u32),
    /// A branch depth.
    Depth(u32),
    /// A branch table.
    Table(Vec<u32>),
}

impl WirApiValue {
    /// The value's static type.
    pub fn ty(&self) -> WirApiType {
        match self {
            WirApiValue::ValTy(_) => WirApiType::ValTy,
            WirApiValue::Bin(_) => WirApiType::BinKind,
            WirApiValue::Cmp(_) => WirApiType::CmpKind,
            WirApiValue::Const(_) => WirApiType::ConstVal,
            WirApiValue::Local(_) => WirApiType::LocalIdx,
            WirApiValue::Func(_) => WirApiType::FuncIdx,
            WirApiValue::Depth(_) => WirApiType::Depth,
            WirApiValue::Table(_) => WirApiType::Table,
        }
    }
}

/// Build context handed to builder components: the function under
/// construction (body + scratch-local allocation) at the target version.
#[derive(Debug)]
pub struct WirEmit<'f> {
    /// The target version being built for.
    pub version: WirVersion,
    /// The function being appended to.
    pub func: &'f mut WirFunc,
}

impl WirEmit<'_> {
    fn push(&mut self, inst: WirInst) {
        self.func.body.alloc(inst);
    }
}

type BuildFn = fn(&mut WirEmit<'_>, &[WirApiValue]) -> Result<(), String>;
type GetFn = fn(&WirInst) -> Option<WirApiValue>;

/// A component implementation: target-side builder or source-side getter.
#[derive(Clone)]
pub enum WirApiImpl {
    /// Appends instructions to a [`WirEmit`].
    Build(BuildFn),
    /// Extracts a value from a source instruction (`None` if the
    /// instruction does not carry it).
    Get(GetFn),
}

impl std::fmt::Debug for WirApiImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WirApiImpl::Build(_) => "Build(..)",
            WirApiImpl::Get(_) => "Get(..)",
        })
    }
}

/// One registered component.
#[derive(Debug, Clone)]
pub struct WirApiFn {
    /// Version-dependent name.
    pub name: String,
    /// Component family.
    pub kind: ApiKind,
    /// Parameter types.
    pub params: Vec<WirApiType>,
    /// Return type ([`WirApiType::Void`] for builders).
    pub ret: WirApiType,
    /// The implementation.
    pub imp: WirApiImpl,
}

/// The component library of one WIR version.
#[derive(Debug, Clone)]
pub struct WirRegistry {
    /// The version the registry describes.
    pub version: WirVersion,
    fns: Vec<WirApiFn>,
}

macro_rules! arg {
    ($args:expr, $i:expr, $variant:ident) => {
        match &$args[$i] {
            WirApiValue::$variant(v) => v.clone(),
            other => return Err(format!("arg {} has wrong type: {other:?}", $i)),
        }
    };
}

fn b_const(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let ty = arg!(a, 0, ValTy);
    let v = arg!(a, 1, Const);
    e.push(WirInst::Const(ty, v));
    Ok(())
}

fn b_binop_ty_op(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let ty = arg!(a, 0, ValTy);
    let op = arg!(a, 1, Bin);
    e.push(WirInst::Binop(ty, op));
    Ok(())
}

fn b_binop_op_ty(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let op = arg!(a, 0, Bin);
    let ty = arg!(a, 1, ValTy);
    e.push(WirInst::Binop(ty, op));
    Ok(())
}

fn b_cmp(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let ty = arg!(a, 0, ValTy);
    let op = arg!(a, 1, Cmp);
    e.push(WirInst::Cmp(ty, op));
    Ok(())
}

fn b_eqz(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let ty = arg!(a, 0, ValTy);
    e.push(WirInst::Eqz(ty));
    Ok(())
}

fn b_local_get(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let i = arg!(a, 0, Local);
    e.push(WirInst::LocalGet(i));
    Ok(())
}

fn b_local_set(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let i = arg!(a, 0, Local);
    e.push(WirInst::LocalSet(i));
    Ok(())
}

fn b_local_tee(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let i = arg!(a, 0, Local);
    e.push(WirInst::LocalTee(i));
    Ok(())
}

/// Composite for pre-2.0 targets: `tee i` expands to `set i; get i`.
fn b_tee_via_set_get(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let i = arg!(a, 0, Local);
    e.push(WirInst::LocalSet(i));
    e.push(WirInst::LocalGet(i));
    Ok(())
}

fn b_select(e: &mut WirEmit<'_>, _a: &[WirApiValue]) -> Result<(), String> {
    e.push(WirInst::Select);
    Ok(())
}

/// Composite for pre-2.0 targets: `select` (on i32 operands) expands to a
/// branch diamond over scratch locals.
fn b_select_via_branch(e: &mut WirEmit<'_>, _a: &[WirApiValue]) -> Result<(), String> {
    let lc = e.func.alloc_local(WTy::I32); // condition
    let lb = e.func.alloc_local(WTy::I32); // if-false value
    let la = e.func.alloc_local(WTy::I32); // if-true value
    let lr = e.func.alloc_local(WTy::I32); // result
    e.push(WirInst::LocalSet(lc));
    e.push(WirInst::LocalSet(lb));
    e.push(WirInst::LocalSet(la));
    e.push(WirInst::LocalGet(lb));
    e.push(WirInst::LocalSet(lr));
    e.push(WirInst::Block);
    e.push(WirInst::LocalGet(lc));
    e.push(WirInst::Eqz(WTy::I32));
    e.push(WirInst::BrIf(0));
    e.push(WirInst::LocalGet(la));
    e.push(WirInst::LocalSet(lr));
    e.push(WirInst::End);
    e.push(WirInst::LocalGet(lr));
    Ok(())
}

fn b_drop(e: &mut WirEmit<'_>, _a: &[WirApiValue]) -> Result<(), String> {
    e.push(WirInst::Drop);
    Ok(())
}

fn b_nop(e: &mut WirEmit<'_>, _a: &[WirApiValue]) -> Result<(), String> {
    e.push(WirInst::Nop);
    Ok(())
}

fn b_block(e: &mut WirEmit<'_>, _a: &[WirApiValue]) -> Result<(), String> {
    e.push(WirInst::Block);
    Ok(())
}

fn b_loop(e: &mut WirEmit<'_>, _a: &[WirApiValue]) -> Result<(), String> {
    e.push(WirInst::Loop);
    Ok(())
}

fn b_end(e: &mut WirEmit<'_>, _a: &[WirApiValue]) -> Result<(), String> {
    e.push(WirInst::End);
    Ok(())
}

fn b_br(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let d = arg!(a, 0, Depth);
    e.push(WirInst::Br(d));
    Ok(())
}

fn b_br_if(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let d = arg!(a, 0, Depth);
    e.push(WirInst::BrIf(d));
    Ok(())
}

fn b_br_table(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let t = arg!(a, 0, Table);
    e.push(WirInst::BrTable(t));
    Ok(())
}

/// Composite for pre-3.0 targets: `br_table` expands to an `eq`/`br_if`
/// chain over a scratch local, ending in an unconditional `br` to the
/// default target. Emitted depths are unchanged — the expansion opens no
/// new block.
fn b_br_table_via_chain(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let t = arg!(a, 0, Table);
    let (default, cases) = t.split_last().ok_or("empty branch table")?;
    let li = e.func.alloc_local(WTy::I32);
    e.push(WirInst::LocalSet(li));
    for (k, d) in cases.iter().enumerate() {
        e.push(WirInst::LocalGet(li));
        e.push(WirInst::Const(WTy::I32, k as i64));
        e.push(WirInst::Cmp(WTy::I32, WCmp::Eq));
        e.push(WirInst::BrIf(*d));
    }
    e.push(WirInst::Br(*default));
    Ok(())
}

fn b_return(e: &mut WirEmit<'_>, _a: &[WirApiValue]) -> Result<(), String> {
    e.push(WirInst::Return);
    Ok(())
}

fn b_call(e: &mut WirEmit<'_>, a: &[WirApiValue]) -> Result<(), String> {
    let f = arg!(a, 0, Func);
    e.push(WirInst::Call(f));
    Ok(())
}

fn g_value_type(i: &WirInst) -> Option<WirApiValue> {
    match i {
        WirInst::Const(ty, _) | WirInst::Binop(ty, _) | WirInst::Cmp(ty, _) | WirInst::Eqz(ty) => {
            Some(WirApiValue::ValTy(*ty))
        }
        _ => None,
    }
}

fn g_const_value(i: &WirInst) -> Option<WirApiValue> {
    match i {
        WirInst::Const(_, v) => Some(WirApiValue::Const(*v)),
        _ => None,
    }
}

fn g_binop_kind(i: &WirInst) -> Option<WirApiValue> {
    match i {
        WirInst::Binop(_, op) => Some(WirApiValue::Bin(*op)),
        _ => None,
    }
}

fn g_cmp_kind(i: &WirInst) -> Option<WirApiValue> {
    match i {
        WirInst::Cmp(_, op) => Some(WirApiValue::Cmp(*op)),
        _ => None,
    }
}

fn g_local_index(i: &WirInst) -> Option<WirApiValue> {
    match i {
        WirInst::LocalGet(n) | WirInst::LocalSet(n) | WirInst::LocalTee(n) => {
            Some(WirApiValue::Local(*n))
        }
        _ => None,
    }
}

fn g_branch_depth(i: &WirInst) -> Option<WirApiValue> {
    match i {
        WirInst::Br(d) | WirInst::BrIf(d) => Some(WirApiValue::Depth(*d)),
        _ => None,
    }
}

fn g_branch_table(i: &WirInst) -> Option<WirApiValue> {
    match i {
        WirInst::BrTable(t) => Some(WirApiValue::Table(t.clone())),
        _ => None,
    }
}

fn g_callee(i: &WirInst) -> Option<WirApiValue> {
    match i {
        WirInst::Call(f) => Some(WirApiValue::Func(*f)),
        _ => None,
    }
}

impl WirRegistry {
    /// Assembles the component library of `version`.
    pub fn for_version(version: WirVersion) -> Self {
        use WirApiType::*;
        let mut fns = Vec::new();
        let mut getter = |name: &str, ret: WirApiType, get: GetFn| {
            fns.push(WirApiFn {
                name: name.to_string(),
                kind: ApiKind::Getter,
                params: Vec::new(),
                ret,
                imp: WirApiImpl::Get(get),
            });
        };
        getter("get_value_type", ValTy, g_value_type);
        getter("get_const_value", ConstVal, g_const_value);
        getter("get_binop_kind", BinKind, g_binop_kind);
        getter("get_cmp_kind", CmpKind, g_cmp_kind);
        getter("get_local_index", LocalIdx, g_local_index);
        getter("get_branch_depth", Depth, g_branch_depth);
        getter("get_branch_table", Table, g_branch_table);
        getter("get_callee", FuncIdx, g_callee);

        // Builders: `emit_*` before 2.0, `build_*` from 2.0 on.
        let p = if version.renamed_builders() {
            "build"
        } else {
            "emit"
        };
        let mut builder = |name: String, params: Vec<WirApiType>, run: BuildFn| {
            fns.push(WirApiFn {
                name,
                kind: ApiKind::Builder,
                params,
                ret: Void,
                imp: WirApiImpl::Build(run),
            });
        };
        builder(format!("{p}_const"), vec![ValTy, ConstVal], b_const);
        if version.reordered_binop_params() {
            builder(format!("{p}_binop"), vec![BinKind, ValTy], b_binop_op_ty);
        } else {
            builder(format!("{p}_binop"), vec![ValTy, BinKind], b_binop_ty_op);
        }
        builder(format!("{p}_cmp"), vec![ValTy, CmpKind], b_cmp);
        builder(format!("{p}_eqz"), vec![ValTy], b_eqz);
        builder(format!("{p}_local_get"), vec![LocalIdx], b_local_get);
        builder(format!("{p}_local_set"), vec![LocalIdx], b_local_set);
        if version.supports(crate::inst::WKind::LocalTee) {
            builder(format!("{p}_local_tee"), vec![LocalIdx], b_local_tee);
        } else {
            builder(
                format!("{p}_tee_via_set_get"),
                vec![LocalIdx],
                b_tee_via_set_get,
            );
        }
        if version.supports(crate::inst::WKind::Select) {
            builder(format!("{p}_select"), vec![], b_select);
        } else {
            builder(
                format!("{p}_select_via_branch"),
                vec![],
                b_select_via_branch,
            );
        }
        builder(format!("{p}_drop"), vec![], b_drop);
        builder(format!("{p}_nop"), vec![], b_nop);
        builder(format!("{p}_block"), vec![], b_block);
        builder(format!("{p}_loop"), vec![], b_loop);
        builder(format!("{p}_end"), vec![], b_end);
        builder(format!("{p}_br"), vec![Depth], b_br);
        builder(format!("{p}_br_if"), vec![Depth], b_br_if);
        if version.supports(crate::inst::WKind::BrTable) {
            builder(format!("{p}_br_table"), vec![Table], b_br_table);
        } else {
            builder(
                format!("{p}_br_table_via_chain"),
                vec![Table],
                b_br_table_via_chain,
            );
        }
        builder(format!("{p}_return"), vec![], b_return);
        if version.opaque_func_refs_in_text() {
            builder(format!("{p}_call_ref"), vec![FuncIdx], b_call);
        } else {
            builder(format!("{p}_call"), vec![FuncIdx], b_call);
        }
        WirRegistry { version, fns }
    }

    /// Every component, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &WirApiFn> {
        self.fns.iter()
    }

    /// Every builder, in registration order.
    pub fn builders(&self) -> impl Iterator<Item = &WirApiFn> {
        self.fns.iter().filter(|f| f.kind == ApiKind::Builder)
    }

    /// Looks a component up by name.
    pub fn find(&self, name: &str) -> Option<&WirApiFn> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// The getter whose return type is `ty`, if any. Return types are
    /// unique across getters, which is what makes builder-argument
    /// assignment deterministic given a builder signature.
    pub fn getter_returning(&self, ty: WirApiType) -> Option<&WirApiFn> {
        self.fns
            .iter()
            .find(|f| f.kind == ApiKind::Getter && f.ret == ty)
    }

    /// Extracts the argument list for `builder` from source instruction
    /// `inst` by running the getter matching each parameter type. `None`
    /// if some parameter cannot be sourced from this instruction — i.e.
    /// the builder is not *applicable* to it.
    pub fn args_for(&self, builder: &WirApiFn, inst: &WirInst) -> Option<Vec<WirApiValue>> {
        builder
            .params
            .iter()
            .map(|p| {
                let g = self.getter_returning(*p)?;
                match &g.imp {
                    WirApiImpl::Get(get) => get(inst),
                    WirApiImpl::Build(_) => None,
                }
            })
            .collect()
    }
}

impl DialectRegistry for WirRegistry {
    fn dialect(&self) -> &'static str {
        "wir"
    }

    fn versions(&self) -> String {
        format!("wir{}", self.version)
    }

    fn surface(&self) -> Vec<ApiSurfaceFn> {
        self.fns
            .iter()
            .map(|f| ApiSurfaceFn {
                name: f.name.clone(),
                kind: f.kind,
                params: f.params.iter().map(|p| p.name().to_string()).collect(),
                ret: f.ret.name().to_string(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_surface_encodes_the_three_quirk_families() {
        let v1 = WirRegistry::for_version(WirVersion::W1_0);
        let v2 = WirRegistry::for_version(WirVersion::W2_0);
        let v3 = WirRegistry::for_version(WirVersion::W3_0);
        // Renames.
        assert!(v1.find("emit_const").is_some());
        assert!(v1.find("build_const").is_none());
        assert!(v2.find("build_const").is_some());
        // Reordered parameters.
        assert_eq!(
            v2.find("build_binop").unwrap().params,
            vec![WirApiType::ValTy, WirApiType::BinKind]
        );
        assert_eq!(
            v3.find("build_binop").unwrap().params,
            vec![WirApiType::BinKind, WirApiType::ValTy]
        );
        // Representation migrations.
        assert!(v2.find("build_call").is_some());
        assert!(v3.find("build_call").is_none());
        assert!(v3.find("build_call_ref").is_some());
        // Composites stand in for missing instructions.
        assert!(v1.find("emit_select_via_branch").is_some());
        assert!(v2.find("build_select").is_some());
        assert!(v2.find("build_br_table_via_chain").is_some());
        assert!(v3.find("build_br_table").is_some());
    }

    #[test]
    fn getter_return_types_are_unique() {
        let r = WirRegistry::for_version(WirVersion::W2_0);
        let mut seen = std::collections::HashSet::new();
        for f in r.iter().filter(|f| f.kind == ApiKind::Getter) {
            assert!(
                seen.insert(f.ret),
                "duplicate getter return type {:?}",
                f.ret
            );
        }
    }

    #[test]
    fn args_for_derives_assignment_from_the_signature() {
        let v2 = WirRegistry::for_version(WirVersion::W2_0);
        let v3 = WirRegistry::for_version(WirVersion::W3_0);
        let inst = WirInst::Binop(WTy::I64, WBin::Xor);
        let a2 = v2.args_for(v2.find("build_binop").unwrap(), &inst).unwrap();
        assert_eq!(
            a2,
            vec![WirApiValue::ValTy(WTy::I64), WirApiValue::Bin(WBin::Xor)]
        );
        let a3 = v3.args_for(v3.find("build_binop").unwrap(), &inst).unwrap();
        assert_eq!(
            a3,
            vec![WirApiValue::Bin(WBin::Xor), WirApiValue::ValTy(WTy::I64)]
        );
        // A builder needing a table is not applicable to a binop.
        assert!(v3
            .args_for(v3.find("build_br_table").unwrap(), &inst)
            .is_none());
    }

    #[test]
    fn select_composite_behaves_like_native_select() {
        use crate::interp::{WirExec, WirMachine};
        use crate::module::WirModule;
        for (cond, want) in [(1i64, 10i64), (0, 20)] {
            let mut m = WirModule::new("t", WirVersion::W1_0);
            let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
            f.body.alloc(WirInst::Const(WTy::I32, 10));
            f.body.alloc(WirInst::Const(WTy::I32, 20));
            f.body.alloc(WirInst::Const(WTy::I32, cond));
            let reg = WirRegistry::for_version(WirVersion::W1_0);
            let b = reg.find("emit_select_via_branch").unwrap();
            let WirApiImpl::Build(run) = &b.imp else {
                panic!()
            };
            run(
                &mut WirEmit {
                    version: WirVersion::W1_0,
                    func: &mut f,
                },
                &[],
            )
            .unwrap();
            f.body.alloc(WirInst::Return);
            m.funcs.push(f);
            crate::validate::verify_module(&m).expect("composite must validate");
            assert_eq!(WirMachine::new(&m).run_main().result, WirExec::Value(want));
        }
    }

    #[test]
    fn surface_dump_is_stable_and_dialect_tagged() {
        let r = WirRegistry::for_version(WirVersion::W1_0);
        let d = r.describe();
        assert!(d.starts_with("registry wir wir1.0\n"), "{d}");
        assert!(d.contains("emit_binop(ValTy, BinKind) -> Void"), "{d}");
    }
}
