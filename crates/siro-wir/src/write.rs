//! The WIR writer: canonical text serialization.
//!
//! The format is line-based and wat-flavoured. The writer is canonical —
//! fixed indentation (two spaces per nesting level), one instruction per
//! line — so `parse(write(m))` reprints byte-identically, which the
//! conformance goldens and the warm-serve round-trip gates rely on.
//!
//! ```text
//! ;; wir 2.0
//! (module $demo)
//! (func $main (result i32)
//!   (local i32)
//!   i32.const 40
//!   i32.const 2
//!   i32.add
//!   return
//! )
//! ```
//!
//! Version quirks: from 3.0 on, call sites print the opaque function
//! reference `call @fN` instead of the symbolic `call $name`.

use std::fmt::Write as _;

use crate::inst::WirInst;
use crate::module::{WirFunc, WirModule};

/// Serializes `m` into the canonical text form.
pub fn write_module(m: &WirModule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ";; wir {}", m.version);
    let _ = writeln!(out, "(module ${})", m.name);
    for f in &m.funcs {
        write_func(&mut out, m, f);
    }
    out
}

fn write_func(out: &mut String, m: &WirModule, f: &WirFunc) {
    out.push_str("(func $");
    out.push_str(&f.name);
    if !f.params.is_empty() {
        out.push_str(" (param");
        for p in &f.params {
            let _ = write!(out, " {p}");
        }
        out.push(')');
    }
    if let Some(r) = f.result {
        let _ = write!(out, " (result {r})");
    }
    out.push('\n');
    if !f.locals.is_empty() {
        out.push_str("  (local");
        for l in &f.locals {
            let _ = write!(out, " {l}");
        }
        out.push_str(")\n");
    }
    let mut depth: usize = 0;
    for inst in f.body.iter() {
        if matches!(inst, WirInst::End) {
            depth = depth.saturating_sub(1);
        }
        for _ in 0..depth + 1 {
            out.push_str("  ");
        }
        write_inst(out, m, inst);
        out.push('\n');
        if matches!(inst, WirInst::Block | WirInst::Loop) {
            depth += 1;
        }
    }
    out.push_str(")\n");
}

fn write_inst(out: &mut String, m: &WirModule, inst: &WirInst) {
    match inst {
        WirInst::Const(ty, v) => {
            let _ = write!(out, "{ty}.const {v}");
        }
        WirInst::Binop(ty, op) => {
            let _ = write!(out, "{ty}.{op}");
        }
        WirInst::Cmp(ty, op) => {
            let _ = write!(out, "{ty}.{op}");
        }
        WirInst::Eqz(ty) => {
            let _ = write!(out, "{ty}.eqz");
        }
        WirInst::LocalGet(i) => {
            let _ = write!(out, "local.get {i}");
        }
        WirInst::LocalSet(i) => {
            let _ = write!(out, "local.set {i}");
        }
        WirInst::LocalTee(i) => {
            let _ = write!(out, "local.tee {i}");
        }
        WirInst::Select => out.push_str("select"),
        WirInst::Drop => out.push_str("drop"),
        WirInst::Nop => out.push_str("nop"),
        WirInst::Block => out.push_str("block"),
        WirInst::Loop => out.push_str("loop"),
        WirInst::End => out.push_str("end"),
        WirInst::Br(d) => {
            let _ = write!(out, "br {d}");
        }
        WirInst::BrIf(d) => {
            let _ = write!(out, "br_if {d}");
        }
        WirInst::BrTable(targets) => {
            out.push_str("br_table");
            for t in targets {
                let _ = write!(out, " {t}");
            }
        }
        WirInst::Return => out.push_str("return"),
        WirInst::Call(idx) => {
            if m.version.opaque_func_refs_in_text() {
                let _ = write!(out, "call @f{idx}");
            } else {
                let name = m
                    .funcs
                    .get(*idx as usize)
                    .map(|f| f.name.as_str())
                    .unwrap_or("?");
                let _ = write!(out, "call ${name}");
            }
        }
    }
}
