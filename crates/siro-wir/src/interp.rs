//! The WIR interpreter: the dialect's differential-testing oracle.
//!
//! Mirrors `siro_ir::interp::Machine`'s role: fuel-limited, deterministic,
//! and trap-classifying. Semantics are wasm's, which is where WIR and Siro
//! genuinely diverge: `div_s` traps on overflow (`MIN / -1`) where Siro's
//! `sdiv` wraps — the divergence the first cross-dialect regression
//! artifact records. Shift counts are masked modulo the bit width in both
//! dialects, so shifts do *not* diverge.

use crate::inst::{WBin, WCmp, WTy, WirInst};
use crate::module::{WirFunc, WirModule};

/// Default fuel budget (interpreted instructions) for [`WirMachine`].
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// Maximum call depth before [`WirTrap::CallDepth`].
pub const MAX_CALL_DEPTH: usize = 64;

/// Why execution stopped abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WirTrap {
    /// `div_s`/`rem_s` with a zero divisor.
    DivByZero,
    /// `div_s` overflow: `MIN / -1` (wasm traps; Siro wraps).
    IntegerOverflow,
    /// The fuel budget ran out.
    FuelExhausted,
    /// Call depth exceeded [`MAX_CALL_DEPTH`].
    CallDepth,
    /// The module has no `main` function.
    NoMain,
    /// The module is malformed (only reachable on unvalidated modules).
    Malformed,
}

impl WirTrap {
    /// Stable lowercase name, used in behaviour strings and artifacts.
    pub const fn name(self) -> &'static str {
        match self {
            WirTrap::DivByZero => "div-by-zero",
            WirTrap::IntegerOverflow => "integer-overflow",
            WirTrap::FuelExhausted => "fuel-exhausted",
            WirTrap::CallDepth => "call-depth",
            WirTrap::NoMain => "no-main",
            WirTrap::Malformed => "malformed",
        }
    }
}

impl std::fmt::Display for WirTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WirExec {
    /// `main` produced a value (i32 results are sign-extended to i64).
    Value(i64),
    /// `main` has no result type and returned normally.
    NoValue,
    /// Execution trapped.
    Trap(WirTrap),
}

/// The result of a [`WirMachine`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirOutcome {
    /// How execution ended.
    pub result: WirExec,
    /// Number of instructions interpreted.
    pub steps: u64,
}

impl WirOutcome {
    /// The returned integer, if execution produced one.
    pub fn return_int(&self) -> Option<i64> {
        match self.result {
            WirExec::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// A fuel-limited WIR interpreter over one module.
#[derive(Debug)]
pub struct WirMachine<'m> {
    module: &'m WirModule,
    fuel: u64,
}

struct Ctrl {
    is_loop: bool,
    /// Body index of the `block`/`loop` instruction.
    start: usize,
    /// Body index of the matching `end`.
    end: usize,
    entry_height: usize,
}

enum Flow {
    Done(Option<i64>),
    Trap(WirTrap),
}

impl<'m> WirMachine<'m> {
    /// Creates a machine with the default fuel budget.
    pub fn new(module: &'m WirModule) -> Self {
        WirMachine {
            module,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Replaces the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs `main` with no arguments.
    pub fn run_main(mut self) -> WirOutcome {
        let Some(main_idx) = self.module.func_index("main") else {
            return WirOutcome {
                result: WirExec::Trap(WirTrap::NoMain),
                steps: 0,
            };
        };
        let main = &self.module.funcs[main_idx as usize];
        if !main.params.is_empty() {
            return WirOutcome {
                result: WirExec::Trap(WirTrap::Malformed),
                steps: 0,
            };
        }
        let mut steps = 0u64;
        let flow = self.run_func(main_idx, &[], 0, &mut steps);
        let result = match flow {
            Flow::Done(Some(v)) => WirExec::Value(v),
            Flow::Done(None) => WirExec::NoValue,
            Flow::Trap(t) => WirExec::Trap(t),
        };
        WirOutcome { result, steps }
    }

    fn run_func(&mut self, func: u32, args: &[i64], depth: usize, steps: &mut u64) -> Flow {
        if depth > MAX_CALL_DEPTH {
            return Flow::Trap(WirTrap::CallDepth);
        }
        let Some(f) = self.module.funcs.get(func as usize) else {
            return Flow::Trap(WirTrap::Malformed);
        };
        let mut locals = vec![0i64; f.local_count()];
        locals[..args.len()].copy_from_slice(args);
        let ends = match match_ends(f) {
            Some(e) => e,
            None => return Flow::Trap(WirTrap::Malformed),
        };

        let mut stack: Vec<i64> = Vec::new();
        let mut ctrl: Vec<Ctrl> = Vec::new();
        let mut ip = 0usize;
        macro_rules! pop {
            () => {
                match stack.pop() {
                    Some(v) => v,
                    None => return Flow::Trap(WirTrap::Malformed),
                }
            };
        }
        while ip < f.body.len() {
            if self.fuel == 0 {
                return Flow::Trap(WirTrap::FuelExhausted);
            }
            self.fuel -= 1;
            *steps += 1;
            match &f.body[ip] {
                WirInst::Const(ty, v) => stack.push(norm(*ty, *v)),
                WirInst::Binop(ty, op) => {
                    let b = pop!();
                    let a = pop!();
                    match binop(*ty, *op, a, b) {
                        Ok(v) => stack.push(v),
                        Err(t) => return Flow::Trap(t),
                    }
                }
                WirInst::Cmp(ty, op) => {
                    let b = norm(*ty, pop!());
                    let a = norm(*ty, pop!());
                    stack.push(cmp(*op, a, b) as i64);
                }
                WirInst::Eqz(ty) => {
                    let v = norm(*ty, pop!());
                    stack.push((v == 0) as i64);
                }
                WirInst::LocalGet(i) => match locals.get(*i as usize) {
                    Some(v) => stack.push(*v),
                    None => return Flow::Trap(WirTrap::Malformed),
                },
                WirInst::LocalSet(i) => {
                    let v = pop!();
                    match locals.get_mut(*i as usize) {
                        Some(slot) => *slot = v,
                        None => return Flow::Trap(WirTrap::Malformed),
                    }
                }
                WirInst::LocalTee(i) => {
                    let v = match stack.last() {
                        Some(v) => *v,
                        None => return Flow::Trap(WirTrap::Malformed),
                    };
                    match locals.get_mut(*i as usize) {
                        Some(slot) => *slot = v,
                        None => return Flow::Trap(WirTrap::Malformed),
                    }
                }
                WirInst::Select => {
                    let c = pop!();
                    let b = pop!();
                    let a = pop!();
                    stack.push(if c as i32 != 0 { a } else { b });
                }
                WirInst::Drop => {
                    pop!();
                }
                WirInst::Nop => {}
                WirInst::Block | WirInst::Loop => ctrl.push(Ctrl {
                    is_loop: matches!(f.body[ip], WirInst::Loop),
                    start: ip,
                    end: ends[ip],
                    entry_height: stack.len(),
                }),
                WirInst::End => {
                    ctrl.pop();
                }
                WirInst::Br(d) => {
                    branch(&mut ctrl, &mut stack, &mut ip, *d);
                    continue;
                }
                WirInst::BrIf(d) => {
                    if pop!() as i32 != 0 {
                        branch(&mut ctrl, &mut stack, &mut ip, *d);
                        continue;
                    }
                }
                WirInst::BrTable(targets) => {
                    let i = pop!() as i32;
                    let d = if i >= 0 && (i as usize) < targets.len() - 1 {
                        targets[i as usize]
                    } else {
                        *targets.last().expect("parser requires a default")
                    };
                    branch(&mut ctrl, &mut stack, &mut ip, d);
                    continue;
                }
                WirInst::Return => {
                    return match f.result {
                        Some(ty) => Flow::Done(Some(norm(ty, pop!()))),
                        None => Flow::Done(None),
                    };
                }
                WirInst::Call(idx) => {
                    let Some(callee) = self.module.funcs.get(*idx as usize) else {
                        return Flow::Trap(WirTrap::Malformed);
                    };
                    let n = callee.params.len();
                    if stack.len() < n {
                        return Flow::Trap(WirTrap::Malformed);
                    }
                    let args: Vec<i64> = stack.split_off(stack.len() - n);
                    let has_result = callee.result.is_some();
                    match self.run_func(*idx, &args, depth + 1, steps) {
                        Flow::Done(Some(v)) if has_result => stack.push(v),
                        Flow::Done(_) => {}
                        trap @ Flow::Trap(_) => return trap,
                    }
                }
            }
            ip += 1;
        }
        // Implicit return by falling off the end.
        match f.result {
            Some(ty) => match stack.pop() {
                Some(v) => Flow::Done(Some(norm(ty, v))),
                None => Flow::Trap(WirTrap::Malformed),
            },
            None => Flow::Done(None),
        }
    }
}

/// Jumps to branch target `d` labels out, unwinding control frames and
/// truncating the operand stack to the target frame's entry height.
fn branch(ctrl: &mut Vec<Ctrl>, stack: &mut Vec<i64>, ip: &mut usize, d: u32) {
    let idx = ctrl.len() - 1 - d as usize;
    let target = &ctrl[idx];
    stack.truncate(target.entry_height);
    if target.is_loop {
        // Branch to a loop re-enters it at the instruction after the
        // `loop` head; the loop frame stays live.
        *ip = target.start + 1;
        ctrl.truncate(idx + 1);
    } else {
        *ip = target.end + 1;
        ctrl.truncate(idx);
    }
}

/// Matches each `block`/`loop` body index to its `end` index.
fn match_ends(f: &WirFunc) -> Option<Vec<usize>> {
    let mut ends = vec![0usize; f.body.len()];
    let mut open: Vec<usize> = Vec::new();
    for (i, inst) in f.body.iter().enumerate() {
        match inst {
            WirInst::Block | WirInst::Loop => open.push(i),
            WirInst::End => {
                let start = open.pop()?;
                ends[start] = i;
            }
            _ => {}
        }
    }
    open.is_empty().then_some(ends)
}

/// Truncates `v` to `ty`'s width and sign-extends back to i64.
fn norm(ty: WTy, v: i64) -> i64 {
    match ty {
        WTy::I32 => v as i32 as i64,
        WTy::I64 => v,
    }
}

fn binop(ty: WTy, op: WBin, a: i64, b: i64) -> Result<i64, WirTrap> {
    let a = norm(ty, a);
    let b = norm(ty, b);
    let bits = ty.bits();
    let v = match op {
        WBin::Add => a.wrapping_add(b),
        WBin::Sub => a.wrapping_sub(b),
        WBin::Mul => a.wrapping_mul(b),
        WBin::DivS => {
            if b == 0 {
                return Err(WirTrap::DivByZero);
            }
            let min = match ty {
                WTy::I32 => i32::MIN as i64,
                WTy::I64 => i64::MIN,
            };
            if a == min && b == -1 {
                // wasm `div_s` traps on overflow; Siro's `sdiv` wraps here.
                return Err(WirTrap::IntegerOverflow);
            }
            a.wrapping_div(b)
        }
        WBin::RemS => {
            if b == 0 {
                return Err(WirTrap::DivByZero);
            }
            // `MIN % -1` is defined (0) in wasm — no overflow trap.
            a.wrapping_rem(b)
        }
        WBin::And => a & b,
        WBin::Or => a | b,
        WBin::Xor => a ^ b,
        WBin::Shl => {
            let sh = (b as u32) % bits;
            a.wrapping_shl(sh)
        }
        WBin::ShrS => {
            let sh = (b as u32) % bits;
            a.wrapping_shr(sh)
        }
    };
    Ok(norm(ty, v))
}

fn cmp(op: WCmp, a: i64, b: i64) -> bool {
    match op {
        WCmp::Eq => a == b,
        WCmp::Ne => a != b,
        WCmp::LtS => a < b,
        WCmp::GtS => a > b,
        WCmp::LeS => a <= b,
        WCmp::GeS => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::WirVersion;

    fn run(body: Vec<WirInst>) -> WirExec {
        let mut m = WirModule::new("t", WirVersion::W3_0);
        let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
        f.body.extend(body);
        m.funcs.push(f);
        crate::validate::verify_module(&m).expect("test body must validate");
        WirMachine::new(&m).run_main().result
    }

    #[test]
    fn arithmetic_and_implicit_return() {
        let r = run(vec![
            WirInst::Const(WTy::I32, 40),
            WirInst::Const(WTy::I32, 2),
            WirInst::Binop(WTy::I32, WBin::Add),
        ]);
        assert_eq!(r, WirExec::Value(42));
    }

    #[test]
    fn div_s_traps_on_zero_and_overflow_but_rem_s_overflow_is_zero() {
        let div = |a: i64, b: i64, op: WBin| {
            run(vec![
                WirInst::Const(WTy::I32, a),
                WirInst::Const(WTy::I32, b),
                WirInst::Binop(WTy::I32, op),
            ])
        };
        assert_eq!(div(5, 0, WBin::DivS), WirExec::Trap(WirTrap::DivByZero));
        assert_eq!(
            div(i32::MIN as i64, -1, WBin::DivS),
            WirExec::Trap(WirTrap::IntegerOverflow)
        );
        assert_eq!(div(i32::MIN as i64, -1, WBin::RemS), WirExec::Value(0));
        assert_eq!(div(7, 2, WBin::DivS), WirExec::Value(3));
        assert_eq!(div(-7, 2, WBin::RemS), WirExec::Value(-1));
    }

    #[test]
    fn shift_counts_mask_modulo_width() {
        let r = run(vec![
            WirInst::Const(WTy::I32, 1),
            WirInst::Const(WTy::I32, 33),
            WirInst::Binop(WTy::I32, WBin::Shl),
        ]);
        assert_eq!(r, WirExec::Value(2));
    }

    #[test]
    fn loop_counts_to_ten() {
        // local0 = 0; loop { local0 += 1; br_if(local0 < 10) } return local0
        let mut m = WirModule::new("t", WirVersion::W1_0);
        let mut f = WirFunc::new("main", vec![], Some(WTy::I32));
        let l = f.alloc_local(WTy::I32);
        f.body.extend(vec![
            WirInst::Loop,
            WirInst::LocalGet(l),
            WirInst::Const(WTy::I32, 1),
            WirInst::Binop(WTy::I32, WBin::Add),
            WirInst::LocalSet(l),
            WirInst::LocalGet(l),
            WirInst::Const(WTy::I32, 10),
            WirInst::Cmp(WTy::I32, WCmp::LtS),
            WirInst::BrIf(0),
            WirInst::End,
            WirInst::LocalGet(l),
            WirInst::Return,
        ]);
        m.funcs.push(f);
        crate::validate::verify_module(&m).expect("valid");
        let out = WirMachine::new(&m).run_main();
        assert_eq!(out.result, WirExec::Value(10));
        assert!(out.steps > 9 * 9);
    }

    #[test]
    fn block_branch_skips_forward() {
        let r = run(vec![
            WirInst::Block,
            WirInst::Const(WTy::I32, 1),
            WirInst::BrIf(0),
            WirInst::Nop,
            WirInst::End,
            WirInst::Const(WTy::I32, 5),
            WirInst::Return,
        ]);
        assert_eq!(r, WirExec::Value(5));
    }

    #[test]
    fn br_table_selects_depth() {
        // block block (i=1) br_table [1 0 / default 0] → depth 1 (outer)
        let r = run(vec![
            WirInst::Block,
            WirInst::Block,
            WirInst::Const(WTy::I32, 0),
            WirInst::BrTable(vec![1, 0]),
            WirInst::End,
            WirInst::Const(WTy::I32, 7),
            WirInst::Return,
            WirInst::End,
            WirInst::Const(WTy::I32, 9),
            WirInst::Return,
        ]);
        assert_eq!(r, WirExec::Value(9));
    }

    #[test]
    fn calls_pass_args_and_fuel_is_shared() {
        let mut m = WirModule::new("t", WirVersion::W1_0);
        let mut main = WirFunc::new("main", vec![], Some(WTy::I32));
        main.body.extend(vec![
            WirInst::Const(WTy::I32, 20),
            WirInst::Const(WTy::I32, 22),
            WirInst::Call(1),
            WirInst::Return,
        ]);
        let mut add = WirFunc::new("add", vec![WTy::I32, WTy::I32], Some(WTy::I32));
        add.body.extend(vec![
            WirInst::LocalGet(0),
            WirInst::LocalGet(1),
            WirInst::Binop(WTy::I32, WBin::Add),
            WirInst::Return,
        ]);
        m.funcs.push(main);
        m.funcs.push(add);
        crate::validate::verify_module(&m).expect("valid");
        assert_eq!(WirMachine::new(&m).run_main().result, WirExec::Value(42));
        assert_eq!(
            WirMachine::new(&m).with_fuel(3).run_main().result,
            WirExec::Trap(WirTrap::FuelExhausted)
        );
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let mut m = WirModule::new("t", WirVersion::W1_0);
        let mut f = WirFunc::new("main", vec![], None);
        f.body
            .extend(vec![WirInst::Loop, WirInst::Br(0), WirInst::End]);
        m.funcs.push(f);
        crate::validate::verify_module(&m).expect("valid");
        let out = WirMachine::new(&m).with_fuel(1000).run_main();
        assert_eq!(out.result, WirExec::Trap(WirTrap::FuelExhausted));
        assert_eq!(out.steps, 1000);
    }
}
