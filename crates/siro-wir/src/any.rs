//! Dialect-tagged module wrapper.
//!
//! The serving path needs one value type that can hold a module of either
//! dialect: [`AnyModule`] is that sum, with text sniffing ([`AnyModule::parse`]
//! keys off WIR's `;; wir` header line), dialect-generic verify/print, and
//! the [`DialectVersion`] that routing keys on.

use siro_ir::{DialectVersion, Module};

use crate::module::WirModule;
use crate::parse::{looks_like_wir, parse_module};
use crate::version::WirVersion;

/// A module of either dialect.
#[derive(Debug, Clone)]
pub enum AnyModule {
    /// A Siro (register/SSA) module.
    Siro(Module),
    /// A WIR (stack-machine) module.
    Wir(WirModule),
}

impl AnyModule {
    /// Parses text of either dialect, sniffing WIR via its header comment
    /// and falling back to the Siro parser otherwise.
    pub fn parse(text: &str) -> Result<AnyModule, String> {
        if looks_like_wir(text) {
            parse_module(text)
                .map(AnyModule::Wir)
                .map_err(|e| e.to_string())
        } else {
            siro_ir::parse::parse_module(text)
                .map(AnyModule::Siro)
                .map_err(|e| e.to_string())
        }
    }

    /// The module's dialect-qualified version.
    pub fn dialect_version(&self) -> DialectVersion {
        match self {
            AnyModule::Siro(m) => DialectVersion::from(m.version),
            AnyModule::Wir(m) => DialectVersion::from(m.version),
        }
    }

    /// Renders canonical text for the module's dialect.
    pub fn print(&self) -> String {
        match self {
            AnyModule::Siro(m) => siro_ir::write::write_module(m),
            AnyModule::Wir(m) => crate::write::write_module(m),
        }
    }

    /// Verifies the module under its dialect's rules.
    pub fn verify(&self) -> Result<(), String> {
        match self {
            AnyModule::Siro(m) => siro_ir::verify::verify_module(m).map_err(|e| e.to_string()),
            AnyModule::Wir(m) => crate::validate::verify_module(m).map_err(|e| e.to_string()),
        }
    }

    /// The Siro module, if this is one.
    pub fn as_siro(&self) -> Option<&Module> {
        match self {
            AnyModule::Siro(m) => Some(m),
            AnyModule::Wir(_) => None,
        }
    }

    /// The WIR module, if this is one.
    pub fn as_wir(&self) -> Option<&WirModule> {
        match self {
            AnyModule::Siro(_) => None,
            AnyModule::Wir(m) => Some(m),
        }
    }
}

/// Parses text that must be WIR at a specific expected version, for store
/// round-trips where the version is known from the key.
pub fn parse_wir_expecting(text: &str, version: WirVersion) -> Result<WirModule, String> {
    let m = parse_module(text).map_err(|e| e.to_string())?;
    if m.version != version {
        return Err(format!(
            "version mismatch: text says {}, expected {}",
            m.version, version
        ));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::Dialect;

    #[test]
    fn sniffing_separates_the_dialects() {
        let wir = crate::gen::generate_module(3, WirVersion::W2_0);
        let wir_text = crate::write::write_module(&wir);
        let any = AnyModule::parse(&wir_text).unwrap();
        assert_eq!(any.dialect_version().dialect, Dialect::Wir);
        assert_eq!(any.print(), wir_text);
        any.verify().unwrap();

        let siro_text =
            "; ModuleID = 'm'\n; IR version 13.0\n\ndefine i32 @main() {\nentry.0:\n  ret i32 7\n}\n";
        let any = AnyModule::parse(siro_text).unwrap();
        assert_eq!(any.dialect_version().dialect, Dialect::Siro);
        any.verify().unwrap();
    }
}
