//! The WIR reader.
//!
//! Parses the canonical text form produced by [`crate::write`]. Indentation
//! is not significant (every line is trimmed), so hand-written modules
//! parse too; the writer then canonicalizes them. Symbolic call targets
//! (`call $name`, pre-3.0) may reference functions declared later in the
//! module, so call resolution is a second pass.
//!
//! After the `;; wir <version>` header, any line starting with `;;` is a
//! comment and is skipped wherever it appears. Regression artifacts rely on
//! this: their `;; difftest-*:` metadata rides inside a file
//! [`parse_module`] accepts unchanged (the same contract the Siro dialect's
//! `; difftest-*:` artifact comments have).

use crate::inst::{WBin, WCmp, WTy, WirInst};
use crate::module::{WirFunc, WirModule};
use crate::version::WirVersion;

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for WirParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for WirParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, WirParseError> {
    Err(WirParseError {
        line,
        message: message.into(),
    })
}

/// Whether `text` looks like WIR (starts with the `;; wir` header).
///
/// Used by dialect sniffing: Siro modules start with `; IR version`.
pub fn looks_like_wir(text: &str) -> bool {
    text.trim_start().starts_with(";; wir ")
}

/// Parses the canonical text form back into a [`WirModule`].
pub fn parse_module(text: &str) -> Result<WirModule, WirParseError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));

    // Header: `;; wir X.Y`.
    let (ln, header) = lines
        .by_ref()
        .find(|(_, l)| !l.is_empty())
        .ok_or(WirParseError {
            line: 1,
            message: "empty input".into(),
        })?;
    let Some(version) = header.strip_prefix(";; wir ") else {
        return err(
            ln,
            format!("expected `;; wir <version>` header, got `{header}`"),
        );
    };
    let version = match version.split_once('.') {
        Some((maj, min)) => match (maj.parse::<u16>(), min.parse::<u16>()) {
            (Ok(maj), Ok(min)) => WirVersion::new(maj, min),
            _ => return err(ln, format!("bad version number `{version}`")),
        },
        None => return err(ln, format!("bad version `{version}`")),
    };
    if !WirVersion::CATALOG.contains(&version) {
        return err(ln, format!("unknown WIR version {version}"));
    }

    // Module line: `(module $name)`.
    let (ln, module_line) = lines
        .by_ref()
        .find(|(_, l)| !l.is_empty() && !l.starts_with(";;"))
        .ok_or(WirParseError {
            line: ln,
            message: "missing `(module ...)` line".into(),
        })?;
    let name = module_line
        .strip_prefix("(module $")
        .and_then(|r| r.strip_suffix(')'))
        .ok_or(WirParseError {
            line: ln,
            message: format!("expected `(module $name)`, got `{module_line}`"),
        })?;
    let mut m = WirModule::new(name, version);

    // Functions. Symbolic calls are recorded as (func_idx, inst_ptr, name)
    // fixups and resolved after all functions are known.
    let mut fixups: Vec<(usize, usize, String, usize)> = Vec::new();
    let mut cur: Option<WirFunc> = None;
    for (ln, line) in lines {
        if line.is_empty() || line.starts_with(";;") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("(func $") {
            if cur.is_some() {
                return err(ln, "nested `(func` — missing closing `)`?");
            }
            cur = Some(parse_func_header(ln, rest)?);
            continue;
        }
        let Some(f) = cur.as_mut() else {
            return err(ln, format!("instruction outside a function: `{line}`"));
        };
        if line == ")" {
            m.funcs.push(cur.take().unwrap());
            continue;
        }
        if let Some(rest) = line.strip_prefix("(local") {
            let rest = rest.strip_suffix(')').ok_or(WirParseError {
                line: ln,
                message: "unterminated `(local ...`".into(),
            })?;
            if !f.body.is_empty() || !f.locals.is_empty() {
                return err(ln, "`(local ...)` must precede the body");
            }
            for tok in rest.split_whitespace() {
                let ty = WTy::parse(tok).ok_or_else(|| WirParseError {
                    line: ln,
                    message: format!("bad local type `{tok}`"),
                })?;
                f.locals.push(ty);
            }
            continue;
        }
        let inst = parse_inst(ln, line, version, &mut |name| {
            // Symbolic call: remember the site for the resolution pass.
            fixups.push((m.funcs.len(), 0, name.to_string(), ln));
        })?;
        let p = f.body.alloc(inst);
        if let Some(last) = fixups.last_mut() {
            if last.0 == m.funcs.len() && last.1 == 0 && last.3 == ln {
                last.1 = p.index();
            }
        }
    }
    if cur.is_some() {
        return err(usize::MAX, "unterminated function — missing `)`");
    }

    for (func_idx, inst_idx, name, ln) in fixups {
        let target = m.func_index(&name).ok_or(WirParseError {
            line: ln,
            message: format!("call to unknown function `${name}`"),
        })?;
        m.funcs[func_idx].body[inst_idx] = WirInst::Call(target);
    }
    Ok(m)
}

fn parse_func_header(ln: usize, rest: &str) -> Result<WirFunc, WirParseError> {
    // `name (param i32 i64) (result i32)` — groups are optional.
    let name_end = rest.find([' ', ')']).unwrap_or(rest.len());
    let name = &rest[..name_end];
    if name.is_empty() {
        return err(ln, "function name missing after `$`");
    }
    let mut f = WirFunc::new(name, Vec::new(), None);
    let mut tail = rest[name_end..].trim();
    while !tail.is_empty() {
        if let Some(group) = tail.strip_prefix("(param") {
            let end = group.find(')').ok_or(WirParseError {
                line: ln,
                message: "unterminated `(param`".into(),
            })?;
            for tok in group[..end].split_whitespace() {
                f.params.push(WTy::parse(tok).ok_or_else(|| WirParseError {
                    line: ln,
                    message: format!("bad param type `{tok}`"),
                })?);
            }
            tail = group[end + 1..].trim();
        } else if let Some(group) = tail.strip_prefix("(result") {
            let end = group.find(')').ok_or(WirParseError {
                line: ln,
                message: "unterminated `(result`".into(),
            })?;
            let toks: Vec<&str> = group[..end].split_whitespace().collect();
            if toks.len() != 1 {
                return err(ln, "exactly one result type expected");
            }
            f.result = Some(WTy::parse(toks[0]).ok_or_else(|| WirParseError {
                line: ln,
                message: format!("bad result type `{}`", toks[0]),
            })?);
            tail = group[end + 1..].trim();
        } else {
            return err(ln, format!("unexpected in function header: `{tail}`"));
        }
    }
    Ok(f)
}

fn parse_inst(
    ln: usize,
    line: &str,
    version: WirVersion,
    symbolic_call: &mut dyn FnMut(&str),
) -> Result<WirInst, WirParseError> {
    let mut toks = line.split_whitespace();
    let head = toks.next().unwrap();
    let int_arg = |toks: &mut dyn Iterator<Item = &str>| -> Result<i64, WirParseError> {
        let tok = toks.next().ok_or(WirParseError {
            line: ln,
            message: format!("`{head}` needs an argument"),
        })?;
        tok.parse().map_err(|_| WirParseError {
            line: ln,
            message: format!("bad integer `{tok}`"),
        })
    };
    let inst = match head {
        "select" => {
            require(ln, version, crate::inst::WKind::Select)?;
            WirInst::Select
        }
        "drop" => WirInst::Drop,
        "nop" => WirInst::Nop,
        "block" => WirInst::Block,
        "loop" => WirInst::Loop,
        "end" => WirInst::End,
        "return" => WirInst::Return,
        "br" => WirInst::Br(int_arg(&mut toks)? as u32),
        "br_if" => WirInst::BrIf(int_arg(&mut toks)? as u32),
        "br_table" => {
            require(ln, version, crate::inst::WKind::BrTable)?;
            let targets: Result<Vec<u32>, _> = line
                .split_whitespace()
                .skip(1)
                .map(|t| {
                    t.parse::<u32>().map_err(|_| WirParseError {
                        line: ln,
                        message: format!("bad br_table target `{t}`"),
                    })
                })
                .collect();
            let targets = targets?;
            if targets.is_empty() {
                return err(ln, "br_table needs at least a default target");
            }
            return Ok(WirInst::BrTable(targets));
        }
        "call" => {
            let tok = toks.next().ok_or(WirParseError {
                line: ln,
                message: "`call` needs a target".into(),
            })?;
            if let Some(idx) = tok.strip_prefix("@f") {
                if !version.opaque_func_refs_in_text() {
                    return err(ln, format!("opaque `call {tok}` requires wir 3.0+"));
                }
                WirInst::Call(idx.parse().map_err(|_| WirParseError {
                    line: ln,
                    message: format!("bad function reference `{tok}`"),
                })?)
            } else if let Some(name) = tok.strip_prefix('$') {
                if version.opaque_func_refs_in_text() {
                    return err(ln, format!("symbolic `call {tok}` removed in wir 3.0"));
                }
                symbolic_call(name);
                WirInst::Call(u32::MAX) // patched by the resolution pass
            } else {
                return err(ln, format!("bad call target `{tok}`"));
            }
        }
        "local.get" => WirInst::LocalGet(int_arg(&mut toks)? as u32),
        "local.set" => WirInst::LocalSet(int_arg(&mut toks)? as u32),
        "local.tee" => {
            require(ln, version, crate::inst::WKind::LocalTee)?;
            WirInst::LocalTee(int_arg(&mut toks)? as u32)
        }
        _ => {
            // Typed forms: `i32.const 5`, `i64.add`, `i32.lt_s`, `i32.eqz`.
            let Some((ty, op)) = head.split_once('.') else {
                return err(ln, format!("unknown instruction `{head}`"));
            };
            let ty = WTy::parse(ty).ok_or_else(|| WirParseError {
                line: ln,
                message: format!("unknown type prefix in `{head}`"),
            })?;
            match op {
                "const" => WirInst::Const(ty, int_arg(&mut toks)?),
                "eqz" => WirInst::Eqz(ty),
                _ => {
                    if let Some(b) = WBin::parse(op) {
                        WirInst::Binop(ty, b)
                    } else if let Some(c) = WCmp::parse(op) {
                        WirInst::Cmp(ty, c)
                    } else {
                        return err(ln, format!("unknown instruction `{head}`"));
                    }
                }
            }
        }
    };
    if toks.next().is_some() {
        return err(ln, format!("trailing tokens after `{head}`"));
    }
    Ok(inst)
}

fn require(ln: usize, version: WirVersion, kind: crate::inst::WKind) -> Result<(), WirParseError> {
    if version.supports(kind) {
        Ok(())
    } else {
        err(ln, format!("`{kind}` is not available in wir {version}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::write_module;

    #[test]
    fn minimal_module_round_trips() {
        let text =
            ";; wir 1.0\n(module $demo)\n(func $main (result i32)\n  i32.const 42\n  return\n)\n";
        let m = parse_module(text).expect("parse");
        assert_eq!(m.version, WirVersion::W1_0);
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(write_module(&m), text);
    }

    #[test]
    fn symbolic_forward_calls_resolve() {
        let text = ";; wir 1.0\n(module $m)\n(func $main (result i32)\n  call $late\n  return\n)\n(func $late (result i32)\n  i32.const 7\n  return\n)\n";
        let m = parse_module(text).expect("parse");
        assert_eq!(m.funcs[0].body[0], WirInst::Call(1));
        assert_eq!(write_module(&m), text);
    }

    #[test]
    fn version_gates_are_enforced_at_parse() {
        let select_v1 = ";; wir 1.0\n(module $m)\n(func $main\n  select\n)\n";
        assert!(parse_module(select_v1).is_err());
        let opaque_v1 = ";; wir 1.0\n(module $m)\n(func $main\n  call @f0\n)\n";
        assert!(parse_module(opaque_v1).is_err());
        let symbolic_v3 = ";; wir 3.0\n(module $m)\n(func $main\n  call $main\n)\n";
        assert!(parse_module(symbolic_v3).is_err());
    }

    #[test]
    fn comment_lines_after_the_header_are_skipped() {
        let text = ";; wir 1.0\n;; leading note\n(module $m)\n(func $main (result i32)\n  ;; inside a body\n  i32.const 3\n  return\n)\n;; difftest-detail: trailing metadata\n";
        let m = parse_module(text).expect("comments must not break parsing");
        assert_eq!(m.funcs[0].body.len(), 2);
        // The writer canonicalizes the comments away.
        assert!(!write_module(&m).contains("note"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = ";; wir 1.0\n(module $m)\n(func $main\n  bogus.op\n)\n";
        let e = parse_module(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("bogus.op"), "{e}");
    }
}
