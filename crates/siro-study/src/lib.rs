//! # siro-study — the LLVM IR upgrade study (§6.1, Fig. 8)
//!
//! The paper surveys LLVM 3.0–17.0 along the three incompatibility
//! dimensions of §3.1 — text (bitcode parser/reader changes), API (IR
//! headers and built-in analyses), and semantics (new instructions) — and
//! plots each dimension's *cumulative share of total change* per version.
//!
//! This crate embeds the per-version change dataset (line counts calibrated
//! to the paper's aggregates: ≈25 KLOC of text changes, ≈31 KLOC of API
//! changes, 8 new instructions; two growth periods, 3.6–5 and 6–11) and
//! computes the Fig. 8 cumulative series. The semantic dimension is not
//! hand-tuned at all: it is derived from this repository's own
//! [`Opcode::introduced_in`](siro_ir::Opcode) catalog.

#![warn(missing_docs)]

/// One surveyed LLVM version step.
#[derive(Debug, Clone)]
pub struct VersionChange {
    /// Version label as plotted on the X axis.
    pub version: &'static str,
    /// Changed lines in the bitcode parser (text dimension, module 1).
    pub bitcode_parser_loc: u32,
    /// Changed lines in the bitcode reader (text dimension, module 2).
    pub bitcode_reader_loc: u32,
    /// Changed lines in the IR C++ headers (API dimension, module 1).
    pub ir_header_loc: u32,
    /// Changed lines across the alias/dependence/dominance analyses
    /// (API dimension, module 2).
    pub builtin_analyses_loc: u32,
    /// New instructions introduced at this version (semantic dimension).
    pub new_instructions: u32,
}

/// The embedded survey dataset, one row per major version from 3.1 to 17.
///
/// Text and API line counts are calibrated so the totals match the paper's
/// reported aggregates (≈25 KLOC text, ≈31 KLOC API) with the two active
/// growth periods the paper identifies (3.6–5 and 6–11). The
/// `new_instructions` column follows this repository's opcode catalog.
pub fn survey() -> Vec<VersionChange> {
    fn row(
        version: &'static str,
        parser: u32,
        reader: u32,
        header: u32,
        analyses: u32,
        insts: u32,
    ) -> VersionChange {
        VersionChange {
            version,
            bitcode_parser_loc: parser,
            bitcode_reader_loc: reader,
            ir_header_loc: header,
            builtin_analyses_loc: analyses,
            new_instructions: insts,
        }
    }
    vec![
        row("3.1", 360, 330, 450, 230, 0),
        row("3.2", 340, 300, 420, 220, 0),
        row("3.3", 390, 360, 490, 260, 0),
        row("3.4", 450, 410, 560, 300, 1), // addrspacecast
        row("3.5", 500, 460, 610, 330, 0),
        // ---- growth period 1: 3.6 - 5 --------------------------------
        row("3.6", 990, 890, 1170, 630, 0),
        row("3.7", 1270, 1140, 1480, 780, 5), // Windows EH family
        row("3.8", 1190, 1070, 1390, 750, 0),
        row("3.9", 1110, 1010, 1300, 690, 0),
        row("4", 1020, 910, 1220, 650, 0),
        row("5", 960, 870, 1160, 610, 0),
        // ---- quieter text, active API: period 2 (6 - 11) ---------------
        row("6", 480, 430, 1090, 590, 0),
        row("7", 450, 400, 1130, 610, 0),
        row("8", 460, 410, 1170, 630, 0),
        row("9", 500, 450, 1260, 660, 1),  // callbr
        row("10", 480, 430, 1220, 640, 1), // freeze
        row("11", 460, 410, 1200, 630, 0),
        // ---- tail ------------------------------------------------------
        row("12", 280, 250, 490, 260, 0),
        row("13", 270, 240, 470, 250, 0),
        row("14", 280, 250, 480, 250, 0),
        row("15", 410, 370, 610, 330, 0), // opaque pointers
        row("16", 260, 230, 450, 240, 0),
        row("17", 250, 220, 430, 230, 0),
    ]
}

/// One point of a Fig. 8 series: the version's contribution to the overall
/// change, as a percentage (modules within a dimension weighted equally).
#[derive(Debug, Clone, Copy)]
pub struct TrendPoint {
    /// Per-version increment (percent of the dimension's total change).
    pub increment_pct: f64,
    /// Running cumulative percentage.
    pub cumulative_pct: f64,
}

/// The three Fig. 8 series.
#[derive(Debug, Clone)]
pub struct UpgradeTrend {
    /// X-axis labels.
    pub versions: Vec<&'static str>,
    /// Text-dimension series.
    pub text: Vec<TrendPoint>,
    /// API-dimension series.
    pub api: Vec<TrendPoint>,
    /// Semantic-dimension series.
    pub semantic: Vec<TrendPoint>,
}

fn cumulative(series_per_module: &[Vec<f64>]) -> Vec<TrendPoint> {
    // Each module normalised to percent, then equally weighted.
    let n = series_per_module[0].len();
    let mut incr = vec![0.0; n];
    for module in series_per_module {
        let total: f64 = module.iter().sum();
        if total == 0.0 {
            continue;
        }
        for (i, v) in module.iter().enumerate() {
            incr[i] += v / total * 100.0 / series_per_module.len() as f64;
        }
    }
    let mut cum = 0.0;
    incr.iter()
        .map(|&i| {
            cum += i;
            TrendPoint {
                increment_pct: i,
                cumulative_pct: cum,
            }
        })
        .collect()
}

/// Computes the Fig. 8 trend from the survey dataset.
pub fn upgrade_trend() -> UpgradeTrend {
    let data = survey();
    let col = |f: fn(&VersionChange) -> u32| -> Vec<f64> {
        data.iter().map(|r| f64::from(f(r))).collect()
    };
    UpgradeTrend {
        versions: data.iter().map(|r| r.version).collect(),
        text: cumulative(&[col(|r| r.bitcode_parser_loc), col(|r| r.bitcode_reader_loc)]),
        api: cumulative(&[col(|r| r.ir_header_loc), col(|r| r.builtin_analyses_loc)]),
        semantic: cumulative(&[col(|r| r.new_instructions)]),
    }
}

/// Total changed lines in the text dimension.
pub fn text_total_loc() -> u32 {
    survey()
        .iter()
        .map(|r| r.bitcode_parser_loc + r.bitcode_reader_loc)
        .sum()
}

/// Total changed lines in the API dimension.
pub fn api_total_loc() -> u32 {
    survey()
        .iter()
        .map(|r| r.ir_header_loc + r.builtin_analyses_loc)
        .sum()
}

/// Total new instructions across the survey.
pub fn new_instruction_total() -> u32 {
    survey().iter().map(|r| r.new_instructions).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_match_the_paper() {
        // "approximately 25 KLOC and 31 KLOC" and "8 new instructions".
        let text = text_total_loc();
        let api = api_total_loc();
        assert!((24_000..26_000).contains(&text), "text total {text}");
        assert!((30_000..32_000).contains(&api), "api total {api}");
        assert_eq!(new_instruction_total(), 8);
    }

    #[test]
    fn semantic_dimension_matches_the_opcode_catalog() {
        // The survey's new-instruction column must agree with the substrate.
        let from_catalog = siro_ir::Opcode::ALL
            .iter()
            .filter(|o| o.introduced_in() > siro_ir::IrVersion::V3_0)
            .count() as u32;
        assert_eq!(new_instruction_total(), from_catalog);
    }

    #[test]
    fn cumulative_series_end_at_one_hundred() {
        let t = upgrade_trend();
        for series in [&t.text, &t.api, &t.semantic] {
            let last = series.last().unwrap().cumulative_pct;
            assert!((last - 100.0).abs() < 1e-6, "ends at {last}");
            // Monotone non-decreasing.
            let mut prev = 0.0;
            for p in series {
                assert!(p.cumulative_pct >= prev - 1e-9);
                prev = p.cumulative_pct;
            }
        }
    }

    #[test]
    fn growth_periods_are_visible() {
        let t = upgrade_trend();
        let idx = |v: &str| t.versions.iter().position(|&x| x == v).unwrap();
        // Period 1 (3.6 - 5) contributes a large share of the text change.
        let p1: f64 = t.text[idx("3.6")..=idx("5")]
            .iter()
            .map(|p| p.increment_pct)
            .sum();
        assert!(p1 > 40.0, "period 1 text share {p1:.1}%");
        // Period 2 (6 - 11) is active in the API dimension.
        let p2: f64 = t.api[idx("6")..=idx("11")]
            .iter()
            .map(|p| p.increment_pct)
            .sum();
        assert!(p2 > 25.0, "period 2 api share {p2:.1}%");
        // Both periods together dominate the semantic dimension (7 of 8).
        let sem: f64 = t.semantic[idx("3.6")..=idx("11")]
            .iter()
            .map(|p| p.increment_pct)
            .sum();
        assert!(sem > 70.0, "semantic share {sem:.1}%");
    }

    #[test]
    fn survey_spans_3_1_to_17() {
        let s = survey();
        assert_eq!(s.first().unwrap().version, "3.1");
        assert_eq!(s.last().unwrap().version, "17");
        assert_eq!(s.len(), 23);
    }
}
