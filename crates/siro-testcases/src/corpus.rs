//! The 68 test cases. Every case builds `main() -> i32` returning its
//! oracle constant, exercising one or a few instruction kinds with
//! operand values chosen to discriminate wrong candidates.

use siro_ir::{
    FloatPredicate, FuncBuilder, Global, GlobalInit, InlineAsm, Instruction, IntPredicate,
    IrVersion, Module, Opcode, Param, TypeId, ValueRef,
};

use crate::TestCase;

fn ci(ty: TypeId, v: i64) -> ValueRef {
    ValueRef::const_int(ty, v)
}

fn cf(ty: TypeId, v: f64) -> ValueRef {
    ValueRef::const_float(ty, v)
}

/// Creates a module with an empty `main` and hands a positioned builder to
/// the closure.
fn simple(v: IrVersion, f: impl FnOnce(&mut FuncBuilder<'_>, TypeId)) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    b.position_at_end(e);
    f(&mut b, i32t);
    m
}

macro_rules! binary_case {
    ($fname:ident, $method:ident, $a:expr, $b:expr) => {
        fn $fname(v: IrVersion) -> Module {
            simple(v, |b, i32t| {
                let x = b.$method(ci(i32t, $a), ci(i32t, $b));
                b.ret(Some(x));
            })
        }
    };
}

macro_rules! float_case {
    ($fname:ident, $method:ident, $a:expr, $b:expr) => {
        fn $fname(v: IrVersion) -> Module {
            simple(v, |b, i32t| {
                let f64t = b.module().types.f64();
                let x = b.$method(cf(f64t, $a), cf(f64t, $b));
                let n = b.cast(Opcode::FPToSI, x, i32t);
                b.ret(Some(n));
            })
        }
    };
}

// ---- Arithmetic ----------------------------------------------------------

fn ret_const(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        b.ret(Some(ci(i32t, 7)));
    })
}

binary_case!(add_sym, add, 10, 10); // deliberately weak (Fig. 7 left)
binary_case!(add_asym, add, 20, 10);
binary_case!(sub_asym, sub, 20, 10); // the Fig. 7 right-hand case
binary_case!(mul_asym, mul, 6, 7);
binary_case!(udiv_asym, udiv, 40, 5);
binary_case!(sdiv_neg, sdiv, -40, 5);
binary_case!(urem_asym, urem, 43, 5);
binary_case!(srem_neg, srem, -43, 5);
binary_case!(shl_asym, shl, 3, 1);
binary_case!(lshr_asym, lshr, 64, 2);
binary_case!(ashr_neg, ashr, -64, 2);
binary_case!(and_asym, and, 12, 10);
binary_case!(or_asym, or, 12, 10);
binary_case!(xor_asym, xor, 12, 10);

float_case!(fadd_to_int, fadd, 2.5, 0.25);
float_case!(fsub_to_int, fsub, 5.5, 1.25);
float_case!(fmul_to_int, fmul, 2.5, 4.0);
float_case!(fdiv_to_int, fdiv, 10.0, 4.0);
float_case!(frem_to_int, frem, 10.5, 4.0);

fn fneg_to_int(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f64t = b.module().types.f64();
        let x = b.fneg(cf(f64t, -5.0));
        let n = b.cast(Opcode::FPToSI, x, i32t);
        b.ret(Some(n));
    })
}

// ---- Casts ---------------------------------------------------------------

fn trunc_zext(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let i64t = b.module().types.i64();
        let i8t = b.module().types.i8();
        let t = b.trunc(ci(i64t, 300), i8t); // 300 mod 256 = 44
        let z = b.zext(t, i32t);
        b.ret(Some(z));
    })
}

fn sext_neg(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let i8t = b.module().types.i8();
        let s = b.sext(ci(i8t, 200), i32t); // 200 as i8 = -56
        b.ret(Some(s));
    })
}

fn fptrunc_case(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f64t = b.module().types.f64();
        let f32t = b.module().types.f32();
        let t = b.cast(Opcode::FPTrunc, cf(f64t, 2.75), f32t);
        let n = b.cast(Opcode::FPToSI, t, i32t);
        b.ret(Some(n));
    })
}

fn fpext_case(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f32t = b.module().types.f32();
        let f64t = b.module().types.f64();
        let e = b.cast(Opcode::FPExt, cf(f32t, 3.5), f64t);
        let n = b.cast(Opcode::FPToSI, e, i32t);
        b.ret(Some(n));
    })
}

fn fptoui_case(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f64t = b.module().types.f64();
        let n = b.cast(Opcode::FPToUI, cf(f64t, 7.9), i32t);
        b.ret(Some(n));
    })
}

fn fptosi_case(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f64t = b.module().types.f64();
        let n = b.cast(Opcode::FPToSI, cf(f64t, -7.9), i32t);
        b.ret(Some(n));
    })
}

fn uitofp_case(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f64t = b.module().types.f64();
        let f = b.cast(Opcode::UIToFP, ci(i32t, 5), f64t);
        let d = b.fmul(f, cf(f64t, 2.0));
        let n = b.cast(Opcode::FPToSI, d, i32t);
        b.ret(Some(n));
    })
}

fn sitofp_case(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f64t = b.module().types.f64();
        let f = b.cast(Opcode::SIToFP, ci(i32t, -5), f64t);
        let g = b.fneg(f);
        let n = b.cast(Opcode::FPToSI, g, i32t);
        b.ret(Some(n));
    })
}

fn ptr_roundtrip(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let i64t = b.module().types.i64();
        let p_i32 = b.module().types.ptr(i32t);
        let slot = b.alloca(i32t);
        b.store(ci(i32t, 9), slot);
        let addr = b.ptrtoint(slot, i64t);
        let back = b.inttoptr(addr, p_i32);
        let val = b.load(i32t, back);
        b.ret(Some(val));
    })
}

fn bitcast_float(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f32t = b.module().types.f32();
        // 0x40490FDB is pi as an f32.
        let f = b.bitcast(ci(i32t, 0x4049_0FDB), f32t);
        let n = b.cast(Opcode::FPToSI, f, i32t);
        b.ret(Some(n));
    })
}

fn addrspacecast_rt(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let p1 = b.module().types.ptr_in(i32t, 1);
        let slot = b.alloca(i32t);
        b.store(ci(i32t, 5), slot);
        let cast = b.addrspacecast(slot, p1);
        let val = b.load(i32t, cast);
        b.ret(Some(val));
    })
}

// ---- Comparisons / select --------------------------------------------------

fn icmp_three_preds(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let i8t = b.module().types.i8();
        let a = b.icmp(IntPredicate::Slt, ci(i32t, 3), ci(i32t, 5));
        let c1 = b.zext(a, i32t);
        let e = b.icmp(IntPredicate::Eq, ci(i32t, 10), ci(i32t, 20));
        let c2 = b.zext(e, i32t);
        // unsigned: 3 < 200; signed it would be 3 < -56 = false.
        let u = b.icmp(IntPredicate::Ult, ci(i8t, 3), ci(i8t, 200));
        let c3 = b.zext(u, i32t);
        let h = b.mul(c1, ci(i32t, 100));
        let t = b.mul(c2, ci(i32t, 10));
        let s1 = b.add(h, t);
        let s2 = b.add(s1, c3);
        b.ret(Some(s2));
    })
}

fn fcmp_two_preds(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f64t = b.module().types.f64();
        let g = b.fcmp(FloatPredicate::Ogt, cf(f64t, 2.5), cf(f64t, 1.5));
        let c1 = b.zext(g, i32t);
        let l = b.fcmp(FloatPredicate::Olt, cf(f64t, 2.5), cf(f64t, 1.5));
        let c2 = b.zext(l, i32t);
        let h = b.mul(c1, ci(i32t, 10));
        let s = b.add(h, c2);
        b.ret(Some(s));
    })
}

fn select_both(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let t = b.icmp(IntPredicate::Slt, ci(i32t, 1), ci(i32t, 2));
        let x = b.select(t, ci(i32t, 8), ci(i32t, 9));
        let f = b.icmp(IntPredicate::Sgt, ci(i32t, 1), ci(i32t, 2));
        let y = b.select(f, ci(i32t, 8), ci(i32t, 9));
        let h = b.mul(x, ci(i32t, 10));
        let s = b.add(h, y);
        b.ret(Some(s)); // 80 + 9
    })
}

// ---- Control flow ----------------------------------------------------------

/// The Fig. 10 test case, "before the diff": the condition is true.
fn br_cond_true(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let cond = b.icmp(IntPredicate::Eq, ci(i32t, 10), ci(i32t, 10));
        let then = b.add_block("then");
        let els = b.add_block("else");
        b.cond_br(cond, then, els);
        b.position_at_end(then);
        b.ret(Some(ci(i32t, 42)));
        b.position_at_end(els);
        b.ret(Some(ci(i32t, 41)));
    })
}

/// The Fig. 10 enhancement, "after the diff": the condition is false, which
/// kills the swapped-successor candidate (Fig. 9's `AtomicBranch2`).
fn br_cond_false(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let cond = b.icmp(IntPredicate::Eq, ci(i32t, 10), ci(i32t, 20));
        let then = b.add_block("then");
        let els = b.add_block("else");
        b.cond_br(cond, then, els);
        b.position_at_end(then);
        b.ret(Some(ci(i32t, 42)));
        b.position_at_end(els);
        b.ret(Some(ci(i32t, 41)));
    })
}

fn br_uncond_chain(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let b1 = b.add_block("b1");
        let b2 = b.add_block("b2");
        b.br(b1);
        b.position_at_end(b1);
        b.br(b2);
        b.position_at_end(b2);
        b.ret(Some(ci(i32t, 5)));
    })
}

fn switch_both(v: IrVersion) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    // dispatch(x): switch with cases 1 -> 10, 2 -> 20, default -> 30.
    let disp = FuncBuilder::define(
        &mut m,
        "dispatch",
        i32t,
        vec![Param {
            name: "x".into(),
            ty: i32t,
        }],
    );
    let mut b = FuncBuilder::new(&mut m, disp);
    let e = b.add_block("entry");
    let c1 = b.add_block("c1");
    let c2 = b.add_block("c2");
    let d = b.add_block("d");
    b.position_at_end(e);
    b.switch(ValueRef::Arg(0), d, vec![(1, c1), (2, c2)]);
    b.position_at_end(c1);
    b.ret(Some(ci(i32t, 10)));
    b.position_at_end(c2);
    b.ret(Some(ci(i32t, 20)));
    b.position_at_end(d);
    b.ret(Some(ci(i32t, 30)));
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let a = b.call(i32t, ValueRef::Func(disp), vec![ci(i32t, 2)]);
    let z = b.call(i32t, ValueRef::Func(disp), vec![ci(i32t, 9)]);
    let s = b.add(a, z);
    b.ret(Some(s)); // 20 + 30
    m
}

fn indirectbr_second(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let i64t = b.module().types.i64();
        let a = b.add_block("a");
        let c = b.add_block("c");
        let void = b.module().types.void();
        b.push(Instruction::new(
            Opcode::IndirectBr,
            void,
            vec![ci(i64t, 1), ValueRef::Block(a), ValueRef::Block(c)],
        ));
        b.position_at_end(a);
        b.ret(Some(ci(i32t, 10)));
        b.position_at_end(c);
        b.ret(Some(ci(i32t, 11)));
    })
}

fn phi_if(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let then = b.add_block("then");
        let els = b.add_block("else");
        let merge = b.add_block("merge");
        let cond = b.icmp(IntPredicate::Eq, ci(i32t, 1), ci(i32t, 1));
        b.cond_br(cond, then, els);
        b.position_at_end(then);
        b.br(merge);
        b.position_at_end(els);
        b.br(merge);
        b.position_at_end(merge);
        let p = b.phi(i32t, vec![(ci(i32t, 3), then), (ci(i32t, 9), els)]);
        b.ret(Some(p));
    })
}

fn phi_loop(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        let entry = siro_ir::BlockId::new(0);
        b.br(header);
        b.position_at_end(header);
        let i = b.phi(i32t, vec![(ci(i32t, 0), entry)]);
        let s = b.phi(i32t, vec![(ci(i32t, 0), entry)]);
        let c = b.icmp(IntPredicate::Slt, i, ci(i32t, 5));
        b.cond_br(c, body, exit);
        b.position_at_end(body);
        let s2 = b.add(s, i);
        let i2 = b.add(i, ci(i32t, 1));
        b.br(header);
        b.position_at_end(exit);
        b.ret(Some(s));
        // Patch the back edges.
        let (ip, sp) = (i.as_inst().unwrap(), s.as_inst().unwrap());
        let fid = b.func_id();
        let fm = b.module().func_mut(fid);
        fm.inst_mut(ip).operands.extend([i2, ValueRef::Block(body)]);
        fm.inst_mut(sp).operands.extend([s2, ValueRef::Block(body)]);
    })
}

fn unreachable_dead(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let dead = b.add_block("dead");
        let live = b.add_block("live");
        let cond = b.icmp(IntPredicate::Eq, ci(i32t, 1), ci(i32t, 2));
        b.cond_br(cond, dead, live);
        b.position_at_end(dead);
        b.unreachable();
        b.position_at_end(live);
        b.ret(Some(ci(i32t, 4)));
    })
}

// ---- Calls ------------------------------------------------------------------

fn void_call_global(v: IrVersion) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    let void = m.types.void();
    let g = m.add_global(Global {
        name: "g".into(),
        ty: i32t,
        init: GlobalInit::Zero,
        is_const: false,
    });
    let setg = FuncBuilder::define(&mut m, "setg", void, vec![]);
    let mut b = FuncBuilder::new(&mut m, setg);
    let e = b.add_block("entry");
    b.position_at_end(e);
    b.store(ci(i32t, 7), ValueRef::Global(g));
    b.ret(None);
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    b.position_at_end(e);
    b.call(void, ValueRef::Func(setg), vec![]);
    let val = b.load(i32t, ValueRef::Global(g));
    b.ret(Some(val));
    m
}

fn call_args_asym(v: IrVersion) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    let sub = FuncBuilder::define(
        &mut m,
        "subtract",
        i32t,
        vec![
            Param {
                name: "a".into(),
                ty: i32t,
            },
            Param {
                name: "b".into(),
                ty: i32t,
            },
        ],
    );
    let mut b = FuncBuilder::new(&mut m, sub);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let r = b.sub(ValueRef::Arg(0), ValueRef::Arg(1));
    b.ret(Some(r));
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let r = b.call(i32t, ValueRef::Func(sub), vec![ci(i32t, 20), ci(i32t, 4)]);
    b.ret(Some(r)); // 16
    m
}

fn call_indirect(v: IrVersion) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    let target = FuncBuilder::define(&mut m, "target", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, target);
    let e = b.add_block("entry");
    b.position_at_end(e);
    b.ret(Some(ci(i32t, 33)));
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let fnty = b.module().types.func(i32t, vec![]);
    let pfn = b.module().types.ptr(fnty);
    let slot = b.alloca(pfn);
    b.store(ValueRef::Func(target), slot);
    let fp = b.load(pfn, slot);
    let r = b.call(i32t, fp, vec![]);
    b.ret(Some(r));
    m
}

fn tail_call_case(v: IrVersion) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    let callee = FuncBuilder::define(&mut m, "tailme", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, callee);
    let e = b.add_block("entry");
    b.position_at_end(e);
    b.ret(Some(ci(i32t, 12)));
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let r = b.call(i32t, ValueRef::Func(callee), vec![]);
    if let ValueRef::Inst(id) = r {
        let fid = b.func_id();
        b.module().func_mut(fid).inst_mut(id).attrs.tail_call = true;
    }
    b.ret(Some(r));
    m
}

fn nested_calls(v: IrVersion) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    let g = FuncBuilder::define(
        &mut m,
        "twice",
        i32t,
        vec![Param {
            name: "x".into(),
            ty: i32t,
        }],
    );
    let mut b = FuncBuilder::new(&mut m, g);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let r = b.mul(ValueRef::Arg(0), ci(i32t, 2));
    b.ret(Some(r));
    let f = FuncBuilder::define(
        &mut m,
        "twice_plus_one",
        i32t,
        vec![Param {
            name: "x".into(),
            ty: i32t,
        }],
    );
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let t = b.call(i32t, ValueRef::Func(g), vec![ValueRef::Arg(0)]);
    let r = b.add(t, ci(i32t, 1));
    b.ret(Some(r));
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let r = b.call(i32t, ValueRef::Func(f), vec![ci(i32t, 5)]);
    b.ret(Some(r)); // 11
    m
}

fn invoke_landingpad(v: IrVersion) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    let callee = FuncBuilder::define(&mut m, "may_throw", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, callee);
    let e = b.add_block("entry");
    b.position_at_end(e);
    b.ret(Some(ci(i32t, 9)));
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    let normal = b.add_block("normal");
    let unwind = b.add_block("unwind");
    b.position_at_end(e);
    let r = b.invoke(i32t, ValueRef::Func(callee), vec![], normal, unwind);
    b.position_at_end(normal);
    b.ret(Some(r));
    b.position_at_end(unwind);
    let i8t = b.module().types.i8();
    let p8 = b.module().types.ptr(i8t);
    let lp_ty = b.module().types.struct_(vec![p8, i32t]);
    let mut lp = Instruction::new(Opcode::LandingPad, lp_ty, vec![]);
    lp.attrs.is_cleanup = true;
    let lpv = b.push(lp);
    let void = b.module().types.void();
    b.push(Instruction::new(Opcode::Resume, void, vec![lpv]));
    m
}

// ---- Memory ------------------------------------------------------------------

fn store_load_two_slots(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let p = b.alloca(i32t);
        let q = b.alloca(i32t);
        b.store(ci(i32t, 1), p);
        b.store(ci(i32t, 2), q);
        let x = b.load(i32t, p);
        let y = b.load(i32t, q);
        let h = b.mul(x, ci(i32t, 10));
        let s = b.add(h, y);
        b.ret(Some(s)); // 12
    })
}

fn gep_array(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let i64t = b.module().types.i64();
        let arr = b.module().types.array(i32t, 4);
        let p_i32 = b.module().types.ptr(i32t);
        let base = b.alloca(arr);
        let slot = b.gep(arr, base, vec![ci(i64t, 0), ci(i64t, 2)], p_i32);
        b.store(ci(i32t, 99), slot);
        let val = b.load(i32t, slot);
        b.ret(Some(val));
    })
}

fn gep_struct(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let i64t = b.module().types.i64();
        let st = b.module().types.struct_(vec![i32t, i64t]);
        let p_i32 = b.module().types.ptr(i32t);
        let p_i64 = b.module().types.ptr(i64t);
        let base = b.alloca(st);
        let f0 = b.gep(st, base, vec![ci(i64t, 0), ci(i32t, 0)], p_i32);
        let f1 = b.gep(st, base, vec![ci(i64t, 0), ci(i32t, 1)], p_i64);
        b.store(ci(i32t, 7), f0);
        b.store(ci(i64t, 9), f1);
        let a = b.load(i32t, f0);
        let bl = b.load(i64t, f1);
        let bt = b.trunc(bl, i32t);
        let s = b.add(a, bt);
        b.ret(Some(s)); // 16
    })
}

fn cmpxchg_success(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let slot = b.alloca(i32t);
        b.store(ci(i32t, 5), slot);
        let pair = b.cmpxchg(slot, ci(i32t, 5), ci(i32t, 9));
        let old = b.extractvalue(pair, vec![0], i32t);
        let cur = b.load(i32t, slot);
        let h = b.mul(old, ci(i32t, 100));
        let s = b.add(h, cur);
        b.ret(Some(s)); // 509
    })
}

fn atomicrmw_add(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let slot = b.alloca(i32t);
        b.store(ci(i32t, 5), slot);
        let old = b.atomicrmw(siro_ir::RmwOp::Add, slot, ci(i32t, 3));
        let cur = b.load(i32t, slot);
        let h = b.mul(old, ci(i32t, 10));
        let s = b.add(h, cur);
        b.ret(Some(s)); // 58
    })
}

fn fence_case(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let slot = b.alloca(i32t);
        b.store(ci(i32t, 3), slot);
        b.fence();
        let val = b.load(i32t, slot);
        b.ret(Some(val));
    })
}

fn va_arg_zero(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let i8t = b.module().types.i8();
        let ap = b.alloca(i8t);
        // Simulated va_arg yields a zero of its type.
        let va = b.push(Instruction::new(Opcode::VAArg, i32t, vec![ap]));
        let s = b.add(va, ci(i32t, 21));
        b.ret(Some(s)); // 21
    })
}

fn global_const_load(v: IrVersion) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    let g = m.add_global(Global {
        name: "answer".into(),
        ty: i32t,
        init: GlobalInit::Int(11),
        is_const: true,
    });
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let val = b.load(i32t, ValueRef::Global(g));
    b.ret(Some(val));
    m
}

// ---- Vectors / aggregates ----------------------------------------------------

fn vector_insert_extract(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let v4 = b.module().types.vector(i32t, 4);
        let z = ValueRef::ZeroInit(v4);
        let v1 = b.insertelement(z, ci(i32t, 5), ci(i32t, 1));
        let v2 = b.insertelement(v1, ci(i32t, 7), ci(i32t, 2));
        let e2 = b.extractelement(v2, ci(i32t, 2), i32t);
        let e1 = b.extractelement(v2, ci(i32t, 1), i32t);
        let h = b.mul(e2, ci(i32t, 10));
        let s = b.add(h, e1);
        b.ret(Some(s)); // 75
    })
}

fn shufflevector_case(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let v2 = b.module().types.vector(i32t, 2);
        let z = ValueRef::ZeroInit(v2);
        let a0 = b.insertelement(z, ci(i32t, 1), ci(i32t, 0));
        let a = b.insertelement(a0, ci(i32t, 2), ci(i32t, 1));
        let b0 = b.insertelement(z, ci(i32t, 3), ci(i32t, 0));
        let bb = b.insertelement(b0, ci(i32t, 4), ci(i32t, 1));
        let mut sh = Instruction::new(Opcode::ShuffleVector, v2, vec![a, bb]);
        sh.attrs.indices = vec![1, 2];
        let shv = b.push(sh);
        let e0 = b.extractelement(shv, ci(i32t, 0), i32t);
        let e1 = b.extractelement(shv, ci(i32t, 1), i32t);
        let h = b.mul(e0, ci(i32t, 10));
        let s = b.add(h, e1);
        b.ret(Some(s)); // a[1]*10 + b[0] = 23
    })
}

fn aggregate_insert_extract(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let st = b.module().types.struct_(vec![i32t, i32t]);
        let z = ValueRef::ZeroInit(st);
        let a1 = b.insertvalue(z, ci(i32t, 42), vec![0]);
        let a2 = b.insertvalue(a1, ci(i32t, 7), vec![1]);
        let e0 = b.extractvalue(a2, vec![0], i32t);
        let e1 = b.extractvalue(a2, vec![1], i32t);
        let h = b.mul(e0, ci(i32t, 10));
        let s = b.add(h, e1);
        b.ret(Some(s)); // 427
    })
}

// ---- Extended corpus (the paper's 8 extra cases for pairs 8/9) ---------------

fn freeze_value(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f = b.freeze(ci(i32t, 9));
        b.ret(Some(f));
    })
}

fn freeze_in_arith(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let f = b.freeze(ci(i32t, 4));
        let s = b.add(f, ci(i32t, 3));
        b.ret(Some(s));
    })
}

fn callbr_module(v: IrVersion, asm_text: &str, args: Vec<i64>, extra_dests: usize) -> Module {
    let mut m = Module::new("case", v);
    let i32t = m.types.i32();
    let arg_tys = vec![i32t; args.len()];
    let fnty = m.types.func(i32t, arg_tys);
    let asm = m.add_asm(InlineAsm {
        text: asm_text.into(),
        constraints: "r".into(),
        ty: fnty,
        hw_level: 1,
    });
    let main = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, main);
    let e = b.add_block("entry");
    let ft = b.add_block("ft");
    let mut indirect = Vec::new();
    for i in 0..extra_dests {
        indirect.push(b.add_block(format!("side{i}")));
    }
    b.position_at_end(e);
    let argv: Vec<ValueRef> = args.iter().map(|&a| ci(i32t, a)).collect();
    let r = b.callbr(i32t, ValueRef::InlineAsm(asm), argv, ft, indirect.clone());
    b.position_at_end(ft);
    let s = b.add(r, ci(i32t, 1));
    b.ret(Some(s));
    for blk in indirect {
        b.position_at_end(blk);
        b.ret(Some(ci(i32t, -1)));
    }
    m
}

fn callbr_fallthrough(v: IrVersion) -> Module {
    callbr_module(v, "ret 4", vec![], 1) // 4 + 1 = 5
}

fn callbr_with_args(v: IrVersion) -> Module {
    callbr_module(v, "add $0, $1", vec![5, 6], 1) // 11 + 1 = 12
}

fn callbr_indirect_list(v: IrVersion) -> Module {
    callbr_module(v, "ret 8", vec![], 2) // 8 + 1 = 9
}

fn eh_catch_path(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let handler = b.add_block("handler");
        let cont = b.add_block("cont");
        let void = b.module().types.void();
        let token = b.module().types.token();
        b.push(Instruction::new(
            Opcode::CatchSwitch,
            void,
            vec![ValueRef::Block(handler)],
        ));
        b.position_at_end(handler);
        b.push(Instruction::new(Opcode::CatchPad, token, vec![]));
        b.push(Instruction::new(
            Opcode::CatchRet,
            void,
            vec![ValueRef::Block(cont)],
        ));
        b.position_at_end(cont);
        b.ret(Some(ci(i32t, 6)));
    })
}

fn eh_cleanup_path(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let exit = b.add_block("exit");
        let void = b.module().types.void();
        let token = b.module().types.token();
        b.push(Instruction::new(Opcode::CleanupPad, token, vec![]));
        b.push(Instruction::new(
            Opcode::CleanupRet,
            void,
            vec![ValueRef::Block(exit)],
        ));
        b.position_at_end(exit);
        b.ret(Some(ci(i32t, 8)));
    })
}

fn eh_full(v: IrVersion) -> Module {
    simple(v, |b, i32t| {
        let handler = b.add_block("handler");
        let cleanup = b.add_block("cleanup");
        let exit = b.add_block("exit");
        let void = b.module().types.void();
        let token = b.module().types.token();
        b.push(Instruction::new(
            Opcode::CatchSwitch,
            void,
            vec![ValueRef::Block(handler)],
        ));
        b.position_at_end(handler);
        b.push(Instruction::new(Opcode::CatchPad, token, vec![]));
        b.push(Instruction::new(
            Opcode::CatchRet,
            void,
            vec![ValueRef::Block(cleanup)],
        ));
        b.position_at_end(cleanup);
        b.push(Instruction::new(Opcode::CleanupPad, token, vec![]));
        b.push(Instruction::new(
            Opcode::CleanupRet,
            void,
            vec![ValueRef::Block(exit)],
        ));
        b.position_at_end(exit);
        b.ret(Some(ci(i32t, 12)));
    })
}

/// The full corpus, base cases first.
pub(crate) fn all() -> Vec<TestCase> {
    let mut v = vec![
        TestCase::new("ret_const", 7, false, ret_const),
        TestCase::new("void_call_global", 7, false, void_call_global),
        TestCase::new("add_sym", 20, false, add_sym),
        TestCase::new("add_asym", 30, false, add_asym),
        TestCase::new("sub_asym", 10, false, sub_asym),
        TestCase::new("mul_asym", 42, false, mul_asym),
        TestCase::new("udiv_asym", 8, false, udiv_asym),
        TestCase::new("sdiv_neg", -8, false, sdiv_neg),
        TestCase::new("urem_asym", 3, false, urem_asym),
        TestCase::new("srem_neg", -3, false, srem_neg),
        TestCase::new("fadd_to_int", 2, false, fadd_to_int),
        TestCase::new("fsub_to_int", 4, false, fsub_to_int),
        TestCase::new("fmul_to_int", 10, false, fmul_to_int),
        TestCase::new("fdiv_to_int", 2, false, fdiv_to_int),
        TestCase::new("frem_to_int", 2, false, frem_to_int),
        TestCase::new("fneg_to_int", 5, false, fneg_to_int),
        TestCase::new("shl_asym", 6, false, shl_asym),
        TestCase::new("lshr_asym", 16, false, lshr_asym),
        TestCase::new("ashr_neg", -16, false, ashr_neg),
        TestCase::new("and_asym", 8, false, and_asym),
        TestCase::new("or_asym", 14, false, or_asym),
        TestCase::new("xor_asym", 6, false, xor_asym),
        TestCase::new("trunc_zext", 44, false, trunc_zext),
        TestCase::new("sext_neg", -56, false, sext_neg),
        TestCase::new("fptrunc_case", 2, false, fptrunc_case),
        TestCase::new("fpext_case", 3, false, fpext_case),
        TestCase::new("fptoui_case", 7, false, fptoui_case),
        TestCase::new("fptosi_case", -7, false, fptosi_case),
        TestCase::new("uitofp_case", 10, false, uitofp_case),
        TestCase::new("sitofp_case", 5, false, sitofp_case),
        TestCase::new("ptr_roundtrip", 9, false, ptr_roundtrip),
        TestCase::new("bitcast_float", 3, false, bitcast_float),
        TestCase::new("icmp_three_preds", 101, false, icmp_three_preds),
        TestCase::new("fcmp_two_preds", 10, false, fcmp_two_preds),
        TestCase::new("br_cond_true", 42, false, br_cond_true),
        TestCase::new("br_cond_false", 41, false, br_cond_false),
        TestCase::new("br_uncond_chain", 5, false, br_uncond_chain),
        TestCase::new("switch_both", 50, false, switch_both),
        TestCase::new("indirectbr_second", 11, false, indirectbr_second),
        TestCase::new("phi_if", 3, false, phi_if),
        TestCase::new("phi_loop", 10, false, phi_loop),
        TestCase::new("select_both", 89, false, select_both),
        TestCase::new("call_args_asym", 16, false, call_args_asym),
        TestCase::new("call_indirect", 33, false, call_indirect),
        TestCase::new("tail_call_case", 12, false, tail_call_case),
        TestCase::new("invoke_landingpad", 9, false, invoke_landingpad),
        TestCase::new("unreachable_dead", 4, false, unreachable_dead),
        TestCase::new("store_load_two_slots", 12, false, store_load_two_slots),
        TestCase::new("gep_array", 99, false, gep_array),
        TestCase::new("gep_struct", 16, false, gep_struct),
        TestCase::new("vector_insert_extract", 75, false, vector_insert_extract),
        TestCase::new("shufflevector_case", 23, false, shufflevector_case),
        TestCase::new(
            "aggregate_insert_extract",
            427,
            false,
            aggregate_insert_extract,
        ),
        TestCase::new("cmpxchg_success", 509, false, cmpxchg_success),
        TestCase::new("atomicrmw_add", 58, false, atomicrmw_add),
        TestCase::new("fence_case", 3, false, fence_case),
        TestCase::new("va_arg_zero", 21, false, va_arg_zero),
        TestCase::new("addrspacecast_rt", 5, false, addrspacecast_rt),
        TestCase::new("global_const_load", 11, false, global_const_load),
        TestCase::new("nested_calls", 11, false, nested_calls),
        // -- extended --
        TestCase::new("freeze_value", 9, true, freeze_value),
        TestCase::new("freeze_in_arith", 7, true, freeze_in_arith),
        TestCase::new("callbr_fallthrough", 5, true, callbr_fallthrough),
        TestCase::new("callbr_with_args", 12, true, callbr_with_args),
        TestCase::new("callbr_indirect_list", 9, true, callbr_indirect_list),
        TestCase::new("eh_catch_path", 6, true, eh_catch_path),
        TestCase::new("eh_cleanup_path", 8, true, eh_cleanup_path),
        TestCase::new("eh_full", 12, true, eh_full),
    ];
    debug_assert_eq!(v.len(), 68);
    v.sort_by_key(|c| c.extended);
    v
}
