//! # siro-testcases — the synthesis test-case corpus
//!
//! The paper's users drive synthesis by supplying *test cases*: small IR
//! programs whose `main` returns a known constant with no inputs (§4.3.3).
//! This crate is that corpus — 68 cases, mirroring the paper's 60 base
//! cases plus the 8 additional cases introduced for the close-version pairs
//! (5.0→4.0 and 17.0→12.0) to cover the seven instructions those pairs have
//! in common with newer versions (the Windows EH family, `callbr`,
//! `freeze`).
//!
//! Each case is version-parametric: [`TestCase::build`] constructs the same
//! program in any requested source version, so one corpus serves every
//! version pair. Cases are written to *discriminate*: binary operations use
//! asymmetric operands so that swapped/duplicated-operand candidates die
//! (the Fig. 7 right-hand case), branches exercise both edges (the Fig. 10
//! enhancement), and so on. A few deliberately weak cases (symmetric
//! operands) are retained to demonstrate the refinement dynamics the paper
//! discusses.

#![warn(missing_docs)]

mod corpus;
pub mod gen;

use std::collections::BTreeSet;

use siro_ir::{interp::Machine, IrVersion, Module, Opcode};

/// One oracle-carrying test case.
#[derive(Clone)]
pub struct TestCase {
    /// Unique case name.
    pub name: &'static str,
    /// The constant `main` must return.
    pub oracle: i64,
    /// Whether this case belongs to the 8-case extension for close-version
    /// pairs (EH / callbr / freeze coverage).
    pub extended: bool,
    build: fn(IrVersion) -> Module,
}

impl std::fmt::Debug for TestCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestCase")
            .field("name", &self.name)
            .field("oracle", &self.oracle)
            .field("extended", &self.extended)
            .finish()
    }
}

impl TestCase {
    /// Creates a case (used by the corpus module).
    pub(crate) fn new(
        name: &'static str,
        oracle: i64,
        extended: bool,
        build: fn(IrVersion) -> Module,
    ) -> Self {
        TestCase {
            name,
            oracle,
            extended,
            build,
        }
    }

    /// Builds the case's module in the given source version.
    pub fn build(&self, version: IrVersion) -> Module {
        (self.build)(version)
    }

    /// The set of opcodes the case exercises (computed from the built
    /// module).
    pub fn kinds(&self, version: IrVersion) -> BTreeSet<Opcode> {
        let m = self.build(version);
        let mut s = BTreeSet::new();
        for f in &m.funcs {
            for i in &f.insts {
                s.insert(i.opcode);
            }
        }
        s
    }

    /// Whether every instruction in this case is *common* to both versions
    /// of a pair — the prerequisite for using it in synthesis.
    pub fn usable_for_pair(&self, src: IrVersion, tgt: IrVersion) -> bool {
        self.kinds(src.min(tgt))
            .iter()
            .all(|&k| src.supports(k) && tgt.supports(k))
    }

    /// Runs the case in the given version and checks the oracle.
    ///
    /// # Panics
    ///
    /// Panics if the module does not verify — corpus bugs should be loud.
    pub fn self_check(&self, version: IrVersion) -> bool {
        let m = self.build(version);
        siro_ir::verify::verify_module(&m)
            .unwrap_or_else(|e| panic!("corpus case {} does not verify: {e}", self.name));
        Machine::new(&m)
            .run_main()
            .map(|o| o.return_int() == Some(self.oracle))
            .unwrap_or(false)
    }
}

/// The full 68-case corpus (60 base + 8 extended).
pub fn full_corpus() -> Vec<TestCase> {
    corpus::all()
}

/// The 60-case base corpus.
pub fn base_corpus() -> Vec<TestCase> {
    corpus::all().into_iter().filter(|c| !c.extended).collect()
}

/// The cases usable for one version pair: every exercised instruction must
/// exist in both versions.
pub fn corpus_for_pair(src: IrVersion, tgt: IrVersion) -> Vec<TestCase> {
    corpus::all()
        .into_iter()
        .filter(|c| c.usable_for_pair(src, tgt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_sixty_eight_cases() {
        assert_eq!(full_corpus().len(), 68);
        assert_eq!(base_corpus().len(), 60);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = full_corpus().iter().map(|c| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn every_case_meets_its_oracle_in_v17() {
        for case in full_corpus() {
            assert!(
                case.self_check(IrVersion::V17_0),
                "case {} failed its oracle",
                case.name
            );
        }
    }

    #[test]
    fn base_cases_meet_oracles_in_v3_6() {
        for case in base_corpus() {
            if case.usable_for_pair(IrVersion::V3_6, IrVersion::V3_6) {
                assert!(
                    case.self_check(IrVersion::V3_6),
                    "case {} failed its oracle at 3.6",
                    case.name
                );
            }
        }
    }

    #[test]
    fn pair_filter_excludes_new_instructions() {
        // freeze is not expressible when either side is < 10.0.
        let cases = corpus_for_pair(IrVersion::V13_0, IrVersion::V3_6);
        assert!(cases.iter().all(|c| c.name != "freeze_value"));
        // but usable when both sides know it.
        let cases = corpus_for_pair(IrVersion::V17_0, IrVersion::V12_0);
        assert!(cases.iter().any(|c| c.name == "freeze_value"));
    }

    #[test]
    fn corpus_covers_all_common_instructions_of_pair1() {
        // Pair 1 (12.0 -> 3.6) has 58 common instructions; the usable cases
        // must collectively exercise every one of them.
        let src = IrVersion::V12_0;
        let tgt = IrVersion::V3_6;
        let mut covered = BTreeSet::new();
        for case in corpus_for_pair(src, tgt) {
            covered.extend(case.kinds(tgt));
        }
        let missing: Vec<Opcode> = src
            .common_instructions(tgt)
            .into_iter()
            .filter(|k| !covered.contains(k))
            .collect();
        assert!(
            missing.is_empty(),
            "uncovered common instructions: {missing:?}"
        );
    }

    #[test]
    fn corpus_covers_all_common_instructions_of_pair9() {
        // Pair 9 (17.0 -> 12.0): all 65 instructions are common.
        let src = IrVersion::V17_0;
        let tgt = IrVersion::V12_0;
        let mut covered = BTreeSet::new();
        for case in corpus_for_pair(src, tgt) {
            covered.extend(case.kinds(tgt));
        }
        let missing: Vec<Opcode> = src
            .common_instructions(tgt)
            .into_iter()
            .filter(|k| !covered.contains(k))
            .collect();
        assert!(
            missing.is_empty(),
            "uncovered common instructions: {missing:?}"
        );
    }
}
