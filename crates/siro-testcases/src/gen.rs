//! Automatic test-case generation — the first of the paper's §7 future-work
//! directions ("existing test program generation techniques face
//! difficulties in achieving diversity in IR instructions").
//!
//! [`generate_cases`] builds random, deterministic oracle programs: a
//! seeded generator emits straight-line/diamond/loop shapes over a value
//! pool, then the interpreter *computes* the oracle (no human in the loop).
//! Programs whose execution traps or exceeds the step budget are discarded.
//!
//! The limitation the paper predicts is real and measurable here:
//! [`kind_coverage`] shows a generated corpus saturates on arithmetic,
//! comparisons, memory round-trips and simple control flow, but essentially
//! never produces the long tail (`invoke`/`landingpad`, `va_arg`, the
//! atomics, vector shuffles, ...) that the hand-written corpus covers —
//! see the `future_autogen` bench target.

use std::collections::BTreeSet;

use siro_rng::{Rng, SeedableRng, StdRng};

use siro_ir::{
    interp::Machine, verify, FuncBuilder, Instruction, IntPredicate, IrVersion, Module, Opcode,
    TypeId, ValueRef,
};

/// A generated oracle test (same shape as `siro_synth::OracleTest`, kept
/// dependency-free here).
#[derive(Debug, Clone)]
pub struct GeneratedCase {
    /// Case name (seed-derived).
    pub name: String,
    /// The program.
    pub module: Module,
    /// The interpreter-computed oracle.
    pub oracle: i64,
}

const BIN_OPS: [Opcode; 12] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
    Opcode::UDiv,
    Opcode::SDiv,
    Opcode::SRem,
];

const PREDS: [IntPredicate; 6] = [
    IntPredicate::Eq,
    IntPredicate::Ne,
    IntPredicate::Slt,
    IntPredicate::Sgt,
    IntPredicate::Ult,
    IntPredicate::Uge,
];

/// Generates up to `count` valid oracle cases at `version` from `seed`.
///
/// Every returned case verifies, terminates within the step budget, and
/// returns a concrete integer; the generation loop retries until enough
/// programs survive (bounded by `16 * count` attempts).
pub fn generate_cases(seed: u64, count: usize, version: IrVersion) -> Vec<GeneratedCase> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0;
    while out.len() < count && attempts < count * 16 {
        attempts += 1;
        let module = random_program(&mut rng, version);
        if verify::verify_module(&module).is_err() {
            continue;
        }
        let Ok(outcome) = Machine::new(&module).with_fuel(20_000).run_main() else {
            continue;
        };
        let Some(oracle) = outcome.return_int() else {
            continue;
        };
        out.push(GeneratedCase {
            name: format!("gen_{seed}_{}", out.len()),
            module,
            oracle,
        });
    }
    out
}

fn random_program(rng: &mut StdRng, version: IrVersion) -> Module {
    let mut m = Module::new("generated", version);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let entry = b.add_block("entry");
    b.position_at_end(entry);
    let mut pool: Vec<ValueRef> = (0..3)
        .map(|_| ValueRef::const_int(i32t, rng.gen_range(-50..50)))
        .collect();
    let steps = rng.gen_range(2..12);
    for _ in 0..steps {
        let v = random_step(rng, &mut b, i32t, &pool);
        pool.push(v);
    }
    let ret = pool[rng.gen_range(0..pool.len())];
    b.ret(Some(ret));
    m
}

fn pick(rng: &mut StdRng, pool: &[ValueRef]) -> ValueRef {
    pool[rng.gen_range(0..pool.len())]
}

fn random_step(
    rng: &mut StdRng,
    b: &mut FuncBuilder<'_>,
    i32t: TypeId,
    pool: &[ValueRef],
) -> ValueRef {
    match rng.gen_range(0..9u32) {
        // Binary arithmetic (shift amounts masked for portability).
        0..=2 => {
            let op = BIN_OPS[rng.gen_range(0..BIN_OPS.len())];
            let x = pick(rng, pool);
            let mut y = pick(rng, pool);
            if matches!(op, Opcode::Shl | Opcode::LShr | Opcode::AShr) {
                y = b.and(y, ValueRef::const_int(i32t, 7));
            }
            if matches!(op, Opcode::UDiv | Opcode::SDiv | Opcode::SRem) {
                // Guard the divisor away from zero and the INT_MIN edge.
                let one = ValueRef::const_int(i32t, 1);
                let masked = b.and(y, ValueRef::const_int(i32t, 0xFF));
                y = b.or(masked, one);
            }
            b.push(Instruction::new(op, i32t, vec![x, y]))
        }
        // Comparison + zext.
        3 => {
            let p = PREDS[rng.gen_range(0..PREDS.len())];
            let c = b.icmp(p, pick(rng, pool), pick(rng, pool));
            b.zext(c, i32t)
        }
        // Memory round trip.
        4 => {
            let slot = b.alloca(i32t);
            b.store(pick(rng, pool), slot);
            b.load(i32t, slot)
        }
        // Narrowing cast chain.
        5 => {
            let i8t = b.module().types.i8();
            let t = b.trunc(pick(rng, pool), i8t);
            b.sext(t, i32t)
        }
        // Select.
        6 => {
            let p = PREDS[rng.gen_range(0..PREDS.len())];
            let c = b.icmp(p, pick(rng, pool), pick(rng, pool));
            b.select(c, pick(rng, pool), pick(rng, pool))
        }
        // Diamond with a phi.
        7 => {
            let p = PREDS[rng.gen_range(0..PREDS.len())];
            let c = b.icmp(p, pick(rng, pool), pick(rng, pool));
            let then_b = b.add_block("t");
            let else_b = b.add_block("e");
            let merge = b.add_block("m");
            b.cond_br(c, then_b, else_b);
            b.position_at_end(then_b);
            b.br(merge);
            b.position_at_end(else_b);
            b.br(merge);
            b.position_at_end(merge);
            b.phi(
                i32t,
                vec![(pick(rng, pool), then_b), (pick(rng, pool), else_b)],
            )
        }
        // Bounded counted loop: phi-carried counter and accumulator with a
        // patched back edge (the builder's loop idiom).
        _ => {
            let pre = b.current_block().expect("generator is always positioned");
            let header = b.add_block("loop");
            let done = b.add_block("done");
            let n = rng.gen_range(1..6);
            let start = pick(rng, pool);
            let step = pick(rng, pool);
            b.br(header);
            b.position_at_end(header);
            let i = b.phi(i32t, vec![(ValueRef::const_int(i32t, 0), pre)]);
            let acc = b.phi(i32t, vec![(start, pre)]);
            let acc_next = b.add(acc, step);
            let i_next = b.add(i, ValueRef::const_int(i32t, 1));
            let c = b.icmp(IntPredicate::Slt, i_next, ValueRef::const_int(i32t, n));
            b.cond_br(c, header, done);
            let fid = b.func_id();
            for (phi, next) in [(i, i_next), (acc, acc_next)] {
                if let ValueRef::Inst(pid) = phi {
                    let inst = b.module().func_mut(fid).inst_mut(pid);
                    inst.operands.push(next);
                    inst.operands.push(ValueRef::Block(header));
                }
            }
            b.position_at_end(done);
            acc_next
        }
    }
}

/// The distinct instruction kinds a set of generated cases exercises,
/// tallied block by block. Walking the placed per-block instruction lists
/// (rather than the flat arena) registers every terminator the
/// diamond/loop shapes emit — `br`, the loop's `icmp`, `ret` — and never
/// counts an instruction that is not actually part of the CFG.
pub fn kind_coverage(cases: &[GeneratedCase]) -> BTreeSet<Opcode> {
    let mut kinds = BTreeSet::new();
    for c in cases {
        for f in &c.module.funcs {
            for block in &f.blocks {
                for &iid in &block.insts {
                    kinds.insert(f.inst(iid).opcode);
                }
            }
        }
    }
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_cases(42, 10, IrVersion::V13_0);
        let b = generate_cases(42, 10, IrVersion::V13_0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.oracle, y.oracle);
            assert_eq!(
                siro_ir::write::write_module(&x.module),
                siro_ir::write::write_module(&y.module)
            );
        }
    }

    #[test]
    fn generated_cases_meet_their_computed_oracles() {
        for case in generate_cases(7, 25, IrVersion::V13_0) {
            let got = Machine::new(&case.module).run_main().unwrap().return_int();
            assert_eq!(got, Some(case.oracle), "{}", case.name);
        }
    }

    #[test]
    fn pinned_kind_coverage_for_fixed_seed() {
        // Pins the exact counted kinds for one fixed seed. Registering the
        // diamond/loop terminators is the point: `Br` and `Ret` (and the
        // loop's `ICmp`) must be tallied, not just straight-line
        // instructions.
        let cases = generate_cases(42, 12, IrVersion::V13_0);
        assert_eq!(cases.len(), 12);
        let kinds = kind_coverage(&cases);
        let expected: BTreeSet<Opcode> = [
            Opcode::Ret,
            Opcode::Br,
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::UDiv,
            Opcode::SDiv,
            Opcode::SRem,
            Opcode::Shl,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Alloca,
            Opcode::Load,
            Opcode::Store,
            Opcode::Trunc,
            Opcode::ZExt,
            Opcode::SExt,
            Opcode::ICmp,
            Opcode::Phi,
            Opcode::Select,
        ]
        .into_iter()
        .collect();
        assert_eq!(kinds, expected);
    }

    #[test]
    fn generated_loops_terminate_and_are_counted() {
        // The loop shape must actually occur, verify, and register its
        // header terminators in the per-block coverage walk.
        let cases = generate_cases(3, 40, IrVersion::V13_0);
        let has_loop = cases.iter().any(|c| {
            c.module.funcs.iter().any(|f| {
                f.blocks.iter().enumerate().any(|(bi, blk)| {
                    blk.insts.last().is_some_and(|&iid| {
                        let inst = f.inst(iid);
                        // A back edge: a conditional branch whose first
                        // successor is its own block.
                        inst.opcode == Opcode::Br
                            && inst.successors().first().is_some_and(|&b| b.index() == bi)
                    })
                })
            })
        });
        assert!(has_loop, "seeded generation should emit at least one loop");
        let kinds = kind_coverage(&cases);
        assert!(kinds.contains(&Opcode::Br) && kinds.contains(&Opcode::Ret));
    }

    #[test]
    fn coverage_hits_the_common_core_but_not_the_tail() {
        let cases = generate_cases(1, 80, IrVersion::V13_0);
        let kinds = kind_coverage(&cases);
        // The easy kinds appear...
        for k in [
            Opcode::Add,
            Opcode::ICmp,
            Opcode::Br,
            Opcode::Ret,
            Opcode::Phi,
        ] {
            assert!(kinds.contains(&k), "missing {k}");
        }
        // ...the long tail does not (the §7 diversity limitation).
        for k in [
            Opcode::Invoke,
            Opcode::LandingPad,
            Opcode::VAArg,
            Opcode::CmpXchg,
            Opcode::ShuffleVector,
        ] {
            assert!(!kinds.contains(&k), "unexpectedly generated {k}");
        }
    }
}
