//! Value references — the operand language of Fig. 3 in the paper:
//! `Value v := G | Arg | F | B | I | C`.

use crate::ctx::Ptr;
use crate::types::TypeId;

/// Function-local handle to an instruction ([`Ptr`] into the function's
/// instruction arena).
pub type InstId = Ptr<crate::inst::Instruction>;

/// Function-local handle to a basic block ([`Ptr`] into the function's
/// block arena).
pub type BlockId = Ptr<crate::module::BasicBlock>;

/// Module-level handle to a function ([`Ptr`] into the module's function
/// arena).
pub type FuncId = Ptr<crate::module::Function>;

/// Module-level handle to a global variable ([`Ptr`] into the module's
/// global arena).
pub type GlobalId = Ptr<crate::module::Global>;

/// Module-level handle to an inline-assembly snippet ([`Ptr`] into the
/// module's asm arena).
pub type AsmId = Ptr<crate::module::InlineAsm>;

/// A reference to any IR value usable as an instruction operand.
///
/// Instruction and block references are *function-local*; the enclosing
/// function is always clear from context (operands never cross function
/// boundaries — the verifier enforces this indirectly by construction).
///
/// Float constants store raw IEEE bits so that `ValueRef` is `Eq + Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueRef {
    /// Result of another instruction in the same function.
    Inst(InstId),
    /// Function argument by index.
    Arg(u32),
    /// Address of a global variable.
    Global(GlobalId),
    /// Address of a function.
    Func(FuncId),
    /// A basic-block label (successor operands, `phi` incoming blocks).
    Block(BlockId),
    /// An integer constant of the given type.
    ConstInt {
        /// Type of the constant (an integer type).
        ty: TypeId,
        /// Sign-extended value.
        value: i64,
    },
    /// A floating constant of the given type, stored as `f64` bits.
    ConstFloat {
        /// Type of the constant (`float` or `double`).
        ty: TypeId,
        /// IEEE-754 bits of the `f64` representation.
        bits: u64,
    },
    /// The null pointer of the given pointer type.
    Null(TypeId),
    /// An undefined value of the given type.
    Undef(TypeId),
    /// A zero-initialized aggregate of the given type.
    ZeroInit(TypeId),
    /// An inline-assembly callable (only valid as a call/callbr callee).
    InlineAsm(AsmId),
    /// A not-yet-translated forward reference, replaced by the translation
    /// fix-up pass (see §5 "Handling IR Value Dependence" in the paper).
    ///
    /// Verification fails while any placeholder remains.
    Placeholder(u32),
}

impl ValueRef {
    /// Convenience constructor for an integer constant.
    pub fn const_int(ty: TypeId, value: i64) -> Self {
        ValueRef::ConstInt { ty, value }
    }

    /// Convenience constructor for a float constant.
    pub fn const_float(ty: TypeId, value: f64) -> Self {
        ValueRef::ConstFloat {
            ty,
            bits: value.to_bits(),
        }
    }

    /// The float value of a `ConstFloat`, if this is one.
    pub fn as_float(self) -> Option<f64> {
        match self {
            ValueRef::ConstFloat { bits, .. } => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// The integer value of a `ConstInt`, if this is one.
    pub fn as_int(self) -> Option<i64> {
        match self {
            ValueRef::ConstInt { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Whether this reference is any kind of compile-time constant.
    pub fn is_constant(self) -> bool {
        matches!(
            self,
            ValueRef::ConstInt { .. }
                | ValueRef::ConstFloat { .. }
                | ValueRef::Null(_)
                | ValueRef::Undef(_)
                | ValueRef::ZeroInit(_)
        )
    }

    /// Whether this reference is a block label.
    pub fn is_block(self) -> bool {
        matches!(self, ValueRef::Block(_))
    }

    /// The block id, if this is a block reference.
    pub fn as_block(self) -> Option<BlockId> {
        match self {
            ValueRef::Block(b) => Some(b),
            _ => None,
        }
    }

    /// The instruction id, if this is an instruction result.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            ValueRef::Inst(i) => Some(i),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeTable;

    #[test]
    fn float_constants_roundtrip_bits() {
        let mut t = TypeTable::new();
        let f64t = t.f64();
        let v = ValueRef::const_float(f64t, 3.25);
        assert_eq!(v.as_float(), Some(3.25));
        assert!(v.is_constant());
    }

    #[test]
    fn accessors() {
        let mut t = TypeTable::new();
        let i32t = t.i32();
        let c = ValueRef::const_int(i32t, -7);
        assert_eq!(c.as_int(), Some(-7));
        assert_eq!(c.as_block(), None);
        let b = ValueRef::Block(BlockId::new(2));
        assert!(b.is_block());
        assert_eq!(b.as_block(), Some(BlockId::new(2)));
        assert!(!b.is_constant());
        let i = ValueRef::Inst(InstId::new(4));
        assert_eq!(i.as_inst(), Some(InstId::new(4)));
    }

    #[test]
    fn value_ref_is_hashable() {
        use std::collections::HashSet;
        let mut t = TypeTable::new();
        let f = t.f32();
        let mut s = HashSet::new();
        s.insert(ValueRef::const_float(f, 1.0));
        s.insert(ValueRef::const_float(f, 1.0));
        assert_eq!(s.len(), 1);
    }
}
