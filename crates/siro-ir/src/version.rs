//! The IR version catalog.
//!
//! An [`IrVersion`] plays the role that a concrete LLVM release plays in the
//! paper: it decides which instructions exist ([`IrVersion::supports`]), how
//! the textual serialization looks (the `*_text` quirk predicates), and which
//! API components `siro-api` exposes with which signatures.

use std::fmt;

use crate::opcode::Opcode;

/// A major.minor IR version, e.g. `3.6` or `13.0`.
///
/// Versions are totally ordered; all feature gates are expressed as
/// "introduced in version X" and checked with `>=`.
///
/// # Examples
///
/// ```
/// use siro_ir::IrVersion;
/// assert!(IrVersion::V13_0 > IrVersion::V3_6);
/// assert_eq!(IrVersion::V3_6.to_string(), "3.6");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IrVersion {
    major: u16,
    minor: u16,
}

impl IrVersion {
    /// The oldest version in the catalog (57 instructions).
    pub const V3_0: IrVersion = IrVersion::new(3, 0);
    /// Adds `addrspacecast` (58 instructions).
    pub const V3_6: IrVersion = IrVersion::new(3, 6);
    /// First version with the five Windows exception-handling instructions.
    pub const V3_7: IrVersion = IrVersion::new(3, 7);
    /// 63 instructions.
    pub const V4_0: IrVersion = IrVersion::new(4, 0);
    /// 63 instructions (same set as 4.0).
    pub const V5_0: IrVersion = IrVersion::new(5, 0);
    /// Adds `callbr`; call/invoke builders require explicit callee type.
    pub const V9_0: IrVersion = IrVersion::new(9, 0);
    /// Adds `freeze`.
    pub const V10_0: IrVersion = IrVersion::new(10, 0);
    /// Renames the call-target getter (`get_called_value` ->
    /// `get_called_operand`).
    pub const V11_0: IrVersion = IrVersion::new(11, 0);
    /// 65 instructions.
    pub const V12_0: IrVersion = IrVersion::new(12, 0);
    /// 65 instructions.
    pub const V13_0: IrVersion = IrVersion::new(13, 0);
    /// 65 instructions.
    pub const V14_0: IrVersion = IrVersion::new(14, 0);
    /// First version printing opaque `ptr` types.
    pub const V15_0: IrVersion = IrVersion::new(15, 0);
    /// The newest version in the catalog.
    pub const V17_0: IrVersion = IrVersion::new(17, 0);

    /// Every version that the reproduction's experiments reference,
    /// oldest first.
    pub const CATALOG: [IrVersion; 13] = [
        Self::V3_0,
        Self::V3_6,
        Self::V3_7,
        Self::V4_0,
        Self::V5_0,
        Self::V9_0,
        Self::V10_0,
        Self::V11_0,
        Self::V12_0,
        Self::V13_0,
        Self::V14_0,
        Self::V15_0,
        Self::V17_0,
    ];

    /// Creates a version from raw major/minor numbers.
    pub const fn new(major: u16, minor: u16) -> Self {
        IrVersion { major, minor }
    }

    /// The major component.
    pub const fn major(self) -> u16 {
        self.major
    }

    /// The minor component.
    pub const fn minor(self) -> u16 {
        self.minor
    }

    /// Whether this version's instruction set contains `op`.
    pub fn supports(self, op: Opcode) -> bool {
        self >= op.introduced_in()
    }

    /// All opcodes available in this version, in canonical order.
    pub fn instruction_set(self) -> Vec<Opcode> {
        Opcode::ALL
            .iter()
            .copied()
            .filter(|op| self.supports(*op))
            .collect()
    }

    /// Opcodes shared between `self` and `other` ("common instructions").
    pub fn common_instructions(self, other: IrVersion) -> Vec<Opcode> {
        Opcode::ALL
            .iter()
            .copied()
            .filter(|op| self.supports(*op) && other.supports(*op))
            .collect()
    }

    /// Opcodes present in `self` but absent from `other`
    /// ("new instructions" when translating `self -> other`).
    pub fn new_instructions_vs(self, other: IrVersion) -> Vec<Opcode> {
        Opcode::ALL
            .iter()
            .copied()
            .filter(|op| self.supports(*op) && !other.supports(*op))
            .collect()
    }

    // ---- Serialization / API quirks -------------------------------------

    /// Since 3.7, `load` and `getelementptr` spell the result / source
    /// element type explicitly in the text format.
    pub fn explicit_load_type_in_text(self) -> bool {
        self >= Self::V3_7
    }

    /// Since 9.0, the `call`/`invoke`/`load`/`gep` *builders* require the
    /// callee or element type as an explicit argument (cf. Fig. 13 of the
    /// paper).
    pub fn builders_require_explicit_type(self) -> bool {
        self >= Self::V9_0
    }

    /// Since 11.0, the call-target getter is named `get_called_operand`
    /// instead of `get_called_value`.
    pub fn renamed_called_operand_getter(self) -> bool {
        self >= Self::V11_0
    }

    /// Since 15.0, pointer types print as opaque `ptr`.
    pub fn opaque_pointers_in_text(self) -> bool {
        self >= Self::V15_0
    }

    /// Maximum inline-assembly "hardware level" the backend of this version
    /// can lower. Models the paper's php failure: source code hard-coding
    /// newer hardware instructions compiles only with newer backends.
    pub fn max_asm_hw_level(self) -> u8 {
        if self >= Self::V12_0 {
            3
        } else if self >= Self::V9_0 {
            2
        } else {
            1
        }
    }
}

impl fmt::Display for IrVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_major_then_minor() {
        assert!(IrVersion::V3_0 < IrVersion::V3_6);
        assert!(IrVersion::V3_6 < IrVersion::V3_7);
        assert!(IrVersion::V3_7 < IrVersion::V4_0);
        assert!(IrVersion::V9_0 < IrVersion::V17_0);
    }

    #[test]
    fn table3_instruction_counts() {
        // The per-version instruction-set sizes that make every Table 3 row
        // come out exactly as in the paper.
        assert_eq!(IrVersion::V3_0.instruction_set().len(), 57);
        assert_eq!(IrVersion::V3_6.instruction_set().len(), 58);
        assert_eq!(IrVersion::V4_0.instruction_set().len(), 63);
        assert_eq!(IrVersion::V5_0.instruction_set().len(), 63);
        assert_eq!(IrVersion::V12_0.instruction_set().len(), 65);
        assert_eq!(IrVersion::V17_0.instruction_set().len(), 65);
    }

    #[test]
    fn table3_common_and_new_counts() {
        let cases = [
            (IrVersion::V12_0, IrVersion::V3_6, 58, 7),
            (IrVersion::V13_0, IrVersion::V3_6, 58, 7),
            (IrVersion::V14_0, IrVersion::V3_6, 58, 7),
            (IrVersion::V15_0, IrVersion::V3_6, 58, 7),
            (IrVersion::V17_0, IrVersion::V3_6, 58, 7),
            (IrVersion::V17_0, IrVersion::V3_0, 57, 8),
            (IrVersion::V3_6, IrVersion::V3_0, 57, 1),
            (IrVersion::V5_0, IrVersion::V4_0, 63, 0),
            (IrVersion::V17_0, IrVersion::V12_0, 65, 0),
            (IrVersion::V3_6, IrVersion::V12_0, 58, 0),
        ];
        for (src, tgt, common, new) in cases {
            assert_eq!(
                src.common_instructions(tgt).len(),
                common,
                "common({src}, {tgt})"
            );
            assert_eq!(
                src.new_instructions_vs(tgt).len(),
                new,
                "new({src} -> {tgt})"
            );
        }
    }

    #[test]
    fn quirk_gates() {
        assert!(!IrVersion::V3_6.explicit_load_type_in_text());
        assert!(IrVersion::V4_0.explicit_load_type_in_text());
        assert!(!IrVersion::V5_0.builders_require_explicit_type());
        assert!(IrVersion::V12_0.builders_require_explicit_type());
        assert!(!IrVersion::V14_0.opaque_pointers_in_text());
        assert!(IrVersion::V15_0.opaque_pointers_in_text());
        assert!(IrVersion::V17_0.renamed_called_operand_getter());
    }

    #[test]
    fn catalog_lists_every_declared_version_in_order() {
        // The catalog must contain every named constant exactly once,
        // sorted oldest-first: the version-graph router treats it as the
        // complete node set.
        let all = [
            IrVersion::V3_0,
            IrVersion::V3_6,
            IrVersion::V3_7,
            IrVersion::V4_0,
            IrVersion::V5_0,
            IrVersion::V9_0,
            IrVersion::V10_0,
            IrVersion::V11_0,
            IrVersion::V12_0,
            IrVersion::V13_0,
            IrVersion::V14_0,
            IrVersion::V15_0,
            IrVersion::V17_0,
        ];
        assert_eq!(IrVersion::CATALOG, all);
        assert!(IrVersion::CATALOG.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_matches_llvm_convention() {
        assert_eq!(IrVersion::V3_6.to_string(), "3.6");
        assert_eq!(IrVersion::V17_0.to_string(), "17.0");
    }
}
