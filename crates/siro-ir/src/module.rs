//! The top level of the IR hierarchy: `P := F+ G+` (Fig. 3).

use crate::inst::Instruction;
use crate::types::{TypeId, TypeTable};
use crate::value::{AsmId, BlockId, FuncId, GlobalId, InstId, ValueRef};
use crate::version::IrVersion;

/// Initializer of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// External declaration (no initializer).
    External,
    /// Zero-initialized.
    Zero,
    /// An integer constant.
    Int(i64),
    /// A floating constant.
    Float(f64),
    /// Raw bytes (e.g. string literals).
    Bytes(Vec<u8>),
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbol name (without the `@` sigil).
    pub name: String,
    /// The *value* type; the global itself is addressed through a pointer to
    /// this type.
    pub ty: TypeId,
    /// Initializer.
    pub init: GlobalInit,
    /// Whether the global is immutable (`constant`).
    pub is_const: bool,
}

/// An inline-assembly snippet usable as a call target.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineAsm {
    /// The assembly text.
    pub text: String,
    /// Constraint string.
    pub constraints: String,
    /// Function type of the callable.
    pub ty: TypeId,
    /// Minimum backend "hardware level" able to lower this snippet; models
    /// source code hard-coding newer hardware instructions (the paper's php
    /// case). See [`IrVersion::max_asm_hw_level`].
    pub hw_level: u8,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (cosmetic).
    pub name: String,
    /// Parameter type.
    pub ty: TypeId,
}

/// A basic block: an ordered list of instructions (`B := I+`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasicBlock {
    /// Label (cosmetic; blocks are referenced by [`BlockId`]).
    pub name: String,
    /// Instructions in execution order; ids index the function's arena.
    pub insts: Vec<InstId>,
}

/// A function: `F := f(arg1..argn){ B+ }`.
///
/// Blocks and instructions live in per-function arenas; [`BlockId`] and
/// [`InstId`] index them.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name (without the `@` sigil).
    pub name: String,
    /// Return type.
    pub ret_ty: TypeId,
    /// Parameters.
    pub params: Vec<Param>,
    /// Whether the function is variadic.
    pub varargs: bool,
    /// Whether this is a declaration without a body.
    pub is_external: bool,
    /// Basic blocks in layout order; the first is the entry block.
    pub blocks: Vec<BasicBlock>,
    /// Instruction arena.
    pub insts: Vec<Instruction>,
}

impl Function {
    /// Creates an empty function definition.
    pub fn new(name: impl Into<String>, ret_ty: TypeId, params: Vec<Param>) -> Self {
        Function {
            name: name.into(),
            ret_ty,
            params,
            varargs: false,
            is_external: false,
            blocks: Vec::new(),
            insts: Vec::new(),
        }
    }

    /// Creates an external declaration.
    pub fn external(name: impl Into<String>, ret_ty: TypeId, params: Vec<Param>) -> Self {
        Function {
            is_external: true,
            ..Function::new(name, ret_ty, params)
        }
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            name: name.into(),
            insts: Vec::new(),
        });
        id
    }

    /// Appends `inst` to `block`, returning the instruction id.
    pub fn push_inst(&mut self, block: BlockId, inst: Instruction) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        self.blocks[block.0 as usize].insts.push(id);
        id
    }

    /// The instruction behind `id`.
    pub fn inst(&self, id: InstId) -> &Instruction {
        &self.insts[id.0 as usize]
    }

    /// Mutable access to the instruction behind `id`.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Instruction {
        &mut self.insts[id.0 as usize]
    }

    /// The block behind `id`.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Iterates over block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The entry block, if the function has a body.
    pub fn entry(&self) -> Option<BlockId> {
        if self.blocks.is_empty() {
            None
        } else {
            Some(BlockId(0))
        }
    }

    /// The terminator instruction of `block`, if present.
    pub fn terminator(&self, block: BlockId) -> Option<&Instruction> {
        self.block(block)
            .insts
            .last()
            .map(|&i| self.inst(i))
            .filter(|i| i.opcode.is_terminator())
    }

    /// Total number of instructions.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Replaces every occurrence of the placeholder `key` with `actual`
    /// across all instruction operands (the translation fix-up pass).
    ///
    /// Returns the number of operand slots rewritten.
    pub fn replace_placeholder(&mut self, key: u32, actual: ValueRef) -> usize {
        let mut n = 0;
        for inst in &mut self.insts {
            for op in &mut inst.operands {
                if *op == ValueRef::Placeholder(key) {
                    *op = actual;
                    n += 1;
                }
            }
        }
        n
    }
}

/// A complete IR program of a particular version.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name (cosmetic).
    pub name: String,
    /// The version this module's serialized form and instruction set obey.
    pub version: IrVersion,
    /// Interned types.
    pub types: TypeTable,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Inline-assembly snippets.
    pub asms: Vec<InlineAsm>,
    /// Functions (definitions and declarations).
    pub funcs: Vec<Function>,
}

impl Module {
    /// Creates an empty module of the given version.
    pub fn new(name: impl Into<String>, version: IrVersion) -> Self {
        Module {
            name: name.into(),
            version,
            types: TypeTable::new(),
            globals: Vec::new(),
            asms: Vec::new(),
            funcs: Vec::new(),
        }
    }

    /// Adds a global variable, returning its id.
    pub fn add_global(&mut self, global: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(global);
        id
    }

    /// Adds an inline-assembly snippet, returning its id.
    pub fn add_asm(&mut self, asm: InlineAsm) -> AsmId {
        let id = AsmId(self.asms.len() as u32);
        self.asms.push(asm);
        id
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(func);
        id
    }

    /// The function behind `id`.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable access to the function behind `id`.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// The global behind `id`.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// The inline-assembly snippet behind `id`.
    pub fn asm(&self, id: AsmId) -> &InlineAsm {
        &self.asms[id.0 as usize]
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Finds a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Iterates over function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Iterates over global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> {
        (0..self.globals.len() as u32).map(GlobalId)
    }

    /// Total instruction count over all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }

    /// The static type of an operand value within `func`.
    ///
    /// Returns `None` for block labels (whose "type" is `label`) when the
    /// table has not interned it, and for out-of-range references.
    pub fn value_type(&self, func: &Function, v: ValueRef) -> Option<TypeId> {
        match v {
            ValueRef::Inst(i) => Some(func.inst(i).ty),
            ValueRef::Arg(a) => func.params.get(a as usize).map(|p| p.ty),
            ValueRef::Global(_) | ValueRef::Func(_) | ValueRef::InlineAsm(_) => None,
            ValueRef::Block(_) => None,
            ValueRef::ConstInt { ty, .. }
            | ValueRef::ConstFloat { ty, .. }
            | ValueRef::Null(ty)
            | ValueRef::Undef(ty)
            | ValueRef::ZeroInit(ty) => Some(ty),
            ValueRef::Placeholder(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    #[test]
    fn build_and_query_module() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let void = m.types.void();
        let mut f = Function::new("main", i32t, vec![]);
        let entry = f.add_block("entry");
        let c = ValueRef::const_int(i32t, 41);
        let one = ValueRef::const_int(i32t, 1);
        let add = f.push_inst(entry, Instruction::new(Opcode::Add, i32t, vec![c, one]));
        f.push_inst(
            entry,
            Instruction::new(Opcode::Ret, void, vec![ValueRef::Inst(add)]),
        );
        let fid = m.add_func(f);
        assert_eq!(m.func_by_name("main"), Some(fid));
        assert_eq!(m.inst_count(), 2);
        let f = m.func(fid);
        assert_eq!(f.terminator(BlockId(0)).unwrap().opcode, Opcode::Ret);
        assert_eq!(f.entry(), Some(BlockId(0)));
    }

    #[test]
    fn placeholder_replacement() {
        let mut m = Module::new("m", IrVersion::V3_6);
        let i32t = m.types.i32();
        let mut f = Function::new("f", i32t, vec![]);
        let b = f.add_block("entry");
        let add = f.push_inst(
            b,
            Instruction::new(
                Opcode::Add,
                i32t,
                vec![ValueRef::Placeholder(3), ValueRef::Placeholder(3)],
            ),
        );
        let n = f.replace_placeholder(3, ValueRef::const_int(i32t, 5));
        assert_eq!(n, 2);
        assert!(!f.inst(add).has_placeholders());
        let _ = m.add_func(f);
    }

    #[test]
    fn external_functions_have_no_body() {
        let mut m = Module::new("m", IrVersion::V3_6);
        let i32t = m.types.i32();
        let f = Function::external("malloc", i32t, vec![]);
        let id = m.add_func(f);
        assert!(m.func(id).is_external);
        assert_eq!(m.func(id).entry(), None);
    }
}
