//! The top level of the IR hierarchy: `P := F+ G+` (Fig. 3).
//!
//! Storage follows the arena model of [`crate::ctx`]: a [`Module`] owns a
//! [`Ctx`] whose typed [`Arena`]s hold every module-level entity, each
//! function owns arenas for its blocks and instructions, and all
//! cross-entity links are copyable [`Ptr`](crate::ctx::Ptr) indices.

use std::ops::{Deref, DerefMut};

use crate::ctx::Arena;
use crate::inst::Instruction;
use crate::types::{TypeId, TypeTable};
use crate::value::{AsmId, BlockId, FuncId, GlobalId, InstId, ValueRef};
use crate::version::IrVersion;

/// Initializer of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// External declaration (no initializer).
    External,
    /// Zero-initialized.
    Zero,
    /// An integer constant.
    Int(i64),
    /// A floating constant.
    Float(f64),
    /// Raw bytes (e.g. string literals).
    Bytes(Vec<u8>),
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbol name (without the `@` sigil).
    pub name: String,
    /// The *value* type; the global itself is addressed through a pointer to
    /// this type.
    pub ty: TypeId,
    /// Initializer.
    pub init: GlobalInit,
    /// Whether the global is immutable (`constant`).
    pub is_const: bool,
}

/// An inline-assembly snippet usable as a call target.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineAsm {
    /// The assembly text.
    pub text: String,
    /// Constraint string.
    pub constraints: String,
    /// Function type of the callable.
    pub ty: TypeId,
    /// Minimum backend "hardware level" able to lower this snippet; models
    /// source code hard-coding newer hardware instructions (the paper's php
    /// case). See [`IrVersion::max_asm_hw_level`].
    pub hw_level: u8,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name (cosmetic).
    pub name: String,
    /// Parameter type.
    pub ty: TypeId,
}

/// A basic block: an ordered list of instructions (`B := I+`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BasicBlock {
    /// Label (cosmetic; blocks are referenced by [`BlockId`]).
    pub name: String,
    /// Instructions in execution order; ids index the function's arena.
    pub insts: Vec<InstId>,
}

/// A function: `F := f(arg1..argn){ B+ }`.
///
/// Blocks and instructions live in per-function [`Arena`]s; [`BlockId`] and
/// [`InstId`] index them. Dropping the function parks both arena buffers in
/// the thread-local recycling slab (see [`crate::ctx`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name (without the `@` sigil).
    pub name: String,
    /// Return type.
    pub ret_ty: TypeId,
    /// Parameters.
    pub params: Vec<Param>,
    /// Whether the function is variadic.
    pub varargs: bool,
    /// Whether this is a declaration without a body.
    pub is_external: bool,
    /// Basic blocks in layout order; the first is the entry block.
    pub blocks: Arena<BasicBlock>,
    /// Instruction arena.
    pub insts: Arena<Instruction>,
}

impl Function {
    /// Creates an empty function definition.
    pub fn new(name: impl Into<String>, ret_ty: TypeId, params: Vec<Param>) -> Self {
        Function {
            name: name.into(),
            ret_ty,
            params,
            varargs: false,
            is_external: false,
            blocks: Arena::new(),
            insts: Arena::new(),
        }
    }

    /// Creates an external declaration.
    pub fn external(name: impl Into<String>, ret_ty: TypeId, params: Vec<Param>) -> Self {
        Function {
            is_external: true,
            ..Function::new(name, ret_ty, params)
        }
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.blocks.alloc(BasicBlock {
            name: name.into(),
            insts: Vec::new(),
        })
    }

    /// Appends `inst` to `block`, returning the instruction id.
    pub fn push_inst(&mut self, block: BlockId, inst: Instruction) -> InstId {
        let id = self.insts.alloc(inst);
        self.blocks[block].insts.push(id);
        id
    }

    /// The instruction behind `id`.
    pub fn inst(&self, id: InstId) -> &Instruction {
        &self.insts[id]
    }

    /// Mutable access to the instruction behind `id`.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Instruction {
        &mut self.insts[id]
    }

    /// The block behind `id`.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id]
    }

    /// Iterates over block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        self.blocks.ids()
    }

    /// The entry block, if the function has a body.
    pub fn entry(&self) -> Option<BlockId> {
        if self.blocks.is_empty() {
            None
        } else {
            Some(BlockId::new(0))
        }
    }

    /// The terminator instruction of `block`, if present.
    pub fn terminator(&self, block: BlockId) -> Option<&Instruction> {
        self.block(block)
            .insts
            .last()
            .map(|&i| self.inst(i))
            .filter(|i| i.opcode.is_terminator())
    }

    /// Total number of instructions.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Replaces every occurrence of the placeholder `key` with `actual`
    /// across all instruction operands (the translation fix-up pass).
    ///
    /// Returns the number of operand slots rewritten.
    pub fn replace_placeholder(&mut self, key: u32, actual: ValueRef) -> usize {
        let mut n = 0;
        for inst in &mut self.insts {
            for op in &mut inst.operands {
                if *op == ValueRef::Placeholder(key) {
                    *op = actual;
                    n += 1;
                }
            }
        }
        n
    }
}

/// The arena context of a module: interned types plus the typed arenas
/// holding every module-level entity.
///
/// [`Module`] owns exactly one `Ctx` and dereferences to it, so module
/// content is reached as `module.types`, `module.funcs`, `module.globals`,
/// `module.asms` exactly as before the arena refactor. Dropping the `Ctx`
/// releases the whole program in one arena free per entity kind (the
/// buffers park in the thread-local slab for the next request).
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Interned types.
    pub types: TypeTable,
    /// Global variables.
    pub globals: Arena<Global>,
    /// Inline-assembly snippets.
    pub asms: Arena<InlineAsm>,
    /// Functions (definitions and declarations).
    pub funcs: Arena<Function>,
}

impl Ctx {
    /// Creates an empty context, reusing slab-recycled arena buffers.
    pub fn new() -> Self {
        Ctx {
            types: TypeTable::new(),
            globals: Arena::new(),
            asms: Arena::new(),
            funcs: Arena::new(),
        }
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx::new()
    }
}

/// A complete IR program of a particular version.
///
/// All entity storage lives in the owned [`Ctx`]; `Module` adds the
/// identity (name, version) and dereferences to the context.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name (cosmetic).
    pub name: String,
    /// The version this module's serialized form and instruction set obey.
    pub version: IrVersion,
    /// The arena context holding types, globals, asms, and functions.
    pub ctx: Ctx,
}

impl Deref for Module {
    type Target = Ctx;
    #[inline]
    fn deref(&self) -> &Ctx {
        &self.ctx
    }
}

impl DerefMut for Module {
    #[inline]
    fn deref_mut(&mut self) -> &mut Ctx {
        &mut self.ctx
    }
}

impl Module {
    /// Creates an empty module of the given version.
    pub fn new(name: impl Into<String>, version: IrVersion) -> Self {
        Module {
            name: name.into(),
            version,
            ctx: Ctx::new(),
        }
    }

    /// Deep-copies the module into freshly allocated (slab-recycled)
    /// arenas.
    ///
    /// The clone is structurally equal to the original but shares no
    /// storage with it: every arena buffer, operand spill, and string is
    /// disjoint, so mutating the clone can never alias back. This is what
    /// `siro-difftest`'s `arena-clone` oracle exercises.
    pub fn arena_clone(&self) -> Module {
        self.clone()
    }

    /// Adds a global variable, returning its id.
    pub fn add_global(&mut self, global: Global) -> GlobalId {
        self.ctx.globals.alloc(global)
    }

    /// Adds an inline-assembly snippet, returning its id.
    pub fn add_asm(&mut self, asm: InlineAsm) -> AsmId {
        self.ctx.asms.alloc(asm)
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        self.ctx.funcs.alloc(func)
    }

    /// The function behind `id`.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.ctx.funcs[id]
    }

    /// Mutable access to the function behind `id`.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.ctx.funcs[id]
    }

    /// The global behind `id`.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.ctx.globals[id]
    }

    /// The inline-assembly snippet behind `id`.
    pub fn asm(&self, id: AsmId) -> &InlineAsm {
        &self.ctx.asms[id]
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.ctx
            .funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_usize)
    }

    /// Finds a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.ctx
            .globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::from_usize)
    }

    /// Iterates over function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        self.ctx.funcs.ids()
    }

    /// Iterates over global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> {
        self.ctx.globals.ids()
    }

    /// Total instruction count over all functions.
    pub fn inst_count(&self) -> usize {
        self.ctx.funcs.iter().map(Function::inst_count).sum()
    }

    /// The static type of an operand value within `func`.
    ///
    /// Returns `None` for block labels (whose "type" is `label`) when the
    /// table has not interned it, and for out-of-range references.
    pub fn value_type(&self, func: &Function, v: ValueRef) -> Option<TypeId> {
        match v {
            ValueRef::Inst(i) => Some(func.inst(i).ty),
            ValueRef::Arg(a) => func.params.get(a as usize).map(|p| p.ty),
            ValueRef::Global(_) | ValueRef::Func(_) | ValueRef::InlineAsm(_) => None,
            ValueRef::Block(_) => None,
            ValueRef::ConstInt { ty, .. }
            | ValueRef::ConstFloat { ty, .. }
            | ValueRef::Null(ty)
            | ValueRef::Undef(ty)
            | ValueRef::ZeroInit(ty) => Some(ty),
            ValueRef::Placeholder(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;

    #[test]
    fn build_and_query_module() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let void = m.types.void();
        let mut f = Function::new("main", i32t, vec![]);
        let entry = f.add_block("entry");
        let c = ValueRef::const_int(i32t, 41);
        let one = ValueRef::const_int(i32t, 1);
        let add = f.push_inst(entry, Instruction::new(Opcode::Add, i32t, vec![c, one]));
        f.push_inst(
            entry,
            Instruction::new(Opcode::Ret, void, vec![ValueRef::Inst(add)]),
        );
        let fid = m.add_func(f);
        assert_eq!(m.func_by_name("main"), Some(fid));
        assert_eq!(m.inst_count(), 2);
        let f = m.func(fid);
        assert_eq!(f.terminator(BlockId::new(0)).unwrap().opcode, Opcode::Ret);
        assert_eq!(f.entry(), Some(BlockId::new(0)));
    }

    #[test]
    fn placeholder_replacement() {
        let mut m = Module::new("m", IrVersion::V3_6);
        let i32t = m.types.i32();
        let mut f = Function::new("f", i32t, vec![]);
        let b = f.add_block("entry");
        let add = f.push_inst(
            b,
            Instruction::new(
                Opcode::Add,
                i32t,
                vec![ValueRef::Placeholder(3), ValueRef::Placeholder(3)],
            ),
        );
        let n = f.replace_placeholder(3, ValueRef::const_int(i32t, 5));
        assert_eq!(n, 2);
        assert!(!f.inst(add).has_placeholders());
        let _ = m.add_func(f);
    }

    #[test]
    fn external_functions_have_no_body() {
        let mut m = Module::new("m", IrVersion::V3_6);
        let i32t = m.types.i32();
        let f = Function::external("malloc", i32t, vec![]);
        let id = m.add_func(f);
        assert!(m.func(id).is_external);
        assert_eq!(m.func(id).entry(), None);
    }
}
