//! The arena IR core: typed arenas, copyable `Ptr<T>` indices, inline
//! operand storage, and the thread-local buffer slab that lets a served
//! request's whole IR drop in one arena free.
//!
//! ROADMAP item 4 ("the allocator is the ceiling") is implemented here.
//! Every IR entity — [`Function`](crate::Function),
//! [`BasicBlock`](crate::BasicBlock), [`Instruction`](crate::Instruction),
//! [`Global`](crate::Global), [`InlineAsm`](crate::InlineAsm) — lives in an
//! [`Arena<T>`] owned by the module's [`Ctx`](crate::module::Ctx) (or, for
//! blocks and instructions, by the enclosing function), and is referenced
//! by a copyable [`Ptr<T>`] typed index instead of a boxed pointer.
//!
//! Three mechanisms cut allocator traffic on the serving path:
//!
//! 1. **Arena storage** — entities are stored contiguously; `Ptr<T>` links
//!    (use-def, instruction order, successor edges) are `u32` indices, so
//!    building and walking IR never chases or allocates per-entity boxes.
//! 2. **Inline operands** — [`OpVec`] keeps up to
//!    [`OpVec::INLINE`] operands inside the instruction itself; the common
//!    instruction (`ret`/`br`/binop/`load`/`store`/cast) allocates nothing
//!    for its operand list.
//! 3. **Slab recycling** — when an [`Arena<T>`] drops, its backing buffer
//!    is cleared and parked in a thread-local slab keyed by entity type;
//!    the next arena of that type reuses it. A serve worker therefore
//!    reaches a steady state where per-request parse→translate→serialize
//!    performs no arena-buffer allocations at all. Error paths get this
//!    for free: a partially-parsed module recycles through the same
//!    [`Drop`], so malformed requests no longer strand buffer capacity.
//!
//! See `docs/IR_CORE.md` for the full design (layout, aliasing rules,
//! clone semantics) and `BENCH_ir_alloc.json` for the measured effect.

use std::cell::RefCell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut, Index, IndexMut};

use crate::value::ValueRef;

/// Maximum number of cleared buffers the per-type thread-local slab keeps.
///
/// Bounds worst-case idle memory per worker thread; beyond this, dropped
/// arena buffers are returned to the allocator.
const SLAB_MAX: usize = 64;

/// An IR entity that lives in an [`Arena`] and is addressed by [`Ptr`].
///
/// Implementations are provided for the five arena-stored IR types and
/// cannot be added outside `siro-ir`: the per-type recycling slab and the
/// `Ptr` debug name are crate-internal plumbing.
pub trait Entity: Sized + 'static {
    /// Name used when debug-printing a `Ptr<Self>`, e.g. `InstId`.
    const PTR_NAME: &'static str;

    #[doc(hidden)]
    fn with_slab<R>(f: impl FnOnce(&mut Vec<Vec<Self>>) -> R) -> R;
}

macro_rules! entity {
    ($ty:ty, $ptr_name:literal, $slab:ident) => {
        thread_local! {
            static $slab: RefCell<Vec<Vec<$ty>>> = const { RefCell::new(Vec::new()) };
        }

        impl Entity for $ty {
            const PTR_NAME: &'static str = $ptr_name;

            fn with_slab<R>(f: impl FnOnce(&mut Vec<Vec<Self>>) -> R) -> R {
                $slab.with(|s| f(&mut s.borrow_mut()))
            }
        }
    };
}

entity!(crate::inst::Instruction, "InstId", INST_SLAB);
entity!(crate::module::BasicBlock, "BlockId", BLOCK_SLAB);
entity!(crate::module::Function, "FuncId", FUNC_SLAB);
entity!(crate::module::Global, "GlobalId", GLOBAL_SLAB);
entity!(crate::module::InlineAsm, "AsmId", ASM_SLAB);

/// A copyable typed index into an [`Arena<T>`].
///
/// `Ptr<T>` is a `u32` newtype carrying the entity type as a phantom, so an
/// instruction index cannot be confused with a block index at compile time.
/// The aliases [`InstId`](crate::InstId), [`BlockId`](crate::BlockId),
/// [`FuncId`](crate::FuncId), [`GlobalId`](crate::GlobalId) and
/// [`AsmId`](crate::AsmId) name the five instantiations.
///
/// A `Ptr` is only meaningful relative to the arena it was allocated from
/// (instruction and block pointers are function-local; function, global and
/// asm pointers are module-local). Arenas never remove entities, so a `Ptr`
/// handed out by [`Arena::alloc`] stays valid for the arena's lifetime.
pub struct Ptr<T> {
    raw: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Ptr<T> {
    /// Wraps a raw `u32` index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Ptr {
            raw,
            _marker: PhantomData,
        }
    }

    /// Wraps a `usize` index (must fit in `u32`, as all arena sizes do).
    #[inline]
    pub fn from_usize(index: usize) -> Self {
        Ptr::new(index as u32)
    }

    /// The raw `u32` index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.raw
    }

    /// The index as a `usize`, for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.raw as usize
    }
}

// Manual impls: derives would wrongly bound `T`.
impl<T> Clone for Ptr<T> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Ptr<T> {}
impl<T> PartialEq for Ptr<T> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Ptr<T> {}
impl<T> PartialOrd for Ptr<T> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Ptr<T> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<T> Hash for Ptr<T> {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<T: Entity> fmt::Debug for Ptr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", T::PTR_NAME, self.raw)
    }
}

/// A typed arena: contiguous storage for one kind of IR entity, indexed by
/// [`Ptr<T>`].
///
/// Dereferences to `[T]`, so all slice reads (`len`, `iter`, `[usize]`,
/// ranges) work directly; `Ptr<T>` indexing is provided on top. Entities
/// are append-only — pointers, once handed out, never dangle.
///
/// Dropping an arena clears the elements and parks the backing buffer in a
/// thread-local, type-keyed slab (bounded by a small constant); the next
/// `Arena::new`/`Clone` on the same thread reuses that capacity. This is
/// what makes per-request IR churn allocation-free in steady state.
pub struct Arena<T: Entity> {
    items: Vec<T>,
}

impl<T: Entity> Arena<T> {
    /// Creates an empty arena, reusing a recycled buffer when available.
    pub fn new() -> Self {
        Arena {
            items: T::with_slab(|s| s.pop().unwrap_or_default()),
        }
    }

    /// Appends an entity and returns its pointer.
    #[inline]
    pub fn alloc(&mut self, item: T) -> Ptr<T> {
        let p = Ptr::from_usize(self.items.len());
        self.items.push(item);
        p
    }

    /// Appends an entity (alias of [`Arena::alloc`], mirroring `Vec::push`).
    #[inline]
    pub fn push(&mut self, item: T) -> Ptr<T> {
        self.alloc(item)
    }

    /// The pointer the next [`Arena::alloc`] will return.
    #[inline]
    pub fn next_ptr(&self) -> Ptr<T> {
        Ptr::from_usize(self.items.len())
    }

    /// Iterates over all valid pointers, in allocation order.
    pub fn ids(&self) -> impl Iterator<Item = Ptr<T>> {
        (0..self.items.len() as u32).map(Ptr::new)
    }

    /// The entity behind `p`, or `None` if `p` is out of range (e.g. a
    /// pointer from a different function's arena).
    #[inline]
    pub fn get(&self, p: Ptr<T>) -> Option<&T> {
        self.items.get(p.index())
    }

    /// Mutable counterpart of [`Arena::get`].
    #[inline]
    pub fn get_mut(&mut self, p: Ptr<T>) -> Option<&mut T> {
        self.items.get_mut(p.index())
    }

    /// Whether `p` indexes a live entity of this arena.
    #[inline]
    pub fn contains(&self, p: Ptr<T>) -> bool {
        p.index() < self.items.len()
    }

    /// Removes all entities, keeping the backing capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Reserves capacity for at least `additional` more entities.
    pub fn reserve(&mut self, additional: usize) {
        self.items.reserve(additional);
    }
}

impl<T: Entity> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl<T: Entity> Drop for Arena<T> {
    fn drop(&mut self) {
        let mut buf = std::mem::take(&mut self.items);
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        T::with_slab(|s| {
            if s.len() < SLAB_MAX {
                s.push(buf);
            }
        });
    }
}

impl<T: Entity + Clone> Clone for Arena<T> {
    /// Deep-copies the entities into a (recycled) fresh buffer. The clone
    /// shares no storage with the original — see `Module::arena_clone`.
    fn clone(&self) -> Self {
        let mut items: Vec<T> = T::with_slab(|s| s.pop().unwrap_or_default());
        items.extend(self.items.iter().cloned());
        Arena { items }
    }
}

impl<T: Entity + fmt::Debug> fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.items.fmt(f)
    }
}

impl<T: Entity + PartialEq> PartialEq for Arena<T> {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items
    }
}

impl<T: Entity> Deref for Arena<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        &self.items
    }
}

impl<T: Entity> DerefMut for Arena<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.items
    }
}

impl<T: Entity> Index<Ptr<T>> for Arena<T> {
    type Output = T;
    #[inline]
    fn index(&self, p: Ptr<T>) -> &T {
        &self.items[p.index()]
    }
}

impl<T: Entity> IndexMut<Ptr<T>> for Arena<T> {
    #[inline]
    fn index_mut(&mut self, p: Ptr<T>) -> &mut T {
        &mut self.items[p.index()]
    }
}

// Explicit position/range indexing: the `Ptr<T>` impl above stops the
// compiler from reaching `[T]`'s `Index` impls through deref coercion, so
// the usual slice indexing forms are restated here.
macro_rules! arena_slice_index {
    ($($idx:ty => $out:ty),+ $(,)?) => {$(
        impl<T: Entity> Index<$idx> for Arena<T> {
            type Output = $out;
            #[inline]
            fn index(&self, i: $idx) -> &$out {
                &self.items[i]
            }
        }
        impl<T: Entity> IndexMut<$idx> for Arena<T> {
            #[inline]
            fn index_mut(&mut self, i: $idx) -> &mut $out {
                &mut self.items[i]
            }
        }
    )+};
}

arena_slice_index! {
    usize => T,
    std::ops::Range<usize> => [T],
    std::ops::RangeFrom<usize> => [T],
    std::ops::RangeTo<usize> => [T],
    std::ops::RangeFull => [T],
}

impl<T: Entity> From<Vec<T>> for Arena<T> {
    fn from(items: Vec<T>) -> Self {
        Arena { items }
    }
}

impl<T: Entity> FromIterator<T> for Arena<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut a = Arena::new();
        a.items.extend(iter);
        a
    }
}

impl<T: Entity> Extend<T> for Arena<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl<'a, T: Entity> IntoIterator for &'a Arena<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<'a, T: Entity> IntoIterator for &'a mut Arena<T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter_mut()
    }
}

/// Inline-first operand storage for [`Instruction`](crate::Instruction).
///
/// Holds up to [`OpVec::INLINE`] operands inside the instruction (no heap);
/// longer lists spill to a `Vec`. Dereferences to `[ValueRef]`, so all
/// slice reads and in-place element writes look exactly like the former
/// `Vec<ValueRef>` field. Built from arrays (`[a, b].into()`) on hot paths
/// — array construction is allocation-free — or from `Vec`/iterators on
/// cold ones.
///
/// Once a list has spilled it stays spilled (its `Vec` capacity is kept),
/// so pointers into a long operand list are never invalidated by a
/// later length change.
///
/// The representation is a two-variant enum rather than a struct carrying
/// both buffers: `Instruction` sits on the translate hot loop, and keeping
/// `OpVec` at 56 bytes (vs. 96 for inline-buffer-plus-`Vec`) is worth the
/// match on every access.
pub struct OpVec {
    repr: Repr,
}

enum Repr {
    /// Up to [`OpVec::INLINE`] operands stored in place.
    Inline {
        len: u8,
        buf: [ValueRef; OpVec::INLINE],
    },
    /// Heap storage for longer lists; stays spilled once spilled.
    Spill(Vec<ValueRef>),
}

/// Filler for unused inline slots; never observable through the slice API.
const FILL: ValueRef = ValueRef::Placeholder(u32::MAX);

impl OpVec {
    /// Number of operands stored inline before spilling to the heap.
    ///
    /// Covers the common fixed-arity opcodes (`ret`, `br`, binops, memory
    /// ops, casts, `select`, short `gep`s); wide `phi`/`switch`/`call`
    /// instructions spill.
    pub const INLINE: usize = 3;

    /// Creates an empty operand list (no allocation).
    pub const fn new() -> Self {
        OpVec {
            repr: Repr::Inline {
                len: 0,
                buf: [FILL; Self::INLINE],
            },
        }
    }

    /// The operands as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[ValueRef] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Spill(v) => v,
        }
    }

    /// The operands as a mutable slice (element writes; length is fixed).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [ValueRef] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Spill(v) => v,
        }
    }

    /// Appends an operand, spilling to the heap past [`OpVec::INLINE`].
    pub fn push(&mut self, v: ValueRef) {
        match &mut self.repr {
            Repr::Spill(sp) => sp.push(v),
            Repr::Inline { len, buf } => {
                if (*len as usize) < Self::INLINE {
                    buf[*len as usize] = v;
                    *len += 1;
                } else {
                    let mut sp = Vec::with_capacity(Self::INLINE * 2 + 1);
                    sp.extend_from_slice(buf);
                    sp.push(v);
                    self.repr = Repr::Spill(sp);
                }
            }
        }
    }

    /// Removes and returns the last operand.
    pub fn pop(&mut self) -> Option<ValueRef> {
        match &mut self.repr {
            Repr::Spill(sp) => sp.pop(),
            Repr::Inline { len, buf } => {
                if *len > 0 {
                    *len -= 1;
                    Some(buf[*len as usize])
                } else {
                    None
                }
            }
        }
    }

    /// Shortens the list to `len` operands (no-op if already shorter).
    pub fn truncate(&mut self, n: usize) {
        match &mut self.repr {
            Repr::Spill(sp) => sp.truncate(n),
            Repr::Inline { len, .. } => *len = (*len).min(n as u8),
        }
    }

    /// Removes all operands (keeps any spilled capacity).
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Appends all operands in `ops` (bulk copy, at most one spill).
    pub fn extend_from_slice(&mut self, ops: &[ValueRef]) {
        match &mut self.repr {
            Repr::Spill(sp) => sp.extend_from_slice(ops),
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                if n + ops.len() <= Self::INLINE {
                    buf[n..n + ops.len()].copy_from_slice(ops);
                    *len = (n + ops.len()) as u8;
                } else {
                    let mut sp = Vec::with_capacity((n + ops.len()).max(Self::INLINE * 2));
                    sp.extend_from_slice(&buf[..n]);
                    sp.extend_from_slice(ops);
                    self.repr = Repr::Spill(sp);
                }
            }
        }
    }
}

impl Default for OpVec {
    fn default() -> Self {
        OpVec::new()
    }
}

impl Deref for OpVec {
    type Target = [ValueRef];
    #[inline]
    fn deref(&self) -> &[ValueRef] {
        self.as_slice()
    }
}

impl DerefMut for OpVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [ValueRef] {
        self.as_mut_slice()
    }
}

impl Clone for OpVec {
    /// Clones to the most compact representation: a spilled source that
    /// fits inline clones without allocating.
    fn clone(&self) -> Self {
        OpVec::from_slice(self.as_slice())
    }
}

impl fmt::Debug for OpVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches `Vec<ValueRef>` debug output.
        self.as_slice().fmt(f)
    }
}

impl PartialEq for OpVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for OpVec {}

impl PartialEq<Vec<ValueRef>> for OpVec {
    fn eq(&self, other: &Vec<ValueRef>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[ValueRef; N]> for OpVec {
    fn eq(&self, other: &[ValueRef; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for OpVec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl OpVec {
    /// Builds an operand list by copying a slice (inline when it fits).
    pub fn from_slice(ops: &[ValueRef]) -> Self {
        if ops.len() <= Self::INLINE {
            let mut buf = [FILL; Self::INLINE];
            buf[..ops.len()].copy_from_slice(ops);
            OpVec {
                repr: Repr::Inline {
                    len: ops.len() as u8,
                    buf,
                },
            }
        } else {
            OpVec {
                repr: Repr::Spill(ops.to_vec()),
            }
        }
    }
}

impl From<Vec<ValueRef>> for OpVec {
    /// A short `Vec` is copied inline (and freed); a long one is adopted
    /// as the spill storage without copying.
    fn from(v: Vec<ValueRef>) -> Self {
        if v.len() <= Self::INLINE {
            OpVec::from_slice(&v)
        } else {
            OpVec {
                repr: Repr::Spill(v),
            }
        }
    }
}

impl<const N: usize> From<[ValueRef; N]> for OpVec {
    fn from(ops: [ValueRef; N]) -> Self {
        OpVec::from_slice(&ops)
    }
}

impl From<&[ValueRef]> for OpVec {
    fn from(ops: &[ValueRef]) -> Self {
        OpVec::from_slice(ops)
    }
}

impl FromIterator<ValueRef> for OpVec {
    fn from_iter<I: IntoIterator<Item = ValueRef>>(iter: I) -> Self {
        let mut v = OpVec::new();
        for op in iter {
            v.push(op);
        }
        v
    }
}

impl Extend<ValueRef> for OpVec {
    fn extend<I: IntoIterator<Item = ValueRef>>(&mut self, iter: I) {
        for op in iter {
            self.push(op);
        }
    }
}

impl<'a> IntoIterator for &'a OpVec {
    type Item = &'a ValueRef;
    type IntoIter = std::slice::Iter<'a, ValueRef>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a mut OpVec {
    type Item = &'a mut ValueRef;
    type IntoIter = std::slice::IterMut<'a, ValueRef>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

/// Owned operand iterator (see [`OpVec`]'s `IntoIterator`).
#[derive(Debug)]
pub struct OpVecIntoIter {
    inner: OpVecIter,
}

#[derive(Debug)]
enum OpVecIter {
    Inline(std::iter::Take<std::array::IntoIter<ValueRef, { OpVec::INLINE }>>),
    Spill(std::vec::IntoIter<ValueRef>),
}

impl Iterator for OpVecIntoIter {
    type Item = ValueRef;
    fn next(&mut self) -> Option<ValueRef> {
        match &mut self.inner {
            OpVecIter::Inline(it) => it.next(),
            OpVecIter::Spill(it) => it.next(),
        }
    }
}

impl IntoIterator for OpVec {
    type Item = ValueRef;
    type IntoIter = OpVecIntoIter;
    fn into_iter(self) -> Self::IntoIter {
        OpVecIntoIter {
            inner: match self.repr {
                Repr::Spill(v) => OpVecIter::Spill(v.into_iter()),
                Repr::Inline { len, buf } => OpVecIter::Inline(buf.into_iter().take(len as usize)),
            },
        }
    }
}

/// One use of an instruction result: which instruction reads it, and at
/// which operand slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Use {
    /// The instruction whose operand list contains the use.
    pub user: Ptr<crate::inst::Instruction>,
    /// Index into the user's operand list.
    pub slot: u32,
}

/// An index-linked use-def table for one function.
///
/// Flat CSR layout — one `offsets` entry per instruction plus a shared
/// `uses` array — so building it performs exactly two allocations no
/// matter how large the function is, and `uses_of` is a slice lookup.
/// The table is a snapshot: rebuild after mutating operand lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UseIndex {
    /// `offsets[i]..offsets[i + 1]` bounds instruction `i`'s uses in `uses`.
    offsets: Vec<u32>,
    uses: Vec<Use>,
}

impl UseIndex {
    /// Builds the use-def table of `f` from its operand lists.
    pub fn build(f: &crate::module::Function) -> UseIndex {
        let n = f.insts.len();
        // Count pass.
        let mut offsets = vec![0u32; n + 1];
        for inst in f.insts.iter() {
            for op in inst.operands.iter() {
                if let ValueRef::Inst(def) = op {
                    offsets[def.index() + 1] += 1;
                }
            }
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        // Fill pass (cursor per def).
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut uses = vec![
            Use {
                user: Ptr::new(0),
                slot: 0
            };
            offsets[n] as usize
        ];
        for (i, inst) in f.insts.iter().enumerate() {
            for (slot, op) in inst.operands.iter().enumerate() {
                if let ValueRef::Inst(def) = op {
                    let c = &mut cursor[def.index()];
                    uses[*c as usize] = Use {
                        user: Ptr::from_usize(i),
                        slot: slot as u32,
                    };
                    *c += 1;
                }
            }
        }
        UseIndex { offsets, uses }
    }

    /// All uses of `def`'s result, in instruction order.
    pub fn uses_of(&self, def: Ptr<crate::inst::Instruction>) -> &[Use] {
        let lo = self.offsets[def.index()] as usize;
        let hi = self.offsets[def.index() + 1] as usize;
        &self.uses[lo..hi]
    }

    /// Number of instructions the table covers.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the table covers no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Observability hook for tests and benches: number of parked buffers in
/// this thread's recycling slab for each entity type, in the order
/// `[instructions, blocks, functions, globals, asms]`.
pub fn slab_depths() -> [usize; 5] {
    [
        crate::inst::Instruction::with_slab(|s| s.len()),
        crate::module::BasicBlock::with_slab(|s| s.len()),
        crate::module::Function::with_slab(|s| s.len()),
        crate::module::Global::with_slab(|s| s.len()),
        crate::module::InlineAsm::with_slab(|s| s.len()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Instruction;

    #[test]
    fn ptr_debug_matches_legacy_newtype_format() {
        let p: Ptr<Instruction> = Ptr::new(3);
        assert_eq!(format!("{p:?}"), "InstId(3)");
        let b: Ptr<crate::module::BasicBlock> = Ptr::new(0);
        assert_eq!(format!("{b:?}"), "BlockId(0)");
    }

    #[test]
    fn opvec_inline_then_spill() {
        let mut v = OpVec::new();
        let mk = |i| ValueRef::Arg(i);
        for i in 0..OpVec::INLINE as u32 {
            v.push(mk(i));
        }
        assert_eq!(v.len(), OpVec::INLINE);
        v.push(mk(9));
        assert_eq!(v.len(), OpVec::INLINE + 1);
        assert_eq!(v[OpVec::INLINE], ValueRef::Arg(9));
        assert_eq!(v.pop(), Some(ValueRef::Arg(9)));
        v.truncate(2);
        assert_eq!(&v[..], &[ValueRef::Arg(0), ValueRef::Arg(1)]);
    }

    #[test]
    fn opvec_debug_and_eq_match_slice_semantics() {
        let a: OpVec = [ValueRef::Arg(1), ValueRef::Arg(2)].into();
        let b: OpVec = vec![ValueRef::Arg(1), ValueRef::Arg(2)].into();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{:?}", &a[..]));
        let owned: Vec<ValueRef> = a.clone().into_iter().collect();
        assert_eq!(owned, &b[..]);
    }

    #[test]
    fn arena_recycles_buffers_through_drop() {
        let baseline = slab_depths()[0];
        {
            let mut a: Arena<Instruction> = Arena::new();
            let mut t = crate::types::TypeTable::new();
            let i32t = t.i32();
            a.alloc(Instruction::new(crate::Opcode::Ret, i32t, OpVec::new()));
            assert_eq!(a.len(), 1);
        }
        assert_eq!(slab_depths()[0], baseline + 1);
        // The next arena takes the parked buffer back.
        let a: Arena<Instruction> = Arena::new();
        assert_eq!(slab_depths()[0], baseline);
        assert!(a.is_empty());
    }
}
