//! Instructions: `I := v0 <- op(v1, ..., vn)` (Fig. 3), plus the attribute
//! payload ("sub-kind" properties) that the paper's predicates inspect.
//!
//! # Operand conventions
//!
//! Each opcode stores its operands in a fixed order; the verifier,
//! interpreter, serializer, and instruction translators all rely on these
//! conventions:
//!
//! | opcode | operands |
//! |---|---|
//! | `ret` | `[]` or `[value]` |
//! | `br` | `[dest]` or `[cond, true_dest, false_dest]` |
//! | `switch` | `[value, default, (case_const, case_dest)*]` |
//! | `indirectbr` | `[address, dest*]` |
//! | `invoke` | `[callee, arg*, normal_dest, unwind_dest]` (`num_args` in attrs) |
//! | `callbr` | `[callee, arg*, fallthrough, indirect_dest*]` (`num_args`) |
//! | `call` | `[callee, arg*]` |
//! | binary ops | `[lhs, rhs]`; `fneg` takes `[value]` |
//! | `alloca` | `[]` or `[count]`; allocated type in attrs |
//! | `load` | `[pointer]` |
//! | `store` | `[value, pointer]` |
//! | `getelementptr` | `[base, index*]`; source element type in attrs |
//! | `cmpxchg` | `[pointer, expected, replacement]` |
//! | `atomicrmw` | `[pointer, value]`; operation in attrs |
//! | casts | `[value]` |
//! | `icmp`/`fcmp` | `[lhs, rhs]`; predicate in attrs |
//! | `phi` | `[(incoming_value, incoming_block)*]` flattened |
//! | `select` | `[cond, if_true, if_false]` |
//! | `extractelement` | `[vector, index]` |
//! | `insertelement` | `[vector, element, index]` |
//! | `shufflevector` | `[lhs, rhs]`; mask in `indices` |
//! | `extractvalue` | `[aggregate]`; path in `indices` |
//! | `insertvalue` | `[aggregate, value]`; path in `indices` |
//! | `freeze` | `[value]` |

use std::fmt;
use std::str::FromStr;

use crate::ctx::OpVec;
use crate::opcode::Opcode;
use crate::types::TypeId;
use crate::value::{BlockId, ValueRef};

macro_rules! str_enum {
    ($(#[$m:meta])* $name:ident { $($variant:ident => $text:literal),+ $(,)? }) => {
        $(#[$m])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum $name {
            $(#[doc = concat!("`", $text, "`")] $variant,)+
        }

        impl $name {
            /// All variants, in declaration order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// The textual keyword.
            pub const fn name(self) -> &'static str {
                match self { $($name::$variant => $text,)+ }
            }

            /// Index of the variant in [`Self::ALL`].
            pub fn as_index(self) -> u8 {
                Self::ALL.iter().position(|v| *v == self).unwrap() as u8
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.name())
            }
        }

        impl FromStr for $name {
            type Err = ();
            fn from_str(s: &str) -> Result<Self, ()> {
                match s { $($text => Ok($name::$variant),)+ _ => Err(()) }
            }
        }
    };
}

str_enum! {
    /// Integer comparison predicates for `icmp`.
    IntPredicate {
        Eq => "eq", Ne => "ne",
        Ugt => "ugt", Uge => "uge", Ult => "ult", Ule => "ule",
        Sgt => "sgt", Sge => "sge", Slt => "slt", Sle => "sle",
    }
}

str_enum! {
    /// Floating comparison predicates for `fcmp` (ordered subset plus the
    /// common unordered forms).
    FloatPredicate {
        Oeq => "oeq", Ogt => "ogt", Oge => "oge", Olt => "olt",
        Ole => "ole", One => "one", Ord => "ord",
        Ueq => "ueq", Une => "une", Uno => "uno",
        AlwaysFalse => "false", AlwaysTrue => "true",
    }
}

str_enum! {
    /// Atomic memory orderings.
    AtomicOrdering {
        NotAtomic => "notatomic",
        Unordered => "unordered",
        Monotonic => "monotonic",
        Acquire => "acquire",
        Release => "release",
        AcqRel => "acq_rel",
        SeqCst => "seq_cst",
    }
}

str_enum! {
    /// `atomicrmw` operations.
    RmwOp {
        Xchg => "xchg", Add => "add", Sub => "sub", And => "and",
        Or => "or", Xor => "xor", Max => "max", Min => "min",
        UMax => "umax", UMin => "umin",
    }
}

/// Attribute payload of an instruction: everything beyond opcode, result
/// type, and operand list. These are the "properties" that the paper's
/// sub-kind predicates (§3.3.1, Def. 3.1) read through bool/enum getters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstAttrs {
    /// `icmp` predicate.
    pub int_pred: Option<IntPredicate>,
    /// `fcmp` predicate.
    pub float_pred: Option<FloatPredicate>,
    /// Atomic ordering (`load`/`store`/`fence`/`cmpxchg`/`atomicrmw`).
    pub ordering: Option<AtomicOrdering>,
    /// `atomicrmw` operation.
    pub rmw_op: Option<RmwOp>,
    /// Explicit alignment in bytes (0 = natural).
    pub align: u32,
    /// `volatile` marker on memory operations.
    pub volatile: bool,
    /// `inbounds` marker on `getelementptr`.
    pub inbounds: bool,
    /// `nuw` flag on integer arithmetic.
    pub nuw: bool,
    /// `nsw` flag on integer arithmetic.
    pub nsw: bool,
    /// `exact` flag on division/shift.
    pub exact: bool,
    /// `tail` marker on calls.
    pub tail_call: bool,
    /// `cleanup` marker on `landingpad`.
    pub is_cleanup: bool,
    /// Allocated type of `alloca`.
    pub alloc_ty: Option<TypeId>,
    /// Source element type of `getelementptr` (and of `load`/`store`
    /// pointers in versions with explicit types).
    pub gep_source_ty: Option<TypeId>,
    /// Explicit callee function type (`call`/`invoke`/`callbr`); mandatory
    /// for builders of versions >= 9.0 (cf. Fig. 13).
    pub callee_ty: Option<TypeId>,
    /// Number of call arguments for `invoke`/`callbr`, which mix arguments
    /// and successor blocks in the operand list.
    pub num_args: u32,
    /// Constant index path (`extractvalue`/`insertvalue`) or shuffle mask
    /// (`shufflevector`).
    pub indices: Vec<u64>,
}

/// A single IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation performed.
    pub opcode: Opcode,
    /// The result type (`void` for instructions with no result).
    pub ty: TypeId,
    /// Operands, in the per-opcode order documented at the module level.
    ///
    /// Stored inline up to [`OpVec::INLINE`] entries; reads see a plain
    /// `[ValueRef]` slice through deref.
    pub operands: OpVec,
    /// Attribute payload.
    pub attrs: InstAttrs,
    /// Optional result name (purely cosmetic; `%N` numbering otherwise).
    pub name: Option<String>,
}

impl Instruction {
    /// Creates an instruction with default attributes.
    ///
    /// `operands` accepts an array (allocation-free, preferred on hot
    /// paths), a `Vec`, or an [`OpVec`].
    pub fn new(opcode: Opcode, ty: TypeId, operands: impl Into<OpVec>) -> Self {
        Instruction {
            opcode,
            ty,
            operands: operands.into(),
            attrs: InstAttrs::default(),
            name: None,
        }
    }

    /// The successor blocks of a terminator, in operand order.
    ///
    /// Returns an empty vector for non-terminators and for `ret`, `resume`,
    /// and `unreachable`.
    pub fn successors(&self) -> Vec<BlockId> {
        match self.opcode {
            Opcode::Br | Opcode::Switch | Opcode::IndirectBr | Opcode::CatchSwitch => {
                self.operands.iter().filter_map(|v| v.as_block()).collect()
            }
            Opcode::Invoke | Opcode::CallBr | Opcode::CatchRet | Opcode::CleanupRet => {
                self.operands.iter().filter_map(|v| v.as_block()).collect()
            }
            _ => Vec::new(),
        }
    }

    /// `true` for `br` with a single destination.
    pub fn is_unconditional_branch(&self) -> bool {
        self.opcode == Opcode::Br && self.operands.len() == 1
    }

    /// `true` for `ret` without a value.
    pub fn is_void_return(&self) -> bool {
        self.opcode == Opcode::Ret && self.operands.is_empty()
    }

    /// The callee operand of `call`/`invoke`/`callbr`.
    pub fn callee(&self) -> Option<ValueRef> {
        match self.opcode {
            Opcode::Call | Opcode::Invoke | Opcode::CallBr => self.operands.first().copied(),
            _ => None,
        }
    }

    /// The call arguments of `call`/`invoke`/`callbr`.
    pub fn call_args(&self) -> &[ValueRef] {
        match self.opcode {
            Opcode::Call => &self.operands[1..],
            Opcode::Invoke | Opcode::CallBr => {
                let n = self.attrs.num_args as usize;
                &self.operands[1..1 + n]
            }
            _ => &[],
        }
    }

    /// Incoming `(value, block)` pairs of a `phi`.
    pub fn phi_incoming(&self) -> Vec<(ValueRef, BlockId)> {
        if self.opcode != Opcode::Phi {
            return Vec::new();
        }
        self.operands
            .chunks(2)
            .filter_map(|c| match c {
                [v, b] => b.as_block().map(|b| (*v, b)),
                _ => None,
            })
            .collect()
    }

    /// `switch` cases as `(constant, destination)` pairs, excluding the
    /// default destination.
    pub fn switch_cases(&self) -> Vec<(ValueRef, BlockId)> {
        if self.opcode != Opcode::Switch || self.operands.len() < 2 {
            return Vec::new();
        }
        self.operands[2..]
            .chunks(2)
            .filter_map(|c| match c {
                [v, b] => b.as_block().map(|b| (*v, b)),
                _ => None,
            })
            .collect()
    }

    /// Whether any operand is a [`ValueRef::Placeholder`].
    pub fn has_placeholders(&self) -> bool {
        self.operands
            .iter()
            .any(|v| matches!(v, ValueRef::Placeholder(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeTable;

    fn i32_ty() -> (TypeTable, TypeId) {
        let mut t = TypeTable::new();
        let i = t.i32();
        (t, i)
    }

    #[test]
    fn branch_sub_kinds() {
        let (mut t, i32t) = i32_ty();
        let void = t.void();
        let i1 = t.i1();
        let uncond = Instruction::new(Opcode::Br, void, vec![ValueRef::Block(BlockId::new(0))]);
        assert!(uncond.is_unconditional_branch());
        assert_eq!(uncond.successors(), vec![BlockId::new(0)]);
        let cond = Instruction::new(
            Opcode::Br,
            void,
            vec![
                ValueRef::const_int(i1, 1),
                ValueRef::Block(BlockId::new(1)),
                ValueRef::Block(BlockId::new(2)),
            ],
        );
        assert!(!cond.is_unconditional_branch());
        assert_eq!(cond.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        let _ = i32t;
    }

    #[test]
    fn ret_sub_kinds() {
        let (mut t, i32t) = i32_ty();
        let void = t.void();
        let rv = Instruction::new(Opcode::Ret, void, vec![ValueRef::const_int(i32t, 3)]);
        assert!(!rv.is_void_return());
        let r = Instruction::new(Opcode::Ret, void, vec![]);
        assert!(r.is_void_return());
    }

    #[test]
    fn call_accessors() {
        let (mut t, i32t) = i32_ty();
        let void = t.void();
        let mut inv = Instruction::new(
            Opcode::Invoke,
            i32t,
            vec![
                ValueRef::Func(crate::value::FuncId::new(0)),
                ValueRef::const_int(i32t, 1),
                ValueRef::const_int(i32t, 2),
                ValueRef::Block(BlockId::new(3)),
                ValueRef::Block(BlockId::new(4)),
            ],
        );
        inv.attrs.num_args = 2;
        assert_eq!(inv.call_args().len(), 2);
        assert_eq!(inv.successors(), vec![BlockId::new(3), BlockId::new(4)]);
        assert!(inv.callee().is_some());
        let _ = void;
    }

    #[test]
    fn phi_pairs() {
        let (mut t, i32t) = i32_ty();
        let _ = &mut t;
        let phi = Instruction::new(
            Opcode::Phi,
            i32t,
            vec![
                ValueRef::const_int(i32t, 1),
                ValueRef::Block(BlockId::new(0)),
                ValueRef::const_int(i32t, 2),
                ValueRef::Block(BlockId::new(1)),
            ],
        );
        let inc = phi.phi_incoming();
        assert_eq!(inc.len(), 2);
        assert_eq!(inc[1].1, BlockId::new(1));
    }

    #[test]
    fn switch_cases_skip_default() {
        let (mut t, i32t) = i32_ty();
        let void = t.void();
        let sw = Instruction::new(
            Opcode::Switch,
            void,
            vec![
                ValueRef::const_int(i32t, 9),
                ValueRef::Block(BlockId::new(0)),
                ValueRef::const_int(i32t, 1),
                ValueRef::Block(BlockId::new(1)),
                ValueRef::const_int(i32t, 2),
                ValueRef::Block(BlockId::new(2)),
            ],
        );
        assert_eq!(sw.switch_cases().len(), 2);
        assert_eq!(sw.successors().len(), 3);
    }

    #[test]
    fn predicate_enums_roundtrip() {
        for p in IntPredicate::ALL {
            assert_eq!(p.name().parse::<IntPredicate>().unwrap(), *p);
        }
        for p in FloatPredicate::ALL {
            assert_eq!(p.name().parse::<FloatPredicate>().unwrap(), *p);
        }
        for o in RmwOp::ALL {
            assert_eq!(o.name().parse::<RmwOp>().unwrap(), *o);
        }
        assert_eq!(IntPredicate::Slt.as_index(), 8);
    }

    #[test]
    fn placeholders_detected() {
        let (_, i32t) = i32_ty();
        let mut i = Instruction::new(Opcode::Add, i32t, vec![ValueRef::Placeholder(7)]);
        assert!(i.has_placeholders());
        i.operands[0] = ValueRef::const_int(i32t, 0);
        assert!(!i.has_placeholders());
    }
}
