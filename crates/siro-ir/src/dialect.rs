//! Dialect-qualified version identity.
//!
//! The repo grew up with a single IR family, so "a version" and "a node in
//! the version graph" were the same thing: an [`IrVersion`]. With a second
//! dialect (the stack-machine WIR family in `siro-wir`) that identity is no
//! longer flat — `1.0` means something different in each family. A
//! [`DialectVersion`] is the `(dialect, version)` pair that routers, stores
//! and serve frames use whenever more than one family can be in play.
//!
//! Display is deliberately asymmetric: Siro versions keep printing as bare
//! `13.0` so every pre-dialect artifact — trace span details like
//! `13.0->3.6`, chain persist keys like `c13.0-t3.6-…`, store file names —
//! keeps its exact byte format. WIR versions print as `wir1.0` (no
//! separator, filename-safe). Parsing accepts both that compact form and an
//! explicit `wir:1.0` / `siro:13.0` qualified form.

use std::fmt;
use std::str::FromStr;

use crate::version::IrVersion;

/// An IR family understood by the toolchain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dialect {
    /// The register/SSA family defined by this crate ([`IrVersion`]).
    Siro,
    /// The stack-machine family defined by `siro-wir`.
    Wir,
}

impl Dialect {
    /// Short lowercase name, as used in qualified version strings.
    pub const fn name(self) -> &'static str {
        match self {
            Dialect::Siro => "siro",
            Dialect::Wir => "wir",
        }
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A version qualified by the dialect it belongs to.
///
/// Ordering sorts Siro versions before WIR versions and by `(major, minor)`
/// within a dialect, which keeps router tie-breaking deterministic.
///
/// # Examples
///
/// ```
/// use siro_ir::{Dialect, DialectVersion, IrVersion};
///
/// let s: DialectVersion = IrVersion::V13_0.into();
/// assert_eq!(s.to_string(), "13.0");
/// let w = DialectVersion::wir(1, 0);
/// assert_eq!(w.to_string(), "wir1.0");
/// assert_eq!("wir1.0".parse::<DialectVersion>().unwrap(), w);
/// assert_eq!("wir:1.0".parse::<DialectVersion>().unwrap(), w);
/// assert_eq!("13.0".parse::<DialectVersion>().unwrap(), s);
/// assert_eq!(s.as_siro(), Some(IrVersion::V13_0));
/// assert_eq!(w.as_siro(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DialectVersion {
    /// Which family the version numbers belong to.
    pub dialect: Dialect,
    /// Major component.
    pub major: u16,
    /// Minor component.
    pub minor: u16,
}

impl DialectVersion {
    /// A Siro-family version.
    pub const fn siro(major: u16, minor: u16) -> Self {
        DialectVersion {
            dialect: Dialect::Siro,
            major,
            minor,
        }
    }

    /// A WIR-family version.
    pub const fn wir(major: u16, minor: u16) -> Self {
        DialectVersion {
            dialect: Dialect::Wir,
            major,
            minor,
        }
    }

    /// The [`IrVersion`] this names, if it is a Siro-family version.
    pub fn as_siro(self) -> Option<IrVersion> {
        match self.dialect {
            Dialect::Siro => Some(IrVersion::new(self.major, self.minor)),
            Dialect::Wir => None,
        }
    }

    /// Whether both versions belong to the same family.
    pub fn same_dialect(self, other: DialectVersion) -> bool {
        self.dialect == other.dialect
    }
}

impl From<IrVersion> for DialectVersion {
    fn from(v: IrVersion) -> Self {
        DialectVersion::siro(v.major(), v.minor())
    }
}

impl fmt::Display for DialectVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dialect {
            Dialect::Siro => write!(f, "{}.{}", self.major, self.minor),
            Dialect::Wir => write!(f, "wir{}.{}", self.major, self.minor),
        }
    }
}

/// Error parsing a [`DialectVersion`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDialectVersionError(String);

impl fmt::Display for ParseDialectVersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dialect version `{}`", self.0)
    }
}

impl std::error::Error for ParseDialectVersionError {}

fn parse_numbers(s: &str) -> Option<(u16, u16)> {
    let (major, minor) = s.split_once('.')?;
    Some((major.parse().ok()?, minor.parse().ok()?))
}

impl FromStr for DialectVersion {
    type Err = ParseDialectVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseDialectVersionError(s.to_string());
        let (dialect, rest) =
            if let Some(rest) = s.strip_prefix("wir:").or_else(|| s.strip_prefix("wir")) {
                (Dialect::Wir, rest)
            } else if let Some(rest) = s.strip_prefix("siro:") {
                (Dialect::Siro, rest)
            } else {
                (Dialect::Siro, s)
            };
        let (major, minor) = parse_numbers(rest).ok_or_else(err)?;
        Ok(DialectVersion {
            dialect,
            major,
            minor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siro_display_is_byte_compatible_with_ir_version() {
        for v in IrVersion::CATALOG {
            let d: DialectVersion = v.into();
            assert_eq!(d.to_string(), v.to_string());
            assert_eq!(d.as_siro(), Some(v));
        }
    }

    #[test]
    fn wir_display_round_trips() {
        for (major, minor) in [(1, 0), (2, 0), (3, 0)] {
            let w = DialectVersion::wir(major, minor);
            assert_eq!(w.to_string().parse::<DialectVersion>().unwrap(), w);
        }
    }

    #[test]
    fn qualified_forms_parse() {
        assert_eq!(
            "siro:13.0".parse::<DialectVersion>().unwrap(),
            DialectVersion::siro(13, 0)
        );
        assert_eq!(
            "wir:2.0".parse::<DialectVersion>().unwrap(),
            DialectVersion::wir(2, 0)
        );
        assert!("wir".parse::<DialectVersion>().is_err());
        assert!("bogus:1.0".parse::<DialectVersion>().is_err());
        assert!("1".parse::<DialectVersion>().is_err());
    }

    #[test]
    fn ordering_groups_by_dialect_then_version() {
        let mut vs = vec![
            DialectVersion::wir(1, 0),
            DialectVersion::siro(13, 0),
            DialectVersion::wir(3, 0),
            DialectVersion::siro(3, 6),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                DialectVersion::siro(3, 6),
                DialectVersion::siro(13, 0),
                DialectVersion::wir(1, 0),
                DialectVersion::wir(3, 0),
            ]
        );
    }
}
