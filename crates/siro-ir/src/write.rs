//! The IR Writer ("write an in-memory IR program into a persisted one",
//! Tab. 2).
//!
//! The textual format is a faithful subset of LLVM assembly and — crucially
//! for the paper's *text incompatibility* (§3.1) — changes with the module's
//! [`IrVersion`]:
//!
//! * `< 3.7`: `load i32* %p` / `getelementptr i32* %p, ...` (no explicit
//!   result/source element type);
//! * `>= 3.7`: `load i32, i32* %p` / `getelementptr i32, i32* %p, ...`;
//! * `>= 15.0`: pointers print as opaque `ptr`.
//!
//! The writer streams every fragment straight into one pre-sized output
//! buffer: no per-instruction `format!` temporaries, no `Vec<String>` joins.
//! A whole-module serialization performs O(1) allocator calls (the buffer
//! plus the dense value-numbering scratch vector), which matters because
//! serialization sits on the per-request hot path of the serving tier.

use std::fmt::Write as _;

use crate::inst::Instruction;
use crate::module::{Function, GlobalInit, Module};
use crate::opcode::Opcode;
use crate::types::TypeId;
use crate::value::{BlockId, ValueRef};
use crate::version::IrVersion;

/// Serializes `module` into its version's textual format.
pub fn write_module(module: &Module) -> String {
    // Pre-size the buffer from the instruction count so the common case is a
    // single allocation (plus the numbering scratch vector).
    let mut est = 256 + module.globals.len() * 48;
    for f in &module.funcs {
        est += 96 + f.insts.len() * 48;
    }
    let mut w = Writer {
        m: module,
        v: module.version,
        out: String::with_capacity(est),
        value_numbers: Vec::new(),
    };
    w.module();
    w.out
}

struct Writer<'a> {
    m: &'a Module,
    v: IrVersion,
    out: String,
    /// Dense result numbering of the current function, indexed by arena
    /// slot (arena ids can have gaps after transformations; the textual
    /// form always numbers densely). `u32::MAX` marks "no number".
    value_numbers: Vec<u32>,
}

const UNNUMBERED: u32 = u32::MAX;

impl Writer<'_> {
    fn module(&mut self) {
        let _ = writeln!(self.out, "; ModuleID = '{}'", self.m.name);
        let _ = writeln!(self.out, "; IR version {}", self.v);
        if !self.m.globals.is_empty() {
            self.out.push('\n');
        }
        for g in &self.m.globals {
            let kw = if g.is_const { "constant" } else { "global" };
            let _ = write!(self.out, "@{} = ", g.name);
            match &g.init {
                GlobalInit::External => {
                    let _ = write!(self.out, "external {kw} ");
                    self.ty(g.ty);
                }
                GlobalInit::Zero => {
                    let _ = write!(self.out, "{kw} ");
                    self.ty(g.ty);
                    self.out.push_str(" zeroinitializer");
                }
                GlobalInit::Int(v) => {
                    let _ = write!(self.out, "{kw} ");
                    self.ty(g.ty);
                    let _ = write!(self.out, " {v}");
                }
                GlobalInit::Float(v) => {
                    let _ = write!(self.out, "{kw} ");
                    self.ty(g.ty);
                    let _ = write!(self.out, " 0x{:016x}", v.to_bits());
                }
                GlobalInit::Bytes(bs) => {
                    let _ = write!(self.out, "{kw} ");
                    self.ty(g.ty);
                    self.out.push_str(" c\"");
                    for b in bs {
                        let _ = write!(self.out, "\\{b:02x}");
                    }
                    self.out.push('"');
                }
            }
            self.out.push('\n');
        }
        for f in &self.m.funcs {
            self.out.push('\n');
            if f.is_external {
                self.declare(f);
            } else {
                self.define(f);
            }
        }
    }

    fn ty(&mut self, t: TypeId) {
        if self.v.opaque_pointers_in_text() {
            let _ = write!(self.out, "{}", self.m.types.display_opaque(t));
        } else {
            let _ = write!(self.out, "{}", self.m.types.display(t));
        }
    }

    /// A type that must stay transparent even under opaque pointers (the
    /// pointer operand of pre-3.7 `load`/`gep`, which carries the element
    /// type).
    fn ty_typed(&mut self, t: TypeId) {
        let _ = write!(self.out, "{}", self.m.types.display(t));
    }

    fn params(&mut self, f: &Function) {
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.ty(p.ty);
            if p.name.is_empty() {
                let _ = write!(self.out, " %arg{i}");
            } else {
                let _ = write!(self.out, " %{}", p.name);
            }
        }
        if f.varargs {
            if !f.params.is_empty() {
                self.out.push_str(", ");
            }
            self.out.push_str("...");
        }
    }

    fn declare(&mut self, f: &Function) {
        self.out.push_str("declare ");
        self.ty(f.ret_ty);
        let _ = write!(self.out, " @{}(", f.name);
        self.params(f);
        self.out.push_str(")\n");
    }

    fn define(&mut self, f: &Function) {
        // Assign dense value numbers in layout order.
        self.value_numbers.clear();
        self.value_numbers.resize(f.insts.len(), UNNUMBERED);
        let mut n = 0u32;
        for block in &f.blocks {
            for &iid in &block.insts {
                let inst = f.inst(iid);
                if !matches!(self.m.types.get(inst.ty), crate::types::Type::Void) {
                    self.value_numbers[iid.index()] = n;
                    n += 1;
                }
            }
        }
        self.out.push_str("define ");
        self.ty(f.ret_ty);
        let _ = write!(self.out, " @{}(", f.name);
        self.params(f);
        self.out.push_str(") {\n");
        for (bi, block) in f.blocks.iter().enumerate() {
            if bi > 0 {
                self.out.push('\n');
            }
            self.label(f, BlockId::new(bi as u32));
            self.out.push_str(":\n");
            for &iid in &block.insts {
                let inst = f.inst(iid);
                // Anything with a non-void type carries a result — including
                // the result-producing terminators `invoke` and `callbr`.
                let has_result = !matches!(self.m.types.get(inst.ty), crate::types::Type::Void);
                if has_result {
                    let num = self
                        .value_numbers
                        .get(iid.index())
                        .copied()
                        .filter(|&x| x != UNNUMBERED)
                        .map(|x| x as usize)
                        .unwrap_or(iid.index());
                    let _ = write!(self.out, "  %t{num} = ");
                } else {
                    self.out.push_str("  ");
                }
                self.inst(f, inst);
                self.out.push('\n');
            }
        }
        self.out.push_str("}\n");
    }

    fn val(&mut self, f: &Function, v: ValueRef) {
        match v {
            ValueRef::Inst(i) => {
                let num = self
                    .value_numbers
                    .get(i.index())
                    .copied()
                    .filter(|&x| x != UNNUMBERED)
                    .map(|x| x as usize)
                    .unwrap_or(i.index());
                let _ = write!(self.out, "%t{num}");
            }
            ValueRef::Arg(a) => {
                let p = &f.params[a as usize];
                if p.name.is_empty() {
                    let _ = write!(self.out, "%arg{a}");
                } else {
                    let _ = write!(self.out, "%{}", p.name);
                }
            }
            ValueRef::Global(g) => {
                let _ = write!(self.out, "@{}", self.m.global(g).name);
            }
            ValueRef::Func(fid) => {
                let _ = write!(self.out, "@{}", self.m.func(fid).name);
            }
            ValueRef::Block(b) => {
                self.out.push('%');
                self.label(f, b);
            }
            ValueRef::ConstInt { value, .. } => {
                let _ = write!(self.out, "{value}");
            }
            ValueRef::ConstFloat { bits, .. } => {
                let _ = write!(self.out, "0x{bits:016x}");
            }
            ValueRef::Null(_) => self.out.push_str("null"),
            ValueRef::Undef(_) => self.out.push_str("undef"),
            ValueRef::ZeroInit(_) => self.out.push_str("zeroinitializer"),
            ValueRef::InlineAsm(_) => self.out.push_str("<asm>"),
            ValueRef::Placeholder(k) => {
                let _ = write!(self.out, "<placeholder:{k}>");
            }
        }
    }

    /// Renders the operand's static type (the type half of [`Self::tval`]).
    fn val_ty(&mut self, f: &Function, v: ValueRef) {
        match self.m.value_type(f, v) {
            Some(t) => self.ty(t),
            None => self.pointer_ish_type(v),
        }
    }

    /// Like [`Self::val_ty`] but keeps pointers transparent (pre-3.7 forms).
    fn val_ty_typed(&mut self, f: &Function, v: ValueRef) {
        match self.m.value_type(f, v) {
            Some(t) => self.ty_typed(t),
            None => self.pointer_ish_type(v),
        }
    }

    /// Renders `ty value` with the operand's static type.
    fn tval(&mut self, f: &Function, v: ValueRef) {
        self.val_ty(f, v);
        self.out.push(' ');
        self.val(f, v);
    }

    fn pointer_ish_type(&mut self, v: ValueRef) {
        match v {
            ValueRef::Global(g) => {
                let t = self.m.global(g).ty;
                if self.v.opaque_pointers_in_text() {
                    self.out.push_str("ptr");
                } else {
                    let _ = write!(self.out, "{}*", self.m.types.display(t));
                }
            }
            ValueRef::Func(_) => {
                if self.v.opaque_pointers_in_text() {
                    self.out.push_str("ptr");
                } else {
                    self.out.push_str("void ()*");
                }
            }
            _ => self.out.push_str("i64"),
        }
    }

    /// Renders `label %dest` for each of `dests`, comma-separated.
    fn labels(&mut self, f: &Function, dests: &[ValueRef]) {
        for (i, v) in dests.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.out.push_str("label ");
            self.val(f, *v);
        }
    }

    /// Renders each of `args` as `ty value`, comma-separated.
    fn tvals(&mut self, f: &Function, args: &[ValueRef]) {
        for (i, v) in args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.tval(f, *v);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn inst(&mut self, f: &Function, inst: &Instruction) {
        use Opcode::*;
        let ops = &inst.operands;
        match inst.opcode {
            Ret => {
                if ops.is_empty() {
                    self.out.push_str("ret void");
                } else {
                    self.out.push_str("ret ");
                    self.tval(f, ops[0]);
                }
            }
            Br => {
                if ops.len() == 1 {
                    self.out.push_str("br label ");
                    self.val(f, ops[0]);
                } else {
                    self.out.push_str("br i1 ");
                    self.val(f, ops[0]);
                    self.out.push_str(", label ");
                    self.val(f, ops[1]);
                    self.out.push_str(", label ");
                    self.val(f, ops[2]);
                }
            }
            Switch => {
                self.out.push_str("switch ");
                self.tval(f, ops[0]);
                self.out.push_str(", label ");
                self.val(f, ops[1]);
                self.out.push_str(" [");
                for pair in ops[2..].chunks(2) {
                    self.out.push(' ');
                    self.tval(f, pair[0]);
                    self.out.push_str(", label ");
                    self.val(f, pair[1]);
                }
                self.out.push_str(" ]");
            }
            IndirectBr => {
                self.out.push_str("indirectbr ");
                self.tval(f, ops[0]);
                self.out.push_str(", [");
                self.labels(f, &ops[1..]);
                self.out.push(']');
            }
            Invoke => {
                let n = inst.attrs.num_args as usize;
                self.out.push_str("invoke ");
                self.ty(inst.ty);
                self.out.push(' ');
                self.val(f, ops[0]);
                self.out.push('(');
                self.tvals(f, &ops[1..1 + n]);
                self.out.push_str(") to label ");
                self.val(f, ops[1 + n]);
                self.out.push_str(" unwind label ");
                self.val(f, ops[2 + n]);
            }
            CallBr => {
                let n = inst.attrs.num_args as usize;
                self.out.push_str("callbr ");
                self.ty(inst.ty);
                self.out.push(' ');
                self.callee_text(f, ops[0]);
                self.out.push('(');
                self.tvals(f, &ops[1..1 + n]);
                self.out.push_str(") to label ");
                self.val(f, ops[1 + n]);
                self.out.push_str(" [");
                self.labels(f, &ops[2 + n..]);
                self.out.push(']');
            }
            Call => {
                if inst.attrs.tail_call {
                    self.out.push_str("tail ");
                }
                self.out.push_str("call ");
                self.ty(inst.ty);
                self.out.push(' ');
                self.callee_text(f, ops[0]);
                self.out.push('(');
                self.tvals(f, &ops[1..]);
                self.out.push(')');
            }
            Resume => {
                self.out.push_str("resume ");
                self.tval(f, ops[0]);
            }
            Unreachable => self.out.push_str("unreachable"),
            Add | Sub | Mul | UDiv | SDiv | URem | SRem | Shl | LShr | AShr | And | Or | Xor
            | FAdd | FSub | FMul | FDiv | FRem => {
                let _ = write!(self.out, "{} ", inst.opcode);
                if inst.attrs.nuw {
                    self.out.push_str("nuw ");
                }
                if inst.attrs.nsw {
                    self.out.push_str("nsw ");
                }
                if inst.attrs.exact {
                    self.out.push_str("exact ");
                }
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.val(f, ops[1]);
            }
            FNeg => {
                self.out.push_str("fneg ");
                self.tval(f, ops[0]);
            }
            Alloca => {
                self.out.push_str("alloca ");
                self.ty(inst.attrs.alloc_ty.unwrap_or(inst.ty));
                if let Some(&c) = ops.first() {
                    self.out.push_str(", ");
                    self.tval(f, c);
                }
            }
            Load => {
                self.out.push_str("load ");
                if inst.attrs.volatile {
                    self.out.push_str("volatile ");
                }
                if self.v.explicit_load_type_in_text() {
                    self.ty(inst.ty);
                    self.out.push_str(", ");
                    self.val_ty(f, ops[0]);
                    self.out.push(' ');
                    self.val(f, ops[0]);
                } else {
                    // Old style: the element type rides on the pointer type,
                    // which therefore must stay transparent.
                    self.val_ty_typed(f, ops[0]);
                    self.out.push(' ');
                    self.val(f, ops[0]);
                }
            }
            Store => {
                self.out.push_str("store ");
                if inst.attrs.volatile {
                    self.out.push_str("volatile ");
                }
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.tval(f, ops[1]);
            }
            GetElementPtr => {
                self.out.push_str("getelementptr ");
                if inst.attrs.inbounds {
                    self.out.push_str("inbounds ");
                }
                if self.v.explicit_load_type_in_text() {
                    self.ty(inst.attrs.gep_source_ty.unwrap_or(inst.ty));
                    self.out.push_str(", ");
                    self.tval(f, ops[0]);
                    self.out.push_str(", ");
                    self.tvals(f, &ops[1..]);
                } else {
                    self.val_ty_typed(f, ops[0]);
                    self.out.push(' ');
                    self.val(f, ops[0]);
                    self.out.push_str(", ");
                    self.tvals(f, &ops[1..]);
                }
            }
            Fence => {
                let _ = write!(
                    self.out,
                    "fence {}",
                    inst.attrs
                        .ordering
                        .unwrap_or(crate::inst::AtomicOrdering::SeqCst)
                );
            }
            CmpXchg => {
                self.out.push_str("cmpxchg ");
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.tval(f, ops[1]);
                self.out.push_str(", ");
                self.tval(f, ops[2]);
                self.out.push_str(" seq_cst seq_cst");
            }
            AtomicRmw => {
                let _ = write!(
                    self.out,
                    "atomicrmw {} ",
                    inst.attrs.rmw_op.map(|o| o.name()).unwrap_or("xchg")
                );
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.tval(f, ops[1]);
                self.out.push_str(" seq_cst");
            }
            Trunc | ZExt | SExt | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP
            | PtrToInt | IntToPtr | BitCast | AddrSpaceCast => {
                let _ = write!(self.out, "{} ", inst.opcode);
                self.tval(f, ops[0]);
                self.out.push_str(" to ");
                self.ty(inst.ty);
            }
            ICmp => {
                let _ = write!(
                    self.out,
                    "icmp {} ",
                    inst.attrs.int_pred.map(|p| p.name()).unwrap_or("eq")
                );
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.val(f, ops[1]);
            }
            FCmp => {
                let _ = write!(
                    self.out,
                    "fcmp {} ",
                    inst.attrs.float_pred.map(|p| p.name()).unwrap_or("oeq")
                );
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.val(f, ops[1]);
            }
            Phi => {
                self.out.push_str("phi ");
                self.ty(inst.ty);
                self.out.push(' ');
                for (i, c) in ops.chunks(2).enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.out.push_str("[ ");
                    self.val(f, c[0]);
                    self.out.push_str(", ");
                    self.val(f, c[1]);
                    self.out.push_str(" ]");
                }
            }
            Select => {
                self.out.push_str("select ");
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.tval(f, ops[1]);
                self.out.push_str(", ");
                self.tval(f, ops[2]);
            }
            VAArg => {
                self.out.push_str("va_arg ");
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.ty(inst.ty);
            }
            ExtractElement => {
                self.out.push_str("extractelement ");
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.tval(f, ops[1]);
            }
            InsertElement => {
                self.out.push_str("insertelement ");
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.tval(f, ops[1]);
                self.out.push_str(", ");
                self.tval(f, ops[2]);
            }
            ShuffleVector => {
                self.out.push_str("shufflevector ");
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.tval(f, ops[1]);
                self.out.push_str(", mask <");
                self.indices(inst);
                self.out.push('>');
            }
            ExtractValue => {
                self.out.push_str("extractvalue ");
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.indices(inst);
                self.out.push_str(" : ");
                self.ty(inst.ty);
            }
            InsertValue => {
                self.out.push_str("insertvalue ");
                self.tval(f, ops[0]);
                self.out.push_str(", ");
                self.tval(f, ops[1]);
                self.out.push_str(", ");
                self.indices(inst);
            }
            LandingPad => {
                self.out.push_str("landingpad ");
                self.ty(inst.ty);
                if inst.attrs.is_cleanup {
                    self.out.push_str(" cleanup");
                }
            }
            Freeze => {
                self.out.push_str("freeze ");
                self.tval(f, ops[0]);
            }
            CatchSwitch => {
                self.out.push_str("catchswitch [");
                let mut first = true;
                for v in ops.iter().filter(|v| v.is_block()) {
                    if !first {
                        self.out.push_str(", ");
                    }
                    first = false;
                    self.out.push_str("label ");
                    self.val(f, *v);
                }
                self.out.push(']');
            }
            CatchPad => self.out.push_str("catchpad"),
            CatchRet => {
                self.out.push_str("catchret label ");
                self.val(f, ops[0]);
            }
            CleanupPad => self.out.push_str("cleanuppad"),
            CleanupRet => {
                self.out.push_str("cleanupret label ");
                self.val(f, ops[0]);
            }
        }
    }

    /// Renders `inst.attrs.indices` comma-separated.
    fn indices(&mut self, inst: &Instruction) {
        for (i, ix) in inst.attrs.indices.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{ix}");
        }
    }

    fn callee_text(&mut self, f: &Function, callee: ValueRef) {
        match callee {
            ValueRef::InlineAsm(a) => {
                let asm = self.m.asm(a);
                let _ = write!(
                    self.out,
                    "asm \"{}\", \"{}\" hwlevel {}",
                    asm.text, asm.constraints, asm.hw_level
                );
            }
            other => self.val(f, other),
        }
    }

    /// Streams the label of `block` (same text as [`block_label`]).
    fn label(&mut self, f: &Function, block: BlockId) {
        let b = f.block(block);
        if b.name.is_empty() {
            let _ = write!(self.out, "bb{}", block.raw());
        } else {
            let _ = write!(self.out, "{}.{}", b.name, block.raw());
        }
    }
}

/// The textual label used for `block` inside `f`.
pub fn block_label(f: &Function, block: BlockId) -> String {
    let b = f.block(block);
    if b.name.is_empty() {
        format!("bb{}", block.raw())
    } else {
        format!("{}.{}", b.name, block.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{Global, Module};
    use crate::version::IrVersion;

    fn sample(version: IrVersion) -> Module {
        let mut m = Module::new("sample", version);
        let i32t = m.types.i32();
        m.add_global(Global {
            name: "g".into(),
            ty: i32t,
            init: GlobalInit::Int(5),
            is_const: false,
        });
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let p = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 7), p);
        let v = b.load(i32t, p);
        b.ret(Some(v));
        m
    }

    #[test]
    fn old_load_syntax_before_3_7() {
        let text = write_module(&sample(IrVersion::V3_6));
        assert!(text.contains("load i32* %t0"), "{text}");
        assert!(!text.contains("load i32, "));
    }

    #[test]
    fn new_load_syntax_since_3_7() {
        let text = write_module(&sample(IrVersion::V13_0));
        assert!(text.contains("load i32, i32* %t0"), "{text}");
    }

    #[test]
    fn opaque_pointers_since_15() {
        let text = write_module(&sample(IrVersion::V15_0));
        assert!(text.contains("load i32, ptr %t0"), "{text}");
        assert!(!text.contains("i32*"), "{text}");
    }

    #[test]
    fn globals_and_header_present() {
        let text = write_module(&sample(IrVersion::V13_0));
        assert!(text.contains("; IR version 13.0"));
        assert!(text.contains("@g = global i32 5"));
        assert!(text.contains("define i32 @main()"));
    }

    #[test]
    fn branch_and_phi_render() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let t = b.add_block("then");
        b.position_at_end(e);
        let c = b.icmp(
            crate::inst::IntPredicate::Eq,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 1),
        );
        b.cond_br(c, t, t);
        b.position_at_end(t);
        let p = b.phi(i32t, vec![(ValueRef::const_int(i32t, 3), e)]);
        b.ret(Some(p));
        let text = write_module(&m);
        assert!(
            text.contains("br i1 %t0, label %then.1, label %then.1"),
            "{text}"
        );
        assert!(text.contains("phi i32 [ 3, %entry.0 ]"), "{text}");
    }
}
