//! The IR Writer ("write an in-memory IR program into a persisted one",
//! Tab. 2).
//!
//! The textual format is a faithful subset of LLVM assembly and — crucially
//! for the paper's *text incompatibility* (§3.1) — changes with the module's
//! [`IrVersion`]:
//!
//! * `< 3.7`: `load i32* %p` / `getelementptr i32* %p, ...` (no explicit
//!   result/source element type);
//! * `>= 3.7`: `load i32, i32* %p` / `getelementptr i32, i32* %p, ...`;
//! * `>= 15.0`: pointers print as opaque `ptr`.

use std::fmt::Write as _;

use crate::inst::Instruction;
use crate::module::{Function, GlobalInit, Module};
use crate::opcode::Opcode;
use crate::types::TypeId;
use crate::value::{BlockId, ValueRef};
use crate::version::IrVersion;

/// Serializes `module` into its version's textual format.
pub fn write_module(module: &Module) -> String {
    let mut w = Writer {
        m: module,
        v: module.version,
        out: String::new(),
        value_numbers: std::collections::HashMap::new(),
    };
    w.module();
    w.out
}

struct Writer<'a> {
    m: &'a Module,
    v: IrVersion,
    out: String,
    /// Dense result numbering of the current function (arena ids can have
    /// gaps after transformations; the textual form always numbers densely).
    value_numbers: std::collections::HashMap<crate::value::InstId, usize>,
}

impl Writer<'_> {
    fn module(&mut self) {
        let _ = writeln!(self.out, "; ModuleID = '{}'", self.m.name);
        let _ = writeln!(self.out, "; IR version {}", self.v);
        if !self.m.globals.is_empty() {
            self.out.push('\n');
        }
        for g in &self.m.globals {
            let kw = if g.is_const { "constant" } else { "global" };
            let ty = self.ty(g.ty);
            match &g.init {
                GlobalInit::External => {
                    let _ = writeln!(self.out, "@{} = external {kw} {ty}", g.name);
                }
                GlobalInit::Zero => {
                    let _ = writeln!(self.out, "@{} = {kw} {ty} zeroinitializer", g.name);
                }
                GlobalInit::Int(v) => {
                    let _ = writeln!(self.out, "@{} = {kw} {ty} {v}", g.name);
                }
                GlobalInit::Float(v) => {
                    let _ = writeln!(self.out, "@{} = {kw} {ty} 0x{:016x}", g.name, v.to_bits());
                }
                GlobalInit::Bytes(bs) => {
                    let hex: String = bs.iter().map(|b| format!("\\{b:02x}")).collect();
                    let _ = writeln!(self.out, "@{} = {kw} {ty} c\"{hex}\"", g.name);
                }
            }
        }
        for f in &self.m.funcs {
            self.out.push('\n');
            if f.is_external {
                self.declare(f);
            } else {
                self.define(f);
            }
        }
    }

    fn ty(&self, t: TypeId) -> String {
        if self.v.opaque_pointers_in_text() {
            self.m.types.display_opaque(t).to_string()
        } else {
            self.m.types.display(t).to_string()
        }
    }

    /// A type that must stay transparent even under opaque pointers (the
    /// pointer operand of pre-3.7 `load`/`gep`, which carries the element
    /// type).
    fn ty_typed(&self, t: TypeId) -> String {
        self.m.types.display(t).to_string()
    }

    fn params(&self, f: &Function) -> String {
        let mut s = String::new();
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let name = if p.name.is_empty() {
                format!("arg{i}")
            } else {
                p.name.clone()
            };
            let _ = write!(s, "{} %{}", self.ty(p.ty), name);
        }
        if f.varargs {
            if !f.params.is_empty() {
                s.push_str(", ");
            }
            s.push_str("...");
        }
        s
    }

    fn declare(&mut self, f: &Function) {
        let _ = writeln!(
            self.out,
            "declare {} @{}({})",
            self.ty(f.ret_ty),
            f.name,
            self.params(f)
        );
    }

    fn define(&mut self, f: &Function) {
        // Assign dense value numbers in layout order.
        self.value_numbers.clear();
        let mut n = 0usize;
        for block in &f.blocks {
            for &iid in &block.insts {
                let inst = f.inst(iid);
                if !matches!(self.m.types.get(inst.ty), crate::types::Type::Void) {
                    self.value_numbers.insert(iid, n);
                    n += 1;
                }
            }
        }
        let _ = writeln!(
            self.out,
            "define {} @{}({}) {{",
            self.ty(f.ret_ty),
            f.name,
            self.params(f)
        );
        for (bi, block) in f.blocks.iter().enumerate() {
            if bi > 0 {
                self.out.push('\n');
            }
            let _ = writeln!(self.out, "{}:", block_label(f, BlockId(bi as u32)));
            for &iid in &block.insts {
                let inst = f.inst(iid);
                let text = self.inst(f, inst);
                // Anything with a non-void type carries a result — including
                // the result-producing terminators `invoke` and `callbr`.
                let has_result = !matches!(self.m.types.get(inst.ty), crate::types::Type::Void);
                if has_result {
                    let num = self
                        .value_numbers
                        .get(&iid)
                        .copied()
                        .unwrap_or(iid.0 as usize);
                    let _ = writeln!(self.out, "  %t{num} = {text}");
                } else {
                    let _ = writeln!(self.out, "  {text}");
                }
            }
        }
        self.out.push_str("}\n");
    }

    fn val(&self, f: &Function, v: ValueRef) -> String {
        match v {
            ValueRef::Inst(i) => {
                let num = self.value_numbers.get(&i).copied().unwrap_or(i.0 as usize);
                format!("%t{num}")
            }
            ValueRef::Arg(a) => {
                let p = &f.params[a as usize];
                if p.name.is_empty() {
                    format!("%arg{a}")
                } else {
                    format!("%{}", p.name)
                }
            }
            ValueRef::Global(g) => format!("@{}", self.m.global(g).name),
            ValueRef::Func(fid) => format!("@{}", self.m.func(fid).name),
            ValueRef::Block(b) => format!("%{}", block_label(f, b)),
            ValueRef::ConstInt { value, .. } => value.to_string(),
            ValueRef::ConstFloat { bits, .. } => format!("0x{bits:016x}"),
            ValueRef::Null(_) => "null".into(),
            ValueRef::Undef(_) => "undef".into(),
            ValueRef::ZeroInit(_) => "zeroinitializer".into(),
            ValueRef::InlineAsm(_) => "<asm>".into(),
            ValueRef::Placeholder(k) => format!("<placeholder:{k}>"),
        }
    }

    /// Renders `ty value` with the operand's static type.
    fn tval(&self, f: &Function, v: ValueRef) -> String {
        let ty = self
            .m
            .value_type(f, v)
            .map(|t| self.ty(t))
            .unwrap_or_else(|| self.pointer_ish_type(v));
        format!("{ty} {}", self.val(f, v))
    }

    fn pointer_ish_type(&self, v: ValueRef) -> String {
        match v {
            ValueRef::Global(g) => {
                let t = self.m.global(g).ty;
                if self.v.opaque_pointers_in_text() {
                    "ptr".into()
                } else {
                    format!("{}*", self.m.types.display(t))
                }
            }
            ValueRef::Func(_) => {
                if self.v.opaque_pointers_in_text() {
                    "ptr".into()
                } else {
                    "void ()*".into()
                }
            }
            _ => "i64".into(),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn inst(&self, f: &Function, inst: &Instruction) -> String {
        use Opcode::*;
        let ops = &inst.operands;
        match inst.opcode {
            Ret => {
                if ops.is_empty() {
                    "ret void".into()
                } else {
                    format!("ret {}", self.tval(f, ops[0]))
                }
            }
            Br => {
                if ops.len() == 1 {
                    format!("br label {}", self.val(f, ops[0]))
                } else {
                    format!(
                        "br i1 {}, label {}, label {}",
                        self.val(f, ops[0]),
                        self.val(f, ops[1]),
                        self.val(f, ops[2])
                    )
                }
            }
            Switch => {
                let mut s = format!(
                    "switch {}, label {} [",
                    self.tval(f, ops[0]),
                    self.val(f, ops[1])
                );
                for pair in ops[2..].chunks(2) {
                    let _ = write!(
                        s,
                        " {}, label {}",
                        self.tval(f, pair[0]),
                        self.val(f, pair[1])
                    );
                }
                s.push_str(" ]");
                s
            }
            IndirectBr => {
                let dests: Vec<String> = ops[1..]
                    .iter()
                    .map(|v| format!("label {}", self.val(f, *v)))
                    .collect();
                format!(
                    "indirectbr {}, [{}]",
                    self.tval(f, ops[0]),
                    dests.join(", ")
                )
            }
            Invoke => {
                let n = inst.attrs.num_args as usize;
                let args: Vec<String> = ops[1..1 + n].iter().map(|v| self.tval(f, *v)).collect();
                format!(
                    "invoke {} {}({}) to label {} unwind label {}",
                    self.ty(inst.ty),
                    self.val(f, ops[0]),
                    args.join(", "),
                    self.val(f, ops[1 + n]),
                    self.val(f, ops[2 + n]),
                )
            }
            CallBr => {
                let n = inst.attrs.num_args as usize;
                let args: Vec<String> = ops[1..1 + n].iter().map(|v| self.tval(f, *v)).collect();
                let indirect: Vec<String> = ops[2 + n..]
                    .iter()
                    .map(|v| format!("label {}", self.val(f, *v)))
                    .collect();
                format!(
                    "callbr {} {}({}) to label {} [{}]",
                    self.ty(inst.ty),
                    self.callee_text(f, ops[0]),
                    args.join(", "),
                    self.val(f, ops[1 + n]),
                    indirect.join(", ")
                )
            }
            Call => {
                let args: Vec<String> = ops[1..].iter().map(|v| self.tval(f, *v)).collect();
                let tail = if inst.attrs.tail_call { "tail " } else { "" };
                format!(
                    "{tail}call {} {}({})",
                    self.ty(inst.ty),
                    self.callee_text(f, ops[0]),
                    args.join(", ")
                )
            }
            Resume => format!("resume {}", self.tval(f, ops[0])),
            Unreachable => "unreachable".into(),
            Add | Sub | Mul | UDiv | SDiv | URem | SRem | Shl | LShr | AShr | And | Or | Xor
            | FAdd | FSub | FMul | FDiv | FRem => {
                let mut flags = String::new();
                if inst.attrs.nuw {
                    flags.push_str("nuw ");
                }
                if inst.attrs.nsw {
                    flags.push_str("nsw ");
                }
                if inst.attrs.exact {
                    flags.push_str("exact ");
                }
                format!(
                    "{} {flags}{}, {}",
                    inst.opcode,
                    self.tval(f, ops[0]),
                    self.val(f, ops[1])
                )
            }
            FNeg => format!("fneg {}", self.tval(f, ops[0])),
            Alloca => {
                let ty = self.ty(inst.attrs.alloc_ty.unwrap_or(inst.ty));
                if let Some(&c) = ops.first() {
                    format!("alloca {ty}, {}", self.tval(f, c))
                } else {
                    format!("alloca {ty}")
                }
            }
            Load => {
                let vol = if inst.attrs.volatile { "volatile " } else { "" };
                let ptr_ty = self
                    .m
                    .value_type(f, ops[0])
                    .map(|t| self.ty(t))
                    .unwrap_or_else(|| self.pointer_ish_type(ops[0]));
                if self.v.explicit_load_type_in_text() {
                    format!(
                        "load {vol}{}, {ptr_ty} {}",
                        self.ty(inst.ty),
                        self.val(f, ops[0])
                    )
                } else {
                    // Old style: the element type rides on the pointer type,
                    // which therefore must stay transparent.
                    let ptr_ty = self
                        .m
                        .value_type(f, ops[0])
                        .map(|t| self.ty_typed(t))
                        .unwrap_or_else(|| self.pointer_ish_type(ops[0]));
                    format!("load {vol}{ptr_ty} {}", self.val(f, ops[0]))
                }
            }
            Store => {
                let vol = if inst.attrs.volatile { "volatile " } else { "" };
                format!(
                    "store {vol}{}, {}",
                    self.tval(f, ops[0]),
                    self.tval(f, ops[1])
                )
            }
            GetElementPtr => {
                let inb = if inst.attrs.inbounds { "inbounds " } else { "" };
                let idx: Vec<String> = ops[1..].iter().map(|v| self.tval(f, *v)).collect();
                if self.v.explicit_load_type_in_text() {
                    let src = self.ty(inst.attrs.gep_source_ty.unwrap_or(inst.ty));
                    format!(
                        "getelementptr {inb}{src}, {}, {}",
                        self.tval(f, ops[0]),
                        idx.join(", ")
                    )
                } else {
                    let ptr_ty = self
                        .m
                        .value_type(f, ops[0])
                        .map(|t| self.ty_typed(t))
                        .unwrap_or_else(|| self.pointer_ish_type(ops[0]));
                    format!(
                        "getelementptr {inb}{ptr_ty} {}, {}",
                        self.val(f, ops[0]),
                        idx.join(", ")
                    )
                }
            }
            Fence => format!(
                "fence {}",
                inst.attrs
                    .ordering
                    .unwrap_or(crate::inst::AtomicOrdering::SeqCst)
            ),
            CmpXchg => format!(
                "cmpxchg {}, {}, {} seq_cst seq_cst",
                self.tval(f, ops[0]),
                self.tval(f, ops[1]),
                self.tval(f, ops[2])
            ),
            AtomicRmw => format!(
                "atomicrmw {} {}, {} seq_cst",
                inst.attrs.rmw_op.map(|o| o.name()).unwrap_or("xchg"),
                self.tval(f, ops[0]),
                self.tval(f, ops[1])
            ),
            Trunc | ZExt | SExt | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP
            | PtrToInt | IntToPtr | BitCast | AddrSpaceCast => {
                format!(
                    "{} {} to {}",
                    inst.opcode,
                    self.tval(f, ops[0]),
                    self.ty(inst.ty)
                )
            }
            ICmp => format!(
                "icmp {} {}, {}",
                inst.attrs.int_pred.map(|p| p.name()).unwrap_or("eq"),
                self.tval(f, ops[0]),
                self.val(f, ops[1])
            ),
            FCmp => format!(
                "fcmp {} {}, {}",
                inst.attrs.float_pred.map(|p| p.name()).unwrap_or("oeq"),
                self.tval(f, ops[0]),
                self.val(f, ops[1])
            ),
            Phi => {
                let pairs: Vec<String> = ops
                    .chunks(2)
                    .map(|c| format!("[ {}, {} ]", self.val(f, c[0]), self.val(f, c[1])))
                    .collect();
                format!("phi {} {}", self.ty(inst.ty), pairs.join(", "))
            }
            Select => format!(
                "select {}, {}, {}",
                self.tval(f, ops[0]),
                self.tval(f, ops[1]),
                self.tval(f, ops[2])
            ),
            VAArg => format!("va_arg {}, {}", self.tval(f, ops[0]), self.ty(inst.ty)),
            ExtractElement => format!(
                "extractelement {}, {}",
                self.tval(f, ops[0]),
                self.tval(f, ops[1])
            ),
            InsertElement => format!(
                "insertelement {}, {}, {}",
                self.tval(f, ops[0]),
                self.tval(f, ops[1]),
                self.tval(f, ops[2])
            ),
            ShuffleVector => {
                let mask: Vec<String> = inst.attrs.indices.iter().map(u64::to_string).collect();
                format!(
                    "shufflevector {}, {}, mask <{}>",
                    self.tval(f, ops[0]),
                    self.tval(f, ops[1]),
                    mask.join(", ")
                )
            }
            ExtractValue => {
                let idx: Vec<String> = inst.attrs.indices.iter().map(u64::to_string).collect();
                format!(
                    "extractvalue {}, {} : {}",
                    self.tval(f, ops[0]),
                    idx.join(", "),
                    self.ty(inst.ty)
                )
            }
            InsertValue => {
                let idx: Vec<String> = inst.attrs.indices.iter().map(u64::to_string).collect();
                format!(
                    "insertvalue {}, {}, {}",
                    self.tval(f, ops[0]),
                    self.tval(f, ops[1]),
                    idx.join(", ")
                )
            }
            LandingPad => {
                let cl = if inst.attrs.is_cleanup {
                    " cleanup"
                } else {
                    ""
                };
                format!("landingpad {}{cl}", self.ty(inst.ty))
            }
            Freeze => format!("freeze {}", self.tval(f, ops[0])),
            CatchSwitch => {
                let dests: Vec<String> = ops
                    .iter()
                    .filter(|v| v.is_block())
                    .map(|v| format!("label {}", self.val(f, *v)))
                    .collect();
                format!("catchswitch [{}]", dests.join(", "))
            }
            CatchPad => "catchpad".into(),
            CatchRet => format!("catchret label {}", self.val(f, ops[0])),
            CleanupPad => "cleanuppad".into(),
            CleanupRet => format!("cleanupret label {}", self.val(f, ops[0])),
        }
    }

    fn callee_text(&self, f: &Function, callee: ValueRef) -> String {
        match callee {
            ValueRef::InlineAsm(a) => {
                let asm = self.m.asm(a);
                format!(
                    "asm \"{}\", \"{}\" hwlevel {}",
                    asm.text, asm.constraints, asm.hw_level
                )
            }
            other => self.val(f, other),
        }
    }
}

/// The textual label used for `block` inside `f`.
pub fn block_label(f: &Function, block: BlockId) -> String {
    let b = f.block(block);
    if b.name.is_empty() {
        format!("bb{}", block.0)
    } else {
        format!("{}.{}", b.name, block.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{Global, Module};
    use crate::version::IrVersion;

    fn sample(version: IrVersion) -> Module {
        let mut m = Module::new("sample", version);
        let i32t = m.types.i32();
        m.add_global(Global {
            name: "g".into(),
            ty: i32t,
            init: GlobalInit::Int(5),
            is_const: false,
        });
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let p = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 7), p);
        let v = b.load(i32t, p);
        b.ret(Some(v));
        m
    }

    #[test]
    fn old_load_syntax_before_3_7() {
        let text = write_module(&sample(IrVersion::V3_6));
        assert!(text.contains("load i32* %t0"), "{text}");
        assert!(!text.contains("load i32, "));
    }

    #[test]
    fn new_load_syntax_since_3_7() {
        let text = write_module(&sample(IrVersion::V13_0));
        assert!(text.contains("load i32, i32* %t0"), "{text}");
    }

    #[test]
    fn opaque_pointers_since_15() {
        let text = write_module(&sample(IrVersion::V15_0));
        assert!(text.contains("load i32, ptr %t0"), "{text}");
        assert!(!text.contains("i32*"), "{text}");
    }

    #[test]
    fn globals_and_header_present() {
        let text = write_module(&sample(IrVersion::V13_0));
        assert!(text.contains("; IR version 13.0"));
        assert!(text.contains("@g = global i32 5"));
        assert!(text.contains("define i32 @main()"));
    }

    #[test]
    fn branch_and_phi_render() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let t = b.add_block("then");
        b.position_at_end(e);
        let c = b.icmp(
            crate::inst::IntPredicate::Eq,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 1),
        );
        b.cond_br(c, t, t);
        b.position_at_end(t);
        let p = b.phi(i32t, vec![(ValueRef::const_int(i32t, 3), e)]);
        b.ret(Some(p));
        let text = write_module(&m);
        assert!(
            text.contains("br i1 %t0, label %then.1, label %then.1"),
            "{text}"
        );
        assert!(text.contains("phi i32 [ 3, %entry.0 ]"), "{text}");
    }
}
