//! # siro-ir — a versioned, LLVM-like IR substrate
//!
//! This crate is the substrate the Siro reproduction is built on. It plays
//! the role of LLVM's IR libraries in the paper (Tab. 2): it provides, for a
//! whole catalog of [`IrVersion`]s,
//!
//! * an in-memory IR data model ([`Module`], [`Function`], [`BasicBlock`],
//!   [`Instruction`], [`ValueRef`], [`TypeTable`]) following the
//!   formulation of Fig. 3,
//! * an **IR Builder** ([`FuncBuilder`]),
//! * an **IR Verifier** ([`verify::verify_module`]),
//! * an **IR Writer** and **IR Reader** ([`write::write_module`],
//!   [`parse::parse_module`]) whose text formats differ across versions, and
//! * an interpreter ([`interp::Machine`]) used as the differential-testing
//!   execution oracle (Fig. 6 of the paper).
//!
//! Instruction sets are version-gated: [`IrVersion::supports`] decides which
//! [`Opcode`]s verify, reproducing the common/new instruction structure of
//! Table 3.
//!
//! ## Quick example
//!
//! ```
//! use siro_ir::{FuncBuilder, IrVersion, Module, ValueRef, interp, verify};
//!
//! let mut m = Module::new("demo", IrVersion::V13_0);
//! let i32t = m.types.i32();
//! let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
//! let mut b = FuncBuilder::new(&mut m, f);
//! let entry = b.add_block("entry");
//! b.position_at_end(entry);
//! let v = b.add(ValueRef::const_int(i32t, 40), ValueRef::const_int(i32t, 2));
//! b.ret(Some(v));
//!
//! verify::verify_module(&m).unwrap();
//! let outcome = interp::Machine::new(&m).run_main().unwrap();
//! assert_eq!(outcome.return_int(), Some(42));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod ctx;
pub mod dialect;
pub mod error;
pub mod inst;
pub mod interp;
pub mod module;
pub mod opcode;
pub mod parse;
pub mod types;
pub mod value;
pub mod verify;
pub mod version;
pub mod write;

pub use builder::FuncBuilder;
pub use ctx::{Arena, Entity, OpVec, Ptr, Use, UseIndex};
pub use dialect::{Dialect, DialectVersion};
pub use error::{IrError, IrResult};
pub use inst::{AtomicOrdering, FloatPredicate, InstAttrs, Instruction, IntPredicate, RmwOp};
pub use module::{BasicBlock, Ctx, Function, Global, GlobalInit, InlineAsm, Module, Param};
pub use opcode::{OpCategory, Opcode};
pub use types::{Type, TypeId, TypeTable};
pub use value::{AsmId, BlockId, FuncId, GlobalId, InstId, ValueRef};
pub use version::IrVersion;
