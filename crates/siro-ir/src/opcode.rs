//! The instruction opcode catalog.
//!
//! Every opcode records the version that introduced it, so that
//! [`IrVersion::supports`](crate::IrVersion::supports) can gate per-version
//! instruction sets. The base (3.0) set has 57 opcodes; see `DESIGN.md` for
//! the per-version deltas that reproduce Table 3 of the paper.

use std::fmt;
use std::str::FromStr;

use crate::version::IrVersion;

/// Coarse classification of an opcode, mirroring the LLVM language
/// reference's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCategory {
    /// Block-ending control transfer.
    Terminator,
    /// Integer/float arithmetic (including unary `fneg`).
    Arithmetic,
    /// Shift and bitwise logic.
    Bitwise,
    /// Memory access and addressing.
    Memory,
    /// Value conversions.
    Cast,
    /// Everything else (comparisons, phi, call, vector/aggregate ops, ...).
    Other,
}

macro_rules! opcodes {
    ($( $variant:ident, $name:literal, $cat:ident, $ver:ident, $term:literal; )+) => {
        /// An IR instruction opcode.
        ///
        /// # Examples
        ///
        /// ```
        /// use siro_ir::{IrVersion, Opcode};
        /// assert_eq!(Opcode::Freeze.introduced_in(), IrVersion::V10_0);
        /// assert!(!IrVersion::V3_6.supports(Opcode::Freeze));
        /// assert_eq!("add".parse::<Opcode>().unwrap(), Opcode::Add);
        /// ```
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Opcode {
            $(
                #[doc = concat!("The `", $name, "` instruction.")]
                $variant,
            )+
        }

        impl Opcode {
            /// Every opcode in canonical order.
            pub const ALL: [Opcode; opcodes!(@count $($variant)+)] = [
                $(Opcode::$variant,)+
            ];

            /// The textual mnemonic, e.g. `"getelementptr"`.
            pub const fn name(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $name,)+
                }
            }

            /// The category this opcode belongs to.
            pub const fn category(self) -> OpCategory {
                match self {
                    $(Opcode::$variant => OpCategory::$cat,)+
                }
            }

            /// The IR version that introduced this opcode.
            pub const fn introduced_in(self) -> IrVersion {
                match self {
                    $(Opcode::$variant => IrVersion::$ver,)+
                }
            }

            /// Whether this opcode ends a basic block.
            pub const fn is_terminator(self) -> bool {
                match self {
                    $(Opcode::$variant => $term,)+
                }
            }
        }

        impl FromStr for Opcode {
            type Err = UnknownOpcode;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                match s {
                    $($name => Ok(Opcode::$variant),)+
                    _ => Err(UnknownOpcode(s.to_string())),
                }
            }
        }
    };
    (@count) => { 0 };
    (@count $head:ident $($tail:ident)*) => { 1 + opcodes!(@count $($tail)*) };
}

opcodes! {
    // -- Terminators (7, base) -------------------------------------------
    Ret, "ret", Terminator, V3_0, true;
    Br, "br", Terminator, V3_0, true;
    Switch, "switch", Terminator, V3_0, true;
    IndirectBr, "indirectbr", Terminator, V3_0, true;
    Invoke, "invoke", Terminator, V3_0, true;
    Resume, "resume", Terminator, V3_0, true;
    Unreachable, "unreachable", Terminator, V3_0, true;
    // -- Arithmetic (13, base; fneg kept in the base set deliberately, see
    //    DESIGN.md) --------------------------------------------------------
    Add, "add", Arithmetic, V3_0, false;
    FAdd, "fadd", Arithmetic, V3_0, false;
    Sub, "sub", Arithmetic, V3_0, false;
    FSub, "fsub", Arithmetic, V3_0, false;
    Mul, "mul", Arithmetic, V3_0, false;
    FMul, "fmul", Arithmetic, V3_0, false;
    UDiv, "udiv", Arithmetic, V3_0, false;
    SDiv, "sdiv", Arithmetic, V3_0, false;
    FDiv, "fdiv", Arithmetic, V3_0, false;
    URem, "urem", Arithmetic, V3_0, false;
    SRem, "srem", Arithmetic, V3_0, false;
    FRem, "frem", Arithmetic, V3_0, false;
    FNeg, "fneg", Arithmetic, V3_0, false;
    // -- Bitwise (6, base) -------------------------------------------------
    Shl, "shl", Bitwise, V3_0, false;
    LShr, "lshr", Bitwise, V3_0, false;
    AShr, "ashr", Bitwise, V3_0, false;
    And, "and", Bitwise, V3_0, false;
    Or, "or", Bitwise, V3_0, false;
    Xor, "xor", Bitwise, V3_0, false;
    // -- Memory (7, base) ----------------------------------------------------
    Alloca, "alloca", Memory, V3_0, false;
    Load, "load", Memory, V3_0, false;
    Store, "store", Memory, V3_0, false;
    GetElementPtr, "getelementptr", Memory, V3_0, false;
    Fence, "fence", Memory, V3_0, false;
    CmpXchg, "cmpxchg", Memory, V3_0, false;
    AtomicRmw, "atomicrmw", Memory, V3_0, false;
    // -- Casts (12, base) ----------------------------------------------------
    Trunc, "trunc", Cast, V3_0, false;
    ZExt, "zext", Cast, V3_0, false;
    SExt, "sext", Cast, V3_0, false;
    FPTrunc, "fptrunc", Cast, V3_0, false;
    FPExt, "fpext", Cast, V3_0, false;
    FPToUI, "fptoui", Cast, V3_0, false;
    FPToSI, "fptosi", Cast, V3_0, false;
    UIToFP, "uitofp", Cast, V3_0, false;
    SIToFP, "sitofp", Cast, V3_0, false;
    PtrToInt, "ptrtoint", Cast, V3_0, false;
    IntToPtr, "inttoptr", Cast, V3_0, false;
    BitCast, "bitcast", Cast, V3_0, false;
    // -- Other (12, base) ------------------------------------------------------
    ICmp, "icmp", Other, V3_0, false;
    FCmp, "fcmp", Other, V3_0, false;
    Phi, "phi", Other, V3_0, false;
    Call, "call", Other, V3_0, false;
    Select, "select", Other, V3_0, false;
    VAArg, "va_arg", Other, V3_0, false;
    ExtractElement, "extractelement", Other, V3_0, false;
    InsertElement, "insertelement", Other, V3_0, false;
    ShuffleVector, "shufflevector", Other, V3_0, false;
    ExtractValue, "extractvalue", Other, V3_0, false;
    InsertValue, "insertvalue", Other, V3_0, false;
    LandingPad, "landingpad", Other, V3_0, false;
    // -- Introduced later ---------------------------------------------------
    AddrSpaceCast, "addrspacecast", Cast, V3_6, false;
    CatchSwitch, "catchswitch", Terminator, V3_7, true;
    CatchPad, "catchpad", Other, V3_7, false;
    CatchRet, "catchret", Terminator, V3_7, true;
    CleanupPad, "cleanuppad", Other, V3_7, false;
    CleanupRet, "cleanupret", Terminator, V3_7, true;
    CallBr, "callbr", Terminator, V9_0, true;
    Freeze, "freeze", Other, V10_0, false;
}

/// Error returned when parsing an unknown opcode mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownOpcode(pub String);

impl fmt::Display for UnknownOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown opcode mnemonic `{}`", self.0)
    }
}

impl std::error::Error for UnknownOpcode {}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Opcode {
    /// Whether this opcode is one of the five Windows exception-handling
    /// instructions that the paper's deployment never encounters on Linux.
    pub const fn is_windows_eh(self) -> bool {
        matches!(
            self,
            Opcode::CatchSwitch
                | Opcode::CatchPad
                | Opcode::CatchRet
                | Opcode::CleanupPad
                | Opcode::CleanupRet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_opcode_count_is_65() {
        assert_eq!(Opcode::ALL.len(), 65);
    }

    #[test]
    fn names_roundtrip_through_from_str() {
        for op in Opcode::ALL {
            assert_eq!(op.name().parse::<Opcode>().unwrap(), op);
        }
    }

    #[test]
    fn unknown_mnemonic_is_an_error() {
        let err = "frobnicate".parse::<Opcode>().unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn terminators_match_category() {
        for op in Opcode::ALL {
            if op.category() == OpCategory::Terminator {
                assert!(op.is_terminator(), "{op} categorized terminator");
            }
        }
        // catchpad/cleanuppad are not terminators even though they belong to
        // the EH family.
        assert!(!Opcode::CatchPad.is_terminator());
        assert!(!Opcode::CleanupPad.is_terminator());
    }

    #[test]
    fn windows_eh_set_has_five_members() {
        let n = Opcode::ALL.iter().filter(|o| o.is_windows_eh()).count();
        assert_eq!(n, 5);
    }

    #[test]
    fn base_set_is_57() {
        let n = Opcode::ALL
            .iter()
            .filter(|o| o.introduced_in() == IrVersion::V3_0)
            .count();
        assert_eq!(n, 57);
    }
}
