//! The IR Reader ("load a persisted IR program into the memory", Tab. 2).
//!
//! Parses the version-flavoured textual format produced by
//! [`write::write_module`](crate::write::write_module). The accepted syntax
//! follows the module's declared version: pre-3.7 `load i32* %p`, post-3.7
//! `load i32, i32* %p`, and opaque `ptr` types from 15.0 on.

use std::collections::HashMap;

use crate::ctx::OpVec;
use crate::error::{IrError, IrResult};
use crate::inst::{AtomicOrdering, FloatPredicate, InstAttrs, Instruction, IntPredicate, RmwOp};
use crate::module::{Function, Global, GlobalInit, InlineAsm, Module, Param};
use crate::opcode::Opcode;
use crate::types::{Type, TypeId};
use crate::value::{BlockId, InstId, ValueRef};
use crate::version::IrVersion;

/// Parses a textual IR module.
///
/// The text must carry the writer's `; IR version X.Y` header, which selects
/// the accepted syntax.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with a line number on malformed input.
pub fn parse_module(text: &str) -> IrResult<Module> {
    let version = text
        .lines()
        .take(8)
        .find_map(|l| l.trim().strip_prefix("; IR version "))
        .and_then(|v| {
            let (maj, min) = v.trim().split_once('.')?;
            Some(IrVersion::new(maj.parse().ok()?, min.parse().ok()?))
        })
        .ok_or_else(|| IrError::Parse {
            line: 1,
            message: "missing `; IR version X.Y` header".into(),
        })?;
    parse_module_as(text, version)
}

/// Parses a textual IR module, forcing the given version's syntax.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with a line number on malformed input.
pub fn parse_module_as(text: &str, version: IrVersion) -> IrResult<Module> {
    let name = text
        .lines()
        .take(4)
        .find_map(|l| l.trim().strip_prefix("; ModuleID = '"))
        .and_then(|r| r.strip_suffix('\''))
        .unwrap_or("parsed")
        .to_string();
    let mut module = Module::new(name, version);
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    // Pass 0: pre-register all function symbols so calls resolve forward.
    let mut pending_defs: Vec<(usize, usize)> = Vec::new(); // (header line, body end)
    {
        let mut j = 0;
        while j < lines.len() {
            let line = lines[j].trim();
            if line.starts_with("define ") {
                let start = j;
                let mut end = j + 1;
                while end < lines.len() && lines[end].trim() != "}" {
                    end += 1;
                }
                pending_defs.push((start, end));
                // Register the symbol now.
                let (ret_ty, fname, params, varargs) =
                    parse_signature(&mut module, lines[start], start + 1)?;
                let mut f = Function::new(fname, ret_ty, params);
                f.varargs = varargs;
                module.add_func(f);
                j = end + 1;
                continue;
            }
            if line.starts_with("declare ") {
                let (ret_ty, fname, params, varargs) = parse_signature(&mut module, line, j + 1)?;
                let mut f = Function::external(fname, ret_ty, params);
                f.varargs = varargs;
                module.add_func(f);
            } else if line.starts_with('@') {
                parse_global(&mut module, line, j + 1)?;
            }
            j += 1;
        }
    }
    // Pass 1: parse function bodies.
    let mut def_idx = 0;
    while i < lines.len() {
        let line = lines[i].trim();
        if line.starts_with("define ") {
            let (start, end) = pending_defs[def_idx];
            debug_assert_eq!(start, i);
            def_idx += 1;
            parse_body(&mut module, def_idx, &lines, start, end)?;
            i = end + 1;
            continue;
        }
        i += 1;
    }
    Ok(module)
}

fn parse_body(
    module: &mut Module,
    nth_def: usize,
    lines: &[&str],
    start: usize,
    end: usize,
) -> IrResult<()> {
    // Locate the function id: the nth non-external function.
    let fid = module
        .func_ids()
        .filter(|&f| !module.func(f).is_external)
        .nth(nth_def - 1)
        .ok_or_else(|| IrError::Parse {
            line: start + 1,
            message: "internal: function registration mismatch".into(),
        })?;
    // Pre-pass: block labels and instruction result names. Keys borrow
    // straight from the input text; the whole pass allocates only the two
    // tables (plus one cosmetic name String per block).
    let mut block_names: HashMap<&str, BlockId> = HashMap::new();
    let mut inst_names: HashMap<&str, InstId> = HashMap::new();
    let mut next_inst = 0u32;
    for raw in &lines[start + 1..end] {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let bid = module.func_mut(fid).add_block(label_to_name(label));
            block_names.insert(label, bid);
        } else {
            if let Some((lhs, _)) = line.split_once('=') {
                let lhs = lhs.trim();
                if let Some(n) = lhs.strip_prefix('%') {
                    if !line.starts_with("br ") && lhs.split_whitespace().count() == 1 {
                        inst_names.insert(n, InstId::new(next_inst));
                    }
                }
            }
            next_inst += 1;
        }
    }
    let param_names: HashMap<String, u32> = module
        .func(fid)
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), i as u32))
        .collect();
    // Parse instructions.
    let mut cur_block: Option<BlockId> = None;
    for (off, raw) in lines[start + 1..end].iter().enumerate() {
        let lineno = start + 2 + off;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            cur_block = Some(block_names[label]);
            continue;
        }
        let block = cur_block.ok_or_else(|| IrError::Parse {
            line: lineno,
            message: "instruction before any block label".into(),
        })?;
        let mut ctx = InstCtx {
            module,
            fid,
            block_names: &block_names,
            inst_names: &inst_names,
            param_names: &param_names,
            line: lineno,
        };
        let inst = ctx.parse_inst_line(line)?;
        module.func_mut(fid).push_inst(block, inst);
    }
    Ok(())
}

fn label_to_name(label: &str) -> String {
    // Writer emits `name.N`; recover the name part for cosmetics.
    match label.rsplit_once('.') {
        Some((name, idx)) if idx.chars().all(|c| c.is_ascii_digit()) => name.to_string(),
        _ => label.to_string(),
    }
}

fn strip_comment(line: &str) -> &str {
    // Don't cut inside strings; our writer never mixes ';' with strings.
    if line.contains('"') {
        return line;
    }
    match line.find(';') {
        Some(p) => &line[..p],
        None => line,
    }
}

fn parse_global(module: &mut Module, line: &str, lineno: usize) -> IrResult<()> {
    let err = |m: &str| IrError::Parse {
        line: lineno,
        message: m.into(),
    };
    let (name, rest) = line[1..]
        .split_once('=')
        .ok_or_else(|| err("expected `=`"))?;
    let name = name.trim().to_string();
    let mut c = Cursor::new(rest.trim(), lineno);
    let external = c.eat_word("external");
    let is_const = if c.eat_word("constant") {
        true
    } else if c.eat_word("global") {
        false
    } else {
        return Err(err("expected `global` or `constant`"));
    };
    let ty = c.parse_type(&mut module.types)?;
    let init = if external {
        GlobalInit::External
    } else if c.eat_word("zeroinitializer") {
        GlobalInit::Zero
    } else if c.peek_char() == Some('c') {
        c.bump();
        let s = c.parse_string()?;
        let mut bytes = Vec::new();
        let mut it = s.chars();
        while let Some(ch) = it.next() {
            if ch == '\\' {
                let h1 = it.next().unwrap_or('0');
                let h2 = it.next().unwrap_or('0');
                let b = u8::from_str_radix(&format!("{h1}{h2}"), 16).unwrap_or(0);
                bytes.push(b);
            } else {
                bytes.push(ch as u8);
            }
        }
        GlobalInit::Bytes(bytes)
    } else if c.rest().starts_with("0x") {
        let bits = c.parse_hex()?;
        GlobalInit::Float(f64::from_bits(bits))
    } else {
        GlobalInit::Int(c.parse_int()?)
    };
    module.add_global(Global {
        name,
        ty,
        init,
        is_const,
    });
    Ok(())
}

type Signature = (TypeId, String, Vec<Param>, bool);

fn parse_signature(module: &mut Module, line: &str, lineno: usize) -> IrResult<Signature> {
    let line = line.trim();
    let rest = line
        .strip_prefix("define ")
        .or_else(|| line.strip_prefix("declare "))
        .ok_or_else(|| IrError::Parse {
            line: lineno,
            message: "expected define/declare".into(),
        })?;
    let mut c = Cursor::new(rest.trim_end_matches('{').trim(), lineno);
    let ret_ty = c.parse_type(&mut module.types)?;
    let name = c.parse_global_name()?.to_string();
    c.expect('(')?;
    let mut params = Vec::new();
    let mut varargs = false;
    if !c.eat(')') {
        loop {
            if c.eat_word("...") {
                varargs = true;
                c.expect(')')?;
                break;
            }
            let ty = c.parse_type(&mut module.types)?;
            let pname = if c.peek_char() == Some('%') {
                c.parse_local_name()?.to_string()
            } else {
                format!("arg{}", params.len())
            };
            params.push(Param { name: pname, ty });
            if c.eat(')') {
                break;
            }
            c.expect(',')?;
        }
    }
    Ok((ret_ty, name, params, varargs))
}

struct InstCtx<'a, 'b> {
    module: &'a mut Module,
    fid: crate::value::FuncId,
    block_names: &'a HashMap<&'b str, BlockId>,
    inst_names: &'a HashMap<&'b str, InstId>,
    param_names: &'a HashMap<String, u32>,
    line: usize,
}

impl InstCtx<'_, '_> {
    fn err(&self, m: impl Into<String>) -> IrError {
        IrError::Parse {
            line: self.line,
            message: m.into(),
        }
    }

    fn resolve_local(&self, name: &str) -> IrResult<ValueRef> {
        if let Some(&i) = self.inst_names.get(name) {
            return Ok(ValueRef::Inst(i));
        }
        if let Some(&a) = self.param_names.get(name) {
            return Ok(ValueRef::Arg(a));
        }
        Err(self.err(format!("unknown local `%{name}`")))
    }

    fn resolve_global(&self, name: &str) -> IrResult<ValueRef> {
        if let Some(f) = self.module.func_by_name(name) {
            return Ok(ValueRef::Func(f));
        }
        if let Some(g) = self.module.global_by_name(name) {
            return Ok(ValueRef::Global(g));
        }
        Err(self.err(format!("unknown symbol `@{name}`")))
    }

    fn resolve_block(&self, c: &mut Cursor) -> IrResult<ValueRef> {
        c.skip_ws();
        if !c.eat_word("label") {
            return Err(self.err("expected `label`"));
        }
        let name = c.parse_local_name()?;
        self.block_names
            .get(name)
            .map(|&b| ValueRef::Block(b))
            .ok_or_else(|| self.err(format!("unknown block `%{name}`")))
    }

    /// Parses a value whose type is already known.
    fn parse_value(&mut self, c: &mut Cursor, ty: TypeId) -> IrResult<ValueRef> {
        c.skip_ws();
        match c.peek_char() {
            Some('%') => {
                let n = c.parse_local_name()?;
                self.resolve_local(n)
            }
            Some('@') => {
                let n = c.parse_global_name()?;
                self.resolve_global(n)
            }
            Some(ch) if ch.is_ascii_digit() || ch == '-' => {
                if c.rest().starts_with("0x") {
                    let bits = c.parse_hex()?;
                    if self.module.types.is_float(ty) {
                        Ok(ValueRef::ConstFloat { ty, bits })
                    } else {
                        Ok(ValueRef::ConstInt {
                            ty,
                            value: bits as i64,
                        })
                    }
                } else {
                    let v = c.parse_int()?;
                    if self.module.types.is_float(ty) {
                        Ok(ValueRef::const_float(ty, v as f64))
                    } else {
                        Ok(ValueRef::ConstInt { ty, value: v })
                    }
                }
            }
            _ => {
                if c.eat_word("null") {
                    Ok(ValueRef::Null(ty))
                } else if c.eat_word("undef") {
                    Ok(ValueRef::Undef(ty))
                } else if c.eat_word("zeroinitializer") {
                    Ok(ValueRef::ZeroInit(ty))
                } else {
                    Err(self.err(format!("cannot parse value near `{}`", c.rest_short())))
                }
            }
        }
    }

    /// Parses `ty value`.
    fn parse_tval(&mut self, c: &mut Cursor) -> IrResult<(TypeId, ValueRef)> {
        let ty = c.parse_type(&mut self.module.types)?;
        let v = self.parse_value(c, ty)?;
        Ok((ty, v))
    }

    #[allow(clippy::too_many_lines)]
    fn parse_inst_line(&mut self, line: &str) -> IrResult<Instruction> {
        let mut c = Cursor::new(line, self.line);
        // Optional `%name =` prefix.
        if line.starts_with('%') {
            let _ = c.parse_local_name()?;
            c.expect('=')?;
        }
        c.skip_ws();
        let tail = c.eat_word("tail");
        let word = c.parse_word()?;
        let void = self.module.types.void();
        let mut inst = match word {
            "ret" => {
                if c.eat_word("void") {
                    Instruction::new(Opcode::Ret, void, OpVec::new())
                } else {
                    let (_, v) = self.parse_tval(&mut c)?;
                    Instruction::new(Opcode::Ret, void, [v])
                }
            }
            "br" => {
                c.skip_ws();
                if c.rest().starts_with("label") {
                    let b = self.resolve_block(&mut c)?;
                    Instruction::new(Opcode::Br, void, [b])
                } else {
                    let (_, cond) = self.parse_tval(&mut c)?;
                    c.expect(',')?;
                    let t = self.resolve_block(&mut c)?;
                    c.expect(',')?;
                    let f = self.resolve_block(&mut c)?;
                    Instruction::new(Opcode::Br, void, [cond, t, f])
                }
            }
            "switch" => {
                let (_, v) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let def = self.resolve_block(&mut c)?;
                c.expect('[')?;
                let mut ops = OpVec::from([v, def]);
                loop {
                    c.skip_ws();
                    if c.eat(']') {
                        break;
                    }
                    let (_, cv) = self.parse_tval(&mut c)?;
                    c.expect(',')?;
                    let dest = self.resolve_block(&mut c)?;
                    ops.push(cv);
                    ops.push(dest);
                }
                Instruction::new(Opcode::Switch, void, ops)
            }
            "indirectbr" => {
                let (_, v) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                c.expect('[')?;
                let mut ops = OpVec::from([v]);
                loop {
                    c.skip_ws();
                    if c.eat(']') {
                        break;
                    }
                    let b = self.resolve_block(&mut c)?;
                    ops.push(b);
                    c.eat(',');
                }
                Instruction::new(Opcode::IndirectBr, void, ops)
            }
            "unreachable" => Instruction::new(Opcode::Unreachable, void, OpVec::new()),
            "resume" => {
                let (_, v) = self.parse_tval(&mut c)?;
                Instruction::new(Opcode::Resume, void, [v])
            }
            "invoke" | "callbr" | "call" => {
                let op = match word {
                    "invoke" => Opcode::Invoke,
                    "callbr" => Opcode::CallBr,
                    _ => Opcode::Call,
                };
                let ret_ty = c.parse_type(&mut self.module.types)?;
                c.skip_ws();
                let callee = if c.rest().starts_with("asm") {
                    c.eat_word("asm");
                    c.skip_ws();
                    c.expect('"')?;
                    let text = c.take_until('"')?;
                    c.expect(',')?;
                    c.skip_ws();
                    c.expect('"')?;
                    let constraints = c.take_until('"')?;
                    if !c.eat_word("hwlevel") {
                        return Err(self.err("expected `hwlevel`"));
                    }
                    let lvl = c.parse_int()? as u8;
                    let fnty = self.module.types.func(ret_ty, vec![]);
                    let aid = self.module.add_asm(InlineAsm {
                        text: text.to_string(),
                        constraints: constraints.to_string(),
                        ty: fnty,
                        hw_level: lvl,
                    });
                    ValueRef::InlineAsm(aid)
                } else if c.peek_char() == Some('@') {
                    let n = c.parse_global_name()?;
                    self.resolve_global(n)?
                } else {
                    let n = c.parse_local_name()?;
                    self.resolve_local(n)?
                };
                c.expect('(')?;
                let mut ops = OpVec::from([callee]);
                if !c.eat(')') {
                    loop {
                        let (_, v) = self.parse_tval(&mut c)?;
                        ops.push(v);
                        if c.eat(')') {
                            break;
                        }
                        c.expect(',')?;
                    }
                }
                let n = ops.len() as u32 - 1;
                let mut attrs = InstAttrs {
                    num_args: n,
                    tail_call: tail,
                    ..InstAttrs::default()
                };
                match op {
                    Opcode::Invoke => {
                        if !c.eat_word("to") {
                            return Err(self.err("expected `to`"));
                        }
                        let normal = self.resolve_block(&mut c)?;
                        if !c.eat_word("unwind") {
                            return Err(self.err("expected `unwind`"));
                        }
                        let unwind = self.resolve_block(&mut c)?;
                        ops.push(normal);
                        ops.push(unwind);
                    }
                    Opcode::CallBr => {
                        if !c.eat_word("to") {
                            return Err(self.err("expected `to`"));
                        }
                        let ft = self.resolve_block(&mut c)?;
                        ops.push(ft);
                        c.expect('[')?;
                        loop {
                            c.skip_ws();
                            if c.eat(']') {
                                break;
                            }
                            let b = self.resolve_block(&mut c)?;
                            ops.push(b);
                            c.eat(',');
                        }
                    }
                    _ => {}
                }
                attrs.callee_ty = None;
                let mut i = Instruction::new(op, ret_ty, ops);
                i.attrs = attrs;
                i
            }
            "fneg" => {
                let (ty, v) = self.parse_tval(&mut c)?;
                Instruction::new(Opcode::FNeg, ty, [v])
            }
            "add" | "sub" | "mul" | "udiv" | "sdiv" | "urem" | "srem" | "shl" | "lshr" | "ashr"
            | "and" | "or" | "xor" | "fadd" | "fsub" | "fmul" | "fdiv" | "frem" => {
                let op: Opcode = word.parse().unwrap();
                let mut attrs = InstAttrs::default();
                loop {
                    if c.eat_word("nuw") {
                        attrs.nuw = true;
                    } else if c.eat_word("nsw") {
                        attrs.nsw = true;
                    } else if c.eat_word("exact") {
                        attrs.exact = true;
                    } else {
                        break;
                    }
                }
                let (ty, a) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let b = self.parse_value(&mut c, ty)?;
                let mut i = Instruction::new(op, ty, [a, b]);
                i.attrs = attrs;
                i
            }
            "alloca" => {
                let ty = c.parse_type(&mut self.module.types)?;
                let ptr = self.module.types.ptr(ty);
                let mut ops = OpVec::new();
                if c.eat(',') {
                    let (_, n) = self.parse_tval(&mut c)?;
                    ops.push(n);
                }
                let mut i = Instruction::new(Opcode::Alloca, ptr, ops);
                i.attrs.alloc_ty = Some(ty);
                i
            }
            "load" => {
                let volatile = c.eat_word("volatile");
                let first = c.parse_type(&mut self.module.types)?;
                let (result_ty, ptr) = if self.module.version.explicit_load_type_in_text() {
                    c.expect(',')?;
                    let pty = c.parse_type(&mut self.module.types)?;
                    let p = self.parse_value(&mut c, pty)?;
                    (first, p)
                } else {
                    // Old style: `first` is the pointer type.
                    let p = self.parse_value(&mut c, first)?;
                    let pointee = self
                        .module
                        .types
                        .pointee(first)
                        .ok_or_else(|| self.err("old-style load needs a pointer type"))?;
                    (pointee, p)
                };
                let mut i = Instruction::new(Opcode::Load, result_ty, [ptr]);
                i.attrs.volatile = volatile;
                i.attrs.gep_source_ty = Some(result_ty);
                i
            }
            "store" => {
                let volatile = c.eat_word("volatile");
                let (_, v) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (_, p) = self.parse_tval(&mut c)?;
                let mut i = Instruction::new(Opcode::Store, void, [v, p]);
                i.attrs.volatile = volatile;
                i
            }
            "getelementptr" => {
                let inbounds = c.eat_word("inbounds");
                let (src_ty, base) = if self.module.version.explicit_load_type_in_text() {
                    let src = c.parse_type(&mut self.module.types)?;
                    c.expect(',')?;
                    let pty = c.parse_type(&mut self.module.types)?;
                    let b = self.parse_value(&mut c, pty)?;
                    (src, b)
                } else {
                    let pty = c.parse_type(&mut self.module.types)?;
                    let b = self.parse_value(&mut c, pty)?;
                    let src = self
                        .module
                        .types
                        .pointee(pty)
                        .ok_or_else(|| self.err("old-style gep needs a pointer type"))?;
                    (src, b)
                };
                let mut ops = OpVec::from([base]);
                while c.eat(',') {
                    let (ity, v) = self.parse_tval(&mut c)?;
                    let _ = ity;
                    ops.push(v);
                }
                let result = compute_gep_result(&mut self.module.types, src_ty, &ops[1..])
                    .ok_or_else(|| self.err("cannot compute gep result type"))?;
                let mut i = Instruction::new(Opcode::GetElementPtr, result, ops);
                i.attrs.gep_source_ty = Some(src_ty);
                i.attrs.inbounds = inbounds;
                i
            }
            "fence" => {
                let _ = c.parse_word();
                let mut i = Instruction::new(Opcode::Fence, void, OpVec::new());
                i.attrs.ordering = Some(AtomicOrdering::SeqCst);
                i
            }
            "cmpxchg" => {
                let (_, p) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (vty, e) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (_, n) = self.parse_tval(&mut c)?;
                let i1 = self.module.types.i1();
                let rty = self.module.types.struct_(vec![vty, i1]);
                let mut i = Instruction::new(Opcode::CmpXchg, rty, [p, e, n]);
                i.attrs.ordering = Some(AtomicOrdering::SeqCst);
                i
            }
            "atomicrmw" => {
                let opw = c.parse_word()?;
                let rmw: RmwOp = opw
                    .parse()
                    .map_err(|()| self.err(format!("unknown rmw op `{opw}`")))?;
                let (_, p) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (vty, v) = self.parse_tval(&mut c)?;
                let mut i = Instruction::new(Opcode::AtomicRmw, vty, [p, v]);
                i.attrs.rmw_op = Some(rmw);
                i.attrs.ordering = Some(AtomicOrdering::SeqCst);
                i
            }
            "trunc" | "zext" | "sext" | "fptrunc" | "fpext" | "fptoui" | "fptosi" | "uitofp"
            | "sitofp" | "ptrtoint" | "inttoptr" | "bitcast" | "addrspacecast" => {
                let op: Opcode = word.parse().unwrap();
                let (_, v) = self.parse_tval(&mut c)?;
                if !c.eat_word("to") {
                    return Err(self.err("expected `to`"));
                }
                let to = c.parse_type(&mut self.module.types)?;
                Instruction::new(op, to, [v])
            }
            "icmp" => {
                let pw = c.parse_word()?;
                let pred: IntPredicate = pw
                    .parse()
                    .map_err(|()| self.err(format!("unknown predicate `{pw}`")))?;
                let (ty, a) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let b = self.parse_value(&mut c, ty)?;
                let rty = self.icmp_result_ty(ty);
                let mut i = Instruction::new(Opcode::ICmp, rty, [a, b]);
                i.attrs.int_pred = Some(pred);
                i
            }
            "fcmp" => {
                let pw = c.parse_word()?;
                let pred: FloatPredicate = pw
                    .parse()
                    .map_err(|()| self.err(format!("unknown predicate `{pw}`")))?;
                let (ty, a) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let b = self.parse_value(&mut c, ty)?;
                let rty = self.icmp_result_ty(ty);
                let mut i = Instruction::new(Opcode::FCmp, rty, [a, b]);
                i.attrs.float_pred = Some(pred);
                i
            }
            "phi" => {
                let ty = c.parse_type(&mut self.module.types)?;
                let mut ops = OpVec::new();
                loop {
                    c.skip_ws();
                    if !c.eat('[') {
                        break;
                    }
                    let v = self.parse_value(&mut c, ty)?;
                    c.expect(',')?;
                    c.skip_ws();
                    let bl = c.parse_local_name()?;
                    let b = self
                        .block_names
                        .get(bl)
                        .ok_or_else(|| self.err(format!("unknown block `%{bl}`")))?;
                    c.expect(']')?;
                    ops.push(v);
                    ops.push(ValueRef::Block(*b));
                    if !c.eat(',') {
                        break;
                    }
                }
                Instruction::new(Opcode::Phi, ty, ops)
            }
            "select" => {
                let (_, cond) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (ty, t) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (_, f) = self.parse_tval(&mut c)?;
                Instruction::new(Opcode::Select, ty, [cond, t, f])
            }
            "va_arg" => {
                let (_, v) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let ty = c.parse_type(&mut self.module.types)?;
                Instruction::new(Opcode::VAArg, ty, [v])
            }
            "extractelement" => {
                let (vty, v) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (_, i) = self.parse_tval(&mut c)?;
                let ety = match self.module.types.get(vty) {
                    Type::Vector { elem, .. } => *elem,
                    _ => vty,
                };
                Instruction::new(Opcode::ExtractElement, ety, [v, i])
            }
            "insertelement" => {
                let (vty, v) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (_, e) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (_, i) = self.parse_tval(&mut c)?;
                Instruction::new(Opcode::InsertElement, vty, [v, e, i])
            }
            "shufflevector" => {
                let (vty, a) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (_, b) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                if !c.eat_word("mask") {
                    return Err(self.err("expected `mask`"));
                }
                c.expect('<')?;
                let mut mask = Vec::new();
                loop {
                    c.skip_ws();
                    if c.eat('>') {
                        break;
                    }
                    mask.push(c.parse_int()? as u64);
                    c.eat(',');
                }
                let ety = match self.module.types.get(vty) {
                    Type::Vector { elem, .. } => *elem,
                    _ => vty,
                };
                let rty = self.module.types.vector(ety, mask.len() as u32);
                let mut i = Instruction::new(Opcode::ShuffleVector, rty, [a, b]);
                i.attrs.indices = mask;
                i
            }
            "extractvalue" => {
                let (_, agg) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let mut idx = Vec::new();
                loop {
                    idx.push(c.parse_int()? as u64);
                    if !c.eat(',') {
                        break;
                    }
                }
                c.expect(':')?;
                let rty = c.parse_type(&mut self.module.types)?;
                let mut i = Instruction::new(Opcode::ExtractValue, rty, [agg]);
                i.attrs.indices = idx;
                i
            }
            "insertvalue" => {
                let (aty, agg) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let (_, v) = self.parse_tval(&mut c)?;
                c.expect(',')?;
                let mut idx = Vec::new();
                loop {
                    idx.push(c.parse_int()? as u64);
                    if !c.eat(',') {
                        break;
                    }
                }
                let mut i = Instruction::new(Opcode::InsertValue, aty, [agg, v]);
                i.attrs.indices = idx;
                i
            }
            "landingpad" => {
                let ty = c.parse_type(&mut self.module.types)?;
                let cleanup = c.eat_word("cleanup");
                let mut i = Instruction::new(Opcode::LandingPad, ty, OpVec::new());
                i.attrs.is_cleanup = cleanup;
                i
            }
            "freeze" => {
                let (ty, v) = self.parse_tval(&mut c)?;
                Instruction::new(Opcode::Freeze, ty, [v])
            }
            "catchswitch" => {
                c.expect('[')?;
                let mut ops = OpVec::new();
                loop {
                    c.skip_ws();
                    if c.eat(']') {
                        break;
                    }
                    ops.push(self.resolve_block(&mut c)?);
                    c.eat(',');
                }
                Instruction::new(Opcode::CatchSwitch, void, ops)
            }
            "catchpad" => {
                let tok = self.module.types.token();
                Instruction::new(Opcode::CatchPad, tok, OpVec::new())
            }
            "catchret" => {
                let b = self.resolve_block(&mut c)?;
                Instruction::new(Opcode::CatchRet, void, [b])
            }
            "cleanuppad" => {
                let tok = self.module.types.token();
                Instruction::new(Opcode::CleanupPad, tok, OpVec::new())
            }
            "cleanupret" => {
                let b = self.resolve_block(&mut c)?;
                Instruction::new(Opcode::CleanupRet, void, [b])
            }
            other => return Err(self.err(format!("unknown instruction `{other}`"))),
        };
        let _ = self.fid;
        inst.attrs.tail_call |= tail;
        Ok(inst)
    }

    fn icmp_result_ty(&mut self, operand_ty: TypeId) -> TypeId {
        match self.module.types.get(operand_ty).clone() {
            Type::Vector { len, .. } => {
                let i1 = self.module.types.i1();
                self.module.types.vector(i1, len)
            }
            _ => self.module.types.i1(),
        }
    }
}

fn compute_gep_result(
    types: &mut crate::types::TypeTable,
    src: TypeId,
    indices: &[ValueRef],
) -> Option<TypeId> {
    let mut cur = src;
    for idx in indices.iter().skip(1) {
        cur = match types.get(cur).clone() {
            Type::Array { elem, .. } | Type::Vector { elem, .. } => elem,
            Type::Struct { fields } => {
                let i = idx.as_int()? as usize;
                *fields.get(i)?
            }
            _ => return None,
        };
    }
    Some(types.ptr(cur))
}

/// A simple single-line cursor.
struct Cursor<'a> {
    s: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        Cursor { s, pos: 0, line }
    }

    fn err(&self, m: impl Into<String>) -> IrError {
        IrError::Parse {
            line: self.line,
            message: m.into(),
        }
    }

    fn rest(&self) -> &str {
        &self.s[self.pos..]
    }

    fn rest_short(&self) -> String {
        self.rest().chars().take(24).collect()
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(' ') || self.rest().starts_with('\t') {
            self.pos += 1;
        }
    }

    fn peek_char(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn bump(&mut self) {
        if let Some(ch) = self.rest().chars().next() {
            self.pos += ch.len_utf8();
        }
    }

    fn eat(&mut self, ch: char) -> bool {
        self.skip_ws();
        if self.rest().starts_with(ch) {
            self.pos += ch.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, ch: char) -> IrResult<()> {
        if self.eat(ch) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{ch}` near `{}`", self.rest_short())))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if let Some(after) = r.strip_prefix(word) {
            let boundary = after
                .chars()
                .next()
                .is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_' && c != '.');
            // `...` is punctuation-only, always a boundary match.
            if boundary || word == "..." {
                self.pos += word.len();
                return true;
            }
        }
        false
    }

    fn parse_word(&mut self) -> IrResult<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while let Some(ch) = self.rest().chars().next() {
            if ch.is_ascii_alphanumeric() || ch == '_' {
                self.pos += ch.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            Err(self.err(format!("expected word near `{}`", self.rest_short())))
        } else {
            Ok(&self.s[start..self.pos])
        }
    }

    fn parse_local_name(&mut self) -> IrResult<&'a str> {
        self.skip_ws();
        if !self.rest().starts_with('%') {
            return Err(self.err(format!("expected `%` near `{}`", self.rest_short())));
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(ch) = self.rest().chars().next() {
            if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                self.pos += ch.len_utf8();
            } else {
                break;
            }
        }
        Ok(&self.s[start..self.pos])
    }

    fn parse_global_name(&mut self) -> IrResult<&'a str> {
        self.skip_ws();
        if !self.rest().starts_with('@') {
            return Err(self.err(format!("expected `@` near `{}`", self.rest_short())));
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(ch) = self.rest().chars().next() {
            if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                self.pos += ch.len_utf8();
            } else {
                break;
            }
        }
        Ok(&self.s[start..self.pos])
    }

    fn parse_int(&mut self) -> IrResult<i64> {
        self.skip_ws();
        let start = self.pos;
        if self.rest().starts_with('-') {
            self.pos += 1;
        }
        while let Some(ch) = self.rest().chars().next() {
            if ch.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.s[start..self.pos]
            .parse()
            .map_err(|_| self.err(format!("expected integer near `{}`", self.rest_short())))
    }

    fn parse_hex(&mut self) -> IrResult<u64> {
        self.skip_ws();
        if !self.rest().starts_with("0x") {
            return Err(self.err("expected hex literal"));
        }
        self.pos += 2;
        let start = self.pos;
        while let Some(ch) = self.rest().chars().next() {
            if ch.is_ascii_hexdigit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        u64::from_str_radix(&self.s[start..self.pos], 16).map_err(|_| self.err("bad hex literal"))
    }

    fn parse_string(&mut self) -> IrResult<&'a str> {
        self.expect('"')?;
        self.take_until('"')
    }

    fn take_until(&mut self, end: char) -> IrResult<&'a str> {
        let start = self.pos;
        while let Some(ch) = self.rest().chars().next() {
            if ch == end {
                let s = &self.s[start..self.pos];
                self.pos += end.len_utf8();
                return Ok(s);
            }
            self.pos += ch.len_utf8();
        }
        Err(self.err(format!("unterminated `{end}`")))
    }

    fn parse_type(&mut self, types: &mut crate::types::TypeTable) -> IrResult<TypeId> {
        self.skip_ws();
        let mut base = if self.eat('[') {
            let n = self.parse_int()? as u64;
            if !self.eat_word("x") {
                return Err(self.err("expected `x` in array type"));
            }
            let elem = self.parse_type(types)?;
            self.expect(']')?;
            types.array(elem, n)
        } else if self.eat('<') {
            let n = self.parse_int()? as u32;
            if !self.eat_word("x") {
                return Err(self.err("expected `x` in vector type"));
            }
            let elem = self.parse_type(types)?;
            self.expect('>')?;
            types.vector(elem, n)
        } else if self.eat('{') {
            let mut fields = Vec::new();
            if !self.eat('}') {
                loop {
                    fields.push(self.parse_type(types)?);
                    if self.eat('}') {
                        break;
                    }
                    self.expect(',')?;
                }
            }
            types.struct_(fields)
        } else {
            let w = self.parse_word()?;
            match w {
                "void" => types.void(),
                "float" => types.f32(),
                "double" => types.f64(),
                "label" => types.label(),
                "token" => types.token(),
                "ptr" => {
                    // Opaque pointer: nominal i8 pointee.
                    if self.eat_word("addrspace") {
                        self.expect('(')?;
                        let sp = self.parse_int()? as u32;
                        self.expect(')')?;
                        let i8t = types.i8();
                        return Ok(types.ptr_in(i8t, sp));
                    }
                    let i8t = types.i8();
                    types.ptr(i8t)
                }
                other => {
                    if let Some(bits) = other.strip_prefix('i').and_then(|b| b.parse::<u32>().ok())
                    {
                        types.int(bits)
                    } else {
                        return Err(self.err(format!("unknown type `{other}`")));
                    }
                }
            }
        };
        // Postfix function types and pointers (typed syntax): `i32 (i32)*`,
        // `i32*`, `i32 addrspace(3)*`.
        loop {
            self.skip_ws();
            if self.rest().starts_with('(') {
                self.pos += 1;
                let mut params = Vec::new();
                let mut varargs = false;
                if !self.eat(')') {
                    loop {
                        if self.eat_word("...") {
                            varargs = true;
                            self.expect(')')?;
                            break;
                        }
                        params.push(self.parse_type(types)?);
                        if self.eat(')') {
                            break;
                        }
                        self.expect(',')?;
                    }
                }
                base = if varargs {
                    types.func_varargs(base, params)
                } else {
                    types.func(base, params)
                };
                continue;
            }
            if self.rest().starts_with("addrspace") {
                self.eat_word("addrspace");
                self.expect('(')?;
                let sp = self.parse_int()? as u32;
                self.expect(')')?;
                self.expect('*')?;
                base = types.ptr_in(base, sp);
            } else if self.rest().starts_with('*') {
                self.pos += 1;
                base = types.ptr(base);
            } else {
                break;
            }
        }
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::interp::Machine;
    use crate::verify::verify_module;
    use crate::write::write_module;

    fn roundtrip(m: &Module) -> Module {
        let text = write_module(m);
        parse_module(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"))
    }

    #[test]
    fn parses_simple_program() {
        let text = "\
; ModuleID = 'hello'
; IR version 13.0

define i32 @main() {
entry:
  %x = add i32 40, 2
  ret i32 %x
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(m.version, IrVersion::V13_0);
        verify_module(&m).unwrap();
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(42));
    }

    #[test]
    fn parses_old_style_load() {
        let text = "\
; IR version 3.6

define i32 @main() {
entry:
  %p = alloca i32
  store i32 9, i32* %p
  %v = load i32* %p
  ret i32 %v
}
";
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(9));
    }

    #[test]
    fn roundtrip_preserves_execution() {
        let mut m = Module::new("rt", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.add_block("entry");
        let t = b.add_block("then");
        let e2 = b.add_block("else");
        b.position_at_end(entry);
        let c = b.icmp(
            IntPredicate::Slt,
            ValueRef::const_int(i32t, 3),
            ValueRef::const_int(i32t, 5),
        );
        b.cond_br(c, t, e2);
        b.position_at_end(t);
        b.ret(Some(ValueRef::const_int(i32t, 1)));
        b.position_at_end(e2);
        b.ret(Some(ValueRef::const_int(i32t, 2)));
        let before = Machine::new(&m).run_main().unwrap().return_int();
        let m2 = roundtrip(&m);
        verify_module(&m2).unwrap();
        let after = Machine::new(&m2).run_main().unwrap().return_int();
        assert_eq!(before, after);
    }

    #[test]
    fn roundtrip_is_textually_idempotent() {
        let mut m = Module::new("idem", IrVersion::V3_6);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.add_block("entry");
        b.position_at_end(entry);
        let p = b.alloca(i32t);
        b.store(ValueRef::const_int(i32t, 1), p);
        let v = b.load(i32t, p);
        b.ret(Some(v));
        let t1 = write_module(&m);
        let m2 = parse_module(&t1).unwrap();
        let t2 = write_module(&m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn parses_globals_and_calls() {
        let text = "\
; IR version 13.0

@counter = global i32 7

declare i8* @malloc(i64 %n)

define i32 @main() {
entry:
  %v = load i32, i32* @counter
  ret i32 %v
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(m.globals.len(), 1);
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(7));
    }

    #[test]
    fn parses_phi_and_branches() {
        let text = "\
; IR version 13.0

define i32 @main() {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %n, %loop ]
  %n = add i32 %i, 1
  %c = icmp slt i32 %n, 5
  br i1 %c, label %loop, label %done
done:
  ret i32 %n
}
";
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(5));
    }

    #[test]
    fn missing_version_header_is_an_error() {
        let e = parse_module("define i32 @main() {\n}\n").unwrap_err();
        assert!(e.to_string().contains("IR version"));
    }

    #[test]
    fn unknown_instruction_reports_line() {
        let text = "; IR version 13.0\n\ndefine i32 @main() {\nentry:\n  frobnicate i32 1\n}\n";
        let e = parse_module(text).unwrap_err();
        match e {
            IrError::Parse { line, .. } => assert_eq!(line, 5),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn parses_switch() {
        let text = "\
; IR version 13.0

define i32 @main() {
entry:
  switch i32 2, label %d [ i32 1, label %a  i32 2, label %b ]
a:
  ret i32 10
b:
  ret i32 20
d:
  ret i32 30
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(20));
    }

    #[test]
    fn parses_gep_with_struct() {
        let text = "\
; IR version 13.0

define i32 @main() {
entry:
  %s = alloca { i32, i64 }
  %p = getelementptr { i32, i64 }, { i32, i64 }* %s, i64 0, i32 0
  store i32 77, i32* %p
  %v = load i32, i32* %p
  ret i32 %v
}
";
        let m = parse_module(text).unwrap();
        verify_module(&m).unwrap();
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(77));
    }
}
