//! The IR type system: an interned table of structural types plus a fixed
//! data layout used by the interpreter and verifier.

use std::collections::HashMap;
use std::fmt;

/// Handle to an interned [`Type`] inside a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// The raw index of this type in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A structural IR type.
///
/// Types are always created through [`TypeTable`] so that equal types share
/// one [`TypeId`] and comparisons are O(1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The empty type of `ret void` functions and `store`-like instructions.
    Void,
    /// An integer of the given bit width (1, 8, 16, 32, 64, 128).
    Int(u32),
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// A pointer. The pointee is always tracked in memory even for versions
    /// that *print* opaque `ptr` (>= 15.0); opacity is a serialization quirk.
    Ptr {
        /// The pointed-to type.
        pointee: TypeId,
        /// The address space (0 is the default).
        addr_space: u32,
    },
    /// A fixed-length array.
    Array {
        /// Element type.
        elem: TypeId,
        /// Element count.
        len: u64,
    },
    /// A SIMD vector.
    Vector {
        /// Element type.
        elem: TypeId,
        /// Lane count.
        len: u32,
    },
    /// A literal struct.
    Struct {
        /// Field types in declaration order.
        fields: Vec<TypeId>,
    },
    /// A function signature.
    Func {
        /// Return type.
        ret: TypeId,
        /// Parameter types.
        params: Vec<TypeId>,
        /// Whether the function accepts variadic arguments.
        varargs: bool,
    },
    /// The type of basic-block labels.
    Label,
    /// The landing-pad token type used by the exception instructions.
    Token,
}

/// An interning table of [`Type`]s owned by a
/// [`Module`](crate::module::Module).
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    types: Vec<Type>,
    lookup: HashMap<Type, TypeId>,
    prims: PrimCache,
}

/// Memoized ids for the primitive types the builders request on almost
/// every instruction (`void` for terminators, `i1` for compares, pointers
/// for memory ops). Skips the hash probe in [`TypeTable::intern`] on the
/// hot translate path; ids are append-only so a cached id never goes stale.
#[derive(Debug, Clone, Copy, Default)]
struct PrimCache {
    void: Option<TypeId>,
    i1: Option<TypeId>,
    i8: Option<TypeId>,
    i16: Option<TypeId>,
    i32: Option<TypeId>,
    i64: Option<TypeId>,
    f32: Option<TypeId>,
    f64: Option<TypeId>,
    /// Most-recent `(pointee, ptr)` pair interned through [`TypeTable::ptr`]
    /// in address space 0 — geps and allocas cluster around few pointees.
    last_ptr: Option<(TypeId, TypeId)>,
}

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `ty`, returning its id.
    pub fn intern(&mut self, ty: Type) -> TypeId {
        if let Some(&id) = self.lookup.get(&ty) {
            return id;
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(ty.clone());
        self.lookup.insert(ty, id);
        id
    }

    /// Looks up the structural type behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` comes from a different table.
    pub fn get(&self, id: TypeId) -> &Type {
        &self.types[id.index()]
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates over `(id, type)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &Type)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (TypeId(i as u32), t))
    }

    // ---- Convenience constructors ---------------------------------------

    /// `void`
    pub fn void(&mut self) -> TypeId {
        if let Some(id) = self.prims.void {
            return id;
        }
        let id = self.intern(Type::Void);
        self.prims.void = Some(id);
        id
    }

    /// `i1`
    pub fn i1(&mut self) -> TypeId {
        if let Some(id) = self.prims.i1 {
            return id;
        }
        let id = self.intern(Type::Int(1));
        self.prims.i1 = Some(id);
        id
    }

    /// `i8`
    pub fn i8(&mut self) -> TypeId {
        if let Some(id) = self.prims.i8 {
            return id;
        }
        let id = self.intern(Type::Int(8));
        self.prims.i8 = Some(id);
        id
    }

    /// `i16`
    pub fn i16(&mut self) -> TypeId {
        if let Some(id) = self.prims.i16 {
            return id;
        }
        let id = self.intern(Type::Int(16));
        self.prims.i16 = Some(id);
        id
    }

    /// `i32`
    pub fn i32(&mut self) -> TypeId {
        if let Some(id) = self.prims.i32 {
            return id;
        }
        let id = self.intern(Type::Int(32));
        self.prims.i32 = Some(id);
        id
    }

    /// `i64`
    pub fn i64(&mut self) -> TypeId {
        if let Some(id) = self.prims.i64 {
            return id;
        }
        let id = self.intern(Type::Int(64));
        self.prims.i64 = Some(id);
        id
    }

    /// An integer of arbitrary width.
    pub fn int(&mut self, bits: u32) -> TypeId {
        match bits {
            1 => self.i1(),
            8 => self.i8(),
            16 => self.i16(),
            32 => self.i32(),
            64 => self.i64(),
            _ => self.intern(Type::Int(bits)),
        }
    }

    /// `float`
    pub fn f32(&mut self) -> TypeId {
        if let Some(id) = self.prims.f32 {
            return id;
        }
        let id = self.intern(Type::F32);
        self.prims.f32 = Some(id);
        id
    }

    /// `double`
    pub fn f64(&mut self) -> TypeId {
        if let Some(id) = self.prims.f64 {
            return id;
        }
        let id = self.intern(Type::F64);
        self.prims.f64 = Some(id);
        id
    }

    /// A pointer to `pointee` in address space 0.
    pub fn ptr(&mut self, pointee: TypeId) -> TypeId {
        if let Some((p, id)) = self.prims.last_ptr {
            if p == pointee {
                return id;
            }
        }
        let id = self.intern(Type::Ptr {
            pointee,
            addr_space: 0,
        });
        self.prims.last_ptr = Some((pointee, id));
        id
    }

    /// A pointer to `pointee` in the given address space.
    pub fn ptr_in(&mut self, pointee: TypeId, addr_space: u32) -> TypeId {
        if addr_space == 0 {
            return self.ptr(pointee);
        }
        self.intern(Type::Ptr {
            pointee,
            addr_space,
        })
    }

    /// `[len x elem]`
    pub fn array(&mut self, elem: TypeId, len: u64) -> TypeId {
        self.intern(Type::Array { elem, len })
    }

    /// `<len x elem>`
    pub fn vector(&mut self, elem: TypeId, len: u32) -> TypeId {
        self.intern(Type::Vector { elem, len })
    }

    /// `{ fields... }`
    pub fn struct_(&mut self, fields: Vec<TypeId>) -> TypeId {
        self.intern(Type::Struct { fields })
    }

    /// `ret (params...)`
    pub fn func(&mut self, ret: TypeId, params: Vec<TypeId>) -> TypeId {
        self.intern(Type::Func {
            ret,
            params,
            varargs: false,
        })
    }

    /// A variadic function signature.
    pub fn func_varargs(&mut self, ret: TypeId, params: Vec<TypeId>) -> TypeId {
        self.intern(Type::Func {
            ret,
            params,
            varargs: true,
        })
    }

    /// `label`
    pub fn label(&mut self) -> TypeId {
        self.intern(Type::Label)
    }

    /// `token`
    pub fn token(&mut self) -> TypeId {
        self.intern(Type::Token)
    }

    // ---- Queries ---------------------------------------------------------

    /// Whether `id` is an integer type.
    pub fn is_int(&self, id: TypeId) -> bool {
        matches!(self.get(id), Type::Int(_))
    }

    /// Whether `id` is `float` or `double`.
    pub fn is_float(&self, id: TypeId) -> bool {
        matches!(self.get(id), Type::F32 | Type::F64)
    }

    /// Whether `id` is a pointer.
    pub fn is_ptr(&self, id: TypeId) -> bool {
        matches!(self.get(id), Type::Ptr { .. })
    }

    /// The pointee of a pointer type, if `id` is one.
    pub fn pointee(&self, id: TypeId) -> Option<TypeId> {
        match self.get(id) {
            Type::Ptr { pointee, .. } => Some(*pointee),
            _ => None,
        }
    }

    /// Integer bit width, if `id` is an integer type.
    pub fn int_bits(&self, id: TypeId) -> Option<u32> {
        match self.get(id) {
            Type::Int(b) => Some(*b),
            _ => None,
        }
    }

    /// Byte size of a value of type `id` under the fixed data layout.
    ///
    /// Integers round up to whole bytes; `i1` occupies one byte. Structs use
    /// natural alignment with padding. `void`, `label`, and `token` are
    /// zero-sized.
    pub fn size_of(&self, id: TypeId) -> u64 {
        match self.get(id) {
            Type::Void | Type::Label | Type::Token => 0,
            Type::Int(b) => u64::from((*b).div_ceil(8)),
            Type::F32 => 4,
            Type::F64 => 8,
            Type::Ptr { .. } | Type::Func { .. } => 8,
            Type::Array { elem, len } => self.size_of(*elem) * len,
            Type::Vector { elem, len } => self.size_of(*elem) * u64::from(*len),
            Type::Struct { fields } => {
                let mut off = 0u64;
                let mut max_align = 1u64;
                for &f in fields {
                    let a = self.align_of(f);
                    max_align = max_align.max(a);
                    off = round_up(off, a) + self.size_of(f);
                }
                round_up(off, max_align)
            }
        }
    }

    /// Alignment of a value of type `id` under the fixed data layout.
    pub fn align_of(&self, id: TypeId) -> u64 {
        match self.get(id) {
            Type::Void | Type::Label | Type::Token => 1,
            Type::Int(b) => u64::from((*b).div_ceil(8).next_power_of_two().min(8)),
            Type::F32 => 4,
            Type::F64 => 8,
            Type::Ptr { .. } | Type::Func { .. } => 8,
            Type::Array { elem, .. } | Type::Vector { elem, .. } => self.align_of(*elem),
            Type::Struct { fields } => fields.iter().map(|&f| self.align_of(f)).max().unwrap_or(1),
        }
    }

    /// Byte offset of struct field `idx` (with natural-alignment padding).
    ///
    /// Returns `None` if `id` is not a struct or `idx` is out of range.
    pub fn struct_field_offset(&self, id: TypeId, idx: u32) -> Option<u64> {
        let Type::Struct { fields } = self.get(id) else {
            return None;
        };
        let fields = fields.clone();
        if idx as usize >= fields.len() {
            return None;
        }
        let mut off = 0u64;
        for (i, &f) in fields.iter().enumerate() {
            off = round_up(off, self.align_of(f));
            if i == idx as usize {
                return Some(off);
            }
            off += self.size_of(f);
        }
        None
    }

    /// Renders `id` in the version-agnostic (typed-pointer) text form.
    pub fn display(&self, id: TypeId) -> TypeDisplay<'_> {
        TypeDisplay {
            table: self,
            id,
            opaque_ptr: false,
        }
    }

    /// Renders `id` with pointers printed as opaque `ptr` (versions >= 15.0).
    pub fn display_opaque(&self, id: TypeId) -> TypeDisplay<'_> {
        TypeDisplay {
            table: self,
            id,
            opaque_ptr: true,
        }
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two() || align == 1);
    v.div_ceil(align) * align
}

/// Displays a [`TypeId`] using its owning [`TypeTable`].
#[derive(Debug, Clone, Copy)]
pub struct TypeDisplay<'a> {
    table: &'a TypeTable,
    id: TypeId,
    opaque_ptr: bool,
}

impl fmt::Display for TypeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_type(f, self.table, self.id, self.opaque_ptr)
    }
}

fn write_type(f: &mut fmt::Formatter<'_>, t: &TypeTable, id: TypeId, opaque: bool) -> fmt::Result {
    match t.get(id) {
        Type::Void => f.write_str("void"),
        Type::Int(b) => write!(f, "i{b}"),
        Type::F32 => f.write_str("float"),
        Type::F64 => f.write_str("double"),
        Type::Ptr {
            pointee,
            addr_space,
        } => {
            if opaque {
                if *addr_space != 0 {
                    write!(f, "ptr addrspace({addr_space})")
                } else {
                    f.write_str("ptr")
                }
            } else {
                write_type(f, t, *pointee, opaque)?;
                if *addr_space != 0 {
                    write!(f, " addrspace({addr_space})*")
                } else {
                    f.write_str("*")
                }
            }
        }
        Type::Array { elem, len } => {
            write!(f, "[{len} x ")?;
            write_type(f, t, *elem, opaque)?;
            f.write_str("]")
        }
        Type::Vector { elem, len } => {
            write!(f, "<{len} x ")?;
            write_type(f, t, *elem, opaque)?;
            f.write_str(">")
        }
        Type::Struct { fields } => {
            f.write_str("{ ")?;
            for (i, &fd) in fields.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_type(f, t, fd, opaque)?;
            }
            f.write_str(" }")
        }
        Type::Func {
            ret,
            params,
            varargs,
        } => {
            write_type(f, t, *ret, opaque)?;
            f.write_str(" (")?;
            for (i, &p) in params.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_type(f, t, p, opaque)?;
            }
            if *varargs {
                if !params.is_empty() {
                    f.write_str(", ")?;
                }
                f.write_str("...")?;
            }
            f.write_str(")")
        }
        Type::Label => f.write_str("label"),
        Type::Token => f.write_str("token"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let mut t = TypeTable::new();
        let a = t.i32();
        let b = t.i32();
        assert_eq!(a, b);
        let p1 = t.ptr(a);
        let p2 = t.ptr(b);
        assert_eq!(p1, p2);
        assert_ne!(a, p1);
    }

    #[test]
    fn sizes_and_alignment() {
        let mut t = TypeTable::new();
        let i1 = t.i1();
        let i32t = t.i32();
        let i64t = t.i64();
        let p = t.ptr(i32t);
        assert_eq!(t.size_of(i1), 1);
        assert_eq!(t.size_of(i32t), 4);
        assert_eq!(t.size_of(p), 8);
        assert_eq!(t.align_of(i64t), 8);
        // struct { i8, i32, i8 } -> 0, 4, 8; size 12 with tail padding.
        let i8t = t.i8();
        let s = t.struct_(vec![i8t, i32t, i8t]);
        assert_eq!(t.struct_field_offset(s, 0), Some(0));
        assert_eq!(t.struct_field_offset(s, 1), Some(4));
        assert_eq!(t.struct_field_offset(s, 2), Some(8));
        assert_eq!(t.size_of(s), 12);
        assert_eq!(t.struct_field_offset(s, 3), None);
    }

    #[test]
    fn array_and_vector_sizes() {
        let mut t = TypeTable::new();
        let i32t = t.i32();
        let a = t.array(i32t, 10);
        let v = t.vector(i32t, 4);
        assert_eq!(t.size_of(a), 40);
        assert_eq!(t.size_of(v), 16);
    }

    #[test]
    fn display_typed_and_opaque() {
        let mut t = TypeTable::new();
        let i32t = t.i32();
        let p = t.ptr(i32t);
        let pp = t.ptr(p);
        assert_eq!(t.display(pp).to_string(), "i32**");
        assert_eq!(t.display_opaque(pp).to_string(), "ptr");
        let f = t.func(i32t, vec![p]);
        assert_eq!(t.display(f).to_string(), "i32 (i32*)");
        assert_eq!(t.display_opaque(f).to_string(), "i32 (ptr)");
    }

    #[test]
    fn addrspace_display() {
        let mut t = TypeTable::new();
        let i8t = t.i8();
        let p = t.ptr_in(i8t, 3);
        assert_eq!(t.display(p).to_string(), "i8 addrspace(3)*");
        assert_eq!(t.display_opaque(p).to_string(), "ptr addrspace(3)");
    }
}
