//! Ergonomic construction of IR ("IR Builder" row of Tab. 2 in the paper).
//!
//! [`FuncBuilder`] positions itself at the end of a block and appends
//! instructions, mirroring LLVM's `IRBuilder`.

use crate::inst::{AtomicOrdering, FloatPredicate, Instruction, IntPredicate, RmwOp};
use crate::module::{Function, Module, Param};
use crate::opcode::Opcode;
use crate::types::TypeId;
use crate::value::{BlockId, FuncId, InstId, ValueRef};

/// Builds instructions into one function of a [`Module`].
///
/// # Examples
///
/// ```
/// use siro_ir::{FuncBuilder, IrVersion, Module, ValueRef};
///
/// let mut m = Module::new("demo", IrVersion::V13_0);
/// let i32t = m.types.i32();
/// let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
/// let mut b = FuncBuilder::new(&mut m, f);
/// let entry = b.add_block("entry");
/// b.position_at_end(entry);
/// let x = b.add(ValueRef::const_int(i32t, 40), ValueRef::const_int(i32t, 2));
/// b.ret(Some(x));
/// assert_eq!(m.func(f).inst_count(), 2);
/// ```
#[derive(Debug)]
pub struct FuncBuilder<'m> {
    module: &'m mut Module,
    func: FuncId,
    block: Option<BlockId>,
}

impl<'m> FuncBuilder<'m> {
    /// Adds a new function definition to `module` and returns its id.
    pub fn define(
        module: &'m mut Module,
        name: impl Into<String>,
        ret_ty: TypeId,
        params: Vec<Param>,
    ) -> FuncId {
        module.add_func(Function::new(name, ret_ty, params))
    }

    /// Creates a builder over an existing function.
    pub fn new(module: &'m mut Module, func: FuncId) -> Self {
        FuncBuilder {
            module,
            func,
            block: None,
        }
    }

    /// The function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// The module being built into.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    fn f(&mut self) -> &mut Function {
        self.module.func_mut(self.func)
    }

    /// Appends a new block with the given label.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.f().add_block(name)
    }

    /// Positions the insertion point at the end of `block`.
    pub fn position_at_end(&mut self, block: BlockId) {
        self.block = Some(block);
    }

    /// The current insertion block, if one has been set — the predecessor
    /// a generator needs when it is about to branch to a new block and
    /// record phi incomings.
    pub fn current_block(&self) -> Option<BlockId> {
        self.block
    }

    /// Appends a raw instruction at the insertion point.
    ///
    /// # Panics
    ///
    /// Panics if no insertion point has been set.
    pub fn push(&mut self, inst: Instruction) -> ValueRef {
        let block = self.block.expect("FuncBuilder: no insertion point set");
        let id = self.f().push_inst(block, inst);
        ValueRef::Inst(id)
    }

    /// Appends a raw instruction and returns its [`InstId`].
    pub fn push_id(&mut self, inst: Instruction) -> InstId {
        match self.push(inst) {
            ValueRef::Inst(id) => id,
            _ => unreachable!(),
        }
    }

    fn value_ty(&self, v: ValueRef) -> TypeId {
        let f = self.module.func(self.func);
        match v {
            ValueRef::Global(g) => {
                let ty = self.module.global(g).ty;
                // Address-of semantics: the module interns Ptr(ty) lazily in
                // binary helpers; here we only need *some* type for result
                // inference, so fall back to the value type.
                ty
            }
            _ => self
                .module
                .value_type(f, v)
                .expect("operand type must be inferable; pass explicit types otherwise"),
        }
    }

    // ---- Arithmetic ------------------------------------------------------

    fn binary(&mut self, op: Opcode, a: ValueRef, b: ValueRef) -> ValueRef {
        let ty = self.value_ty(a);
        self.push(Instruction::new(op, ty, [a, b]))
    }

    /// `add`
    pub fn add(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::Add, a, b)
    }

    /// `sub`
    pub fn sub(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::Sub, a, b)
    }

    /// `mul`
    pub fn mul(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::Mul, a, b)
    }

    /// `sdiv`
    pub fn sdiv(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::SDiv, a, b)
    }

    /// `udiv`
    pub fn udiv(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::UDiv, a, b)
    }

    /// `srem`
    pub fn srem(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::SRem, a, b)
    }

    /// `urem`
    pub fn urem(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::URem, a, b)
    }

    /// `fadd`
    pub fn fadd(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::FAdd, a, b)
    }

    /// `fsub`
    pub fn fsub(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::FSub, a, b)
    }

    /// `fmul`
    pub fn fmul(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::FMul, a, b)
    }

    /// `fdiv`
    pub fn fdiv(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::FDiv, a, b)
    }

    /// `frem`
    pub fn frem(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::FRem, a, b)
    }

    /// `fneg`
    pub fn fneg(&mut self, a: ValueRef) -> ValueRef {
        let ty = self.value_ty(a);
        self.push(Instruction::new(Opcode::FNeg, ty, [a]))
    }

    /// `shl`
    pub fn shl(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::Shl, a, b)
    }

    /// `lshr`
    pub fn lshr(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::LShr, a, b)
    }

    /// `ashr`
    pub fn ashr(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::AShr, a, b)
    }

    /// `and`
    pub fn and(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::And, a, b)
    }

    /// `or`
    pub fn or(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::Or, a, b)
    }

    /// `xor`
    pub fn xor(&mut self, a: ValueRef, b: ValueRef) -> ValueRef {
        self.binary(Opcode::Xor, a, b)
    }

    // ---- Comparisons / select ---------------------------------------------

    /// `icmp <pred>`
    pub fn icmp(&mut self, pred: IntPredicate, a: ValueRef, b: ValueRef) -> ValueRef {
        let i1 = self.module.types.i1();
        let mut inst = Instruction::new(Opcode::ICmp, i1, [a, b]);
        inst.attrs.int_pred = Some(pred);
        self.push(inst)
    }

    /// `fcmp <pred>`
    pub fn fcmp(&mut self, pred: FloatPredicate, a: ValueRef, b: ValueRef) -> ValueRef {
        let i1 = self.module.types.i1();
        let mut inst = Instruction::new(Opcode::FCmp, i1, [a, b]);
        inst.attrs.float_pred = Some(pred);
        self.push(inst)
    }

    /// `select`
    pub fn select(&mut self, cond: ValueRef, t: ValueRef, f: ValueRef) -> ValueRef {
        let ty = self.value_ty(t);
        self.push(Instruction::new(Opcode::Select, ty, [cond, t, f]))
    }

    // ---- Memory ------------------------------------------------------------

    /// `alloca <ty>`
    pub fn alloca(&mut self, ty: TypeId) -> ValueRef {
        let ptr = self.module.types.ptr(ty);
        let mut inst = Instruction::new(Opcode::Alloca, ptr, crate::ctx::OpVec::new());
        inst.attrs.alloc_ty = Some(ty);
        self.push(inst)
    }

    /// `load <ty>, <ty>* <ptr>`
    pub fn load(&mut self, ty: TypeId, ptr: ValueRef) -> ValueRef {
        let mut inst = Instruction::new(Opcode::Load, ty, [ptr]);
        inst.attrs.gep_source_ty = Some(ty);
        self.push(inst)
    }

    /// `store <val>, <ptr>`
    pub fn store(&mut self, val: ValueRef, ptr: ValueRef) -> ValueRef {
        let void = self.module.types.void();
        self.push(Instruction::new(Opcode::Store, void, [val, ptr]))
    }

    /// `getelementptr <src_ty>, <ptr>, <indices...>`; `result_ty` is the
    /// pointer type produced.
    pub fn gep(
        &mut self,
        src_ty: TypeId,
        base: ValueRef,
        indices: Vec<ValueRef>,
        result_ty: TypeId,
    ) -> ValueRef {
        let mut ops = crate::ctx::OpVec::from([base]);
        ops.extend(indices);
        let mut inst = Instruction::new(Opcode::GetElementPtr, result_ty, ops);
        inst.attrs.gep_source_ty = Some(src_ty);
        self.push(inst)
    }

    /// `atomicrmw <op> <ptr>, <val>`
    pub fn atomicrmw(&mut self, op: RmwOp, ptr: ValueRef, val: ValueRef) -> ValueRef {
        let ty = self.value_ty(val);
        let mut inst = Instruction::new(Opcode::AtomicRmw, ty, [ptr, val]);
        inst.attrs.rmw_op = Some(op);
        inst.attrs.ordering = Some(AtomicOrdering::SeqCst);
        self.push(inst)
    }

    /// `cmpxchg <ptr>, <expected>, <replacement>`; result is
    /// `{ <ty>, i1 }`.
    pub fn cmpxchg(&mut self, ptr: ValueRef, expected: ValueRef, new: ValueRef) -> ValueRef {
        let vty = self.value_ty(expected);
        let i1 = self.module.types.i1();
        let res = self.module.types.struct_(vec![vty, i1]);
        let mut inst = Instruction::new(Opcode::CmpXchg, res, [ptr, expected, new]);
        inst.attrs.ordering = Some(AtomicOrdering::SeqCst);
        self.push(inst)
    }

    /// `fence`
    pub fn fence(&mut self) -> ValueRef {
        let void = self.module.types.void();
        let mut inst = Instruction::new(Opcode::Fence, void, crate::ctx::OpVec::new());
        inst.attrs.ordering = Some(AtomicOrdering::SeqCst);
        self.push(inst)
    }

    // ---- Casts ---------------------------------------------------------------

    /// Generic cast helper.
    pub fn cast(&mut self, op: Opcode, v: ValueRef, to: TypeId) -> ValueRef {
        debug_assert_eq!(op.category(), crate::opcode::OpCategory::Cast);
        self.push(Instruction::new(op, to, [v]))
    }

    /// `trunc`
    pub fn trunc(&mut self, v: ValueRef, to: TypeId) -> ValueRef {
        self.cast(Opcode::Trunc, v, to)
    }

    /// `zext`
    pub fn zext(&mut self, v: ValueRef, to: TypeId) -> ValueRef {
        self.cast(Opcode::ZExt, v, to)
    }

    /// `sext`
    pub fn sext(&mut self, v: ValueRef, to: TypeId) -> ValueRef {
        self.cast(Opcode::SExt, v, to)
    }

    /// `bitcast`
    pub fn bitcast(&mut self, v: ValueRef, to: TypeId) -> ValueRef {
        self.cast(Opcode::BitCast, v, to)
    }

    /// `ptrtoint`
    pub fn ptrtoint(&mut self, v: ValueRef, to: TypeId) -> ValueRef {
        self.cast(Opcode::PtrToInt, v, to)
    }

    /// `inttoptr`
    pub fn inttoptr(&mut self, v: ValueRef, to: TypeId) -> ValueRef {
        self.cast(Opcode::IntToPtr, v, to)
    }

    // ---- Control flow -----------------------------------------------------

    /// `br label <dest>`
    pub fn br(&mut self, dest: BlockId) -> ValueRef {
        let void = self.module.types.void();
        self.push(Instruction::new(Opcode::Br, void, [ValueRef::Block(dest)]))
    }

    /// `br i1 <cond>, label <t>, label <f>`
    pub fn cond_br(&mut self, cond: ValueRef, t: BlockId, f: BlockId) -> ValueRef {
        let void = self.module.types.void();
        self.push(Instruction::new(
            Opcode::Br,
            void,
            [cond, ValueRef::Block(t), ValueRef::Block(f)],
        ))
    }

    /// `switch`
    pub fn switch(
        &mut self,
        value: ValueRef,
        default: BlockId,
        cases: Vec<(i64, BlockId)>,
    ) -> ValueRef {
        let void = self.module.types.void();
        let vty = self.value_ty(value);
        let mut ops = crate::ctx::OpVec::from([value, ValueRef::Block(default)]);
        for (c, b) in cases {
            ops.push(ValueRef::const_int(vty, c));
            ops.push(ValueRef::Block(b));
        }
        self.push(Instruction::new(Opcode::Switch, void, ops))
    }

    /// `ret` / `ret void`
    pub fn ret(&mut self, v: Option<ValueRef>) -> ValueRef {
        let void = self.module.types.void();
        let ops: crate::ctx::OpVec = v.into_iter().collect();
        self.push(Instruction::new(Opcode::Ret, void, ops))
    }

    /// `unreachable`
    pub fn unreachable(&mut self) -> ValueRef {
        let void = self.module.types.void();
        self.push(Instruction::new(
            Opcode::Unreachable,
            void,
            crate::ctx::OpVec::new(),
        ))
    }

    /// `phi <ty> [v, b]...`
    pub fn phi(&mut self, ty: TypeId, incoming: Vec<(ValueRef, BlockId)>) -> ValueRef {
        let mut ops = Vec::with_capacity(incoming.len() * 2);
        for (v, b) in incoming {
            ops.push(v);
            ops.push(ValueRef::Block(b));
        }
        self.push(Instruction::new(Opcode::Phi, ty, ops))
    }

    // ---- Calls ------------------------------------------------------------

    /// `call <ret_ty> <callee>(<args>)`
    pub fn call(&mut self, ret_ty: TypeId, callee: ValueRef, args: Vec<ValueRef>) -> ValueRef {
        let mut ops = crate::ctx::OpVec::from([callee]);
        let n = args.len() as u32;
        ops.extend(args);
        let mut inst = Instruction::new(Opcode::Call, ret_ty, ops);
        inst.attrs.num_args = n;
        self.push(inst)
    }

    /// `invoke <callee>(<args>) to label <normal> unwind label <unwind>`
    pub fn invoke(
        &mut self,
        ret_ty: TypeId,
        callee: ValueRef,
        args: Vec<ValueRef>,
        normal: BlockId,
        unwind: BlockId,
    ) -> ValueRef {
        let mut ops = crate::ctx::OpVec::from([callee]);
        let n = args.len() as u32;
        ops.extend(args);
        ops.push(ValueRef::Block(normal));
        ops.push(ValueRef::Block(unwind));
        let mut inst = Instruction::new(Opcode::Invoke, ret_ty, ops);
        inst.attrs.num_args = n;
        self.push(inst)
    }

    /// `callbr <callee>(<args>) to label <fallthrough> [indirect...]`
    /// (versions >= 9.0 only).
    pub fn callbr(
        &mut self,
        ret_ty: TypeId,
        callee: ValueRef,
        args: Vec<ValueRef>,
        fallthrough: BlockId,
        indirect: Vec<BlockId>,
    ) -> ValueRef {
        let mut ops = crate::ctx::OpVec::from([callee]);
        let n = args.len() as u32;
        ops.extend(args);
        ops.push(ValueRef::Block(fallthrough));
        ops.extend(indirect.into_iter().map(ValueRef::Block));
        let mut inst = Instruction::new(Opcode::CallBr, ret_ty, ops);
        inst.attrs.num_args = n;
        self.push(inst)
    }

    /// `freeze` (versions >= 10.0 only).
    pub fn freeze(&mut self, v: ValueRef) -> ValueRef {
        let ty = self.value_ty(v);
        self.push(Instruction::new(Opcode::Freeze, ty, [v]))
    }

    /// `addrspacecast` (versions >= 3.6 only).
    pub fn addrspacecast(&mut self, v: ValueRef, to: TypeId) -> ValueRef {
        self.cast(Opcode::AddrSpaceCast, v, to)
    }

    // ---- Vectors / aggregates ----------------------------------------------

    /// `extractelement`
    pub fn extractelement(&mut self, vec: ValueRef, idx: ValueRef, elem_ty: TypeId) -> ValueRef {
        self.push(Instruction::new(
            Opcode::ExtractElement,
            elem_ty,
            [vec, idx],
        ))
    }

    /// `insertelement`
    pub fn insertelement(&mut self, vec: ValueRef, elem: ValueRef, idx: ValueRef) -> ValueRef {
        let ty = self.value_ty(vec);
        self.push(Instruction::new(
            Opcode::InsertElement,
            ty,
            [vec, elem, idx],
        ))
    }

    /// `extractvalue`
    pub fn extractvalue(&mut self, agg: ValueRef, indices: Vec<u64>, ty: TypeId) -> ValueRef {
        let mut inst = Instruction::new(Opcode::ExtractValue, ty, [agg]);
        inst.attrs.indices = indices;
        self.push(inst)
    }

    /// `insertvalue`
    pub fn insertvalue(&mut self, agg: ValueRef, val: ValueRef, indices: Vec<u64>) -> ValueRef {
        let ty = self.value_ty(agg);
        let mut inst = Instruction::new(Opcode::InsertValue, ty, [agg, val]);
        inst.attrs.indices = indices;
        self.push(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;
    use crate::version::IrVersion;

    #[test]
    fn builds_a_loop() {
        let mut m = Module::new("loop", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.add_block("entry");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.position_at_end(entry);
        b.br(header);
        b.position_at_end(header);
        let phi = b.phi(i32t, vec![(ValueRef::const_int(i32t, 0), entry)]);
        let cond = b.icmp(IntPredicate::Slt, phi, ValueRef::const_int(i32t, 10));
        b.cond_br(cond, body, exit);
        b.position_at_end(body);
        let next = b.add(phi, ValueRef::const_int(i32t, 1));
        b.br(header);
        // patch the phi with the back edge
        if let ValueRef::Inst(pid) = phi {
            let func = m.func_mut(f);
            let inst = func.inst_mut(pid);
            inst.operands.push(next);
            inst.operands.push(ValueRef::Block(body));
        }
        let mut b = FuncBuilder::new(&mut m, f);
        b.position_at_end(exit);
        b.ret(Some(phi));
        assert_eq!(m.func(f).blocks.len(), 4);
        assert_eq!(
            m.func(f).inst(crate::value::InstId::new(0)).opcode,
            Opcode::Br
        );
        assert_eq!(
            m.func(f).inst(crate::value::InstId::new(2)).opcode,
            Opcode::ICmp
        );
    }

    #[test]
    fn call_and_memory_helpers() {
        let mut m = Module::new("t", IrVersion::V13_0);
        let i32t = m.types.i32();
        let callee = m.add_func(Function::external("ext", i32t, vec![]));
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let slot = b.alloca(i32t);
        let r = b.call(i32t, ValueRef::Func(callee), vec![]);
        b.store(r, slot);
        let v = b.load(i32t, slot);
        b.ret(Some(v));
        assert_eq!(m.func(f).inst_count(), 5);
    }

    #[test]
    #[should_panic(expected = "no insertion point")]
    fn pushing_without_position_panics() {
        let mut m = Module::new("t", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        b.ret(None);
    }
}
