//! The IR Verifier ("verify the integrity and legality of an IR program",
//! Tab. 2 of the paper).
//!
//! Verification is the first half of the "compilation" signal used by the
//! differential-testing validation loop (Fig. 6): a per-test translator whose
//! output fails verification is rejected without ever being executed.

use std::collections::HashSet;

use crate::error::{IrError, IrResult};
use crate::inst::Instruction;
use crate::module::{Function, Module};
use crate::opcode::Opcode;
use crate::types::Type;
use crate::value::{BlockId, ValueRef};

/// The backend-feasibility half of "compilation": checks that every
/// inline-assembly snippet can be lowered by this version's backend.
///
/// Models the paper's php failure mode (Tab. 5): source code hard-coding
/// newer hardware instructions translates fine but fails backend code
/// generation on old versions.
///
/// # Errors
///
/// Returns [`IrError::Verification`] naming each unloadable snippet.
pub fn codegen_check(module: &Module) -> IrResult<()> {
    let max = module.version.max_asm_hw_level();
    let findings: Vec<String> = module
        .asms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.hw_level > max)
        .map(|(i, a)| {
            format!(
                "asm #{i} requires hw level {} but backend {} supports only {max}",
                a.hw_level, module.version
            )
        })
        .collect();
    if findings.is_empty() {
        Ok(())
    } else {
        Err(IrError::Verification(findings))
    }
}

/// Verifies the whole module; returns all findings on failure.
///
/// # Errors
///
/// Returns [`IrError::Verification`] listing every finding.
pub fn verify_module(module: &Module) -> IrResult<()> {
    let findings = collect_findings(module);
    if findings.is_empty() {
        Ok(())
    } else {
        Err(IrError::Verification(findings))
    }
}

/// Runs all checks and returns human-readable findings (empty = valid).
pub fn collect_findings(module: &Module) -> Vec<String> {
    let mut v = Verifier {
        module,
        findings: Vec::new(),
    };
    v.run();
    v.findings
}

struct Verifier<'a> {
    module: &'a Module,
    findings: Vec<String>,
}

impl Verifier<'_> {
    fn report(&mut self, msg: String) {
        self.findings.push(msg);
    }

    fn run(&mut self) {
        let mut names = HashSet::new();
        for f in &self.module.funcs {
            if !names.insert(f.name.clone()) {
                self.report(format!("duplicate function name `{}`", f.name));
            }
        }
        for g in &self.module.globals {
            if !names.insert(g.name.clone()) {
                self.report(format!("duplicate symbol name `{}`", g.name));
            }
        }
        for (idx, f) in self.module.funcs.iter().enumerate() {
            self.check_function(idx, f);
        }
    }

    fn check_function(&mut self, idx: usize, f: &Function) {
        if f.is_external {
            if !f.blocks.is_empty() {
                self.report(format!("external function `{}` has a body", f.name));
            }
            return;
        }
        if f.blocks.is_empty() {
            self.report(format!("function `{}` (#{idx}) has no blocks", f.name));
            return;
        }
        let mut seen_inst = HashSet::new();
        for (bi, block) in f.blocks.iter().enumerate() {
            let bid = BlockId::new(bi as u32);
            if block.insts.is_empty() {
                self.report(format!("{}: block `{}` is empty", f.name, block.name));
                continue;
            }
            for (pos, &iid) in block.insts.iter().enumerate() {
                if iid.index() >= f.insts.len() {
                    self.report(format!("{}: dangling instruction id {:?}", f.name, iid));
                    continue;
                }
                if !seen_inst.insert(iid) {
                    self.report(format!(
                        "{}: instruction {:?} appears in more than one block",
                        f.name, iid
                    ));
                }
                let inst = f.inst(iid);
                let is_last = pos + 1 == block.insts.len();
                if inst.opcode.is_terminator() && !is_last {
                    self.report(format!(
                        "{}/{}: terminator `{}` is not the last instruction",
                        f.name, block.name, inst.opcode
                    ));
                }
                if is_last && !inst.opcode.is_terminator() {
                    self.report(format!(
                        "{}/{}: block does not end with a terminator (ends with `{}`)",
                        f.name, block.name, inst.opcode
                    ));
                }
                if inst.opcode == Opcode::Phi && pos != 0 {
                    // LLVM allows a phi *group* at the head; approximate by
                    // requiring every earlier instruction to be a phi too.
                    let prev = f.inst(block.insts[pos - 1]);
                    if prev.opcode != Opcode::Phi {
                        self.report(format!(
                            "{}/{}: phi not at the start of the block",
                            f.name, block.name
                        ));
                    }
                }
                self.check_inst(f, bid, inst);
            }
        }
    }

    fn check_inst(&mut self, f: &Function, _b: BlockId, inst: &Instruction) {
        let m = self.module;
        if !m.version.supports(inst.opcode) {
            self.report(format!(
                "{}: opcode `{}` requires IR version {} but module is {}",
                f.name,
                inst.opcode,
                inst.opcode.introduced_in(),
                m.version
            ));
        }
        for op in &inst.operands {
            match *op {
                ValueRef::Inst(i) if i.index() >= f.insts.len() => {
                    self.report(format!("{}: operand references dangling {:?}", f.name, i));
                }
                ValueRef::Arg(a) if a as usize >= f.params.len() => {
                    self.report(format!("{}: argument index {a} out of range", f.name));
                }
                ValueRef::Block(b) if b.index() >= f.blocks.len() => {
                    self.report(format!("{}: block operand {:?} out of range", f.name, b));
                }
                ValueRef::Global(g) if g.index() >= m.globals.len() => {
                    self.report(format!("{}: global operand {:?} out of range", f.name, g));
                }
                ValueRef::Func(fid) if fid.index() >= m.funcs.len() => {
                    self.report(format!(
                        "{}: function operand {:?} out of range",
                        f.name, fid
                    ));
                }
                ValueRef::InlineAsm(a) if a.index() >= m.asms.len() => {
                    self.report(format!("{}: asm operand {:?} out of range", f.name, a));
                }
                ValueRef::Placeholder(k) => {
                    self.report(format!(
                        "{}: unresolved translation placeholder #{k} in `{}`",
                        f.name, inst.opcode
                    ));
                }
                _ => {}
            }
        }
        self.check_shape(f, inst);
    }

    /// Per-opcode operand-count / operand-type checks (the interesting subset
    /// relevant for rejecting ill-formed translator output).
    fn check_shape(&mut self, f: &Function, inst: &Instruction) {
        use Opcode::*;
        let m = self.module;
        let n = inst.operands.len();
        let bad = |this: &mut Self, msg: &str| {
            this.report(format!("{}: `{}` {}", f.name, inst.opcode, msg));
        };
        match inst.opcode {
            Ret => {
                if n > 1 {
                    bad(self, "takes at most one operand");
                } else if n == 1 {
                    if let Some(ty) = m.value_type(f, inst.operands[0]) {
                        if ty != f.ret_ty {
                            bad(
                                self,
                                "returned value type differs from function return type",
                            );
                        }
                    }
                } else if m.types.get(f.ret_ty) != &Type::Void {
                    bad(self, "void return in a non-void function");
                }
            }
            Br => {
                let ok = (n == 1 && inst.operands[0].is_block())
                    || (n == 3
                        && !inst.operands[0].is_block()
                        && inst.operands[1].is_block()
                        && inst.operands[2].is_block());
                if !ok {
                    bad(self, "must be `br label` or `br i1, label, label`");
                } else if n == 3 {
                    if let Some(ty) = m.value_type(f, inst.operands[0]) {
                        if m.types.int_bits(ty) != Some(1) {
                            bad(self, "condition must be i1");
                        }
                    }
                }
            }
            Switch => {
                if n < 2 || !n.is_multiple_of(2) {
                    bad(self, "needs value, default, and (const, label) pairs");
                } else if !inst.operands[1].is_block() {
                    bad(self, "second operand must be the default label");
                }
            }
            IndirectBr => {
                if n < 2 {
                    bad(self, "needs an address and at least one destination");
                }
            }
            Add | Sub | Mul | UDiv | SDiv | URem | SRem | Shl | LShr | AShr | And | Or | Xor => {
                if n != 2 {
                    bad(self, "takes exactly two operands");
                } else {
                    let ta = m.value_type(f, inst.operands[0]);
                    let tb = m.value_type(f, inst.operands[1]);
                    if let (Some(a), Some(b)) = (ta, tb) {
                        if a != b {
                            bad(self, "operand types differ");
                        }
                        if !m.types.is_int(a) && !matches!(m.types.get(a), Type::Vector { .. }) {
                            bad(self, "operands must be integers");
                        }
                    }
                }
            }
            FAdd | FSub | FMul | FDiv | FRem => {
                if n != 2 {
                    bad(self, "takes exactly two operands");
                } else if let Some(a) = m.value_type(f, inst.operands[0]) {
                    if !m.types.is_float(a) && !matches!(m.types.get(a), Type::Vector { .. }) {
                        bad(self, "operands must be floating point");
                    }
                }
            }
            FNeg => {
                if n != 1 {
                    bad(self, "takes exactly one operand");
                }
            }
            Alloca => {
                if inst.attrs.alloc_ty.is_none() {
                    bad(self, "missing allocated type");
                }
                if !m.types.is_ptr(inst.ty) {
                    bad(self, "result must be a pointer");
                }
            }
            Load => {
                if n != 1 {
                    bad(self, "takes exactly one operand");
                } else if let Some(t) = m.value_type(f, inst.operands[0]) {
                    if !m.types.is_ptr(t) {
                        bad(self, "operand must be a pointer");
                    }
                }
            }
            Store => {
                if n != 2 {
                    bad(self, "takes exactly two operands");
                }
            }
            GetElementPtr => {
                if n < 2 {
                    bad(self, "needs a base pointer and at least one index");
                }
                if inst.attrs.gep_source_ty.is_none() {
                    bad(self, "missing source element type");
                }
            }
            ICmp => {
                if inst.attrs.int_pred.is_none() {
                    bad(self, "missing predicate");
                }
                if n != 2 {
                    bad(self, "takes exactly two operands");
                }
            }
            FCmp => {
                if inst.attrs.float_pred.is_none() {
                    bad(self, "missing predicate");
                }
                if n != 2 {
                    bad(self, "takes exactly two operands");
                }
            }
            Phi => {
                if n == 0 || !n.is_multiple_of(2) {
                    bad(self, "needs (value, block) pairs");
                } else {
                    for pair in inst.operands.chunks(2) {
                        if !pair[1].is_block() {
                            bad(self, "odd positions must be incoming blocks");
                            break;
                        }
                    }
                }
            }
            Select => {
                if n != 3 {
                    bad(self, "takes cond, true, false");
                }
            }
            Call => {
                if n < 1 {
                    bad(self, "needs a callee");
                } else if let ValueRef::Func(fid) = inst.operands[0] {
                    if fid.index() < m.funcs.len() {
                        let callee = m.func(fid);
                        let argc = n - 1;
                        if !callee.varargs && argc != callee.params.len() {
                            bad(self, "argument count mismatch");
                        }
                        if callee.ret_ty != inst.ty {
                            bad(self, "return type mismatch");
                        }
                    }
                }
            }
            Invoke => {
                if n < 3 {
                    bad(self, "needs callee, normal and unwind destinations");
                } else {
                    let blocks = inst
                        .operands
                        .iter()
                        .rev()
                        .take(2)
                        .filter(|v| v.is_block())
                        .count();
                    if blocks != 2 {
                        bad(self, "last two operands must be destination labels");
                    }
                }
            }
            CallBr => {
                if n < 2 {
                    bad(self, "needs callee and a fallthrough destination");
                }
            }
            Trunc | ZExt | SExt | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP
            | PtrToInt | IntToPtr | BitCast | AddrSpaceCast => {
                if n != 1 {
                    bad(self, "takes exactly one operand");
                } else {
                    self.check_cast(f, inst);
                }
            }
            ExtractValue => {
                if n != 1 || inst.attrs.indices.is_empty() {
                    bad(self, "takes one aggregate and a non-empty index path");
                }
            }
            InsertValue => {
                if n != 2 || inst.attrs.indices.is_empty() {
                    bad(self, "takes aggregate, value, and a non-empty index path");
                }
            }
            ExtractElement => {
                if n != 2 {
                    bad(self, "takes vector and index");
                }
            }
            InsertElement => {
                if n != 3 {
                    bad(self, "takes vector, element, index");
                }
            }
            ShuffleVector => {
                if n != 2 {
                    bad(self, "takes two vectors (mask in attributes)");
                }
            }
            Freeze => {
                if n != 1 {
                    bad(self, "takes exactly one operand");
                }
            }
            Resume | VAArg => {
                if n != 1 {
                    bad(self, "takes exactly one operand");
                }
            }
            Unreachable | Fence | LandingPad => {}
            CmpXchg => {
                if n != 3 {
                    bad(self, "takes pointer, expected, replacement");
                }
            }
            AtomicRmw => {
                if n != 2 || inst.attrs.rmw_op.is_none() {
                    bad(self, "takes pointer and value, with an rmw operation");
                }
            }
            CatchSwitch | CatchPad | CatchRet | CleanupPad | CleanupRet => {}
        }
    }

    /// LLVM-faithful cast legality: each cast opcode constrains its source
    /// and destination types (and widths). These rules are load-bearing for
    /// synthesis: they are what rejects well-typed-but-wrong candidates
    /// like `uitofp ... to i32` at "compilation" time.
    fn check_cast(&mut self, f: &Function, inst: &Instruction) {
        use Opcode::*;
        let m = self.module;
        let Some(src) = m.value_type(f, inst.operands[0]) else {
            return;
        };
        let dst = inst.ty;
        // See through vectors: a cast of a vector casts element-wise.
        let elem = |ty: crate::types::TypeId| match m.types.get(ty) {
            Type::Vector { elem, .. } => *elem,
            _ => ty,
        };
        let (s, d) = (elem(src), elem(dst));
        let int_bits = |t| self.module.types.int_bits(t);
        let is_float = |t| self.module.types.is_float(t);
        let is_ptr = |t| self.module.types.is_ptr(t);
        let float_bits = |t| match self.module.types.get(t) {
            Type::F32 => Some(32u32),
            Type::F64 => Some(64),
            _ => None,
        };
        let mut bad = |msg: &str| {
            self.findings
                .push(format!("{}: `{}` {}", f.name, inst.opcode, msg));
        };
        match inst.opcode {
            Trunc => match (int_bits(s), int_bits(d)) {
                (Some(a), Some(b)) if a > b => {}
                _ => bad("requires integer source wider than its integer destination"),
            },
            ZExt | SExt => match (int_bits(s), int_bits(d)) {
                (Some(a), Some(b)) if a < b => {}
                _ => bad("requires integer source narrower than its integer destination"),
            },
            FPTrunc => match (float_bits(s), float_bits(d)) {
                (Some(a), Some(b)) if a > b => {}
                _ => bad("requires a wider float source than destination"),
            },
            FPExt => match (float_bits(s), float_bits(d)) {
                (Some(a), Some(b)) if a < b => {}
                _ => bad("requires a narrower float source than destination"),
            },
            FPToUI | FPToSI if (!is_float(s) || int_bits(d).is_none()) => {
                bad("requires a float source and an integer destination");
            }
            UIToFP | SIToFP if (int_bits(s).is_none() || !is_float(d)) => {
                bad("requires an integer source and a float destination");
            }
            PtrToInt if (!is_ptr(s) || int_bits(d).is_none()) => {
                bad("requires a pointer source and an integer destination");
            }
            IntToPtr if (int_bits(s).is_none() || !is_ptr(d)) => {
                bad("requires an integer source and a pointer destination");
            }
            BitCast => {
                let ok = (is_ptr(s) && is_ptr(d))
                    || (!is_ptr(s)
                        && !is_ptr(d)
                        && m.types.size_of(src) == m.types.size_of(dst)
                        && m.types.size_of(src) > 0);
                if !ok {
                    bad("requires pointer-to-pointer or same-sized non-aggregate types");
                }
            }
            AddrSpaceCast if (!is_ptr(s) || !is_ptr(d)) => {
                bad("requires pointer types");
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::Instruction;
    use crate::module::Module;
    use crate::value::ValueRef;
    use crate::version::IrVersion;

    fn valid_module() -> Module {
        let mut m = Module::new("ok", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.add(ValueRef::const_int(i32t, 1), ValueRef::const_int(i32t, 2));
        b.ret(Some(v));
        m
    }

    #[test]
    fn valid_module_verifies() {
        assert!(verify_module(&valid_module()).is_ok());
    }

    #[test]
    fn version_gating_rejects_new_opcodes() {
        let mut m = Module::new("bad", IrVersion::V3_6);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.freeze(ValueRef::const_int(i32t, 1));
        b.ret(Some(v));
        let findings = collect_findings(&m);
        assert!(
            findings.iter().any(|s| s.contains("freeze")),
            "{findings:?}"
        );
    }

    #[test]
    fn missing_terminator_detected() {
        let mut m = Module::new("bad", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.add(ValueRef::const_int(i32t, 1), ValueRef::const_int(i32t, 2));
        let findings = collect_findings(&m);
        assert!(findings.iter().any(|s| s.contains("terminator")));
    }

    #[test]
    fn placeholder_rejected() {
        let mut m = valid_module();
        let f = m.func_mut(crate::value::FuncId::new(0));
        f.inst_mut(crate::value::InstId::new(0)).operands[0] = ValueRef::Placeholder(9);
        let findings = collect_findings(&m);
        assert!(findings.iter().any(|s| s.contains("placeholder")));
    }

    #[test]
    fn mismatched_binary_operands_detected() {
        let mut m = Module::new("bad", IrVersion::V13_0);
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.push(Instruction::new(
            Opcode::Add,
            i32t,
            vec![ValueRef::const_int(i32t, 1), ValueRef::const_int(i64t, 2)],
        ));
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let findings = collect_findings(&m);
        assert!(findings.iter().any(|s| s.contains("operand types differ")));
    }

    #[test]
    fn bad_branch_shape_detected() {
        let mut m = Module::new("bad", IrVersion::V13_0);
        let void = m.types.void();
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        // A two-operand br is neither conditional nor unconditional.
        b.push(Instruction::new(
            Opcode::Br,
            void,
            vec![
                ValueRef::Block(crate::value::BlockId::new(0)),
                ValueRef::Block(crate::value::BlockId::new(0)),
            ],
        ));
        let findings = collect_findings(&m);
        assert!(findings.iter().any(|s| s.contains("br")));
    }

    #[test]
    fn call_arity_checked() {
        let mut m = Module::new("bad", IrVersion::V13_0);
        let i32t = m.types.i32();
        let callee = m.add_func(crate::module::Function::external(
            "one_arg",
            i32t,
            vec![crate::module::Param {
                name: "x".into(),
                ty: i32t,
            }],
        ));
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let r = b.call(i32t, ValueRef::Func(callee), vec![]);
        b.ret(Some(r));
        let findings = collect_findings(&m);
        assert!(findings.iter().any(|s| s.contains("argument count")));
    }

    #[test]
    fn ret_type_mismatch_detected() {
        let mut m = Module::new("bad", IrVersion::V13_0);
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i64t, 0)));
        let findings = collect_findings(&m);
        assert!(findings
            .iter()
            .any(|s| s.contains("differs from function return type")));
    }
}
