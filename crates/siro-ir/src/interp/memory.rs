//! Byte-addressable memory for the IR interpreter.
//!
//! Every allocation (stack slot, heap object, global) occupies a disjoint
//! address range; address 0 is never mapped, so null dereferences trap, and
//! freed ranges stay reserved so use-after-free traps too.

use std::collections::BTreeMap;

use super::{Trap, TrapKind};

/// Where an allocation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// `alloca` stack slot.
    Stack,
    /// `malloc`-family heap object.
    Heap,
    /// Global variable storage.
    Global,
    /// Synthetic function-address cell (for indirect calls).
    Code,
}

#[derive(Debug)]
struct Allocation {
    base: u64,
    data: Vec<u8>,
    kind: AllocKind,
    live: bool,
}

/// The interpreter's address space.
#[derive(Debug, Default)]
pub struct Memory {
    /// Allocations keyed by base address.
    allocs: BTreeMap<u64, Allocation>,
    next: u64,
}

const BASE_ADDR: u64 = 0x1000;
const GUARD: u64 = 16;

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Memory {
            allocs: BTreeMap::new(),
            next: BASE_ADDR,
        }
    }

    /// Allocates `size` zeroed bytes and returns the base address.
    pub fn alloc(&mut self, size: u64, kind: AllocKind) -> u64 {
        let size = size.max(1);
        let base = self.next;
        self.next = base + size + GUARD;
        self.allocs.insert(
            base,
            Allocation {
                base,
                data: vec![0; size as usize],
                kind,
                live: true,
            },
        );
        base
    }

    /// Frees a heap allocation at exactly `addr`.
    pub fn free(&mut self, addr: u64) -> Result<(), Trap> {
        if addr == 0 {
            // free(NULL) is a no-op, as in C.
            return Ok(());
        }
        match self.allocs.get_mut(&addr) {
            Some(a) if a.kind == AllocKind::Heap && a.live => {
                a.live = false;
                Ok(())
            }
            Some(a) if !a.live => Err(Trap::new(
                TrapKind::DoubleFree,
                format!("double free at {addr:#x}"),
            )),
            _ => Err(Trap::new(
                TrapKind::InvalidFree,
                format!("free of non-heap address {addr:#x}"),
            )),
        }
    }

    /// Marks a stack allocation dead (function return).
    pub fn kill_stack(&mut self, addr: u64) {
        if let Some(a) = self.allocs.get_mut(&addr) {
            if a.kind == AllocKind::Stack {
                a.live = false;
            }
        }
    }

    fn find(&self, addr: u64, len: u64) -> Result<&Allocation, Trap> {
        if addr == 0 {
            return Err(Trap::new(TrapKind::NullDeref, "null dereference".into()));
        }
        let (_, a) = self
            .allocs
            .range(..=addr)
            .next_back()
            .ok_or_else(|| oob(addr))?;
        let end = a.base + a.data.len() as u64;
        if addr + len > end {
            return Err(oob(addr));
        }
        if !a.live {
            return Err(Trap::new(
                TrapKind::UseAfterFree,
                format!("access to freed memory at {addr:#x}"),
            ));
        }
        Ok(a)
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read(&self, addr: u64, len: u64) -> Result<Vec<u8>, Trap> {
        let a = self.find(addr, len)?;
        let off = (addr - a.base) as usize;
        Ok(a.data[off..off + len as usize].to_vec())
    }

    /// Writes `bytes` starting at `addr`.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        let a = self.find(addr, bytes.len() as u64)?;
        let base = a.base;
        let off = (addr - base) as usize;
        let a = self.allocs.get_mut(&base).unwrap();
        a.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// The [`AllocKind`] containing `addr`, if it is mapped and live.
    pub fn kind_of(&self, addr: u64) -> Option<AllocKind> {
        self.find(addr, 1).ok().map(|a| a.kind)
    }

    /// Number of live heap allocations (for leak accounting in tests).
    pub fn live_heap_count(&self) -> usize {
        self.allocs
            .values()
            .filter(|a| a.kind == AllocKind::Heap && a.live)
            .count()
    }
}

fn oob(addr: u64) -> Trap {
    Trap::new(
        TrapKind::OutOfBounds,
        format!("out-of-bounds access at {addr:#x}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut m = Memory::new();
        let p = m.alloc(8, AllocKind::Heap);
        m.write(p, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read(p, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(m.read(p + 2, 2).unwrap(), vec![3, 4]);
    }

    #[test]
    fn null_deref_traps() {
        let m = Memory::new();
        let t = m.read(0, 1).unwrap_err();
        assert_eq!(t.kind, TrapKind::NullDeref);
    }

    #[test]
    fn use_after_free_traps() {
        let mut m = Memory::new();
        let p = m.alloc(8, AllocKind::Heap);
        m.free(p).unwrap();
        let t = m.read(p, 1).unwrap_err();
        assert_eq!(t.kind, TrapKind::UseAfterFree);
    }

    #[test]
    fn double_free_traps() {
        let mut m = Memory::new();
        let p = m.alloc(8, AllocKind::Heap);
        m.free(p).unwrap();
        assert_eq!(m.free(p).unwrap_err().kind, TrapKind::DoubleFree);
    }

    #[test]
    fn free_null_is_noop() {
        let mut m = Memory::new();
        assert!(m.free(0).is_ok());
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = Memory::new();
        let p = m.alloc(4, AllocKind::Stack);
        assert_eq!(m.read(p, 5).unwrap_err().kind, TrapKind::OutOfBounds);
        assert_eq!(m.read(p + 100, 1).unwrap_err().kind, TrapKind::OutOfBounds);
    }

    #[test]
    fn leak_accounting() {
        let mut m = Memory::new();
        let a = m.alloc(4, AllocKind::Heap);
        let _b = m.alloc(4, AllocKind::Heap);
        assert_eq!(m.live_heap_count(), 2);
        m.free(a).unwrap();
        assert_eq!(m.live_heap_count(), 1);
    }
}
