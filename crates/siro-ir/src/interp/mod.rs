//! The IR interpreter — the execution half of the paper's differential
//! testing oracle (Fig. 6).
//!
//! A test case is an IR program whose `main` returns a constant; validation
//! interprets the translated program and compares the returned value against
//! the oracle. The interpreter also powers the fuzzing client: it models a
//! tiny libc (`malloc`/`free`/`open`/`close`), a PoC input stream
//! (`input(i)` reads byte `i`), and a `magma_bug(id)` crash sink that records
//! CVE triggers.
//!
//! # Simulated semantics
//!
//! Two deliberate simplifications, applied uniformly to *all* versions so
//! differential comparisons remain meaningful:
//!
//! * `indirectbr` treats its address operand as an index into its
//!   destination list;
//! * inline assembly has interpretable micro-semantics (`ret N`, `add`,
//!   `nop`) plus a hardware level that must be supported by the executing
//!   version's backend (see [`IrVersion::max_asm_hw_level`]).
//!
//! [`IrVersion::max_asm_hw_level`]: crate::IrVersion::max_asm_hw_level

pub mod memory;

use std::collections::HashMap;
use std::fmt;

use crate::error::{IrError, IrResult};
use crate::inst::{FloatPredicate, Instruction, IntPredicate, RmwOp};
use crate::module::{Function, GlobalInit, Module};
use crate::opcode::Opcode;
use crate::types::{Type, TypeId};
use crate::value::{BlockId, FuncId, InstId, ValueRef};

pub use memory::{AllocKind, Memory};

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// Load/store through a null pointer.
    NullDeref,
    /// Access to freed memory.
    UseAfterFree,
    /// Second `free` of the same allocation.
    DoubleFree,
    /// `free` of a non-heap pointer.
    InvalidFree,
    /// Access outside any allocation.
    OutOfBounds,
    /// Integer division or remainder by zero.
    DivByZero,
    /// Executed `unreachable`.
    Unreachable,
    /// `abort()` was called.
    Abort,
    /// A planted crash site fired (fuzzing client); payload is the CVE id.
    Crash(u32),
    /// Inline assembly requires a newer backend than the module version has.
    UnsupportedAsm,
    /// Executed `resume` outside an unwind context.
    Resume,
    /// Ran out of interpretation fuel.
    FuelExhausted,
    /// Call stack too deep.
    DepthExceeded,
    /// `indirectbr` index out of range.
    BadIndirect,
    /// Anything else.
    Unsupported,
}

/// An abnormal termination with a human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// The category.
    pub kind: TrapKind,
    /// Details for diagnostics.
    pub detail: String,
}

impl Trap {
    /// Creates a trap.
    pub fn new(kind: TrapKind, detail: String) -> Self {
        Trap { kind, detail }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// A side effect observed during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `magma_bug(id)` fired.
    CveTriggered(u32),
    /// A file descriptor was opened.
    FdOpened(i64),
    /// A file descriptor was closed.
    FdClosed(i64),
    /// An unmodeled external function was called.
    ExternalCall(String),
    /// `sink(v)` observed a value.
    Sink(i64),
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum RtVal {
    /// An integer of the given bit width; stored masked to the width.
    Int {
        /// Bit width.
        bits: u32,
        /// Value, kept in the low `bits` bits (unsigned canonical form).
        val: u128,
    },
    /// A 32-bit float.
    F32(f32),
    /// A 64-bit float.
    F64(f64),
    /// A pointer (0 = null).
    Ptr(u64),
    /// A SIMD vector.
    Vector(Vec<RtVal>),
    /// A struct or array aggregate.
    Agg(Vec<RtVal>),
    /// An undefined value.
    Undef,
}

impl RtVal {
    /// Creates a masked integer.
    pub fn int(bits: u32, val: i128) -> Self {
        RtVal::Int {
            bits,
            val: mask(bits, val as u128),
        }
    }

    /// The value as a sign-extended i128, if it is an integer.
    pub fn as_sint(&self) -> Option<i128> {
        match *self {
            RtVal::Int { bits, val } => Some(sext(bits, val)),
            _ => None,
        }
    }

    /// The value as an unsigned u128, if it is an integer.
    pub fn as_uint(&self) -> Option<u128> {
        match *self {
            RtVal::Int { val, .. } => Some(val),
            _ => None,
        }
    }

    /// The value as a pointer address, if it is one.
    pub fn as_ptr(&self) -> Option<u64> {
        match *self {
            RtVal::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// The value as an f64 (widening f32), if floating.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            RtVal::F32(v) => Some(f64::from(v)),
            RtVal::F64(v) => Some(v),
            _ => None,
        }
    }
}

fn mask(bits: u32, v: u128) -> u128 {
    if bits >= 128 {
        v
    } else {
        v & ((1u128 << bits) - 1)
    }
}

fn sext(bits: u32, v: u128) -> i128 {
    if bits == 0 || bits >= 128 {
        return v as i128;
    }
    let shift = 128 - bits;
    ((v << shift) as i128) >> shift
}

/// How execution ended.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// `main` returned normally.
    Returned(RtVal),
    /// Execution trapped.
    Trapped(Trap),
}

/// The full result of an interpretation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Normal return or trap.
    pub result: ExecResult,
    /// Instructions executed.
    pub steps: u64,
    /// Observed side effects, in order.
    pub events: Vec<Event>,
    /// Heap allocations never freed (memory-leak accounting).
    pub leaked_heap: usize,
}

impl Outcome {
    /// The returned integer, if `main` returned an integer normally.
    pub fn return_int(&self) -> Option<i64> {
        match &self.result {
            ExecResult::Returned(v) => v.as_sint().map(|v| v as i64),
            ExecResult::Trapped(_) => None,
        }
    }

    /// The trap, if execution crashed.
    pub fn trap(&self) -> Option<&Trap> {
        match &self.result {
            ExecResult::Trapped(t) => Some(t),
            ExecResult::Returned(_) => None,
        }
    }

    /// Whether execution ended in any trap.
    pub fn crashed(&self) -> bool {
        self.trap().is_some()
    }

    /// CVE ids triggered during the run.
    pub fn triggered_cves(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Event::CveTriggered(id) => Some(*id),
                _ => None,
            })
            .collect();
        if let Some(Trap {
            kind: TrapKind::Crash(id),
            ..
        }) = self.trap()
        {
            if !ids.contains(id) {
                ids.push(*id);
            }
        }
        ids
    }
}

enum Flow {
    Next,
    Jump(BlockId),
    Return(RtVal),
}

/// Interprets one [`Module`].
///
/// # Examples
///
/// ```
/// use siro_ir::{FuncBuilder, IrVersion, Module, ValueRef, interp::Machine};
///
/// let mut m = Module::new("m", IrVersion::V3_6);
/// let i32t = m.types.i32();
/// let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
/// let mut b = FuncBuilder::new(&mut m, f);
/// let e = b.add_block("entry");
/// b.position_at_end(e);
/// b.ret(Some(ValueRef::const_int(i32t, 7)));
/// assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(7));
/// ```
pub struct Machine<'m> {
    module: &'m Module,
    mem: Memory,
    global_addrs: Vec<u64>,
    func_addr_to_id: HashMap<u64, FuncId>,
    func_addrs: Vec<u64>,
    input: Vec<u8>,
    fuel: u64,
    depth: u32,
    events: Vec<Event>,
    steps: u64,
    fd_next: i64,
    open_fds: Vec<i64>,
}

impl fmt::Debug for Machine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("module", &self.module.name)
            .field("steps", &self.steps)
            .field("fuel", &self.fuel)
            .finish_non_exhaustive()
    }
}

const DEFAULT_FUEL: u64 = 4_000_000;
// The interpreter recurses natively per IR call frame; keep the limit
// well inside a default 2 MiB test-thread stack even for debug builds.
const MAX_DEPTH: u32 = 48;

impl<'m> Machine<'m> {
    /// Creates a machine over `module` with default fuel and empty input.
    pub fn new(module: &'m Module) -> Self {
        let mut mem = Memory::new();
        // Globals.
        let mut global_addrs = Vec::with_capacity(module.globals.len());
        for g in &module.globals {
            let size = module.types.size_of(g.ty).max(1);
            let addr = mem.alloc(size, AllocKind::Global);
            let bytes = match &g.init {
                GlobalInit::External | GlobalInit::Zero => vec![0u8; size as usize],
                GlobalInit::Int(v) => {
                    let mut b = v.to_le_bytes().to_vec();
                    b.resize(size as usize, 0);
                    b.truncate(size as usize);
                    b
                }
                GlobalInit::Float(v) => {
                    let mut b = v.to_le_bytes().to_vec();
                    b.resize(size as usize, 0);
                    b.truncate(size as usize);
                    b
                }
                GlobalInit::Bytes(bs) => {
                    let mut b = bs.clone();
                    b.resize(size as usize, 0);
                    b
                }
            };
            mem.write(addr, &bytes).expect("global init");
            global_addrs.push(addr);
        }
        // Function address cells for indirect calls.
        let mut func_addr_to_id = HashMap::new();
        let mut func_addrs = Vec::with_capacity(module.funcs.len());
        for (i, _) in module.funcs.iter().enumerate() {
            let addr = mem.alloc(8, AllocKind::Code);
            func_addr_to_id.insert(addr, FuncId::new(i as u32));
            func_addrs.push(addr);
        }
        Machine {
            module,
            mem,
            global_addrs,
            func_addr_to_id,
            func_addrs,
            input: Vec::new(),
            fuel: DEFAULT_FUEL,
            depth: 0,
            events: Vec::new(),
            steps: 0,
            fd_next: 3,
            open_fds: Vec::new(),
        }
    }

    /// Sets the PoC input stream read by the `input(i)` external.
    pub fn with_input(mut self, input: impl Into<Vec<u8>>) -> Self {
        self.input = input.into();
        self
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs `main()` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NotFound`] if the module has no `main` function.
    /// Traps are reported inside the [`Outcome`], not as errors.
    pub fn run_main(mut self) -> IrResult<Outcome> {
        let fid = self
            .module
            .func_by_name("main")
            .ok_or_else(|| IrError::NotFound("main".into()))?;
        let res = self.call_function(fid, Vec::new());
        Ok(self.finish(res))
    }

    /// Runs an arbitrary function with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::NotFound`] if no function has that name.
    pub fn run_func(mut self, name: &str, args: Vec<RtVal>) -> IrResult<Outcome> {
        let fid = self
            .module
            .func_by_name(name)
            .ok_or_else(|| IrError::NotFound(name.into()))?;
        let res = self.call_function(fid, args);
        Ok(self.finish(res))
    }

    fn finish(self, res: Result<RtVal, Trap>) -> Outcome {
        Outcome {
            result: match res {
                Ok(v) => ExecResult::Returned(v),
                Err(t) => ExecResult::Trapped(t),
            },
            steps: self.steps,
            events: self.events,
            leaked_heap: self.mem.live_heap_count(),
        }
    }

    fn call_function(&mut self, fid: FuncId, args: Vec<RtVal>) -> Result<RtVal, Trap> {
        let func = self.module.func(fid);
        if func.is_external {
            return self.call_external(func, args);
        }
        if self.depth >= MAX_DEPTH {
            return Err(Trap::new(TrapKind::DepthExceeded, func.name.clone()));
        }
        self.depth += 1;
        let result = self.exec_body(func, args);
        self.depth -= 1;
        result
    }

    fn exec_body(&mut self, func: &Function, args: Vec<RtVal>) -> Result<RtVal, Trap> {
        let mut env: Vec<Option<RtVal>> = vec![None; func.insts.len()];
        let mut frame_allocs: Vec<u64> = Vec::new();
        let mut cur = func.entry().ok_or_else(|| {
            Trap::new(
                TrapKind::Unsupported,
                format!("`{}` has no body", func.name),
            )
        })?;
        let mut prev: Option<BlockId> = None;
        let ret = 'outer: loop {
            let block = func.block(cur);
            // Parallel phi evaluation.
            let mut phi_updates = Vec::new();
            let mut body_start = 0;
            for (i, &iid) in block.insts.iter().enumerate() {
                let inst = func.inst(iid);
                if inst.opcode != Opcode::Phi {
                    body_start = i;
                    break;
                }
                body_start = i + 1;
                let pb = prev
                    .ok_or_else(|| Trap::new(TrapKind::Unsupported, "phi in entry block".into()))?;
                let incoming = inst.phi_incoming();
                let (v, _) = incoming
                    .into_iter()
                    .find(|(_, b)| *b == pb)
                    .ok_or_else(|| {
                        Trap::new(
                            TrapKind::Unsupported,
                            format!("phi lacks incoming edge from block {}", pb.raw()),
                        )
                    })?;
                phi_updates.push((iid, self.eval(func, &env, args.as_slice(), v)?));
            }
            for (iid, v) in phi_updates {
                env[iid.index()] = Some(v);
            }
            for &iid in &block.insts[body_start..] {
                if self.steps >= self.fuel {
                    break 'outer Err(Trap::new(TrapKind::FuelExhausted, String::new()));
                }
                self.steps += 1;
                let inst = func.inst(iid);
                match self.exec_inst(
                    func,
                    &mut env,
                    args.as_slice(),
                    &mut frame_allocs,
                    iid,
                    inst,
                ) {
                    Ok(Flow::Next) => {}
                    Ok(Flow::Jump(b)) => {
                        prev = Some(cur);
                        cur = b;
                        continue 'outer;
                    }
                    Ok(Flow::Return(v)) => break 'outer Ok(v),
                    Err(t) => break 'outer Err(t),
                }
            }
            break Err(Trap::new(
                TrapKind::Unsupported,
                format!("block `{}` fell through without terminator", block.name),
            ));
        };
        for a in frame_allocs {
            self.mem.kill_stack(a);
        }
        ret
    }

    fn eval(
        &mut self,
        func: &Function,
        env: &[Option<RtVal>],
        args: &[RtVal],
        v: ValueRef,
    ) -> Result<RtVal, Trap> {
        Ok(match v {
            ValueRef::Inst(i) => env
                .get(i.index())
                .and_then(|o| o.clone())
                .unwrap_or(RtVal::Undef),
            ValueRef::Arg(a) => args.get(a as usize).cloned().unwrap_or(RtVal::Undef),
            ValueRef::Global(g) => RtVal::Ptr(self.global_addrs[g.index()]),
            ValueRef::Func(f) => RtVal::Ptr(self.func_addrs[f.index()]),
            ValueRef::Block(_) | ValueRef::InlineAsm(_) => {
                return Err(Trap::new(
                    TrapKind::Unsupported,
                    "label/asm evaluated as data".into(),
                ))
            }
            ValueRef::ConstInt { ty, value } => {
                let bits = self.module.types.int_bits(ty).unwrap_or(64);
                RtVal::int(bits, value as i128)
            }
            ValueRef::ConstFloat { ty, bits } => {
                let f = f64::from_bits(bits);
                if matches!(self.module.types.get(ty), Type::F32) {
                    RtVal::F32(f as f32)
                } else {
                    RtVal::F64(f)
                }
            }
            ValueRef::Null(_) => RtVal::Ptr(0),
            ValueRef::Undef(_) => RtVal::Undef,
            ValueRef::ZeroInit(ty) => self.zero_value(ty),
            ValueRef::Placeholder(k) => {
                return Err(Trap::new(
                    TrapKind::Unsupported,
                    format!("unresolved placeholder #{k}"),
                ))
            }
        })
        .inspect(|_v| {
            let _ = func;
        })
    }

    fn zero_value(&self, ty: TypeId) -> RtVal {
        match self.module.types.get(ty) {
            Type::Void | Type::Label | Type::Token => RtVal::Undef,
            Type::Int(b) => RtVal::int(*b, 0),
            Type::F32 => RtVal::F32(0.0),
            Type::F64 => RtVal::F64(0.0),
            Type::Ptr { .. } | Type::Func { .. } => RtVal::Ptr(0),
            Type::Array { elem, len } => RtVal::Agg(vec![self.zero_value(*elem); *len as usize]),
            Type::Vector { elem, len } => {
                RtVal::Vector(vec![self.zero_value(*elem); *len as usize])
            }
            Type::Struct { fields } => {
                RtVal::Agg(fields.iter().map(|&f| self.zero_value(f)).collect())
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_inst(
        &mut self,
        func: &Function,
        env: &mut [Option<RtVal>],
        args: &[RtVal],
        frame_allocs: &mut Vec<u64>,
        iid: InstId,
        inst: &Instruction,
    ) -> Result<Flow, Trap> {
        use Opcode::*;
        macro_rules! ev {
            ($v:expr) => {
                self.eval(func, env, args, $v)?
            };
        }
        macro_rules! set {
            ($v:expr) => {{
                env[iid.index()] = Some($v);
                Ok(Flow::Next)
            }};
        }
        match inst.opcode {
            Ret => {
                let v = if inst.operands.is_empty() {
                    RtVal::Undef
                } else {
                    ev!(inst.operands[0])
                };
                Ok(Flow::Return(v))
            }
            Br => {
                if inst.operands.len() == 1 {
                    Ok(Flow::Jump(inst.operands[0].as_block().unwrap()))
                } else {
                    let c = ev!(inst.operands[0]);
                    let taken = c.as_uint().unwrap_or(0) & 1 == 1;
                    let b = if taken {
                        inst.operands[1]
                    } else {
                        inst.operands[2]
                    };
                    Ok(Flow::Jump(b.as_block().ok_or_else(|| {
                        Trap::new(TrapKind::Unsupported, "br target not a label".into())
                    })?))
                }
            }
            Switch => {
                let v = ev!(inst.operands[0]).as_uint().unwrap_or(0);
                for (c, dest) in inst.switch_cases() {
                    let cv = match c {
                        ValueRef::ConstInt { ty, value } => {
                            let bits = self.module.types.int_bits(ty).unwrap_or(64);
                            mask(bits, value as u128)
                        }
                        _ => continue,
                    };
                    if cv == v {
                        return Ok(Flow::Jump(dest));
                    }
                }
                Ok(Flow::Jump(inst.operands[1].as_block().unwrap()))
            }
            IndirectBr => {
                // Simulated semantics: address is an index into the list.
                let idx = ev!(inst.operands[0]).as_uint().unwrap_or(0) as usize;
                let dests: Vec<BlockId> = inst.operands[1..]
                    .iter()
                    .filter_map(|v| v.as_block())
                    .collect();
                dests.get(idx).copied().map(Flow::Jump).ok_or_else(|| {
                    Trap::new(
                        TrapKind::BadIndirect,
                        format!("index {idx} of {}", dests.len()),
                    )
                })
            }
            Unreachable => Err(Trap::new(TrapKind::Unreachable, String::new())),
            Resume => Err(Trap::new(TrapKind::Resume, String::new())),
            // Arithmetic -----------------------------------------------------
            Add | Sub | Mul | UDiv | SDiv | URem | SRem | Shl | LShr | AShr | And | Or | Xor => {
                let a = ev!(inst.operands[0]);
                let b = ev!(inst.operands[1]);
                set!(self.int_binary(inst.opcode, a, b)?)
            }
            FAdd | FSub | FMul | FDiv | FRem => {
                let a = ev!(inst.operands[0]);
                let b = ev!(inst.operands[1]);
                set!(self.float_binary(inst.opcode, a, b)?)
            }
            FNeg => {
                let a = ev!(inst.operands[0]);
                let r = match a {
                    RtVal::F32(v) => RtVal::F32(-v),
                    RtVal::F64(v) => RtVal::F64(-v),
                    RtVal::Vector(vs) => RtVal::Vector(
                        vs.into_iter()
                            .map(|v| match v {
                                RtVal::F32(v) => RtVal::F32(-v),
                                RtVal::F64(v) => RtVal::F64(-v),
                                other => other,
                            })
                            .collect(),
                    ),
                    RtVal::Undef => RtVal::Undef,
                    _ => return Err(type_trap("fneg")),
                };
                set!(r)
            }
            // Memory --------------------------------------------------------
            Alloca => {
                let ty = inst.attrs.alloc_ty.ok_or_else(|| type_trap("alloca"))?;
                let count = if let Some(&c) = inst.operands.first() {
                    ev!(c).as_uint().unwrap_or(1) as u64
                } else {
                    1
                };
                let size = self.module.types.size_of(ty).max(1) * count.max(1);
                let addr = self.mem.alloc(size, AllocKind::Stack);
                frame_allocs.push(addr);
                set!(RtVal::Ptr(addr))
            }
            Load => {
                let p = ev!(inst.operands[0]);
                let addr = p.as_ptr().ok_or_else(|| type_trap("load"))?;
                let v = self.load_typed(inst.ty, addr)?;
                set!(v)
            }
            Store => {
                let v = ev!(inst.operands[0]);
                let p = ev!(inst.operands[1]);
                let addr = p.as_ptr().ok_or_else(|| type_trap("store"))?;
                match self.module.value_type(func, inst.operands[0]) {
                    Some(vty) => self.store_typed(vty, addr, &v)?,
                    None => {
                        // Function/global addresses have no table type; store
                        // them as raw 8-byte pointers.
                        let p = v.as_ptr().unwrap_or(0);
                        self.mem.write(addr, &p.to_le_bytes())?;
                    }
                }
                set!(RtVal::Undef)
            }
            GetElementPtr => {
                let base = ev!(inst.operands[0]);
                let addr = base.as_ptr().ok_or_else(|| type_trap("gep"))?;
                let src = inst
                    .attrs
                    .gep_source_ty
                    .ok_or_else(|| type_trap("gep source type"))?;
                let mut offset: i128 = 0;
                let mut cur_ty = src;
                for (i, &idx_op) in inst.operands[1..].iter().enumerate() {
                    let idx = ev!(idx_op).as_sint().unwrap_or(0);
                    if i == 0 {
                        offset += idx * self.module.types.size_of(src) as i128;
                    } else {
                        match self.module.types.get(cur_ty).clone() {
                            Type::Array { elem, .. } => {
                                offset += idx * self.module.types.size_of(elem) as i128;
                                cur_ty = elem;
                            }
                            Type::Vector { elem, .. } => {
                                offset += idx * self.module.types.size_of(elem) as i128;
                                cur_ty = elem;
                            }
                            Type::Struct { fields } => {
                                let fi = idx as u32;
                                let off = self
                                    .module
                                    .types
                                    .struct_field_offset(cur_ty, fi)
                                    .ok_or_else(|| type_trap("gep struct index"))?;
                                offset += off as i128;
                                cur_ty = fields[fi as usize];
                            }
                            _ => return Err(type_trap("gep through scalar")),
                        }
                    }
                }
                set!(RtVal::Ptr((addr as i128 + offset) as u64))
            }
            Fence => set!(RtVal::Undef),
            CmpXchg => {
                let addr = ev!(inst.operands[0])
                    .as_ptr()
                    .ok_or_else(|| type_trap("cmpxchg"))?;
                let expected = ev!(inst.operands[1]);
                let new = ev!(inst.operands[2]);
                let vty = self
                    .module
                    .value_type(func, inst.operands[1])
                    .ok_or_else(|| type_trap("cmpxchg value type"))?;
                let old = self.load_typed(vty, addr)?;
                let equal = old == expected;
                if equal {
                    self.store_typed(vty, addr, &new)?;
                }
                set!(RtVal::Agg(vec![old, RtVal::int(1, i128::from(equal))]))
            }
            AtomicRmw => {
                let addr = ev!(inst.operands[0])
                    .as_ptr()
                    .ok_or_else(|| type_trap("atomicrmw"))?;
                let v = ev!(inst.operands[1]);
                let vty = self
                    .module
                    .value_type(func, inst.operands[1])
                    .ok_or_else(|| type_trap("atomicrmw value type"))?;
                let old = self.load_typed(vty, addr)?;
                let op = inst.attrs.rmw_op.ok_or_else(|| type_trap("rmw op"))?;
                let bits = match old {
                    RtVal::Int { bits, .. } => bits,
                    _ => return Err(type_trap("atomicrmw on non-integer")),
                };
                let a = old.as_sint().unwrap_or(0);
                let au = old.as_uint().unwrap_or(0);
                let b = v.as_sint().unwrap_or(0);
                let bu = v.as_uint().unwrap_or(0);
                let newv = match op {
                    RmwOp::Xchg => b,
                    RmwOp::Add => a.wrapping_add(b),
                    RmwOp::Sub => a.wrapping_sub(b),
                    RmwOp::And => a & b,
                    RmwOp::Or => a | b,
                    RmwOp::Xor => a ^ b,
                    RmwOp::Max => a.max(b),
                    RmwOp::Min => a.min(b),
                    RmwOp::UMax => au.max(bu) as i128,
                    RmwOp::UMin => au.min(bu) as i128,
                };
                self.store_typed(vty, addr, &RtVal::int(bits, newv))?;
                set!(old)
            }
            // Casts -----------------------------------------------------------
            Trunc | ZExt | SExt | FPTrunc | FPExt | FPToUI | FPToSI | UIToFP | SIToFP
            | PtrToInt | IntToPtr | BitCast | AddrSpaceCast => {
                let v = ev!(inst.operands[0]);
                set!(self.cast(inst.opcode, v, inst.ty)?)
            }
            // Comparison / select ----------------------------------------------
            ICmp => {
                let a = ev!(inst.operands[0]);
                let b = ev!(inst.operands[1]);
                let p = inst.attrs.int_pred.ok_or_else(|| type_trap("icmp"))?;
                set!(icmp_val(p, &a, &b)?)
            }
            FCmp => {
                let a = ev!(inst.operands[0]);
                let b = ev!(inst.operands[1]);
                let p = inst.attrs.float_pred.ok_or_else(|| type_trap("fcmp"))?;
                set!(fcmp_val(p, &a, &b)?)
            }
            Select => {
                let c = ev!(inst.operands[0]).as_uint().unwrap_or(0) & 1 == 1;
                let v = if c {
                    ev!(inst.operands[1])
                } else {
                    ev!(inst.operands[2])
                };
                set!(v)
            }
            Phi => {
                // Handled in the block-transfer loop; reaching here means a
                // phi after non-phi instructions, tolerated as identity.
                Ok(Flow::Next)
            }
            // Calls ------------------------------------------------------------
            Call => {
                let r = self.do_call(func, env, args, inst)?;
                set!(r)
            }
            Invoke => {
                let r = self.do_call(func, env, args, inst)?;
                env[iid.index()] = Some(r);
                // Never unwinds in this model: always the normal destination.
                let blocks: Vec<BlockId> =
                    inst.operands.iter().filter_map(|v| v.as_block()).collect();
                Ok(Flow::Jump(blocks[0]))
            }
            CallBr => {
                let r = self.do_call(func, env, args, inst)?;
                env[iid.index()] = Some(r);
                // Fallthrough destination (asm-goto side targets never taken).
                let blocks: Vec<BlockId> =
                    inst.operands.iter().filter_map(|v| v.as_block()).collect();
                Ok(Flow::Jump(blocks[0]))
            }
            VAArg => set!(self.zero_value(inst.ty)),
            LandingPad => set!(self.zero_value(inst.ty)),
            // Vector / aggregate -------------------------------------------------
            ExtractElement => {
                let v = ev!(inst.operands[0]);
                let idx = ev!(inst.operands[1]).as_uint().unwrap_or(0) as usize;
                match v {
                    RtVal::Vector(vs) => {
                        set!(vs.get(idx).cloned().unwrap_or(RtVal::Undef))
                    }
                    RtVal::Undef => set!(RtVal::Undef),
                    _ => Err(type_trap("extractelement")),
                }
            }
            InsertElement => {
                let v = ev!(inst.operands[0]);
                let e = ev!(inst.operands[1]);
                let idx = ev!(inst.operands[2]).as_uint().unwrap_or(0) as usize;
                match v {
                    RtVal::Vector(mut vs) => {
                        if idx < vs.len() {
                            vs[idx] = e;
                        }
                        set!(RtVal::Vector(vs))
                    }
                    RtVal::Undef => {
                        // Materialize a zero vector of the result type.
                        let mut z = match self.zero_value(inst.ty) {
                            RtVal::Vector(vs) => vs,
                            _ => return Err(type_trap("insertelement")),
                        };
                        if idx < z.len() {
                            z[idx] = e;
                        }
                        set!(RtVal::Vector(z))
                    }
                    _ => Err(type_trap("insertelement")),
                }
            }
            ShuffleVector => {
                let a = ev!(inst.operands[0]);
                let b = ev!(inst.operands[1]);
                let (av, bv) = match (a, b) {
                    (RtVal::Vector(a), RtVal::Vector(b)) => (a, b),
                    _ => return Err(type_trap("shufflevector")),
                };
                let n = av.len();
                let out: Vec<RtVal> = inst
                    .attrs
                    .indices
                    .iter()
                    .map(|&i| {
                        let i = i as usize;
                        if i < n {
                            av[i].clone()
                        } else {
                            bv.get(i - n).cloned().unwrap_or(RtVal::Undef)
                        }
                    })
                    .collect();
                set!(RtVal::Vector(out))
            }
            ExtractValue => {
                let mut v = ev!(inst.operands[0]);
                for &i in &inst.attrs.indices {
                    v = match v {
                        RtVal::Agg(mut vs) => {
                            if (i as usize) < vs.len() {
                                vs.swap_remove(i as usize)
                            } else {
                                RtVal::Undef
                            }
                        }
                        RtVal::Undef => RtVal::Undef,
                        _ => return Err(type_trap("extractvalue")),
                    };
                }
                set!(v)
            }
            InsertValue => {
                let agg = ev!(inst.operands[0]);
                let val = ev!(inst.operands[1]);
                let agg = match agg {
                    RtVal::Agg(vs) => RtVal::Agg(vs),
                    RtVal::Undef => self.zero_value(inst.ty),
                    other => other,
                };
                fn ins(v: RtVal, path: &[u64], val: RtVal) -> RtVal {
                    match (v, path) {
                        (v, []) => {
                            let _ = v;
                            val
                        }
                        (RtVal::Agg(mut vs), [h, rest @ ..]) => {
                            let h = *h as usize;
                            if h < vs.len() {
                                let old = std::mem::replace(&mut vs[h], RtVal::Undef);
                                vs[h] = ins(old, rest, val);
                            }
                            RtVal::Agg(vs)
                        }
                        (other, _) => other,
                    }
                }
                set!(ins(agg, &inst.attrs.indices, val))
            }
            Freeze => {
                let v = ev!(inst.operands[0]);
                let r = if v == RtVal::Undef {
                    self.zero_value(inst.ty)
                } else {
                    v
                };
                set!(r)
            }
            // The Windows EH family gets trivial simulated semantics (no
            // unwinding ever happens in this model): pads produce a token,
            // switch/ret transfer to their first destination.
            CatchPad | CleanupPad => set!(RtVal::Undef),
            CatchSwitch | CatchRet | CleanupRet => {
                let dest = inst
                    .operands
                    .iter()
                    .find_map(|v| v.as_block())
                    .ok_or_else(|| {
                        Trap::new(TrapKind::Unsupported, "EH transfer without dest".into())
                    })?;
                Ok(Flow::Jump(dest))
            }
        }
    }

    fn do_call(
        &mut self,
        func: &Function,
        env: &[Option<RtVal>],
        args: &[RtVal],
        inst: &Instruction,
    ) -> Result<RtVal, Trap> {
        let callee = inst.callee().ok_or_else(|| type_trap("call callee"))?;
        let mut call_args = Vec::new();
        for &a in inst.call_args() {
            call_args.push(self.eval(func, env, args, a)?);
        }
        match callee {
            ValueRef::Func(fid) => self.call_function(fid, call_args),
            ValueRef::InlineAsm(aid) => self.call_asm(aid, &call_args, inst.ty),
            other => {
                let v = self.eval(func, env, args, other)?;
                let addr = v.as_ptr().ok_or_else(|| type_trap("indirect callee"))?;
                let fid = *self.func_addr_to_id.get(&addr).ok_or_else(|| {
                    Trap::new(
                        TrapKind::Unsupported,
                        format!("indirect call to non-function address {addr:#x}"),
                    )
                })?;
                self.call_function(fid, call_args)
            }
        }
    }

    fn call_asm(
        &mut self,
        aid: crate::value::AsmId,
        args: &[RtVal],
        ret_ty: TypeId,
    ) -> Result<RtVal, Trap> {
        let asm = self.module.asm(aid);
        if asm.hw_level > self.module.version.max_asm_hw_level() {
            return Err(Trap::new(
                TrapKind::UnsupportedAsm,
                format!(
                    "asm requires hw level {} but backend {} supports {}",
                    asm.hw_level,
                    self.module.version,
                    self.module.version.max_asm_hw_level()
                ),
            ));
        }
        let text = asm.text.trim();
        if let Some(rest) = text.strip_prefix("ret ") {
            let n: i128 = rest.trim().parse().unwrap_or(0);
            return Ok(RtVal::int(
                self.module.types.int_bits(ret_ty).unwrap_or(32),
                n,
            ));
        }
        if text.starts_with("add") {
            let sum: i128 = args.iter().filter_map(RtVal::as_sint).sum();
            return Ok(RtVal::int(
                self.module.types.int_bits(ret_ty).unwrap_or(32),
                sum,
            ));
        }
        // nop / unknown: first argument or zero.
        Ok(args.first().cloned().unwrap_or(RtVal::Undef))
    }

    #[allow(clippy::too_many_lines)]
    fn call_external(&mut self, func: &Function, args: Vec<RtVal>) -> Result<RtVal, Trap> {
        let arg_int = |i: usize| -> i128 {
            args.get(i)
                .and_then(RtVal::as_sint)
                .or_else(|| args.get(i).and_then(|v| v.as_ptr()).map(i128::from))
                .unwrap_or(0)
        };
        match func.name.as_str() {
            "malloc" => {
                let n = arg_int(0).max(0) as u64;
                Ok(RtVal::Ptr(self.mem.alloc(n, AllocKind::Heap)))
            }
            "calloc" => {
                let n = (arg_int(0).max(0) * arg_int(1).max(0)) as u64;
                Ok(RtVal::Ptr(self.mem.alloc(n, AllocKind::Heap)))
            }
            "free" => {
                let p = args.first().and_then(RtVal::as_ptr).unwrap_or(0);
                self.mem.free(p)?;
                Ok(RtVal::Undef)
            }
            "open" => {
                let fd = self.fd_next;
                self.fd_next += 1;
                self.open_fds.push(fd);
                self.events.push(Event::FdOpened(fd));
                Ok(RtVal::int(32, i128::from(fd)))
            }
            "close" => {
                let fd = arg_int(0) as i64;
                self.open_fds.retain(|&f| f != fd);
                self.events.push(Event::FdClosed(fd));
                Ok(RtVal::int(32, 0))
            }
            "input" => {
                let i = arg_int(0).max(0) as usize;
                let b = self.input.get(i).copied().unwrap_or(0);
                Ok(RtVal::int(32, i128::from(b)))
            }
            "input_len" => Ok(RtVal::int(32, self.input.len() as i128)),
            "magma_bug" => {
                let id = arg_int(0) as u32;
                self.events.push(Event::CveTriggered(id));
                Err(Trap::new(TrapKind::Crash(id), format!("CVE site {id}")))
            }
            "abort" => Err(Trap::new(TrapKind::Abort, String::new())),
            "sink" => {
                self.events.push(Event::Sink(arg_int(0) as i64));
                Ok(RtVal::Undef)
            }
            "printf" | "puts" | "putchar" => Ok(RtVal::int(32, 0)),
            "memset" => {
                let p = args.first().and_then(RtVal::as_ptr).unwrap_or(0);
                let v = arg_int(1) as u8;
                let n = arg_int(2).max(0) as usize;
                self.mem.write(p, &vec![v; n])?;
                Ok(RtVal::Ptr(p))
            }
            "memcpy" => {
                let d = args.first().and_then(RtVal::as_ptr).unwrap_or(0);
                let s = args.get(1).and_then(RtVal::as_ptr).unwrap_or(0);
                let n = arg_int(2).max(0) as u64;
                let bytes = self.mem.read(s, n)?;
                self.mem.write(d, &bytes)?;
                Ok(RtVal::Ptr(d))
            }
            other => {
                self.events.push(Event::ExternalCall(other.to_string()));
                Ok(self.zero_value(func.ret_ty))
            }
        }
    }

    fn int_binary(&self, op: Opcode, a: RtVal, b: RtVal) -> Result<RtVal, Trap> {
        if let (RtVal::Vector(av), RtVal::Vector(bv)) = (&a, &b) {
            let out: Result<Vec<RtVal>, Trap> = av
                .iter()
                .zip(bv)
                .map(|(x, y)| self.int_binary(op, x.clone(), y.clone()))
                .collect();
            return Ok(RtVal::Vector(out?));
        }
        if a == RtVal::Undef || b == RtVal::Undef {
            return Ok(RtVal::Undef);
        }
        // Pointers participate in integer arithmetic via their address.
        let bits = match (&a, &b) {
            (RtVal::Int { bits, .. }, _) | (_, RtVal::Int { bits, .. }) => *bits,
            _ => 64,
        };
        let to_pair = |v: &RtVal| -> Option<(i128, u128)> {
            match *v {
                RtVal::Int { bits, val } => Some((sext(bits, val), val)),
                RtVal::Ptr(p) => Some((i128::from(p), u128::from(p))),
                _ => None,
            }
        };
        let (sa, ua) = to_pair(&a).ok_or_else(|| type_trap("int op"))?;
        let (sb, ub) = to_pair(&b).ok_or_else(|| type_trap("int op"))?;
        let div0 = || Trap::new(TrapKind::DivByZero, String::new());
        let r: i128 = match op {
            Opcode::Add => sa.wrapping_add(sb),
            Opcode::Sub => sa.wrapping_sub(sb),
            Opcode::Mul => sa.wrapping_mul(sb),
            Opcode::UDiv => {
                if ub == 0 {
                    return Err(div0());
                }
                (ua / ub) as i128
            }
            Opcode::SDiv => {
                if sb == 0 {
                    return Err(div0());
                }
                sa.wrapping_div(sb)
            }
            Opcode::URem => {
                if ub == 0 {
                    return Err(div0());
                }
                (ua % ub) as i128
            }
            Opcode::SRem => {
                if sb == 0 {
                    return Err(div0());
                }
                sa.wrapping_rem(sb)
            }
            Opcode::Shl => sa.wrapping_shl((ub % u128::from(bits.max(1))) as u32),
            Opcode::LShr => (ua >> (ub % u128::from(bits.max(1)))) as i128,
            Opcode::AShr => sext(bits, mask(bits, ua)) >> (ub % u128::from(bits.max(1))),
            Opcode::And => sa & sb,
            Opcode::Or => sa | sb,
            Opcode::Xor => sa ^ sb,
            _ => unreachable!(),
        };
        Ok(RtVal::int(bits, r))
    }

    fn float_binary(&self, op: Opcode, a: RtVal, b: RtVal) -> Result<RtVal, Trap> {
        if let (RtVal::Vector(av), RtVal::Vector(bv)) = (&a, &b) {
            let out: Result<Vec<RtVal>, Trap> = av
                .iter()
                .zip(bv)
                .map(|(x, y)| self.float_binary(op, x.clone(), y.clone()))
                .collect();
            return Ok(RtVal::Vector(out?));
        }
        if a == RtVal::Undef || b == RtVal::Undef {
            return Ok(RtVal::Undef);
        }
        let is_f32 = matches!(a, RtVal::F32(_));
        let x = a.as_f64().ok_or_else(|| type_trap("float op"))?;
        let y = b.as_f64().ok_or_else(|| type_trap("float op"))?;
        let r = match op {
            Opcode::FAdd => x + y,
            Opcode::FSub => x - y,
            Opcode::FMul => x * y,
            Opcode::FDiv => x / y,
            Opcode::FRem => x % y,
            _ => unreachable!(),
        };
        Ok(if is_f32 {
            RtVal::F32(r as f32)
        } else {
            RtVal::F64(r)
        })
    }

    fn cast(&self, op: Opcode, v: RtVal, to: TypeId) -> Result<RtVal, Trap> {
        if v == RtVal::Undef {
            return Ok(RtVal::Undef);
        }
        let to_bits = self.module.types.int_bits(to);
        Ok(match op {
            Opcode::Trunc | Opcode::ZExt => {
                let u = v.as_uint().ok_or_else(|| type_trap("int cast"))?;
                RtVal::int(to_bits.unwrap_or(64), u as i128)
            }
            Opcode::SExt => {
                let s = v.as_sint().ok_or_else(|| type_trap("sext"))?;
                RtVal::int(to_bits.unwrap_or(64), s)
            }
            Opcode::FPTrunc => RtVal::F32(v.as_f64().ok_or_else(|| type_trap("fptrunc"))? as f32),
            Opcode::FPExt => RtVal::F64(v.as_f64().ok_or_else(|| type_trap("fpext"))?),
            Opcode::FPToUI => {
                let f = v.as_f64().ok_or_else(|| type_trap("fptoui"))?;
                RtVal::int(to_bits.unwrap_or(64), f.max(0.0) as i128)
            }
            Opcode::FPToSI => {
                let f = v.as_f64().ok_or_else(|| type_trap("fptosi"))?;
                RtVal::int(to_bits.unwrap_or(64), f as i128)
            }
            Opcode::UIToFP => {
                let u = v.as_uint().ok_or_else(|| type_trap("uitofp"))?;
                self.float_of(to, u as f64)
            }
            Opcode::SIToFP => {
                let s = v.as_sint().ok_or_else(|| type_trap("sitofp"))?;
                self.float_of(to, s as f64)
            }
            Opcode::PtrToInt => {
                let p = v.as_ptr().ok_or_else(|| type_trap("ptrtoint"))?;
                RtVal::int(to_bits.unwrap_or(64), i128::from(p))
            }
            Opcode::IntToPtr => {
                let u = v.as_uint().ok_or_else(|| type_trap("inttoptr"))?;
                RtVal::Ptr(u as u64)
            }
            Opcode::BitCast | Opcode::AddrSpaceCast => match (&v, self.module.types.get(to)) {
                (RtVal::Ptr(_), Type::Ptr { .. }) => v,
                (RtVal::Int { val, .. }, Type::F32) => RtVal::F32(f32::from_bits(*val as u32)),
                (RtVal::Int { val, .. }, Type::F64) => RtVal::F64(f64::from_bits(*val as u64)),
                (RtVal::F32(f), Type::Int(b)) => RtVal::int(*b, i128::from(f.to_bits())),
                (RtVal::F64(f), Type::Int(b)) => RtVal::int(*b, i128::from(f.to_bits())),
                _ => v,
            },
            _ => unreachable!(),
        })
    }

    fn float_of(&self, ty: TypeId, v: f64) -> RtVal {
        if matches!(self.module.types.get(ty), Type::F32) {
            RtVal::F32(v as f32)
        } else {
            RtVal::F64(v)
        }
    }

    fn load_typed(&mut self, ty: TypeId, addr: u64) -> Result<RtVal, Trap> {
        match self.module.types.get(ty).clone() {
            Type::Int(b) => {
                let n = u64::from(b.div_ceil(8));
                let bytes = self.mem.read(addr, n)?;
                let mut buf = [0u8; 16];
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(RtVal::int(b, u128::from_le_bytes(buf) as i128))
            }
            Type::F32 => {
                let bytes = self.mem.read(addr, 4)?;
                Ok(RtVal::F32(f32::from_le_bytes(bytes.try_into().unwrap())))
            }
            Type::F64 => {
                let bytes = self.mem.read(addr, 8)?;
                Ok(RtVal::F64(f64::from_le_bytes(bytes.try_into().unwrap())))
            }
            Type::Ptr { .. } | Type::Func { .. } => {
                let bytes = self.mem.read(addr, 8)?;
                Ok(RtVal::Ptr(u64::from_le_bytes(bytes.try_into().unwrap())))
            }
            Type::Array { elem, len } => {
                let es = self.module.types.size_of(elem);
                let mut vs = Vec::with_capacity(len as usize);
                for i in 0..len {
                    vs.push(self.load_typed(elem, addr + i * es)?);
                }
                Ok(RtVal::Agg(vs))
            }
            Type::Vector { elem, len } => {
                let es = self.module.types.size_of(elem);
                let mut vs = Vec::with_capacity(len as usize);
                for i in 0..u64::from(len) {
                    vs.push(self.load_typed(elem, addr + i * es)?);
                }
                Ok(RtVal::Vector(vs))
            }
            Type::Struct { fields } => {
                let mut vs = Vec::with_capacity(fields.len());
                for (i, &f) in fields.iter().enumerate() {
                    let off = self
                        .module
                        .types
                        .struct_field_offset(ty, i as u32)
                        .unwrap_or(0);
                    vs.push(self.load_typed(f, addr + off)?);
                }
                Ok(RtVal::Agg(vs))
            }
            Type::Void | Type::Label | Type::Token => Ok(RtVal::Undef),
        }
    }

    fn store_typed(&mut self, ty: TypeId, addr: u64, v: &RtVal) -> Result<(), Trap> {
        let v = if *v == RtVal::Undef {
            self.zero_value(ty)
        } else {
            v.clone()
        };
        match (self.module.types.get(ty).clone(), v) {
            (Type::Int(b), RtVal::Int { val, .. }) => {
                let n = b.div_ceil(8) as usize;
                self.mem.write(addr, &val.to_le_bytes()[..n])
            }
            (Type::Int(b), RtVal::Ptr(p)) => {
                let n = b.div_ceil(8) as usize;
                self.mem.write(addr, &u128::from(p).to_le_bytes()[..n])
            }
            (Type::F32, val) => {
                let f = val.as_f64().unwrap_or(0.0) as f32;
                self.mem.write(addr, &f.to_le_bytes())
            }
            (Type::F64, val) => {
                let f = val.as_f64().unwrap_or(0.0);
                self.mem.write(addr, &f.to_le_bytes())
            }
            (Type::Ptr { .. } | Type::Func { .. }, val) => {
                let p = val.as_ptr().unwrap_or(val.as_uint().unwrap_or(0) as u64);
                self.mem.write(addr, &p.to_le_bytes())
            }
            (Type::Array { elem, .. }, RtVal::Agg(vs)) => {
                let es = self.module.types.size_of(elem);
                for (i, v) in vs.iter().enumerate() {
                    self.store_typed(elem, addr + i as u64 * es, v)?;
                }
                Ok(())
            }
            (Type::Vector { elem, .. }, RtVal::Vector(vs)) => {
                let es = self.module.types.size_of(elem);
                for (i, v) in vs.iter().enumerate() {
                    self.store_typed(elem, addr + i as u64 * es, v)?;
                }
                Ok(())
            }
            (Type::Struct { fields }, RtVal::Agg(vs)) => {
                for (i, (f, v)) in fields.iter().zip(&vs).enumerate() {
                    let off = self
                        .module
                        .types
                        .struct_field_offset(ty, i as u32)
                        .unwrap_or(0);
                    self.store_typed(*f, addr + off, v)?;
                }
                Ok(())
            }
            _ => Err(type_trap("store type/value mismatch")),
        }
    }
}

fn type_trap(what: &str) -> Trap {
    Trap::new(TrapKind::Unsupported, format!("type error in {what}"))
}

fn icmp_val(p: IntPredicate, a: &RtVal, b: &RtVal) -> Result<RtVal, Trap> {
    if let (RtVal::Vector(av), RtVal::Vector(bv)) = (a, b) {
        let out: Result<Vec<RtVal>, Trap> =
            av.iter().zip(bv).map(|(x, y)| icmp_val(p, x, y)).collect();
        return Ok(RtVal::Vector(out?));
    }
    if *a == RtVal::Undef || *b == RtVal::Undef {
        return Ok(RtVal::int(1, 0));
    }
    let (sa, ua) = int_or_ptr(a).ok_or_else(|| type_trap("icmp"))?;
    let (sb, ub) = int_or_ptr(b).ok_or_else(|| type_trap("icmp"))?;
    let r = match p {
        IntPredicate::Eq => ua == ub,
        IntPredicate::Ne => ua != ub,
        IntPredicate::Ugt => ua > ub,
        IntPredicate::Uge => ua >= ub,
        IntPredicate::Ult => ua < ub,
        IntPredicate::Ule => ua <= ub,
        IntPredicate::Sgt => sa > sb,
        IntPredicate::Sge => sa >= sb,
        IntPredicate::Slt => sa < sb,
        IntPredicate::Sle => sa <= sb,
    };
    Ok(RtVal::int(1, i128::from(r)))
}

fn int_or_ptr(v: &RtVal) -> Option<(i128, u128)> {
    match *v {
        RtVal::Int { bits, val } => Some((sext(bits, val), val)),
        RtVal::Ptr(p) => Some((i128::from(p), u128::from(p))),
        _ => None,
    }
}

fn fcmp_val(p: FloatPredicate, a: &RtVal, b: &RtVal) -> Result<RtVal, Trap> {
    if *a == RtVal::Undef || *b == RtVal::Undef {
        return Ok(RtVal::int(1, 0));
    }
    let x = a.as_f64().ok_or_else(|| type_trap("fcmp"))?;
    let y = b.as_f64().ok_or_else(|| type_trap("fcmp"))?;
    let ord = !x.is_nan() && !y.is_nan();
    let r = match p {
        FloatPredicate::Oeq => ord && x == y,
        FloatPredicate::Ogt => ord && x > y,
        FloatPredicate::Oge => ord && x >= y,
        FloatPredicate::Olt => ord && x < y,
        FloatPredicate::Ole => ord && x <= y,
        FloatPredicate::One => ord && x != y,
        FloatPredicate::Ord => ord,
        FloatPredicate::Ueq => !ord || x == y,
        FloatPredicate::Une => !ord || x != y,
        FloatPredicate::Uno => !ord,
        FloatPredicate::AlwaysFalse => false,
        FloatPredicate::AlwaysTrue => true,
    };
    Ok(RtVal::int(1, i128::from(r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::module::{Function, Module, Param};
    use crate::version::IrVersion;

    fn module() -> Module {
        Module::new("t", IrVersion::V13_0)
    }

    #[test]
    fn arithmetic_and_return() {
        let mut m = module();
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let x = b.mul(ValueRef::const_int(i32t, 6), ValueRef::const_int(i32t, 7));
        let y = b.sub(x, ValueRef::const_int(i32t, 2));
        b.ret(Some(y));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(40));
    }

    #[test]
    fn signed_wrapping_semantics() {
        let mut m = module();
        let i8t = m.types.i8();
        let f = FuncBuilder::define(&mut m, "main", i8t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let x = b.add(ValueRef::const_int(i8t, 127), ValueRef::const_int(i8t, 1));
        b.ret(Some(x));
        assert_eq!(
            Machine::new(&m).run_main().unwrap().return_int(),
            Some(-128)
        );
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = module();
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let x = b.sdiv(ValueRef::const_int(i32t, 1), ValueRef::const_int(i32t, 0));
        b.ret(Some(x));
        let o = Machine::new(&m).run_main().unwrap();
        assert_eq!(o.trap().unwrap().kind, TrapKind::DivByZero);
    }

    #[test]
    fn control_flow_loop_sums() {
        // sum 0..10 via phi loop == 45
        let mut m = module();
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.add_block("entry");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.position_at_end(entry);
        b.br(header);
        b.position_at_end(header);
        let i = b.phi(i32t, vec![(ValueRef::const_int(i32t, 0), entry)]);
        let s = b.phi(i32t, vec![(ValueRef::const_int(i32t, 0), entry)]);
        let c = b.icmp(IntPredicate::Slt, i, ValueRef::const_int(i32t, 10));
        b.cond_br(c, body, exit);
        b.position_at_end(body);
        let s2 = b.add(s, i);
        let i2 = b.add(i, ValueRef::const_int(i32t, 1));
        b.br(header);
        b.position_at_end(exit);
        b.ret(Some(s));
        // Patch back edges.
        let (ip, sp) = (i.as_inst().unwrap(), s.as_inst().unwrap());
        let fm = m.func_mut(f);
        fm.inst_mut(ip).operands.extend([i2, ValueRef::Block(body)]);
        fm.inst_mut(sp).operands.extend([s2, ValueRef::Block(body)]);
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(45));
    }

    #[test]
    fn memory_roundtrip_and_gep() {
        let mut m = module();
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let arr_ty = b.module().types.array(i32t, 4);
        let slot = b.alloca(arr_ty);
        let i64t = b.module().types.i64();
        let p_i32 = b.module().types.ptr(i32t);
        let p2 = b.gep(
            arr_ty,
            slot,
            vec![ValueRef::const_int(i64t, 0), ValueRef::const_int(i64t, 2)],
            p_i32,
        );
        b.store(ValueRef::const_int(i32t, 99), p2);
        let v = b.load(i32t, p2);
        b.ret(Some(v));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(99));
    }

    #[test]
    fn calls_and_recursion() {
        // fib(10) = 55 via naive recursion.
        let mut m = module();
        let i32t = m.types.i32();
        let fib = FuncBuilder::define(
            &mut m,
            "fib",
            i32t,
            vec![Param {
                name: "n".into(),
                ty: i32t,
            }],
        );
        let mut b = FuncBuilder::new(&mut m, fib);
        let entry = b.add_block("entry");
        let base = b.add_block("base");
        let rec = b.add_block("rec");
        b.position_at_end(entry);
        let n = ValueRef::Arg(0);
        let c = b.icmp(IntPredicate::Slt, n, ValueRef::const_int(i32t, 2));
        b.cond_br(c, base, rec);
        b.position_at_end(base);
        b.ret(Some(n));
        b.position_at_end(rec);
        let n1 = b.sub(n, ValueRef::const_int(i32t, 1));
        let n2 = b.sub(n, ValueRef::const_int(i32t, 2));
        let f1 = b.call(i32t, ValueRef::Func(fib), vec![n1]);
        let f2 = b.call(i32t, ValueRef::Func(fib), vec![n2]);
        let s = b.add(f1, f2);
        b.ret(Some(s));
        let mainf = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, mainf);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let r = b.call(
            i32t,
            ValueRef::Func(fib),
            vec![ValueRef::const_int(i32t, 10)],
        );
        b.ret(Some(r));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(55));
    }

    #[test]
    fn null_deref_and_uaf_trap() {
        let mut m = module();
        let i32t = m.types.i32();
        let p_i32 = m.types.ptr(i32t);
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.load(i32t, ValueRef::Null(p_i32));
        b.ret(Some(v));
        let o = Machine::new(&m).run_main().unwrap();
        assert_eq!(o.trap().unwrap().kind, TrapKind::NullDeref);
    }

    #[test]
    fn malloc_free_and_leak_accounting() {
        let mut m = module();
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let i8t = m.types.i8();
        let p8 = m.types.ptr(i8t);
        let malloc = m.add_func(Function::external(
            "malloc",
            p8,
            vec![Param {
                name: "n".into(),
                ty: i64t,
            }],
        ));
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.call(
            p8,
            ValueRef::Func(malloc),
            vec![ValueRef::const_int(i64t, 16)],
        );
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let o = Machine::new(&m).run_main().unwrap();
        assert_eq!(o.leaked_heap, 1);
    }

    #[test]
    fn input_stream_reads_poc_bytes() {
        let mut m = module();
        let i32t = m.types.i32();
        let input = m.add_func(Function::external(
            "input",
            i32t,
            vec![Param {
                name: "i".into(),
                ty: i32t,
            }],
        ));
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.call(
            i32t,
            ValueRef::Func(input),
            vec![ValueRef::const_int(i32t, 1)],
        );
        b.ret(Some(v));
        let o = Machine::new(&m)
            .with_input(vec![10, 20, 30])
            .run_main()
            .unwrap();
        assert_eq!(o.return_int(), Some(20));
    }

    #[test]
    fn magma_bug_records_cve() {
        let mut m = module();
        let i32t = m.types.i32();
        let void = m.types.void();
        let bug = m.add_func(Function::external(
            "magma_bug",
            void,
            vec![Param {
                name: "id".into(),
                ty: i32t,
            }],
        ));
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.call(
            void,
            ValueRef::Func(bug),
            vec![ValueRef::const_int(i32t, 77)],
        );
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        let o = Machine::new(&m).run_main().unwrap();
        assert!(o.crashed());
        assert_eq!(o.triggered_cves(), vec![77]);
    }

    #[test]
    fn fuel_exhaustion_traps() {
        let mut m = module();
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("spin");
        b.position_at_end(e);
        b.br(e);
        let o = Machine::new(&m).with_fuel(1000).run_main().unwrap();
        assert_eq!(o.trap().unwrap().kind, TrapKind::FuelExhausted);
    }

    #[test]
    fn select_and_icmp() {
        let mut m = module();
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let c = b.icmp(
            IntPredicate::Sgt,
            ValueRef::const_int(i32t, 5),
            ValueRef::const_int(i32t, 3),
        );
        let v = b.select(
            c,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        b.ret(Some(v));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(1));
    }

    #[test]
    fn vector_ops() {
        let mut m = module();
        let i32t = m.types.i32();
        let v4 = m.types.vector(i32t, 4);
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let z = ValueRef::ZeroInit(v4);
        let v1 = b.insertelement(
            z,
            ValueRef::const_int(i32t, 11),
            ValueRef::const_int(i32t, 2),
        );
        let x = b.extractelement(v1, ValueRef::const_int(i32t, 2), i32t);
        b.ret(Some(x));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(11));
    }

    #[test]
    fn aggregate_ops() {
        let mut m = module();
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let st = m.types.struct_(vec![i32t, i64t]);
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let z = ValueRef::ZeroInit(st);
        let a1 = b.insertvalue(z, ValueRef::const_int(i32t, 42), vec![0]);
        let x = b.extractvalue(a1, vec![0], i32t);
        b.ret(Some(x));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(42));
    }

    #[test]
    fn freeze_turns_undef_into_zero() {
        let mut m = module();
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.freeze(ValueRef::Undef(i32t));
        b.ret(Some(v));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(0));
    }

    #[test]
    fn asm_hw_level_gates_execution() {
        use crate::module::InlineAsm;
        let mut m = Module::new("t", IrVersion::V3_6); // backend level 1
        let i32t = m.types.i32();
        let fnty = m.types.func(i32t, vec![]);
        let asm = m.add_asm(InlineAsm {
            text: "ret 5".into(),
            constraints: String::new(),
            ty: fnty,
            hw_level: 3,
        });
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.call(i32t, ValueRef::InlineAsm(asm), vec![]);
        b.ret(Some(v));
        let o = Machine::new(&m).run_main().unwrap();
        assert_eq!(o.trap().unwrap().kind, TrapKind::UnsupportedAsm);
    }

    #[test]
    fn asm_ret_semantics() {
        use crate::module::InlineAsm;
        let mut m = Module::new("t", IrVersion::V13_0);
        let i32t = m.types.i32();
        let fnty = m.types.func(i32t, vec![]);
        let asm = m.add_asm(InlineAsm {
            text: "ret 5".into(),
            constraints: String::new(),
            ty: fnty,
            hw_level: 1,
        });
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let v = b.call(i32t, ValueRef::InlineAsm(asm), vec![]);
        b.ret(Some(v));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(5));
    }

    #[test]
    fn switch_dispatch() {
        let mut m = module();
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.add_block("entry");
        let c1 = b.add_block("c1");
        let c2 = b.add_block("c2");
        let d = b.add_block("d");
        b.position_at_end(entry);
        b.switch(ValueRef::const_int(i32t, 2), d, vec![(1, c1), (2, c2)]);
        b.position_at_end(c1);
        b.ret(Some(ValueRef::const_int(i32t, 10)));
        b.position_at_end(c2);
        b.ret(Some(ValueRef::const_int(i32t, 20)));
        b.position_at_end(d);
        b.ret(Some(ValueRef::const_int(i32t, 30)));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(20));
    }

    #[test]
    fn float_pipeline() {
        let mut m = module();
        let i32t = m.types.i32();
        let f64t = m.types.f64();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let x = b.fmul(
            ValueRef::const_float(f64t, 2.5),
            ValueRef::const_float(f64t, 4.0),
        );
        let n = b.cast(Opcode::FPToSI, x, i32t);
        b.ret(Some(n));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(10));
    }

    #[test]
    fn invoke_follows_normal_edge() {
        let mut m = module();
        let i32t = m.types.i32();
        let callee = FuncBuilder::define(&mut m, "f", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, callee);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, 9)));
        let mainf = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, mainf);
        let entry = b.add_block("entry");
        let normal = b.add_block("normal");
        let unwind = b.add_block("unwind");
        b.position_at_end(entry);
        let r = b.invoke(i32t, ValueRef::Func(callee), vec![], normal, unwind);
        b.position_at_end(normal);
        b.ret(Some(r));
        b.position_at_end(unwind);
        b.ret(Some(ValueRef::const_int(i32t, -1)));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(9));
    }

    #[test]
    fn indirect_call_through_function_pointer() {
        let mut m = module();
        let i32t = m.types.i32();
        let callee = FuncBuilder::define(&mut m, "target", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, callee);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, 33)));
        let mainf = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, mainf);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let fnty = b.module().types.func(i32t, vec![]);
        let pfn = b.module().types.ptr(fnty);
        let slot = b.alloca(pfn);
        b.store(ValueRef::Func(callee), slot);
        let fp = b.load(pfn, slot);
        let r = b.call(i32t, fp, vec![]);
        b.ret(Some(r));
        assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(33));
    }
}
