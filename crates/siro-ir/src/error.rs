//! Error types shared across the IR crate.

use std::fmt;

use crate::version::IrVersion;

/// An error produced while constructing, verifying, parsing, or otherwise
/// manipulating IR.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// A module used an opcode its version does not support.
    UnsupportedOpcode {
        /// The offending mnemonic.
        opcode: &'static str,
        /// The module's version.
        version: IrVersion,
    },
    /// Verification failed; the payload lists human-readable findings.
    Verification(Vec<String>),
    /// Parse error at the given 1-based line.
    Parse {
        /// Line number.
        line: usize,
        /// Message.
        message: String,
    },
    /// A named entity was not found.
    NotFound(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnsupportedOpcode { opcode, version } => {
                write!(
                    f,
                    "opcode `{opcode}` is not supported by IR version {version}"
                )
            }
            IrError::Verification(findings) => {
                write!(
                    f,
                    "verification failed with {} finding(s): ",
                    findings.len()
                )?;
                for (i, m) in findings.iter().take(3).enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    f.write_str(m)?;
                }
                if findings.len() > 3 {
                    write!(f, "; ... and {} more", findings.len() - 3)?;
                }
                Ok(())
            }
            IrError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IrError::NotFound(name) => write!(f, "`{name}` not found"),
            IrError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for IrError {}

/// Convenient result alias for IR operations.
pub type IrResult<T> = Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IrError::UnsupportedOpcode {
            opcode: "freeze",
            version: IrVersion::V3_6,
        };
        let s = e.to_string();
        assert!(s.contains("freeze"));
        assert!(s.contains("3.6"));
    }

    #[test]
    fn verification_display_truncates() {
        let e = IrError::Verification(vec![
            "a".into(),
            "b".into(),
            "c".into(),
            "d".into(),
            "e".into(),
        ]);
        let s = e.to_string();
        assert!(s.contains("5 finding(s)"));
        assert!(s.contains("and 2 more"));
    }
}
