//! Verifier rule coverage: the LLVM-faithful cast constraints (which are
//! load-bearing for synthesis — they reject well-typed-but-wrong
//! candidates at "compilation" time) and assorted structural rules.

use siro_ir::{
    verify::{codegen_check, collect_findings, verify_module},
    FuncBuilder, InlineAsm, Instruction, IrVersion, Module, Opcode, TypeId, ValueRef,
};

/// Builds `op` with a constant of `src` type and result of `dst` type, and
/// returns whether verification accepted it.
fn cast_ok(
    op: Opcode,
    src: fn(&mut siro_ir::TypeTable) -> TypeId,
    src_const: fn(TypeId) -> ValueRef,
    dst: fn(&mut siro_ir::TypeTable) -> TypeId,
) -> bool {
    let mut m = Module::new("m", IrVersion::V13_0);
    let i32t = m.types.i32();
    let s = src(&mut m.types);
    let d = dst(&mut m.types);
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    b.push(Instruction::new(op, d, vec![src_const(s)]));
    b.ret(Some(ValueRef::const_int(i32t, 0)));
    verify_module(&m).is_ok()
}

fn ci(t: TypeId) -> ValueRef {
    ValueRef::const_int(t, 1)
}

fn cfl(t: TypeId) -> ValueRef {
    ValueRef::const_float(t, 1.5)
}

fn cnull(t: TypeId) -> ValueRef {
    ValueRef::Null(t)
}

#[test]
fn trunc_requires_narrowing() {
    assert!(cast_ok(Opcode::Trunc, |t| t.i64(), ci, |t| t.i8()));
    assert!(!cast_ok(Opcode::Trunc, |t| t.i8(), ci, |t| t.i64()));
    assert!(!cast_ok(Opcode::Trunc, |t| t.i32(), ci, |t| t.i32()));
    assert!(!cast_ok(Opcode::Trunc, |t| t.f64(), cfl, |t| t.i8()));
}

#[test]
fn ext_requires_widening() {
    assert!(cast_ok(Opcode::ZExt, |t| t.i8(), ci, |t| t.i32()));
    assert!(!cast_ok(Opcode::ZExt, |t| t.i32(), ci, |t| t.i8()));
    assert!(!cast_ok(Opcode::SExt, |t| t.i32(), ci, |t| t.i32()));
}

#[test]
fn fp_casts_require_float_width_changes() {
    assert!(cast_ok(Opcode::FPTrunc, |t| t.f64(), cfl, |t| t.f32()));
    assert!(!cast_ok(Opcode::FPTrunc, |t| t.f32(), cfl, |t| t.f64()));
    assert!(!cast_ok(Opcode::FPTrunc, |t| t.f64(), cfl, |t| t.f64()));
    assert!(cast_ok(Opcode::FPExt, |t| t.f32(), cfl, |t| t.f64()));
    assert!(!cast_ok(Opcode::FPExt, |t| t.f64(), cfl, |t| t.f32()));
}

#[test]
fn int_float_conversions_check_both_sides() {
    // The exact rule that kills the Fig. 9-style wrong uitofp candidate.
    assert!(cast_ok(Opcode::UIToFP, |t| t.i32(), ci, |t| t.f64()));
    assert!(!cast_ok(Opcode::UIToFP, |t| t.i32(), ci, |t| t.i32()));
    assert!(cast_ok(Opcode::FPToSI, |t| t.f64(), cfl, |t| t.i32()));
    assert!(!cast_ok(Opcode::FPToSI, |t| t.f64(), cfl, |t| t.f64()));
}

#[test]
fn pointer_conversions() {
    assert!(cast_ok(
        Opcode::PtrToInt,
        |t| {
            let i = t.i8();
            t.ptr(i)
        },
        cnull,
        |t| t.i64()
    ));
    assert!(!cast_ok(Opcode::PtrToInt, |t| t.i64(), ci, |t| t.i64()));
    assert!(cast_ok(
        Opcode::IntToPtr,
        |t| t.i64(),
        ci,
        |t| {
            let i = t.i8();
            t.ptr(i)
        }
    ));
    assert!(!cast_ok(
        Opcode::IntToPtr,
        |t| {
            let i = t.i8();
            t.ptr(i)
        },
        cnull,
        |t| {
            let i = t.i8();
            t.ptr(i)
        }
    ));
}

#[test]
fn bitcast_requires_size_match_or_pointers() {
    assert!(cast_ok(Opcode::BitCast, |t| t.i32(), ci, |t| t.f32()));
    assert!(!cast_ok(Opcode::BitCast, |t| t.i32(), ci, |t| t.f64()));
    assert!(cast_ok(
        Opcode::BitCast,
        |t| {
            let i = t.i8();
            t.ptr(i)
        },
        cnull,
        |t| {
            let i = t.i32();
            t.ptr(i)
        }
    ));
    // Pointer <-> int is ptrtoint/inttoptr territory, not bitcast.
    assert!(!cast_ok(
        Opcode::BitCast,
        |t| {
            let i = t.i8();
            t.ptr(i)
        },
        cnull,
        |t| t.i64()
    ));
}

#[test]
fn codegen_check_gates_asm_hw_levels() {
    let mut m = Module::new("m", IrVersion::V3_6);
    let i32t = m.types.i32();
    let fnty = m.types.func(i32t, vec![]);
    m.add_asm(InlineAsm {
        text: "newfangled".into(),
        constraints: String::new(),
        ty: fnty,
        hw_level: 3,
    });
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    b.ret(Some(ValueRef::const_int(i32t, 0)));
    assert!(codegen_check(&m).is_err());
    // The same module "compiled" at 12.0 is fine.
    let mut high = m.clone();
    high.version = IrVersion::V12_0;
    assert!(codegen_check(&high).is_ok());
}

#[test]
fn findings_accumulate_rather_than_bail() {
    let mut m = Module::new("m", IrVersion::V3_6);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    // Two independent problems: a gated opcode and a bad cast.
    b.freeze(ValueRef::const_int(i32t, 1));
    b.push(Instruction::new(
        Opcode::Trunc,
        i32t,
        vec![ValueRef::const_int(i32t, 1)],
    ));
    b.ret(Some(ValueRef::const_int(i32t, 0)));
    let findings = collect_findings(&m);
    assert!(findings.len() >= 2, "{findings:?}");
}
