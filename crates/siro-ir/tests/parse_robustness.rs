//! Corruption-matrix regression tests for the IR reader.
//!
//! The parser builds directly into the module's arenas, so a mid-parse
//! error abandons a half-populated `Module`. These tests feed it every
//! truncation of a real corpus module plus byte-level garbage and
//! demand (a) a clean `Ok`/`Err` — never a panic — and (b) that the
//! abandoned arenas drop through the thread-local recycling slab
//! without corrupting later parses on the same thread.

use siro_ir::{parse, write, IrVersion};
use siro_rng::{Rng, SeedableRng, StdRng};
use siro_testcases::full_corpus;

/// Round-trip text for every corpus case at `version`.
fn corpus_texts(version: IrVersion) -> Vec<String> {
    full_corpus()
        .iter()
        .map(|c| write::write_module(&c.build(version)))
        .collect()
}

#[test]
fn every_line_truncation_fails_cleanly_or_parses() {
    for version in [IrVersion::V5_0, IrVersion::V13_0, IrVersion::V17_0] {
        for text in corpus_texts(version).iter().take(8) {
            let lines: Vec<&str> = text.lines().collect();
            for keep in 0..lines.len() {
                let prefix = lines[..keep].join("\n");
                // Must not panic; a prefix that happens to be
                // well-formed (e.g. cut between functions) may parse.
                let _ = parse::parse_module_as(&prefix, version);
            }
        }
    }
}

#[test]
fn mid_line_truncation_fails_cleanly() {
    let text = &corpus_texts(IrVersion::V13_0)[0];
    // Cut inside tokens, not just at line boundaries.
    for cut in (0..text.len()).step_by(7) {
        if !text.is_char_boundary(cut) {
            continue;
        }
        let _ = parse::parse_module_as(&text[..cut], IrVersion::V13_0);
    }
}

#[test]
fn byte_garbage_never_panics() {
    let texts = corpus_texts(IrVersion::V13_0);
    let mut rng = StdRng::seed_from_u64(0x6A5B);
    let replacements = [b'%', b'@', b'(', b')', b',', b'x', b'0', b'!', b' '];
    for text in texts.iter().take(8) {
        let bytes = text.as_bytes();
        for _ in 0..64 {
            let mut corrupt = bytes.to_vec();
            let pos = rng.gen_range(0..corrupt.len());
            corrupt[pos] = replacements[rng.gen_range(0..replacements.len())];
            // Stay valid UTF-8 (replacements are ASCII over ASCII IR
            // text), then demand a clean verdict.
            let corrupt = String::from_utf8(corrupt).unwrap();
            let _ = parse::parse_module_as(&corrupt, IrVersion::V13_0);
        }
    }
}

#[test]
fn failed_parses_recycle_arenas_without_poisoning_later_ones() {
    let text = &corpus_texts(IrVersion::V13_0)[0];
    let good = parse::parse_module_as(text, IrVersion::V13_0).unwrap();
    let good_bytes = write::write_module(&good);
    drop(good);

    // Hammer the parser with failing inputs; each abandoned module
    // parks its arena buffers in the thread-local slab.
    let mut failures = 0;
    for cut in (1..text.len().saturating_sub(1)).step_by(13) {
        if !text.is_char_boundary(cut) {
            continue;
        }
        if parse::parse_module_as(&text[..cut], IrVersion::V13_0).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0, "no truncation ever failed; matrix is inert");
    let depths = siro_ir::ctx::slab_depths();
    assert!(
        depths.iter().any(|&d| d > 0),
        "abandoned parses should park buffers for reuse, got {depths:?}"
    );

    // A parse on the recycled buffers must still be byte-faithful.
    let again = parse::parse_module_as(text, IrVersion::V13_0).unwrap();
    assert_eq!(write::write_module(&again), good_bytes);
}

#[test]
fn garbage_error_messages_cite_a_line() {
    let text = "define i32 @main() {\nentry:\n  %x = add i32 1, ??\n  ret i32 %x\n}\n";
    let err = parse::parse_module_as(text, IrVersion::V13_0).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("line"),
        "parse error should locate the bad line, got: {msg}"
    );
}
