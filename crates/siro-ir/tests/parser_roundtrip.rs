//! Serialization round-trip coverage: every corpus program, every catalog
//! version dialect, plus hand-written edge-case inputs.

use siro_ir::{interp::Machine, parse, verify, write, IrVersion};

/// write -> parse -> write is textually idempotent, and the reparsed module
/// behaves identically, for every corpus case in every version that can
/// express it.
#[test]
fn corpus_roundtrips_in_every_dialect() {
    for version in IrVersion::CATALOG {
        for case in siro_testcases::full_corpus() {
            if !case.usable_for_pair(version, version) {
                continue;
            }
            let m = case.build(version);
            let t1 = write::write_module(&m);
            let parsed = parse::parse_module(&t1)
                .unwrap_or_else(|e| panic!("{} at {version}: {e}\n{t1}", case.name));
            verify::verify_module(&parsed)
                .unwrap_or_else(|e| panic!("{} at {version}: {e}", case.name));
            let t2 = write::write_module(&parsed);
            assert_eq!(t1, t2, "{} at {version} not idempotent", case.name);
            let got = Machine::new(&parsed).run_main().unwrap().return_int();
            assert_eq!(got, Some(case.oracle), "{} at {version}", case.name);
        }
    }
}

#[test]
fn parses_inline_asm_callee() {
    let text = "\
; IR version 13.0

define i32 @main() {
entry:
  %v = call i32 asm \"ret 9\", \"r\" hwlevel 1 ()
  ret i32 %v
}
";
    let m = parse::parse_module(text).unwrap();
    assert_eq!(m.asms.len(), 1);
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(9));
    // And it round-trips.
    let t1 = write::write_module(&m);
    let m2 = parse::parse_module(&t1).unwrap();
    assert_eq!(t1, write::write_module(&m2));
}

#[test]
fn parses_varargs_declaration() {
    let text = "\
; IR version 13.0

declare i32 @printf(i8* %fmt, ...)

define i32 @main() {
entry:
  ret i32 0
}
";
    let m = parse::parse_module(text).unwrap();
    let f = m.func(m.func_by_name("printf").unwrap());
    assert!(f.is_external);
    assert!(f.varargs);
    assert_eq!(f.params.len(), 1);
}

#[test]
fn parses_global_byte_initializer() {
    let text = "\
; IR version 13.0

@msg = constant [4 x i8] c\"\\48\\69\\21\\00\"

define i32 @main() {
entry:
  %p = getelementptr [4 x i8], [4 x i8]* @msg, i64 0, i64 1
  %c = load i8, i8* %p
  %v = zext i8 %c to i32
  ret i32 %v
}
";
    let m = parse::parse_module(text).unwrap();
    verify::verify_module(&m).unwrap();
    assert_eq!(
        Machine::new(&m).run_main().unwrap().return_int(),
        Some(0x69)
    );
}

#[test]
fn parses_vector_types_and_ops() {
    let text = "\
; IR version 13.0

define i32 @main() {
entry:
  %v = insertelement <4 x i32> zeroinitializer, i32 7, i32 3
  %w = add <4 x i32> %v, %v
  %e = extractelement <4 x i32> %w, i32 3
  ret i32 %e
}
";
    let m = parse::parse_module(text).unwrap();
    verify::verify_module(&m).unwrap();
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(14));
}

#[test]
fn parses_opaque_pointer_dialect() {
    let text = "\
; IR version 15.0

define i32 @main() {
entry:
  %p = alloca i32
  store i32 6, ptr %p
  %v = load i32, ptr %p
  ret i32 %v
}
";
    let m = parse::parse_module(text).unwrap();
    assert_eq!(m.version, IrVersion::V15_0);
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(6));
}

#[test]
fn old_dialect_rejects_nothing_but_reads_old_loads() {
    // A 3.0 module with the pre-3.7 load/gep spelling.
    let text = "\
; IR version 3.0

define i32 @main() {
entry:
  %a = alloca [2 x i32]
  %p = getelementptr [2 x i32]* %a, i64 0, i64 1
  store i32 5, i32* %p
  %v = load i32* %p
  ret i32 %v
}
";
    let m = parse::parse_module(text).unwrap();
    verify::verify_module(&m).unwrap();
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(5));
}

#[test]
fn error_reports_carry_line_numbers() {
    let bad_inputs = [
        (
            "; IR version 13.0\n\ndefine i32 @main() {\nentry:\n  %x = bogus i32 1\n}\n",
            5,
        ),
        (
            "; IR version 13.0\n\ndefine i32 @main() {\nentry:\n  %x = add i32 1\n}\n",
            5,
        ),
        (
            "; IR version 13.0\n\ndefine i32 @main() {\nentry:\n  br label %nowhere\n}\n",
            5,
        ),
    ];
    for (text, line) in bad_inputs {
        match parse::parse_module(text) {
            Err(siro_ir::IrError::Parse { line: l, .. }) => {
                assert_eq!(l, line, "wrong line for {text:?}")
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn unknown_symbols_are_rejected() {
    let text = "\
; IR version 13.0

define i32 @main() {
entry:
  %v = call i32 @missing()
  ret i32 %v
}
";
    assert!(parse::parse_module(text).is_err());
}

#[test]
fn negative_and_hex_constants() {
    let text = "\
; IR version 13.0

define i32 @main() {
entry:
  %a = add i32 -7, -3
  %f = fadd double 0x4000000000000000, 0x3ff0000000000000
  %i = fptosi double %f to i32
  %s = add i32 %a, %i
  ret i32 %s
}
";
    let m = parse::parse_module(text).unwrap();
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(-7));
}

#[test]
fn workload_modules_roundtrip() {
    // Bigger, generated modules (globals + many functions) survive the trip
    // in both dialect families.
    for spec in siro_workloads::table4_projects().iter().take(3) {
        for (fe, version) in [
            (siro_workloads::Frontend::Low, IrVersion::V3_6),
            (siro_workloads::Frontend::High, IrVersion::V13_0),
        ] {
            let m = siro_workloads::compile_project(spec, fe, version);
            let t1 = write::write_module(&m);
            let parsed =
                parse::parse_module(&t1).unwrap_or_else(|e| panic!("{} ({fe:?}): {e}", spec.name));
            let t2 = write::write_module(&parsed);
            assert_eq!(t1, t2, "{} ({fe:?})", spec.name);
        }
    }
}
