//! Interpreter edge cases beyond the unit tests: the modelled libc, depth
//! limits, vector semantics, atomics, and event streams.

use siro_ir::{
    interp::{Event, Machine, RtVal, TrapKind},
    FuncBuilder, Function, Instruction, IntPredicate, IrVersion, Module, Opcode, Param, ValueRef,
};

fn module() -> Module {
    Module::new("t", IrVersion::V13_0)
}

fn extern_fn(
    m: &mut Module,
    name: &str,
    ret: siro_ir::TypeId,
    params: &[siro_ir::TypeId],
) -> siro_ir::FuncId {
    let ps = params
        .iter()
        .enumerate()
        .map(|(i, &ty)| Param {
            name: format!("a{i}"),
            ty,
        })
        .collect();
    m.add_func(Function::external(name, ret, ps))
}

#[test]
fn memcpy_and_memset_move_bytes() {
    let mut m = module();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let i8t = m.types.i8();
    let p8 = m.types.ptr(i8t);
    let void = m.types.void();
    let memset = extern_fn(&mut m, "memset", p8, &[p8, i32t, i64t]);
    let memcpy = extern_fn(&mut m, "memcpy", p8, &[p8, p8, i64t]);
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let arr = b.module().types.array(i8t, 8);
    let src = b.alloca(arr);
    let dst = b.alloca(arr);
    let s8 = b.bitcast(src, p8);
    let d8 = b.bitcast(dst, p8);
    b.call(
        p8,
        ValueRef::Func(memset),
        vec![
            s8,
            ValueRef::const_int(i32t, 0x41),
            ValueRef::const_int(i64t, 8),
        ],
    );
    b.call(
        p8,
        ValueRef::Func(memcpy),
        vec![d8, s8, ValueRef::const_int(i64t, 8)],
    );
    let pi8 = b.module().types.ptr(i8t);
    let back = b.bitcast(d8, pi8);
    let v = b.load(i8t, back);
    let z = b.zext(v, i32t);
    b.ret(Some(z));
    let _ = void;
    assert_eq!(
        Machine::new(&m).run_main().unwrap().return_int(),
        Some(0x41)
    );
}

#[test]
fn calloc_zeroes_and_counts_as_heap() {
    let mut m = module();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let i8t = m.types.i8();
    let p8 = m.types.ptr(i8t);
    let calloc = extern_fn(&mut m, "calloc", p8, &[i64t, i64t]);
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let p = b.call(
        p8,
        ValueRef::Func(calloc),
        vec![ValueRef::const_int(i64t, 4), ValueRef::const_int(i64t, 2)],
    );
    let v = b.load(i8t, p);
    let z = b.zext(v, i32t);
    b.ret(Some(z));
    let o = Machine::new(&m).run_main().unwrap();
    assert_eq!(o.return_int(), Some(0));
    assert_eq!(o.leaked_heap, 1);
}

#[test]
fn unbounded_recursion_hits_the_depth_limit() {
    let mut m = module();
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let r = b.call(i32t, ValueRef::Func(f), vec![]);
    b.ret(Some(r));
    let o = Machine::new(&m).run_main().unwrap();
    assert_eq!(o.trap().unwrap().kind, TrapKind::DepthExceeded);
}

#[test]
fn vector_arithmetic_is_elementwise() {
    let mut m = module();
    let i32t = m.types.i32();
    let v2 = m.types.vector(i32t, 2);
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let z = ValueRef::ZeroInit(v2);
    let a0 = b.insertelement(
        z,
        ValueRef::const_int(i32t, 3),
        ValueRef::const_int(i32t, 0),
    );
    let a = b.insertelement(
        a0,
        ValueRef::const_int(i32t, 5),
        ValueRef::const_int(i32t, 1),
    );
    let sum = b.push(Instruction::new(Opcode::Add, v2, vec![a, a]));
    let e1 = b.extractelement(sum, ValueRef::const_int(i32t, 1), i32t);
    b.ret(Some(e1));
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(10));
}

#[test]
fn vector_icmp_yields_a_mask() {
    let mut m = module();
    let i32t = m.types.i32();
    let i1 = m.types.i1();
    let v2 = m.types.vector(i32t, 2);
    let v2i1 = m.types.vector(i1, 2);
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let z = ValueRef::ZeroInit(v2);
    let a = b.insertelement(
        z,
        ValueRef::const_int(i32t, 9),
        ValueRef::const_int(i32t, 0),
    );
    let mut cmp = Instruction::new(Opcode::ICmp, v2i1, vec![a, z]);
    cmp.attrs.int_pred = Some(IntPredicate::Sgt);
    let mask = b.push(cmp);
    let lane0 = b.extractelement(mask, ValueRef::const_int(i32t, 0), i1);
    let z0 = b.zext(lane0, i32t);
    b.ret(Some(z0));
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(1));
}

#[test]
fn cmpxchg_failure_leaves_memory_unchanged() {
    let mut m = module();
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let slot = b.alloca(i32t);
    b.store(ValueRef::const_int(i32t, 5), slot);
    // Expect 7 (wrong): must not write 9.
    let pair = b.cmpxchg(
        slot,
        ValueRef::const_int(i32t, 7),
        ValueRef::const_int(i32t, 9),
    );
    let i1 = b.module().types.i1();
    let ok = b.extractvalue(pair, vec![1], i1);
    let okz = b.zext(ok, i32t);
    let cur = b.load(i32t, slot);
    let h = b.mul(cur, ValueRef::const_int(i32t, 10));
    let s = b.add(h, okz);
    b.ret(Some(s)); // 5*10 + 0
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(50));
}

#[test]
fn atomicrmw_umax_and_xchg() {
    let mut m = module();
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let slot = b.alloca(i32t);
    b.store(ValueRef::const_int(i32t, 5), slot);
    b.atomicrmw(siro_ir::RmwOp::UMax, slot, ValueRef::const_int(i32t, 11));
    let old = b.atomicrmw(siro_ir::RmwOp::Xchg, slot, ValueRef::const_int(i32t, 2));
    let cur = b.load(i32t, slot);
    let h = b.mul(old, ValueRef::const_int(i32t, 10));
    let s = b.add(h, cur);
    b.ret(Some(s)); // 11*10 + 2
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(112));
}

#[test]
fn fd_events_are_recorded_in_order() {
    let mut m = module();
    let i32t = m.types.i32();
    let void = m.types.void();
    let open = extern_fn(&mut m, "open", i32t, &[]);
    let close = extern_fn(&mut m, "close", void, &[i32t]);
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let fd1 = b.call(i32t, ValueRef::Func(open), vec![]);
    let fd2 = b.call(i32t, ValueRef::Func(open), vec![]);
    b.call(void, ValueRef::Func(close), vec![fd1]);
    let _ = fd2; // leaked
    b.ret(Some(ValueRef::const_int(i32t, 0)));
    let o = Machine::new(&m).run_main().unwrap();
    let fds: Vec<&Event> = o.events.iter().collect();
    assert_eq!(fds.len(), 3);
    assert!(matches!(fds[0], Event::FdOpened(3)));
    assert!(matches!(fds[1], Event::FdOpened(4)));
    assert!(matches!(fds[2], Event::FdClosed(3)));
}

#[test]
fn undef_poisons_arithmetic_but_freeze_pins_it() {
    let mut m = module();
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let u = ValueRef::Undef(i32t);
    let poisoned = b.add(u, ValueRef::const_int(i32t, 1));
    let frozen = b.freeze(poisoned);
    let v = b.add(frozen, ValueRef::const_int(i32t, 5));
    b.ret(Some(v));
    // freeze(undef) = 0 in this implementation, so the result is exactly 5.
    assert_eq!(Machine::new(&m).run_main().unwrap().return_int(), Some(5));
}

#[test]
fn run_func_executes_named_functions_with_arguments() {
    let mut m = module();
    let i32t = m.types.i32();
    let f = FuncBuilder::define(
        &mut m,
        "triple",
        i32t,
        vec![Param {
            name: "x".into(),
            ty: i32t,
        }],
    );
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let r = b.mul(ValueRef::Arg(0), ValueRef::const_int(i32t, 3));
    b.ret(Some(r));
    let o = Machine::new(&m)
        .run_func("triple", vec![RtVal::int(32, 14)])
        .unwrap();
    assert_eq!(o.return_int(), Some(42));
    // Unknown function names are IrErrors, not traps.
    assert!(Machine::new(&m).run_func("nope", vec![]).is_err());
}

#[test]
fn stack_slots_die_with_their_frame() {
    // Returning a pointer to a stack slot and dereferencing it afterwards
    // is a use-after-free in the machine's memory model.
    let mut m = module();
    let i32t = m.types.i32();
    let p32 = m.types.ptr(i32t);
    let f = FuncBuilder::define(&mut m, "leak_stack", p32, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let slot = b.alloca(i32t);
    b.store(ValueRef::const_int(i32t, 3), slot);
    b.ret(Some(slot));
    let mainf = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, mainf);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let p = b.call(p32, ValueRef::Func(f), vec![]);
    let v = b.load(i32t, p);
    b.ret(Some(v));
    let o = Machine::new(&m).run_main().unwrap();
    assert_eq!(o.trap().unwrap().kind, TrapKind::UseAfterFree);
}

#[test]
fn unknown_externals_return_zero_and_log_an_event() {
    let mut m = module();
    let i32t = m.types.i32();
    let mystery = extern_fn(&mut m, "mystery_syscall", i32t, &[]);
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut m, f);
    let e = b.add_block("entry");
    b.position_at_end(e);
    let v = b.call(i32t, ValueRef::Func(mystery), vec![]);
    b.ret(Some(v));
    let o = Machine::new(&m).run_main().unwrap();
    assert_eq!(o.return_int(), Some(0));
    assert!(o
        .events
        .iter()
        .any(|e| matches!(e, Event::ExternalCall(n) if n == "mystery_syscall")));
}
