//! Randomized parse/print round-trip property test.
//!
//! `parser_roundtrip.rs` covers the hand-written corpus; this file covers
//! *generated* modules: random arithmetic chains, comparisons, selects,
//! stack traffic, casts, and diamond control flow with phi joins, printed
//! and reparsed in every catalog dialect. The wire protocol in
//! `siro-serve` ships modules as text, so textual IR must survive a round
//! trip at every `IrVersion` — not just for shapes the corpus happens to
//! contain.
//!
//! Driven by the deterministic `siro-rng` generator (fixed seeds) so every
//! failure reproduces exactly, and the *same* seed produces the *same*
//! module structure at every version — isolating dialect-specific
//! printing as the only variable.

use siro_rng::{Rng, SeedableRng, StdRng};

use siro_ir::{
    interp::Machine, parse, verify, write, FuncBuilder, IntPredicate, IrVersion, Module, ValueRef,
};

const SEEDS: u64 = 40;

/// Everything observable about running a module, as one comparable string.
fn observe(module: &Module) -> String {
    match Machine::new(module).run_main() {
        Ok(outcome) => format!(
            "ret={:?} crashed={}",
            outcome.return_int(),
            outcome.crashed()
        ),
        Err(e) => format!("err={e}"),
    }
}

/// Builds a random—but always verifier-valid—`main` at `version`.
///
/// The generator draws from the rng in a version-independent order, so a
/// given seed yields structurally identical modules across dialects.
fn gen_module(version: IrVersion, rng: &mut StdRng) -> Module {
    let mut module = Module::new("prop_roundtrip", version);
    let i32t = module.types.i32();
    let i8t = module.types.i8();
    let main = FuncBuilder::define(&mut module, "main", i32t, vec![]);
    let mut b = FuncBuilder::new(&mut module, main);
    let entry = b.add_block("entry");
    b.position_at_end(entry);

    // Seed pool of constants; every generated value joins the pool so
    // later instructions can use earlier results.
    let mut pool: Vec<ValueRef> = (0..3)
        .map(|_| ValueRef::const_int(i32t, rng.gen_range(-100..100i64)))
        .collect();

    let steps = rng.gen_range(4..12i64);
    for _ in 0..steps {
        let a = pool[rng.gen_range(0..pool.len() as i64) as usize];
        let c = pool[rng.gen_range(0..pool.len() as i64) as usize];
        let v = match rng.gen_range(0..12i64) {
            0 => b.add(a, c),
            1 => b.sub(a, c),
            2 => b.mul(a, c),
            3 => b.and(a, c),
            4 => b.or(a, c),
            5 => b.xor(a, c),
            6 => b.shl(a, ValueRef::const_int(i32t, rng.gen_range(0..32i64))),
            7 => b.lshr(a, ValueRef::const_int(i32t, rng.gen_range(0..32i64))),
            8 => b.ashr(a, ValueRef::const_int(i32t, rng.gen_range(0..32i64))),
            9 => {
                // Comparison feeding a select.
                let pred =
                    IntPredicate::ALL[rng.gen_range(0..IntPredicate::ALL.len() as i64) as usize];
                let cond = b.icmp(pred, a, c);
                b.select(cond, a, c)
            }
            10 => {
                // A store/load round trip through the stack; exercises the
                // typed-pointer vs opaque-pointer printing per dialect.
                let slot = b.alloca(i32t);
                b.store(a, slot);
                b.load(i32t, slot)
            }
            _ => {
                // Narrow and widen again; sext vs zext chosen at random.
                let narrow = b.trunc(a, i8t);
                if rng.gen_bool(0.5) {
                    b.sext(narrow, i32t)
                } else {
                    b.zext(narrow, i32t)
                }
            }
        };
        pool.push(v);
    }

    let result = pool[rng.gen_range(0..pool.len() as i64) as usize];
    if rng.gen_bool(0.5) {
        // Diamond: entry branches on a comparison, both arms compute, a
        // phi joins them. All operands come from `entry`, which dominates
        // every block, so the module stays verifier-valid by construction.
        let then_bb = b.add_block("then");
        let else_bb = b.add_block("else");
        let join_bb = b.add_block("join");
        let x = pool[rng.gen_range(0..pool.len() as i64) as usize];
        let y = pool[rng.gen_range(0..pool.len() as i64) as usize];
        let cond = b.icmp(IntPredicate::Slt, x, y);
        b.cond_br(cond, then_bb, else_bb);

        b.position_at_end(then_bb);
        let tv = b.add(result, ValueRef::const_int(i32t, rng.gen_range(-50..50i64)));
        b.br(join_bb);

        b.position_at_end(else_bb);
        let ev = b.xor(result, ValueRef::const_int(i32t, rng.gen_range(-50..50i64)));
        b.br(join_bb);

        b.position_at_end(join_bb);
        let joined = b.phi(i32t, vec![(tv, then_bb), (ev, else_bb)]);
        let final_v = b.sub(joined, result);
        b.ret(Some(final_v));
    } else {
        b.ret(Some(result));
    }
    module
}

/// Property: for every catalog dialect and every seed, a generated module
/// (a) verifies, (b) prints to text that reparses in the same version,
/// (c) is textually idempotent under write -> parse -> write, and (d) the
/// reparsed module behaves identically under the interpreter.
#[test]
fn random_modules_roundtrip_in_every_dialect() {
    for version in IrVersion::CATALOG {
        for seed in 0..SEEDS {
            let mut rng = StdRng::seed_from_u64(seed);
            let module = gen_module(version, &mut rng);
            verify::verify_module(&module)
                .unwrap_or_else(|e| panic!("seed {seed} at {version}: generator invalid: {e}"));

            let t1 = write::write_module(&module);
            let parsed = parse::parse_module(&t1)
                .unwrap_or_else(|e| panic!("seed {seed} at {version}: reparse failed: {e}\n{t1}"));
            assert_eq!(
                parsed.version, version,
                "seed {seed}: header must carry the dialect"
            );
            verify::verify_module(&parsed)
                .unwrap_or_else(|e| panic!("seed {seed} at {version}: reparsed invalid: {e}"));

            let t2 = write::write_module(&parsed);
            assert_eq!(
                t1, t2,
                "seed {seed} at {version}: write -> parse -> write not idempotent"
            );
            assert_eq!(
                observe(&module),
                observe(&parsed),
                "seed {seed} at {version}: reparsed module behaves differently"
            );
        }
    }
}

/// The generator is version-agnostic by construction: the same seed must
/// observe the same result at every dialect (the printed text differs,
/// the program does not).
#[test]
fn same_seed_behaves_identically_across_dialects() {
    for seed in 0..SEEDS {
        let mut results = Vec::new();
        for version in IrVersion::CATALOG {
            let mut rng = StdRng::seed_from_u64(seed);
            let module = gen_module(version, &mut rng);
            results.push(observe(&module));
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: dialects disagree: {results:?}"
        );
    }
}
