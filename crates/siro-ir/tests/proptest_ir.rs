//! Property-based tests of the IR substrate itself: masked integer
//! semantics against a reference implementation, type-table laws, and
//! constant round-trips through memory.
//!
//! Driven by the deterministic `siro-rng` generator (fixed seeds, fixed
//! case counts) so every failure reproduces exactly.

use siro_rng::{Rng, SeedableRng, StdRng};

use siro_ir::{
    interp::Machine, FuncBuilder, Instruction, IrVersion, Module, Opcode, Type, TypeTable, ValueRef,
};

/// Reference i32 semantics for the interpreter's integer ops.
fn reference(op: Opcode, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl(b as u32 % 32),
        Opcode::LShr => ((a as u32) >> (b as u32 % 32)) as i32,
        Opcode::AShr => a >> (b as u32 % 32),
        Opcode::UDiv => {
            if b == 0 {
                return None;
            }
            ((a as u32) / (b as u32)) as i32
        }
        Opcode::SDiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        Opcode::URem => {
            if b == 0 {
                return None;
            }
            ((a as u32) % (b as u32)) as i32
        }
        Opcode::SRem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        _ => return None,
    })
}

fn run_binop(op: Opcode, a: i32, b: i32) -> Option<i32> {
    let mut m = Module::new("prop", IrVersion::V13_0);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut bld = FuncBuilder::new(&mut m, f);
    let e = bld.add_block("entry");
    bld.position_at_end(e);
    let v = bld.push(Instruction::new(
        op,
        i32t,
        vec![
            ValueRef::const_int(i32t, i64::from(a)),
            ValueRef::const_int(i32t, i64::from(b)),
        ],
    ));
    bld.ret(Some(v));
    Machine::new(&m)
        .run_main()
        .unwrap()
        .return_int()
        .map(|v| v as i32)
}

const OPS: [Opcode; 13] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
    Opcode::UDiv,
    Opcode::SDiv,
    Opcode::URem,
    Opcode::SRem,
];

/// Draws an i32 biased towards interesting boundary values.
fn arb_i32(rng: &mut StdRng) -> i32 {
    match rng.gen_range(0..8u32) {
        0 => 0,
        1 => 1,
        2 => -1,
        3 => i32::MIN,
        4 => i32::MAX,
        _ => rng.gen_range(i32::MIN as i64..i32::MAX as i64 + 1) as i32,
    }
}

/// The interpreter's i32 arithmetic agrees with native Rust wrapping
/// semantics, including the division-by-zero trap.
#[test]
fn integer_ops_match_reference() {
    let mut rng = StdRng::seed_from_u64(0x1A_01);
    for _ in 0..256 {
        let op = OPS[rng.gen_range(0..OPS.len())];
        let a = arb_i32(&mut rng);
        let b = arb_i32(&mut rng);
        let expect = reference(op, a, b);
        let got = run_binop(op, a, b);
        assert_eq!(got, expect, "{op} {a} {b}");
    }
}

/// Storing then loading any i8/i16/i32/i64 constant round-trips through the
/// byte-level memory.
#[test]
fn memory_roundtrips_integers() {
    let mut rng = StdRng::seed_from_u64(0x1A_02);
    for _ in 0..256 {
        let v = rng.gen_range(i64::MIN..i64::MAX);
        let width = [8u32, 16, 32, 64][rng.gen_range(0..4usize)];
        let mut m = Module::new("prop", IrVersion::V13_0);
        let ity = m.types.int(width);
        let i64t = m.types.i64();
        let f = FuncBuilder::define(&mut m, "main", i64t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let slot = b.alloca(ity);
        b.store(ValueRef::const_int(ity, v), slot);
        let loaded = b.load(ity, slot);
        let wide = b.sext(loaded, i64t);
        b.ret(Some(wide));
        let got = Machine::new(&m).run_main().unwrap().return_int().unwrap();
        // Expected: v sign-extended from `width` bits.
        let shift = 64 - width;
        let expect = (v << shift) >> shift;
        assert_eq!(got, expect, "width {width}, value {v}");
    }
}

/// Interning is idempotent and structural: equal types share ids,
/// distinct types never collide.
#[test]
fn type_table_interning_laws() {
    let mut rng = StdRng::seed_from_u64(0x1A_03);
    for _ in 0..64 {
        let n = rng.gen_range(1..20usize);
        let widths: Vec<u32> = (0..n).map(|_| rng.gen_range(1..130u32)).collect();
        let mut t = TypeTable::new();
        let ids: Vec<_> = widths.iter().map(|&w| t.int(w)).collect();
        for (w, id) in widths.iter().zip(&ids) {
            assert_eq!(t.int(*w), *id); // idempotent
            assert_eq!(t.get(*id), &Type::Int(*w));
        }
        for (i, a) in widths.iter().enumerate() {
            for (j, b) in widths.iter().enumerate() {
                assert_eq!(a == b, ids[i] == ids[j]);
            }
        }
        // Pointers to distinct pointees are distinct.
        let ptrs: Vec<_> = ids.iter().map(|&i| t.ptr(i)).collect();
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                assert_eq!(a == b, ptrs[i] == ptrs[j]);
            }
        }
    }
}

/// `size_of` is consistent: arrays scale linearly, structs are at least
/// the sum of their fields and aligned to the max field alignment.
#[test]
fn layout_laws() {
    let mut rng = StdRng::seed_from_u64(0x1A_04);
    for _ in 0..64 {
        let nfields = rng.gen_range(1..8usize);
        let widths: Vec<u32> = (0..nfields)
            .map(|_| [8u32, 16, 32, 64][rng.gen_range(0..4usize)])
            .collect();
        let n = rng.gen_range(1..16u64);
        let mut t = TypeTable::new();
        let fields: Vec<_> = widths.iter().map(|&w| t.int(w)).collect();
        let st = t.struct_(fields.clone());
        let sum: u64 = fields.iter().map(|&f| t.size_of(f)).sum();
        let max_align = fields.iter().map(|&f| t.align_of(f)).max().unwrap();
        assert!(t.size_of(st) >= sum);
        assert_eq!(t.size_of(st) % max_align, 0);
        let elem = fields[0];
        let arr = t.array(elem, n);
        assert_eq!(t.size_of(arr), t.size_of(elem) * n);
        // Field offsets are within bounds, ordered, and aligned.
        let mut prev_end = 0;
        for (i, &f) in fields.iter().enumerate() {
            let off = t.struct_field_offset(st, i as u32).unwrap();
            assert!(off >= prev_end);
            assert_eq!(off % t.align_of(f), 0);
            prev_end = off + t.size_of(f);
        }
        assert!(prev_end <= t.size_of(st));
    }
}

/// The writer/parser round-trip holds for arbitrary integer constants
/// in ret position.
#[test]
fn constants_roundtrip_through_text() {
    let mut rng = StdRng::seed_from_u64(0x1A_05);
    for case in 0..256 {
        let v = if case < 5 {
            [0, 1, -1, i32::MIN, i32::MAX][case]
        } else {
            arb_i32(&mut rng)
        };
        let mut m = Module::new("prop", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, i64::from(v))));
        let text = siro_ir::write::write_module(&m);
        let parsed = siro_ir::parse::parse_module(&text).unwrap();
        let got = Machine::new(&parsed).run_main().unwrap().return_int();
        assert_eq!(got, Some(i64::from(v)));
    }
}
