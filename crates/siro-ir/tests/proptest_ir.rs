//! Property-based tests of the IR substrate itself: masked integer
//! semantics against a reference implementation, type-table laws, and
//! constant round-trips through memory.

use proptest::prelude::*;

use siro_ir::{
    interp::Machine, FuncBuilder, Instruction, IrVersion, Module, Opcode, Type, TypeTable,
    ValueRef,
};

/// Reference i32 semantics for the interpreter's integer ops.
fn reference(op: Opcode, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl(b as u32 % 32),
        Opcode::LShr => ((a as u32) >> (b as u32 % 32)) as i32,
        Opcode::AShr => a >> (b as u32 % 32),
        Opcode::UDiv => {
            if b == 0 {
                return None;
            }
            ((a as u32) / (b as u32)) as i32
        }
        Opcode::SDiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        Opcode::URem => {
            if b == 0 {
                return None;
            }
            ((a as u32) % (b as u32)) as i32
        }
        Opcode::SRem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        _ => return None,
    })
}

fn run_binop(op: Opcode, a: i32, b: i32) -> Option<i32> {
    let mut m = Module::new("prop", IrVersion::V13_0);
    let i32t = m.types.i32();
    let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
    let mut bld = FuncBuilder::new(&mut m, f);
    let e = bld.add_block("entry");
    bld.position_at_end(e);
    let v = bld.push(Instruction::new(
        op,
        i32t,
        vec![
            ValueRef::const_int(i32t, i64::from(a)),
            ValueRef::const_int(i32t, i64::from(b)),
        ],
    ));
    bld.ret(Some(v));
    Machine::new(&m)
        .run_main()
        .unwrap()
        .return_int()
        .map(|v| v as i32)
}

const OPS: [Opcode; 13] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::LShr,
    Opcode::AShr,
    Opcode::UDiv,
    Opcode::SDiv,
    Opcode::URem,
    Opcode::SRem,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The interpreter's i32 arithmetic agrees with native Rust wrapping
    /// semantics, including the division-by-zero trap.
    #[test]
    fn integer_ops_match_reference(op_idx in 0usize..13, a in any::<i32>(), b in any::<i32>()) {
        let op = OPS[op_idx];
        let expect = reference(op, a, b);
        let got = run_binop(op, a, b);
        prop_assert_eq!(got, expect, "{} {} {}", op, a, b);
    }

    /// Storing then loading any i32/i64/i8 constant round-trips through the
    /// byte-level memory.
    #[test]
    fn memory_roundtrips_integers(v in any::<i64>(), width in prop::sample::select(vec![8u32, 16, 32, 64])) {
        let mut m = Module::new("prop", IrVersion::V13_0);
        let ity = m.types.int(width);
        let i64t = m.types.i64();
        let f = FuncBuilder::define(&mut m, "main", i64t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        let slot = b.alloca(ity);
        b.store(ValueRef::const_int(ity, v), slot);
        let loaded = b.load(ity, slot);
        let wide = b.sext(loaded, i64t);
        b.ret(Some(wide));
        let got = Machine::new(&m).run_main().unwrap().return_int().unwrap();
        // Expected: v sign-extended from `width` bits.
        let shift = 64 - width;
        let expect = (v << shift) >> shift;
        prop_assert_eq!(got, expect);
    }

    /// Interning is idempotent and structural: equal types share ids,
    /// distinct types never collide.
    #[test]
    fn type_table_interning_laws(widths in prop::collection::vec(1u32..130, 1..20)) {
        let mut t = TypeTable::new();
        let ids: Vec<_> = widths.iter().map(|&w| t.int(w)).collect();
        for (w, id) in widths.iter().zip(&ids) {
            prop_assert_eq!(t.int(*w), *id); // idempotent
            prop_assert_eq!(t.get(*id), &Type::Int(*w));
        }
        for (i, a) in widths.iter().enumerate() {
            for (j, b) in widths.iter().enumerate() {
                prop_assert_eq!(a == b, ids[i] == ids[j]);
            }
        }
        // Pointers to distinct pointees are distinct.
        let ptrs: Vec<_> = ids.iter().map(|&i| t.ptr(i)).collect();
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                prop_assert_eq!(a == b, ptrs[i] == ptrs[j]);
            }
        }
    }

    /// `size_of` is consistent: arrays scale linearly, structs are at least
    /// the sum of their fields and aligned to the max field alignment.
    #[test]
    fn layout_laws(widths in prop::collection::vec(prop::sample::select(vec![8u32, 16, 32, 64]), 1..8), n in 1u64..16) {
        let mut t = TypeTable::new();
        let fields: Vec<_> = widths.iter().map(|&w| t.int(w)).collect();
        let st = t.struct_(fields.clone());
        let sum: u64 = fields.iter().map(|&f| t.size_of(f)).sum();
        let max_align = fields.iter().map(|&f| t.align_of(f)).max().unwrap();
        prop_assert!(t.size_of(st) >= sum);
        prop_assert_eq!(t.size_of(st) % max_align, 0);
        let elem = fields[0];
        let arr = t.array(elem, n);
        prop_assert_eq!(t.size_of(arr), t.size_of(elem) * n);
        // Field offsets are within bounds, ordered, and aligned.
        let mut prev_end = 0;
        for (i, &f) in fields.iter().enumerate() {
            let off = t.struct_field_offset(st, i as u32).unwrap();
            prop_assert!(off >= prev_end);
            prop_assert_eq!(off % t.align_of(f), 0);
            prev_end = off + t.size_of(f);
        }
        prop_assert!(prev_end <= t.size_of(st));
    }

    /// The writer/parser round-trip holds for arbitrary integer constants
    /// in ret position.
    #[test]
    fn constants_roundtrip_through_text(v in any::<i32>()) {
        let mut m = Module::new("prop", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "main", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, i64::from(v))));
        let text = siro_ir::write::write_module(&m);
        let parsed = siro_ir::parse::parse_module(&text).unwrap();
        let got = Machine::new(&parsed).run_main().unwrap().return_int();
        prop_assert_eq!(got, Some(i64::from(v)));
    }
}
