//! Property tests for the arena invariants of the IR core.
//!
//! Three invariants from `docs/IR_CORE.md` are fuzzed with `siro-rng`:
//!
//! 1. **No dangling pointers** — random build/mutate/delete sequences
//!    never produce a `ValueRef::Inst`/`ValueRef::Block` whose `Ptr<T>`
//!    falls outside its arena, nor a block whose instruction list points
//!    past the instruction arena.
//! 2. **Use-def consistency** — `UseIndex::build` agrees exactly with a
//!    brute-force scan of the operand lists, in both directions.
//! 3. **Clone disjointness** — `Module::arena_clone` is structurally
//!    equal (byte-identical serialization) but storage-disjoint: any
//!    mutation of the clone leaves the original's bytes untouched.

use siro_rng::seq::SliceRandom;
use siro_rng::{Rng, SeedableRng, StdRng};

use siro_ir::{
    write, BlockId, FuncBuilder, Function, InstId, IrVersion, Module, UseIndex, ValueRef,
};
use siro_testcases::gen::generate_cases;

const VERSIONS: [IrVersion; 4] = [
    IrVersion::V5_0,
    IrVersion::V10_0,
    IrVersion::V13_0,
    IrVersion::V17_0,
];

/// Every operand and block membership in `f` must resolve inside the
/// function's arenas. Panics with a description of the first violation.
fn assert_no_dangling(f: &Function, what: &str) {
    let ninsts = f.insts.len();
    let nblocks = f.blocks.len();
    for bid in f.block_ids() {
        for &iid in &f.block(bid).insts {
            assert!(
                iid.index() < ninsts,
                "{what}: block {bid:?} lists out-of-arena instruction {iid:?} (arena len {ninsts})"
            );
        }
    }
    for iid in f.insts.ids() {
        for &op in &f.inst(iid).operands {
            match op {
                ValueRef::Inst(i) => assert!(
                    i.index() < ninsts,
                    "{what}: {iid:?} has dangling operand {i:?} (arena len {ninsts})"
                ),
                ValueRef::Block(b) => assert!(
                    b.index() < nblocks,
                    "{what}: {iid:?} has dangling label {b:?} (arena len {nblocks})"
                ),
                _ => {}
            }
        }
    }
}

/// Brute-force use-def map: for each defining instruction, the list of
/// `(user, slot)` pairs naming it in an operand list, in program order.
fn brute_force_uses(f: &Function) -> Vec<Vec<(InstId, u32)>> {
    let mut out = vec![Vec::new(); f.insts.len()];
    for iid in f.insts.ids() {
        for (slot, &op) in f.inst(iid).operands.iter().enumerate() {
            if let ValueRef::Inst(def) = op {
                out[def.index()].push((iid, slot as u32));
            }
        }
    }
    out
}

fn assert_use_index_consistent(f: &Function, what: &str) {
    let idx = UseIndex::build(f);
    let brute = brute_force_uses(f);
    let mut total = 0usize;
    for iid in f.insts.ids() {
        let via_index: Vec<(InstId, u32)> =
            idx.uses_of(iid).iter().map(|u| (u.user, u.slot)).collect();
        assert_eq!(
            via_index,
            brute[iid.index()],
            "{what}: UseIndex disagrees with operand scan for def {iid:?}"
        );
        // Back-pointer check: each recorded use really names `iid` at
        // that slot.
        for u in idx.uses_of(iid) {
            assert_eq!(
                f.inst(u.user).operands[u.slot as usize],
                ValueRef::Inst(iid),
                "{what}: recorded use ({:?}, slot {}) does not point back at {iid:?}",
                u.user,
                u.slot
            );
        }
        total += via_index.len();
    }
    // `UseIndex::len` counts covered instructions, and the total number
    // of recorded uses must match the brute-force scan.
    assert_eq!(
        idx.len(),
        f.insts.len(),
        "{what}: UseIndex coverage drifted"
    );
    let brute_total: usize = brute.iter().map(Vec::len).sum();
    assert_eq!(total, brute_total, "{what}: UseIndex use count drifted");
}

/// Applies `steps` random mutations to every function of `m`: operand
/// pushes/pops/truncations/rewrites, new blocks, new instructions, and
/// placeholder replacement. All mutations only ever reference live ids,
/// so the no-dangling invariant must survive each one.
fn mutate_randomly(m: &mut Module, rng: &mut StdRng, steps: usize) {
    let fids: Vec<_> = m.func_ids().collect();
    for _ in 0..steps {
        let Some(&fid) = fids.as_slice().choose(rng) else {
            return;
        };
        let f = m.func_mut(fid);
        if f.insts.is_empty() || f.blocks.is_empty() {
            continue;
        }
        let ninsts = f.insts.len();
        let nblocks = f.blocks.len();
        let victim = InstId::from_usize(rng.gen_range(0..ninsts));
        match rng.gen_range(0..6u32) {
            // Push a reference to a live instruction.
            0 => {
                let tgt = InstId::from_usize(rng.gen_range(0..ninsts));
                f.inst_mut(victim).operands.push(ValueRef::Inst(tgt));
            }
            // Push a label operand.
            1 => {
                let tgt = BlockId::from_usize(rng.gen_range(0..nblocks));
                f.inst_mut(victim).operands.push(ValueRef::Block(tgt));
            }
            // Pop (possibly spilling back below the inline threshold).
            2 => {
                f.inst_mut(victim).operands.pop();
            }
            // Truncate to a random prefix.
            3 => {
                let ops = &mut f.inst_mut(victim).operands;
                if !ops.is_empty() {
                    let keep = rng.gen_range(0..ops.len() + 1);
                    ops.truncate(keep);
                }
            }
            // Rewrite one slot in place through as_mut_slice.
            4 => {
                let tgt = InstId::from_usize(rng.gen_range(0..ninsts));
                let ops = f.inst_mut(victim).operands.as_mut_slice();
                if !ops.is_empty() {
                    let slot = rng.gen_range(0..ops.len());
                    ops[slot] = ValueRef::Inst(tgt);
                }
            }
            // "Delete": clear an operand list outright (the arena keeps
            // the slot alive, so no other list can dangle).
            _ => {
                f.inst_mut(victim).operands.clear();
            }
        }
    }
}

/// Builds a small random-but-valid module from scratch through
/// `FuncBuilder`, exercising arena allocation directly (as opposed to
/// the parser-driven corpus of `generate_cases`).
fn build_random_module(rng: &mut StdRng, version: IrVersion) -> Module {
    let mut m = Module::new("prop", version);
    let i32t = m.types.i32();
    let nfuncs = rng.gen_range(1..4usize);
    for fi in 0..nfuncs {
        let fid = FuncBuilder::define(&mut m, format!("f{fi}"), i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, fid);
        let entry = b.add_block("entry");
        b.position_at_end(entry);
        let mut vals = vec![ValueRef::const_int(i32t, rng.gen_range(0..100))];
        for _ in 0..rng.gen_range(1..13usize) {
            let lhs = *vals.as_slice().choose(rng).unwrap();
            let rhs = *vals.as_slice().choose(rng).unwrap();
            let v = match rng.gen_range(0..3u32) {
                0 => b.add(lhs, rhs),
                1 => b.sub(lhs, rhs),
                _ => b.xor(lhs, rhs),
            };
            vals.push(v);
        }
        b.ret(Some(*vals.last().unwrap()));
    }
    m
}

#[test]
fn random_builds_never_dangle() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xA11A + seed);
        let version = VERSIONS[(seed as usize) % VERSIONS.len()];
        let m = build_random_module(&mut rng, version);
        for fid in m.func_ids() {
            assert_no_dangling(m.func(fid), &format!("seed {seed} build"));
        }
    }
}

#[test]
fn random_mutations_never_dangle() {
    for seed in 0..16u64 {
        let version = VERSIONS[(seed as usize) % VERSIONS.len()];
        let mut cases = generate_cases(0xD1CE + seed, 2, version);
        let mut rng = StdRng::seed_from_u64(0xBEEF + seed);
        for case in &mut cases {
            mutate_randomly(&mut case.module, &mut rng, 64);
            for fid in case.module.func_ids() {
                assert_no_dangling(
                    case.module.func(fid),
                    &format!("seed {seed} case {}", case.name),
                );
            }
        }
    }
}

#[test]
fn use_index_matches_brute_force_scan() {
    for seed in 0..12u64 {
        let version = VERSIONS[(seed as usize) % VERSIONS.len()];
        let mut cases = generate_cases(0xCAFE + seed, 2, version);
        let mut rng = StdRng::seed_from_u64(0xF00D + seed);
        for case in &mut cases {
            // Consistent both on the pristine module...
            for fid in case.module.func_ids() {
                assert_use_index_consistent(case.module.func(fid), &case.name);
            }
            // ...and after arbitrary operand-list churn.
            mutate_randomly(&mut case.module, &mut rng, 48);
            for fid in case.module.func_ids() {
                assert_use_index_consistent(case.module.func(fid), &case.name);
            }
        }
    }
}

#[test]
fn arena_clone_is_equal_but_disjoint() {
    for seed in 0..12u64 {
        let version = VERSIONS[(seed as usize) % VERSIONS.len()];
        let cases = generate_cases(0x51B0 + seed, 2, version);
        let mut rng = StdRng::seed_from_u64(0xC10E + seed);
        for case in &cases {
            let before = write::write_module(&case.module);
            let mut clone = case.module.arena_clone();
            assert_eq!(
                write::write_module(&clone),
                before,
                "clone of {} not structurally equal",
                case.name
            );
            // Storage disjointness: hammer the clone, then check the
            // original still serializes to the exact same bytes.
            mutate_randomly(&mut clone, &mut rng, 96);
            for fid in clone.func_ids() {
                let f = clone.func_mut(fid);
                for iid in 0..f.insts.len() {
                    f.inst_mut(InstId::from_usize(iid)).operands.clear();
                }
            }
            assert_eq!(
                write::write_module(&case.module),
                before,
                "mutating clone of {} leaked into the original",
                case.name
            );
        }
    }
}

#[test]
fn slab_reuse_keeps_ptrs_in_bounds() {
    // Dropping a module parks its arena buffers in the thread-local
    // slab; the next module reuses them. Pointers minted against the
    // new module must still be bounds-checked against *its* lengths,
    // never the recycled capacity.
    let mut rng = StdRng::seed_from_u64(0x51AB);
    let big = build_random_module(&mut rng, IrVersion::V13_0);
    let big_insts = big.inst_count();
    assert!(big_insts > 0);
    drop(big);

    let depths = siro_ir::ctx::slab_depths();
    assert!(
        depths.iter().any(|&d| d > 0),
        "dropping a module should park at least one buffer, got {depths:?}"
    );

    let small = build_random_module(&mut rng, IrVersion::V13_0);
    for fid in small.func_ids() {
        let f = small.func(fid);
        assert_no_dangling(f, "recycled arena");
        // A pointer index valid for the big module must be rejected by
        // the small one's accessors rather than aliasing stale storage.
        let stale = InstId::from_usize(f.insts.len() + 7);
        assert!(f.insts.get(stale).is_none());
        assert!(!f.insts.contains(stale));
    }
}
