//! Dominator trees (Cooper–Harvey–Kennedy "a simple, fast dominance
//! algorithm") — one of the representative built-in analyses the paper's
//! §6.1 study tracks across LLVM versions.

use siro_ir::BlockId;

use crate::cfg::Cfg;

/// The dominator tree of one function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block (entry's idom is itself); `None` for
    /// unreachable blocks.
    idom: Vec<Option<BlockId>>,
    /// Reverse post-order index per block.
    rpo_index: Vec<usize>,
}

impl DomTree {
    /// Computes dominators over `cfg`.
    pub fn build(cfg: &Cfg) -> Self {
        let n = cfg.len();
        let rpo = cfg.reverse_post_order();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom, rpo_index };
        }
        idom[0] = Some(BlockId::new(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.predecessors(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { idom, rpo_index }
    }

    /// The immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let d = self.idom[b.index()]?;
        if d == b {
            None
        } else {
            Some(d)
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// The reverse post-order index of a block (used as a cheap topological
    /// position).
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.index()];
        if i == usize::MAX {
            None
        } else {
            Some(i)
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use siro_ir::{FuncBuilder, IntPredicate, IrVersion, Module, ValueRef};

    /// entry -> {then, else} -> merge -> exit, with a loop merge -> then.
    fn build() -> (Cfg, ()) {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "f", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let t = b.add_block("then");
        let el = b.add_block("else");
        let mg = b.add_block("merge");
        let x = b.add_block("exit");
        b.position_at_end(e);
        let c = b.icmp(
            IntPredicate::Slt,
            ValueRef::const_int(i32t, 1),
            ValueRef::const_int(i32t, 2),
        );
        b.cond_br(c, t, el);
        b.position_at_end(t);
        b.br(mg);
        b.position_at_end(el);
        b.br(mg);
        b.position_at_end(mg);
        b.cond_br(c, t, x);
        b.position_at_end(x);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        (Cfg::build(m.func(f)), ())
    }

    #[test]
    fn idoms_of_diamond_with_loop() {
        let (cfg, ()) = build();
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.idom(BlockId::new(0)), None);
        assert_eq!(dom.idom(BlockId::new(1)), Some(BlockId::new(0))); // then: entry or merge preds
        assert_eq!(dom.idom(BlockId::new(2)), Some(BlockId::new(0)));
        assert_eq!(dom.idom(BlockId::new(3)), Some(BlockId::new(0)));
        assert_eq!(dom.idom(BlockId::new(4)), Some(BlockId::new(3)));
        assert!(dom.dominates(BlockId::new(0), BlockId::new(4)));
        assert!(dom.dominates(BlockId::new(3), BlockId::new(4)));
        assert!(!dom.dominates(BlockId::new(1), BlockId::new(3)));
        assert!(dom.dominates(BlockId::new(3), BlockId::new(3)));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut m = Module::new("m", IrVersion::V13_0);
        let i32t = m.types.i32();
        let f = FuncBuilder::define(&mut m, "f", i32t, vec![]);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.add_block("entry");
        let dead = b.add_block("dead");
        b.position_at_end(e);
        b.ret(Some(ValueRef::const_int(i32t, 0)));
        b.position_at_end(dead);
        b.ret(Some(ValueRef::const_int(i32t, 1)));
        let cfg = Cfg::build(m.func(f));
        let dom = DomTree::build(&cfg);
        assert!(dom.is_reachable(e));
        assert!(!dom.is_reachable(dead));
    }
}
